"""Unit tests for repro.observe: tracer, metrics, profiles, and the hub.

The integration-grade properties (traced cluster runs reconciling with
telemetry, byte-identical determinism under rebalancing) live in
tests/test_serve.py and tests/test_cluster.py; this file pins down the
building blocks — the timeline state machine, the Chrome-trace schema,
nearest-rank percentiles, ring-buffer windowing, straggler ranking — and
the off-by-default contract.
"""

import json
from types import SimpleNamespace

import numpy as np
import pytest

from repro.observe import (
    EVENT_KINDS,
    BlockProfile,
    MetricsRecorder,
    RingBuffer,
    Trace,
    TraceEvent,
    Tracer,
    nearest_rank,
    resolve_trace,
    validate_chrome_trace,
    validate_timeline,
)
from repro.vm.instrumentation import BlockCounter, Instrumentation

from .programs import fib


# -- nearest-rank percentiles --------------------------------------------------


class TestNearestRank:
    def test_known_values(self):
        values = [15, 20, 35, 40, 50]
        assert nearest_rank(values, 5) == 15.0
        assert nearest_rank(values, 30) == 20.0
        assert nearest_rank(values, 40) == 20.0
        assert nearest_rank(values, 50) == 35.0
        assert nearest_rank(values, 100) == 50.0

    def test_edges(self):
        assert nearest_rank([], 50) == 0.0
        assert nearest_rank([7], 0) == 7.0
        assert nearest_rank([7], 100) == 7.0
        assert nearest_rank([3, 1, 2], 0) == 1.0  # min, unsorted input

    def test_never_interpolates(self):
        # Every answer is an observed value, whatever q is.
        values = [1, 10, 100, 1000]
        for q in range(0, 101, 7):
            assert nearest_rank(values, q) in values

    def test_out_of_range(self):
        with pytest.raises(ValueError):
            nearest_rank([1], -1)
        with pytest.raises(ValueError):
            nearest_rank([1], 101)


# -- ring buffers --------------------------------------------------------------


class TestRingBuffer:
    def test_bounded_with_dropped_count(self):
        buf = RingBuffer(3)
        for i in range(7):
            buf.append(i)
        assert len(buf) == 3
        assert buf.items() == [4, 5, 6]  # oldest-first
        assert buf.dropped == 4

    def test_under_capacity(self):
        buf = RingBuffer(8)
        buf.append("a")
        buf.append("b")
        assert buf.items() == ["a", "b"]
        assert buf.dropped == 0

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            RingBuffer(0)


class TestMetricsRecorder:
    def test_series_lifecycle(self):
        m = MetricsRecorder(window=16)
        for t in range(5):
            m.record("queue_depth", t, t * 2)
        assert m.names() == ["queue_depth"]
        assert m.samples("queue_depth") == [(t, float(t * 2)) for t in range(5)]
        assert m.values("queue_depth") == [0.0, 2.0, 4.0, 6.0, 8.0]
        assert m.latest("queue_depth") == 8.0
        assert m.mean("queue_depth") == 4.0
        assert m.percentile("queue_depth", 50) == 4.0
        assert m.dropped("queue_depth") == 0

    def test_window_eviction(self):
        m = MetricsRecorder(window=4)
        for t in range(10):
            m.record("g", t, t)
        assert m.values("g") == [6.0, 7.0, 8.0, 9.0]
        assert m.dropped("g") == 6
        assert "dropped=6" in m.summary()

    def test_missing_series(self):
        m = MetricsRecorder()
        assert m.samples("nope") == []
        assert m.latest("nope") is None
        assert m.mean("nope") == 0.0
        assert m.percentile("nope", 99) == 0.0

    def test_to_json_is_canonical(self):
        m = MetricsRecorder(window=8)
        m.record("b", 0, 1)
        m.record("a", 0, 2)
        doc = m.to_json()
        assert list(doc["series"]) == ["a", "b"]  # sorted
        assert doc["series"]["a"] == {
            "dropped": 0, "ticks": [0], "values": [2.0],
        }
        # Canonical: same recordings → identical serialization.
        m2 = MetricsRecorder(window=8)
        m2.record("b", 0, 1)
        m2.record("a", 0, 2)
        assert json.dumps(doc, sort_keys=True) == json.dumps(
            m2.to_json(), sort_keys=True
        )


# -- tracer --------------------------------------------------------------------


class TestTracer:
    def test_record_and_index(self):
        tr = Tracer()
        tr.record("submit", 0, request_id=1, priority=2)
        tr.record("submit", 0, request_id=2)
        tr.record("inject", 1, request_id=1, shard=0, lane=3)
        tr.record("complete", 4, request_id=1, lane=3)
        assert len(tr) == 4
        assert tr.count("submit") == 2
        assert tr.count("steal") == 0
        assert tr.counts() == {"complete": 1, "inject": 1, "submit": 2}
        assert tr.request_ids() == [1, 2]
        timeline = tr.events_for(1)
        assert [e.kind for e in timeline] == ["submit", "inject", "complete"]
        assert tr.events_for(99) == []

    def test_unknown_kind_rejected(self):
        tr = Tracer()
        with pytest.raises(ValueError):
            tr.record("teleport", 0)
        with pytest.raises(ValueError):
            tr.count("teleport")

    def test_as_dict_omits_nones(self):
        e = TraceEvent(tick=3, kind="submit", request_id=0)
        assert e.as_dict() == {"tick": 3, "kind": "submit", "request_id": 0}

    def test_event_kinds_frozen_set(self):
        assert set(EVENT_KINDS) >= {
            "submit", "reject", "inject", "preempt", "resume",
            "steal", "migrate", "drain", "complete", "fail",
        }


class TestChromeTrace:
    def _traced(self):
        tr = Tracer()
        tr.record("submit", 0, request_id=0, shard=0)
        tr.record("inject", 1, request_id=0, shard=0, lane=2)
        tr.record("preempt", 3, request_id=0, shard=0, lane=2)
        tr.record("resume", 5, request_id=0, shard=1, lane=0)
        tr.record("complete", 8, request_id=0, shard=1, lane=0)
        return tr

    def test_layers(self):
        doc = self._traced().chrome_trace()
        events = doc["traceEvents"]
        by_ph = {}
        for e in events:
            by_ph.setdefault(e["ph"], []).append(e)
        assert len(by_ph["i"]) == 5  # one instant per raw event
        assert len(by_ph["b"]) == 1 and len(by_ph["e"]) == 1  # submit→terminal
        assert by_ph["b"][0]["id"] == 0
        # Two lane-residency spans: inject→preempt (2 ticks, shard 0) and
        # resume→complete (3 ticks, shard 1).
        spans = sorted(by_ph["X"], key=lambda e: e["ts"])
        assert [(s["ts"], s["dur"], s["pid"]) for s in spans] == [
            (1, 2, 0), (5, 3, 1),
        ]
        assert spans[0]["args"]["ended_by"] == "preempt"
        assert spans[1]["args"]["ended_by"] == "complete"

    def test_export_and_validate(self, tmp_path):
        path = tmp_path / "trace.json"
        doc = self._traced().export_chrome_trace(path)
        assert validate_chrome_trace(doc) == len(doc["traceEvents"])
        assert validate_chrome_trace(path) == len(doc["traceEvents"])
        # Canonical bytes: re-export matches exactly.
        path2 = tmp_path / "trace2.json"
        self._traced().export_chrome_trace(path2)
        assert path.read_bytes() == path2.read_bytes()

    def test_validate_rejects_malformed(self):
        with pytest.raises(ValueError):
            validate_chrome_trace({"events": []})
        with pytest.raises(ValueError):
            validate_chrome_trace({"traceEvents": [{"name": "x"}]})
        with pytest.raises(ValueError):
            validate_chrome_trace(
                {"traceEvents": [
                    {"name": "x", "ph": "Z", "ts": 0, "pid": 0, "tid": 0}
                ]}
            )
        with pytest.raises(ValueError):  # complete span without dur
            validate_chrome_trace(
                {"traceEvents": [
                    {"name": "x", "ph": "X", "ts": 0, "pid": 0, "tid": 0}
                ]}
            )
        with pytest.raises(ValueError):  # async event without id
            validate_chrome_trace(
                {"traceEvents": [
                    {"name": "x", "ph": "b", "ts": 0, "pid": 0, "tid": 0}
                ]}
            )


class TestValidateTimeline:
    def _tl(self, *kinds, rid=0):
        return [
            TraceEvent(tick=t, kind=k, request_id=rid)
            for t, k in enumerate(kinds)
        ]

    def test_accepts_well_formed(self):
        assert validate_timeline(self._tl("submit", "inject", "complete")) == "complete"
        assert validate_timeline(
            self._tl("submit", "steal", "inject", "preempt", "migrate",
                     "resume", "complete")
        ) == "complete"
        assert validate_timeline(self._tl("submit", "inject", "fail")) == "fail"
        # A fail may strand one eviction (failed restore).
        assert validate_timeline(
            self._tl("submit", "inject", "preempt", "fail")
        ) == "fail"

    def test_rejects_violations(self):
        cases = [
            ([], "empty timeline"),
            (self._tl("inject"), "not submit"),
            (self._tl("submit", "inject"), "no terminal"),
            (self._tl("submit", "complete"), "complete while queued"),
            (self._tl("submit", "inject", "resume", "complete"),
             "resume while running"),
            (self._tl("submit", "inject", "inject"), "inject while running"),
            (self._tl("submit", "migrate"), "migrate while queued"),
            (self._tl("submit", "inject", "complete", "complete"),
             "after terminal"),
            (self._tl("submit", "submit", "complete"), "duplicate submit"),
            (self._tl("submit", "inject", "preempt", "resume", "preempt",
                      "resume", "preempt", "complete"),
             "complete while evicted"),
        ]
        for events, fragment in cases:
            with pytest.raises(ValueError, match=fragment):
                validate_timeline(events)

    def test_rejects_time_travel_and_foreign_events(self):
        events = self._tl("submit", "inject", "complete")
        warped = [events[0], TraceEvent(tick=-1, kind="inject", request_id=0),
                  events[2]]
        with pytest.raises(ValueError, match="backwards"):
            validate_timeline(warped)
        foreign = [events[0],
                   TraceEvent(tick=1, kind="inject", request_id=9),
                   events[2]]
        with pytest.raises(ValueError, match="foreign"):
            validate_timeline(foreign)


# -- block profiles ------------------------------------------------------------


def _machine(counters, labels=None):
    """A fake (program, instrumentation) pair for BlockProfile.collect."""
    instr = Instrumentation(track_blocks=True)
    for index, (execs, active, live, slots) in counters.items():
        instr.by_block[index] = BlockCounter(
            executions=execs, active=active, live=live, slots=slots
        )
    labels = labels or {}
    n = (max(counters) + 1) if counters else 0
    program = SimpleNamespace(
        blocks=[SimpleNamespace(label=labels.get(i, f"b{i}")) for i in range(n)],
        block_sources=[f"src{i}" for i in range(n)],
    )
    return program, instr


class TestBlockProfile:
    def test_waste_and_ranking(self):
        profile = BlockProfile.collect([
            _machine({
                0: (10, 40, 80, 80),   # waste 40
                1: (5, 35, 40, 40),    # waste 5
                2: (8, 24, 64, 64),    # waste 40 — ties with block 0
            })
        ])
        assert len(profile) == 3
        assert [r.index for r in profile.stragglers()] == [0, 2, 1]  # tie→index
        assert profile.row(0).waste == 40
        assert profile.row(1).occupancy == pytest.approx(35 / 40)
        assert profile.total_slots == 184
        assert profile.total_waste == 85
        assert [r.index for r in profile.stragglers(limit=1)] == [0]

    def test_stragglers_tie_break_is_deterministic(self):
        # Three-way waste tie: ordering must fall back to block index,
        # regardless of collection order.
        profile = BlockProfile.collect([
            _machine({
                2: (4, 12, 24, 24),    # waste 12
                0: (6, 12, 24, 24),    # waste 12
                1: (5, 12, 24, 24),    # waste 12
            })
        ])
        assert [r.index for r in profile.stragglers()] == [0, 1, 2]
        assert [r.index for r in profile.stragglers()] == [
            r.index for r in profile.stragglers()
        ]

    def test_stragglers_min_slots_floor(self):
        # min_slots drops near-idle blocks entirely (no demotion): block 1
        # has the highest waste but only 4 slots of evidence.
        profile = BlockProfile.collect([
            _machine({
                0: (10, 40, 80, 80),   # waste 40, slots 80
                1: (1, 0, 4, 4),       # waste 4, slots 4 — thin evidence
                2: (8, 56, 64, 64),    # waste 8, slots 64
            })
        ])
        assert [r.index for r in profile.stragglers()] == [0, 2, 1]
        assert [r.index for r in profile.stragglers(min_slots=5)] == [0, 2]
        assert [r.index for r in profile.stragglers(min_slots=5, limit=1)] == [0]
        # A floor above every block's slots yields an empty ranking.
        assert profile.stragglers(min_slots=1000) == []
        with pytest.raises(ValueError, match="min_slots"):
            profile.stragglers(min_slots=-1)

    def test_merge_across_machines(self):
        a = _machine({0: (2, 4, 8, 8)})
        b = _machine({0: (3, 2, 12, 12), 1: (1, 1, 4, 4)})
        profile = BlockProfile.collect([a, b])
        row = profile.row(0)
        assert (row.executions, row.active, row.slots) == (5, 6, 20)
        assert row.waste == 14
        assert profile.row(1).executions == 1

    def test_labels_and_summary(self):
        profile = BlockProfile.collect(
            [_machine({0: (1, 1, 2, 2)}, labels={0: "fib.entry"})]
        )
        assert profile.row(0).label == "fib.entry"
        text = profile.summary()
        assert "fib.entry" in text and "waste=1" in text

    def test_empty(self):
        profile = BlockProfile.collect([_machine({})])
        assert len(profile) == 0
        assert profile.summary() == "no blocks profiled"
        assert profile.to_json()["blocks"] == []


# -- the Trace hub and resolve_trace -------------------------------------------


class TestResolveTrace:
    def test_off_forms(self):
        assert resolve_trace(None) is None
        assert resolve_trace(False) is None

    def test_on_forms(self):
        full = resolve_trace(True)
        assert full.tracer is not None and full.metrics is not None
        assert full.profile
        events = resolve_trace("events")
        assert events.tracer is not None
        assert events.metrics is None and not events.profile
        metrics = resolve_trace("metrics")
        assert metrics.tracer is None and metrics.metrics is not None
        profile = resolve_trace("profile")
        assert profile.profile and profile.tracer is None
        assert resolve_trace("full").profile

    def test_instance_passthrough(self):
        t = Trace(metrics=False)
        assert resolve_trace(t) is t

    def test_rejections(self):
        with pytest.raises(ValueError):
            resolve_trace("verbose")
        with pytest.raises(TypeError):
            resolve_trace(42)

    def test_export_requires_events(self, tmp_path):
        t = Trace(events=False)
        with pytest.raises(ValueError):
            t.export_chrome_trace(tmp_path / "x.json")


class TestEngineIntegration:
    def test_off_by_default(self):
        engine = fib.serve(num_lanes=2, max_stack_depth=64)
        handle = engine.submit(np.int64(8))
        engine.run_until_idle()
        assert engine.trace is None
        assert handle.trace() == []
        # Profiling counters never armed: the per-block scan stayed off.
        assert not engine.vm.instr.track_blocks
        assert engine.vm.instr.by_block == {}

    def test_traced_engine_end_to_end(self, tmp_path):
        engine = fib.serve(num_lanes=2, trace=True, max_stack_depth=64)
        handles = [engine.submit(np.int64(n)) for n in (6, 7, 8)]
        engine.run_until_idle()
        trace = engine.trace
        # Timelines reconstruct and validate per handle.
        for h in handles:
            assert validate_timeline(h.trace()) == "complete"
        assert trace.tracer.count("submit") == engine.telemetry.submitted
        assert trace.tracer.count("complete") == engine.telemetry.completed
        # Metrics sampled each tick (unprefixed series name for standalone
        # engines would be shard-prefixed; check any series exists).
        assert trace.metrics.names()
        # Block profile has fib's blocks and a deterministic ranking.
        profile = trace.block_profile()
        assert len(profile) > 0
        assert profile.total_slots > 0
        ranked = [r.index for r in profile.stragglers()]
        assert ranked == [r.index for r in profile.stragglers()]
        # Full report renders and exports.
        assert "events:" in trace.summary()
        doc = trace.to_json()
        assert doc["events"]["counts"]["submit"] == 3
        path = tmp_path / "engine_trace.json"
        trace.export_chrome_trace(path)
        assert validate_chrome_trace(path) > 0

    def test_profile_only_spec(self):
        engine = fib.serve(num_lanes=1, trace="profile", max_stack_depth=64)
        handle = engine.submit(np.int64(5))
        engine.run_until_idle()
        assert engine.vm.instr.track_blocks
        assert engine.trace.tracer is None
        assert handle.trace() == []  # events off → no timeline
        profile = engine.trace.block_profile()
        assert profile.total_slots > 0
        # Waste accounting is self-consistent: active ≤ slots per row.
        for row in profile.rows():
            assert 0 <= row.active <= row.slots
            assert row.waste == row.slots - row.active
