"""Tests for multi-engine sharded serving (repro.serve.cluster).

Two load-bearing properties:

* **routing invariance** — a request computes the same bits no matter which
  shard (or policy) runs it, so any trace through any policy must match the
  static ``run_pc`` batch and every other policy;
* **code-cache sharing** — one :class:`~repro.vm.executors.ExecutionPlan`
  is compiled once and bound to every shard: the fused executor's compile
  counter stays at 1 for a whole fleet.

The CI workflow runs this file as a fast gate before the full suite.
"""

import numpy as np
import pytest

from repro import autobatch
from repro.serve import (
    Cluster,
    ClusterTelemetry,
    LeastLoadedPolicy,
    PowerOfTwoPolicy,
    QueueFullError,
    ROUTING_POLICIES,
    RoundRobinPolicy,
    RoutingPolicy,
    ServeTelemetry,
    StepBudgetExceeded,
    resolve_policy,
)
from repro.vm.executors import ExecutionPlan

from .programs import ALL_EXAMPLES, fib, gcd

CLUSTER_CORPUS = ["fib", "gcd", "collatz_steps", "poly", "rng_walk",
                  "recursive_pair", "newton_sqrt"]

POLICIES = sorted(ROUTING_POLICIES)


@autobatch
def tri(n):
    """Hermetic to this module, so its plan cache starts cold here."""
    if n <= 0:
        return 0
    return n + tri(n - 1)


def rows_of(arrays):
    """Per-request input tuples from a batch of input arrays."""
    z = np.asarray(arrays[0]).shape[0]
    return [tuple(np.asarray(a)[b] for a in arrays) for b in range(z)]


class TestClusterCorrectness:
    @pytest.mark.parametrize("name", CLUSTER_CORPUS)
    @pytest.mark.parametrize("num_engines", [1, 3])
    def test_cluster_matches_static_run_pc(self, name, num_engines):
        fn, inputs = ALL_EXAMPLES[name]
        expected = fn.run_pc(*inputs, max_stack_depth=64)
        cluster = fn.serve_cluster(
            num_engines, num_lanes=2, max_stack_depth=64
        )
        results = cluster.map(rows_of(inputs))
        expected_tuple = expected if isinstance(expected, tuple) else (expected,)
        for b, result in enumerate(results):
            result_tuple = result if isinstance(result, tuple) else (result,)
            assert len(result_tuple) == len(expected_tuple)
            for out, (got, exp) in enumerate(zip(result_tuple, expected_tuple)):
                got = np.asarray(got)
                assert got.dtype == exp.dtype, (name, b, out)
                np.testing.assert_array_equal(
                    got, exp[b], err_msg=f"{name}[{b}].{out}"
                )

    def test_cluster_matches_single_engine_trace(self):
        ns = np.array([9, 2, 13, 5, 11, 3, 7, 14, 1, 8], dtype=np.int64)
        engine = fib.serve(num_lanes=2)
        single = engine.map(rows_of((ns,)))
        cluster = fib.serve_cluster(3, num_lanes=2)
        sharded = cluster.map(rows_of((ns,)))
        np.testing.assert_array_equal(np.stack(sharded), np.stack(single))

    def test_mid_flight_submission(self):
        cluster = gcd.serve_cluster(2, num_lanes=1, max_stack_depth=64)
        first = [cluster.submit(np.int64(a), np.int64(b))
                 for a, b in [(1071, 462), (17, 5)]]
        for _ in range(3):
            cluster.tick()
        second = [cluster.submit(np.int64(a), np.int64(b))
                  for a, b in [(100, 75), (3, 0), (270, 192)]]
        cluster.run_until_idle()
        a = np.array([1071, 17, 100, 3, 270], dtype=np.int64)
        b = np.array([462, 5, 75, 0, 192], dtype=np.int64)
        got = np.array([h.result() for h in first + second])
        np.testing.assert_array_equal(got, gcd.run_pc(a, b, max_stack_depth=64))

    def test_step_budget_fails_only_its_own_request(self):
        cluster = fib.serve_cluster(2, num_lanes=1)
        doomed = cluster.submit(np.int64(25), step_budget=5)
        survivors = [cluster.submit(np.int64(n)) for n in (9, 10, 11)]
        cluster.run_until_idle()
        assert isinstance(doomed.exception(), StepBudgetExceeded)
        got = np.array([h.result() for h in survivors])
        np.testing.assert_array_equal(
            got, fib.run_pc(np.array([9, 10, 11], dtype=np.int64))
        )
        assert cluster.telemetry.failed == 1
        assert cluster.telemetry.completed == 3

    def test_wrong_arity_rejected_before_routing(self):
        cluster = gcd.serve_cluster(2, num_lanes=1)
        with pytest.raises(ValueError, match="takes 2 inputs"):
            cluster.submit(np.int64(4))
        assert cluster.telemetry.submitted == 0

    def test_run_until_idle_max_ticks(self):
        cluster = fib.serve_cluster(2, num_lanes=1)
        cluster.submit(np.int64(8))
        ticks = cluster.run_until_idle()
        assert ticks > 0 and cluster.now == ticks
        cluster2 = fib.serve_cluster(2, num_lanes=1)
        cluster2.submit(np.int64(8))
        with pytest.raises(RuntimeError, match="still busy"):
            cluster2.run_until_idle(max_ticks=ticks - 1)

    def test_invalid_construction(self):
        with pytest.raises(ValueError, match="num_engines"):
            fib.serve_cluster(0, num_lanes=2)
        with pytest.raises(ValueError, match="not both"):
            Cluster(fib.execution_plan("eager"), 2, 2, executor="fused")

    def test_shared_instrumentation_rejected(self):
        """One counter object across N machines would overcount N-fold."""
        from repro.vm.instrumentation import Instrumentation

        with pytest.raises(ValueError, match="shared across shards"):
            fib.serve_cluster(2, num_lanes=2, instrumentation=Instrumentation())


class TestRoutingPolicies:
    def test_policy_differential_same_result_set(self):
        """The satellite contract: one trace, three policies, identical
        results request-for-request — only telemetry may differ."""
        ns = np.array([12, 3, 14, 5, 9, 1, 13, 7, 2, 11, 4, 8], dtype=np.int64)
        results = {}
        telem = {}
        for policy in POLICIES:
            cluster = fib.serve_cluster(
                3, num_lanes=2, policy=policy, max_queue_depth=4, seed=7
            )
            results[policy] = np.stack(cluster.map(rows_of((ns,))))
            telem[policy] = cluster.telemetry
        expected = fib.run_pc(ns)
        for policy in POLICIES:
            np.testing.assert_array_equal(results[policy], expected, err_msg=policy)
            assert telem[policy].completed == len(ns)
            assert telem[policy].submitted == len(ns)

    def test_round_robin_cycles_shards(self):
        cluster = fib.serve_cluster(3, num_lanes=1, policy="round_robin")
        handles = [cluster.submit(np.int64(5)) for _ in range(6)]
        assert [h.shard for h in handles] == [0, 1, 2, 0, 1, 2]

    def test_least_loaded_prefers_the_idle_shard(self):
        cluster = fib.serve_cluster(2, num_lanes=1, policy="least_loaded")
        a = cluster.submit(np.int64(12))
        b = cluster.submit(np.int64(12))
        c = cluster.submit(np.int64(12))
        assert (a.shard, b.shard) == (0, 1)
        assert c.shard == 0  # tie on load breaks to the lower index
        cluster.run_until_idle()

    def test_power_of_two_is_seed_deterministic(self):
        def shards(seed):
            cluster = fib.serve_cluster(
                4, num_lanes=1, policy="power_of_two", seed=seed
            )
            hs = [cluster.submit(np.int64(4)) for _ in range(10)]
            cluster.run_until_idle()
            return [h.shard for h in hs]

        assert shards(3) == shards(3)
        assert all(0 <= s < 4 for s in shards(0))

    def test_resolve_policy_forms(self):
        assert isinstance(resolve_policy(None), RoundRobinPolicy)
        assert isinstance(resolve_policy("least_loaded"), LeastLoadedPolicy)
        assert isinstance(resolve_policy(PowerOfTwoPolicy), PowerOfTwoPolicy)
        inst = LeastLoadedPolicy()
        assert resolve_policy(inst) is inst
        with pytest.raises(ValueError, match="unknown routing policy"):
            resolve_policy("sticky")
        with pytest.raises(TypeError):
            resolve_policy(42)
        assert RoutingPolicy.name == "abstract"


class TestSpilloverAdmission:
    def test_spills_to_next_shard_when_preferred_is_full(self):
        cluster = fib.serve_cluster(
            2, num_lanes=1, policy="round_robin", max_queue_depth=1
        )
        # Fill shard 0's queue out-of-band, then submit through the cluster:
        # round robin prefers shard 0 first, which must spill to shard 1.
        cluster.engines[0].submit(np.int64(6))
        h = cluster.submit(np.int64(7))
        assert h.shard == 1
        assert cluster.telemetry.spillovers == 1
        assert cluster.telemetry.rejected == 0
        cluster.run_until_idle()
        assert h.result() == 21

    def test_rejects_only_when_every_shard_is_full(self):
        cluster = fib.serve_cluster(2, num_lanes=1, max_queue_depth=1)
        cluster.submit(np.int64(5))
        cluster.submit(np.int64(5))
        with pytest.raises(QueueFullError, match="every shard"):
            cluster.submit(np.int64(5))
        assert cluster.telemetry.rejected == 1
        # Draining reopens admission.
        cluster.run_until_idle()
        h = cluster.submit(np.int64(5))
        cluster.run_until_idle()
        assert h.result() == 8

    def test_map_applies_backpressure_instead_of_overflowing(self):
        ns = np.arange(12, dtype=np.int64)
        cluster = fib.serve_cluster(2, num_lanes=1, max_queue_depth=1)
        results = cluster.map(rows_of((ns,)))
        np.testing.assert_array_equal(np.stack(results), fib.run_pc(ns))
        assert cluster.telemetry.rejected == 0

    def test_map_with_unadmittable_queue_raises(self):
        cluster = fib.serve_cluster(2, num_lanes=1, max_queue_depth=0)
        with pytest.raises(QueueFullError, match="idle"):
            cluster.map([(np.int64(3),)])


class TestCodeCacheSharing:
    def test_one_fused_compile_for_a_whole_fleet(self):
        cluster = tri.serve_cluster(4, num_lanes=2, executor="fused")
        assert cluster.plan is tri.execution_plan("fused")
        assert cluster.plan.executor.compile_count == 1
        assert cluster.plan.stats.bind_count >= 4
        # A second fleet over the same function reuses the same plan and
        # generated code: the counter must not move.
        again = tri.serve_cluster(2, num_lanes=3, executor="fused")
        assert again.plan is cluster.plan
        assert again.plan.executor.compile_count == 1
        ns = np.array([4, 0, 9, 2, 7, 5], dtype=np.int64)
        np.testing.assert_array_equal(
            np.stack(again.map(rows_of((ns,)))), tri.run_pc(ns)
        )

    def test_shards_share_generated_code_objects(self):
        cluster = tri.serve_cluster(3, num_lanes=2, executor="fused")
        fns = [e.vm._block_fns for e in cluster.engines]
        for blocks in fns[1:]:
            for f0, fk in zip(fns[0], blocks):
                assert f0.__code__ is fk.__code__
        assert all(e.plan is cluster.plan for e in cluster.engines)

    def test_explicit_plan_bound_to_many_machines(self):
        plan = ExecutionPlan.compile(gcd.stack_program(), executor="fused")
        assert plan.executor.compile_count == 0
        cluster = Cluster(plan, 3, num_lanes=1, max_stack_depth=64)
        assert plan.executor.compile_count == 1
        assert plan.stats.bind_count == 3
        pairs = [(48, 36), (7, 0), (12, 18), (270, 192), (9, 9)]
        results = cluster.map([(np.int64(a), np.int64(b)) for a, b in pairs])
        a = np.array([p[0] for p in pairs], dtype=np.int64)
        b = np.array([p[1] for p in pairs], dtype=np.int64)
        np.testing.assert_array_equal(
            np.stack(results), gcd.run_pc(a, b, max_stack_depth=64)
        )


class TestClusterTelemetry:
    def test_rollup_consistency(self):
        ns = np.array([6, 13, 2, 9, 14, 4, 11, 7], dtype=np.int64)
        cluster = fib.serve_cluster(2, num_lanes=2, policy="least_loaded")
        cluster.map(rows_of((ns,)))
        t = cluster.telemetry
        assert t.num_shards == 2
        assert t.submitted == t.injected == t.completed == len(ns)
        assert t.failed == 0 and t.rejected == 0
        assert t.ticks == cluster.now
        for shard in t.shards:
            assert shard.ticks == cluster.now  # lock-step clocks
        assert sum(t.completed_per_shard()) == t.completed
        assert 0.0 < t.fleet_utilization() <= 1.0
        assert t.aggregate_throughput() == t.completed / t.ticks
        assert t.mean_queue_wait() >= 0.0
        assert t.first_result_tick() is not None
        assert 0.0 <= t.completion_skew()
        assert 0.0 <= t.utilization_skew() <= 1.0
        summary = t.summary()
        assert "fleet_utilization" in summary and "per-shard completed" in summary

    def test_zero_tick_edge_cases(self):
        """A freshly built fleet reports zeros, not ZeroDivisionError."""
        cluster = fib.serve_cluster(3, num_lanes=2)
        t = cluster.telemetry
        assert t.ticks == 0
        assert t.aggregate_throughput() == 0.0
        assert t.fleet_utilization() == 0.0
        assert t.mean_queue_wait() == 0.0
        assert t.max_queue_wait() == 0
        assert t.completion_skew() == 0.0
        assert t.utilization_skew() == 0.0
        assert t.first_result_tick() is None
        assert isinstance(t.summary(), str)

    def test_empty_telemetry_object(self):
        t = ClusterTelemetry()
        assert t.num_shards == 0 and t.ticks == 0
        assert t.aggregate_throughput() == 0.0
        assert t.fleet_utilization() == 0.0
        assert t.mean_queue_wait() == 0.0
        assert t.completion_skew() == 0.0
        assert t.utilization_skew() == 0.0
        assert isinstance(t.summary(), str)

    def test_rejected_includes_shard_level_rejections(self):
        """Out-of-band submissions straight to a shard stay consistent
        with the summed fleet counters."""
        cluster = fib.serve_cluster(2, num_lanes=1, max_queue_depth=1)
        cluster.engines[0].submit(np.int64(5))
        with pytest.raises(QueueFullError):
            cluster.engines[0].submit(np.int64(5))
        assert cluster.telemetry.rejected == 1
        assert cluster.telemetry.cluster_rejected == 0
        assert cluster.telemetry.submitted == 1
        cluster.run_until_idle()

    def test_all_rejected_traffic(self):
        cluster = fib.serve_cluster(2, num_lanes=1, max_queue_depth=0)
        for _ in range(5):
            with pytest.raises(QueueFullError):
                cluster.submit(np.int64(3))
        t = cluster.telemetry
        assert t.rejected == 5 and t.submitted == 0 and t.completed == 0
        assert t.aggregate_throughput() == 0.0
        assert t.mean_queue_wait() == 0.0
        # Ticking an all-rejected fleet stays well-defined too.
        cluster.tick()
        assert t.aggregate_throughput() == 0.0
        assert t.fleet_utilization() == 0.0
