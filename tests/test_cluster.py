"""Tests for multi-engine sharded serving (repro.serve.cluster).

Three load-bearing properties:

* **routing invariance** — a request computes the same bits no matter which
  shard (or policy) runs it, so any trace through any policy must match the
  static ``run_pc`` batch and every other policy;
* **code-cache sharing** — one :class:`~repro.vm.executors.ExecutionPlan`
  is compiled once and bound to every shard: the fused executor's compile
  counter stays at 1 for a whole fleet, including shards added by
  autoscale grow events;
* **rebalancing safety** — work stealing and shard elasticity may move a
  request anywhere, but never lose or duplicate a handle, never demote its
  priority/arrival order, and never change its bits.

The CI workflow runs this file as a fast gate before the full suite.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import autobatch
from repro.serve import (
    AutoscalePolicy,
    Cluster,
    ClusterTelemetry,
    DeadlinePreemptPolicy,
    LeastLoadedPolicy,
    PowerOfTwoPolicy,
    PreemptPolicy,
    QueueFullError,
    RequestQueue,
    ROUTING_POLICIES,
    RoundRobinPolicy,
    RoutingPolicy,
    ServeTelemetry,
    StealPolicy,
    StepBudgetExceeded,
    resolve_autoscale,
    resolve_policy,
    resolve_steal_policy,
)
from repro.serve.queue import ResultHandle, ServeRequest
from repro.vm.executors import ExecutionPlan

from .programs import ALL_EXAMPLES, fib, gcd
from .test_serve import check_deadline_invariants, check_trace_invariants

CLUSTER_CORPUS = ["fib", "gcd", "collatz_steps", "poly", "rng_walk",
                  "recursive_pair", "newton_sqrt"]

POLICIES = sorted(ROUTING_POLICIES)


@autobatch
def tri(n):
    """Hermetic to this module, so its plan cache starts cold here."""
    if n <= 0:
        return 0
    return n + tri(n - 1)


def rows_of(arrays):
    """Per-request input tuples from a batch of input arrays."""
    z = np.asarray(arrays[0]).shape[0]
    return [tuple(np.asarray(a)[b] for a in arrays) for b in range(z)]


class TestClusterCorrectness:
    @pytest.mark.parametrize("name", CLUSTER_CORPUS)
    @pytest.mark.parametrize("num_engines", [1, 3])
    def test_cluster_matches_static_run_pc(self, name, num_engines):
        fn, inputs = ALL_EXAMPLES[name]
        expected = fn.run_pc(*inputs, max_stack_depth=64)
        cluster = fn.serve_cluster(
            num_engines, num_lanes=2, max_stack_depth=64
        )
        results = cluster.map(rows_of(inputs))
        expected_tuple = expected if isinstance(expected, tuple) else (expected,)
        for b, result in enumerate(results):
            result_tuple = result if isinstance(result, tuple) else (result,)
            assert len(result_tuple) == len(expected_tuple)
            for out, (got, exp) in enumerate(zip(result_tuple, expected_tuple)):
                got = np.asarray(got)
                assert got.dtype == exp.dtype, (name, b, out)
                np.testing.assert_array_equal(
                    got, exp[b], err_msg=f"{name}[{b}].{out}"
                )

    def test_cluster_matches_single_engine_trace(self):
        ns = np.array([9, 2, 13, 5, 11, 3, 7, 14, 1, 8], dtype=np.int64)
        engine = fib.serve(num_lanes=2)
        single = engine.map(rows_of((ns,)))
        cluster = fib.serve_cluster(3, num_lanes=2)
        sharded = cluster.map(rows_of((ns,)))
        np.testing.assert_array_equal(np.stack(sharded), np.stack(single))

    def test_mid_flight_submission(self):
        cluster = gcd.serve_cluster(2, num_lanes=1, max_stack_depth=64)
        first = [cluster.submit(np.int64(a), np.int64(b))
                 for a, b in [(1071, 462), (17, 5)]]
        for _ in range(3):
            cluster.tick()
        second = [cluster.submit(np.int64(a), np.int64(b))
                  for a, b in [(100, 75), (3, 0), (270, 192)]]
        cluster.run_until_idle()
        a = np.array([1071, 17, 100, 3, 270], dtype=np.int64)
        b = np.array([462, 5, 75, 0, 192], dtype=np.int64)
        got = np.array([h.result() for h in first + second])
        np.testing.assert_array_equal(got, gcd.run_pc(a, b, max_stack_depth=64))

    def test_step_budget_fails_only_its_own_request(self):
        cluster = fib.serve_cluster(2, num_lanes=1)
        doomed = cluster.submit(np.int64(25), step_budget=5)
        survivors = [cluster.submit(np.int64(n)) for n in (9, 10, 11)]
        cluster.run_until_idle()
        assert isinstance(doomed.exception(), StepBudgetExceeded)
        got = np.array([h.result() for h in survivors])
        np.testing.assert_array_equal(
            got, fib.run_pc(np.array([9, 10, 11], dtype=np.int64))
        )
        assert cluster.telemetry.failed == 1
        assert cluster.telemetry.completed == 3

    def test_wrong_arity_rejected_before_routing(self):
        cluster = gcd.serve_cluster(2, num_lanes=1)
        with pytest.raises(ValueError, match="takes 2 inputs"):
            cluster.submit(np.int64(4))
        assert cluster.telemetry.submitted == 0

    def test_run_until_idle_max_ticks(self):
        cluster = fib.serve_cluster(2, num_lanes=1)
        cluster.submit(np.int64(8))
        ticks = cluster.run_until_idle()
        assert ticks > 0 and cluster.now == ticks
        cluster2 = fib.serve_cluster(2, num_lanes=1)
        cluster2.submit(np.int64(8))
        with pytest.raises(RuntimeError, match="still busy"):
            cluster2.run_until_idle(max_ticks=ticks - 1)

    def test_invalid_construction(self):
        with pytest.raises(ValueError, match="num_engines"):
            fib.serve_cluster(0, num_lanes=2)
        with pytest.raises(ValueError, match="not both"):
            Cluster(fib.execution_plan("eager"), 2, 2, executor="fused")

    def test_shared_instrumentation_rejected(self):
        """One counter object across N machines would overcount N-fold."""
        from repro.vm.instrumentation import Instrumentation

        with pytest.raises(ValueError, match="shared across shards"):
            fib.serve_cluster(2, num_lanes=2, instrumentation=Instrumentation())


class TestRoutingPolicies:
    def test_policy_differential_same_result_set(self):
        """The satellite contract: one trace, three policies, identical
        results request-for-request — only telemetry may differ."""
        ns = np.array([12, 3, 14, 5, 9, 1, 13, 7, 2, 11, 4, 8], dtype=np.int64)
        results = {}
        telem = {}
        for policy in POLICIES:
            cluster = fib.serve_cluster(
                3, num_lanes=2, policy=policy, max_queue_depth=4, seed=7
            )
            results[policy] = np.stack(cluster.map(rows_of((ns,))))
            telem[policy] = cluster.telemetry
        expected = fib.run_pc(ns)
        for policy in POLICIES:
            np.testing.assert_array_equal(results[policy], expected, err_msg=policy)
            assert telem[policy].completed == len(ns)
            assert telem[policy].submitted == len(ns)

    def test_round_robin_cycles_shards(self):
        cluster = fib.serve_cluster(3, num_lanes=1, policy="round_robin")
        handles = [cluster.submit(np.int64(5)) for _ in range(6)]
        assert [h.shard for h in handles] == [0, 1, 2, 0, 1, 2]

    def test_least_loaded_prefers_the_idle_shard(self):
        cluster = fib.serve_cluster(2, num_lanes=1, policy="least_loaded")
        a = cluster.submit(np.int64(12))
        b = cluster.submit(np.int64(12))
        c = cluster.submit(np.int64(12))
        assert (a.shard, b.shard) == (0, 1)
        assert c.shard == 0  # tie on load breaks to the lower index
        cluster.run_until_idle()

    def test_power_of_two_is_seed_deterministic(self):
        def shards(seed):
            cluster = fib.serve_cluster(
                4, num_lanes=1, policy="power_of_two", seed=seed
            )
            hs = [cluster.submit(np.int64(4)) for _ in range(10)]
            cluster.run_until_idle()
            return [h.shard for h in hs]

        assert shards(3) == shards(3)
        assert all(0 <= s < 4 for s in shards(0))

    def test_resolve_policy_forms(self):
        assert isinstance(resolve_policy(None), RoundRobinPolicy)
        assert isinstance(resolve_policy("least_loaded"), LeastLoadedPolicy)
        assert isinstance(resolve_policy(PowerOfTwoPolicy), PowerOfTwoPolicy)
        inst = LeastLoadedPolicy()
        assert resolve_policy(inst) is inst
        with pytest.raises(ValueError, match="unknown routing policy"):
            resolve_policy("sticky")
        with pytest.raises(TypeError):
            resolve_policy(42)
        assert RoutingPolicy.name == "abstract"


class TestSpilloverAdmission:
    def test_spills_to_next_shard_when_preferred_is_full(self):
        cluster = fib.serve_cluster(
            2, num_lanes=1, policy="round_robin", max_queue_depth=1
        )
        # Fill shard 0's queue out-of-band, then submit through the cluster:
        # round robin prefers shard 0 first, which must spill to shard 1.
        cluster.engines[0].submit(np.int64(6))
        h = cluster.submit(np.int64(7))
        assert h.shard == 1
        assert cluster.telemetry.spillovers == 1
        assert cluster.telemetry.rejected == 0
        cluster.run_until_idle()
        assert h.result() == 21

    def test_rejects_only_when_every_shard_is_full(self):
        cluster = fib.serve_cluster(2, num_lanes=1, max_queue_depth=1)
        cluster.submit(np.int64(5))
        cluster.submit(np.int64(5))
        with pytest.raises(QueueFullError, match="every shard"):
            cluster.submit(np.int64(5))
        assert cluster.telemetry.rejected == 1
        # Draining reopens admission.
        cluster.run_until_idle()
        h = cluster.submit(np.int64(5))
        cluster.run_until_idle()
        assert h.result() == 8

    def test_map_applies_backpressure_instead_of_overflowing(self):
        ns = np.arange(12, dtype=np.int64)
        cluster = fib.serve_cluster(2, num_lanes=1, max_queue_depth=1)
        results = cluster.map(rows_of((ns,)))
        np.testing.assert_array_equal(np.stack(results), fib.run_pc(ns))
        assert cluster.telemetry.rejected == 0

    def test_map_with_unadmittable_queue_raises(self):
        cluster = fib.serve_cluster(2, num_lanes=1, max_queue_depth=0)
        with pytest.raises(QueueFullError, match="idle"):
            cluster.map([(np.int64(3),)])


class TestCodeCacheSharing:
    def test_one_fused_compile_for_a_whole_fleet(self):
        cluster = tri.serve_cluster(4, num_lanes=2, executor="fused")
        assert cluster.plan is tri.execution_plan("fused")
        assert cluster.plan.executor.compile_count == 1
        assert cluster.plan.stats.bind_count >= 4
        # A second fleet over the same function reuses the same plan and
        # generated code: the counter must not move.
        again = tri.serve_cluster(2, num_lanes=3, executor="fused")
        assert again.plan is cluster.plan
        assert again.plan.executor.compile_count == 1
        ns = np.array([4, 0, 9, 2, 7, 5], dtype=np.int64)
        np.testing.assert_array_equal(
            np.stack(again.map(rows_of((ns,)))), tri.run_pc(ns)
        )

    def test_shards_share_generated_code_objects(self):
        cluster = tri.serve_cluster(3, num_lanes=2, executor="fused")
        fns = [e.vm._block_fns for e in cluster.engines]
        for blocks in fns[1:]:
            for f0, fk in zip(fns[0], blocks):
                assert f0.__code__ is fk.__code__
        assert all(e.plan is cluster.plan for e in cluster.engines)

    def test_explicit_plan_bound_to_many_machines(self):
        plan = ExecutionPlan.compile(gcd.stack_program(), executor="fused")
        assert plan.executor.compile_count == 0
        cluster = Cluster(plan, 3, num_lanes=1, max_stack_depth=64)
        assert plan.executor.compile_count == 1
        assert plan.stats.bind_count == 3
        pairs = [(48, 36), (7, 0), (12, 18), (270, 192), (9, 9)]
        results = cluster.map([(np.int64(a), np.int64(b)) for a, b in pairs])
        a = np.array([p[0] for p in pairs], dtype=np.int64)
        b = np.array([p[1] for p in pairs], dtype=np.int64)
        np.testing.assert_array_equal(
            np.stack(results), gcd.run_pc(a, b, max_stack_depth=64)
        )


class TestClusterTelemetry:
    def test_rollup_consistency(self):
        ns = np.array([6, 13, 2, 9, 14, 4, 11, 7], dtype=np.int64)
        cluster = fib.serve_cluster(2, num_lanes=2, policy="least_loaded")
        cluster.map(rows_of((ns,)))
        t = cluster.telemetry
        assert t.num_shards == 2
        assert t.submitted == t.injected == t.completed == len(ns)
        assert t.failed == 0 and t.rejected == 0
        assert t.ticks == cluster.now
        for shard in t.shards:
            assert shard.ticks == cluster.now  # lock-step clocks
        assert sum(t.completed_per_shard()) == t.completed
        assert 0.0 < t.fleet_utilization() <= 1.0
        assert t.aggregate_throughput() == t.completed / t.ticks
        assert t.mean_queue_wait() >= 0.0
        assert t.first_result_tick() is not None
        assert 0.0 <= t.completion_skew()
        assert 0.0 <= t.utilization_skew() <= 1.0
        summary = t.summary()
        assert "fleet_utilization" in summary and "per-shard completed" in summary

    def test_zero_tick_edge_cases(self):
        """A freshly built fleet reports zeros, not ZeroDivisionError."""
        cluster = fib.serve_cluster(3, num_lanes=2)
        t = cluster.telemetry
        assert t.ticks == 0
        assert t.aggregate_throughput() == 0.0
        assert t.fleet_utilization() == 0.0
        assert t.mean_queue_wait() == 0.0
        assert t.max_queue_wait() == 0
        assert t.completion_skew() == 0.0
        assert t.utilization_skew() == 0.0
        assert t.first_result_tick() is None
        assert isinstance(t.summary(), str)

    def test_empty_telemetry_object(self):
        t = ClusterTelemetry()
        assert t.num_shards == 0 and t.ticks == 0
        assert t.aggregate_throughput() == 0.0
        assert t.fleet_utilization() == 0.0
        assert t.mean_queue_wait() == 0.0
        assert t.completion_skew() == 0.0
        assert t.utilization_skew() == 0.0
        assert isinstance(t.summary(), str)

    def test_rejected_includes_shard_level_rejections(self):
        """Out-of-band submissions straight to a shard stay consistent
        with the summed fleet counters."""
        cluster = fib.serve_cluster(2, num_lanes=1, max_queue_depth=1)
        cluster.engines[0].submit(np.int64(5))
        with pytest.raises(QueueFullError):
            cluster.engines[0].submit(np.int64(5))
        assert cluster.telemetry.rejected == 1
        assert cluster.telemetry.cluster_rejected == 0
        assert cluster.telemetry.submitted == 1
        cluster.run_until_idle()

    def test_all_rejected_traffic(self):
        cluster = fib.serve_cluster(2, num_lanes=1, max_queue_depth=0)
        for _ in range(5):
            with pytest.raises(QueueFullError):
                cluster.submit(np.int64(3))
        t = cluster.telemetry
        assert t.rejected == 5 and t.submitted == 0 and t.completed == 0
        assert t.aggregate_throughput() == 0.0
        assert t.mean_queue_wait() == 0.0
        # Ticking an all-rejected fleet stays well-defined too.
        cluster.tick()
        assert t.aggregate_throughput() == 0.0
        assert t.fleet_utilization() == 0.0


class PinnedPolicy(RoutingPolicy):
    """Adversarial router: every request prefers shard 0 (spill in index
    order), so with unbounded queues all traffic backlogs one shard."""

    name = "pinned"

    def preference(self, cluster):
        return list(range(len(cluster.engines)))


#: Unbatched reference for every fib argument the schedules draw from.
FIB_REF = {
    int(n): int(v)
    for n, v in zip(range(15), fib.run_pc(np.arange(15, dtype=np.int64)))
}


class TestRejectionLeavesPolicyStateUntouched:
    """The PR-4 bugfix: a fully-rejected ``Cluster.submit`` must not
    advance the routing policy's cursor or RNG, so a replayed trace with
    rejections routes identically to one without."""

    def test_round_robin_cursor_unmoved_by_rejection(self):
        cluster = fib.serve_cluster(
            3, num_lanes=1, policy="round_robin", max_queue_depth=0
        )
        cursor = cluster.policy._next
        for _ in range(4):
            with pytest.raises(QueueFullError):
                cluster.submit(np.int64(5))
        assert cluster.policy._next == cursor
        assert cluster.telemetry.cluster_rejected == 4

    def test_power_of_two_rng_unmoved_by_rejection(self):
        cluster = fib.serve_cluster(
            3, num_lanes=1, policy="power_of_two", seed=7, max_queue_depth=0
        )
        before = cluster.policy._rng.get_state()
        for _ in range(4):
            with pytest.raises(QueueFullError):
                cluster.submit(np.int64(5))
        after = cluster.policy._rng.get_state()
        assert before[0] == after[0]
        np.testing.assert_array_equal(before[1], after[1])
        assert before[2:] == after[2:]

    def test_partial_preference_order_is_reported_as_policy_bug(self):
        """A policy that ranks only some shards breaks its contract; when
        an unranked shard had the only queue space, the error must name
        the policy, not masquerade as queue-full or an internal assert."""

        class HalfBlind(RoutingPolicy):
            name = "half_blind"

            def preference(self, cluster):
                return [0]

        cluster = fib.serve_cluster(
            2, num_lanes=1, policy=HalfBlind(), max_queue_depth=1
        )
        cluster.engines[0].submit(np.int64(5))  # shard 0 full, shard 1 open
        with pytest.raises(RuntimeError, match="must rank every shard"):
            cluster.submit(np.int64(5))
        cluster.run_until_idle()

    @pytest.mark.parametrize("policy", ["round_robin", "power_of_two"])
    def test_replayed_trace_with_rejections_routes_identically(self, policy):
        """Replay determinism: the same accepted submissions land on the
        same shards whether or not rejected submissions happened between
        them."""

        def route_trace(inject_rejections):
            cluster = fib.serve_cluster(
                3, num_lanes=1, policy=policy, seed=9, max_queue_depth=1
            )
            # Fill every shard's queue, optionally hammer the full fleet
            # with submissions that must all be rejected, then drain and
            # record where the next accepted submissions route.
            for _ in range(3):
                cluster.submit(np.int64(6))
            if inject_rejections:
                for _ in range(5):
                    with pytest.raises(QueueFullError):
                        cluster.submit(np.int64(6))
            cluster.run_until_idle()
            shards = []
            for _ in range(6):
                shards.append(cluster.submit(np.int64(4)).shard)
                cluster.run_until_idle()
            return shards

        assert route_trace(True) == route_trace(False)


class TestWorkStealing:
    def test_idle_shards_steal_from_most_backlogged(self):
        cluster = fib.serve_cluster(
            3, num_lanes=1, policy=PinnedPolicy(), steal=True
        )
        handles = [cluster.submit(np.int64(n)) for n in (8, 9, 10, 11, 12)]
        assert all(h.shard == 0 for h in handles)
        cluster.tick()  # steal runs before the shard ticks
        assert cluster.telemetry.steals >= 2
        assert {h.shard for h in handles} == {0, 1, 2}
        cluster.run_until_idle()
        got = [int(h.result()) for h in handles]
        assert got == [FIB_REF[n] for n in (8, 9, 10, 11, 12)]

    def test_steal_matches_static_batch_bit_identically(self):
        ns = np.array([12, 3, 14, 5, 9, 1, 13, 7, 2, 11, 4, 8], dtype=np.int64)
        cluster = fib.serve_cluster(
            4, num_lanes=2, policy=PinnedPolicy(), steal=True, executor="fused"
        )
        results = cluster.map([(n,) for n in ns])
        np.testing.assert_array_equal(np.stack(results), fib.run_pc(ns))
        assert cluster.telemetry.steals > 0

    def test_steal_beats_no_steal_on_a_pinned_trace(self):
        ns = np.arange(15, dtype=np.int64)

        def makespan(steal):
            cluster = fib.serve_cluster(
                4, num_lanes=2, policy=PinnedPolicy(), steal=steal
            )
            handles = [cluster.submit(np.int64(n)) for n in ns]
            cluster.run_until_idle()
            assert [int(h.result()) for h in handles] == [FIB_REF[int(n)] for n in ns]
            return cluster.now

        assert makespan(True) * 1.5 <= makespan(None)

    def test_stolen_request_keeps_step_budget_and_priority(self):
        cluster = fib.serve_cluster(
            2, num_lanes=1, policy=PinnedPolicy(), steal=True
        )
        filler = cluster.submit(np.int64(12))
        doomed = cluster.submit(np.int64(25), priority=3, step_budget=4)
        assert doomed.shard == 0
        cluster.run_until_idle()
        # The doomed request was stolen onto shard 1 with its metadata
        # intact: the budget still aborts it, the priority survives.
        assert doomed.shard == 1
        assert doomed.request.priority == 3
        assert doomed.request.step_budget == 4
        assert isinstance(doomed.exception(), StepBudgetExceeded)
        assert int(filler.result()) == FIB_REF[12]

    def test_threshold_gates_stealing(self):
        cluster = fib.serve_cluster(
            2,
            num_lanes=1,
            policy=PinnedPolicy(),
            steal=StealPolicy(threshold=50),
        )
        handles = [cluster.submit(np.int64(5)) for _ in range(6)]
        cluster.run_until_idle()
        assert cluster.telemetry.steals == 0
        assert all(h.shard == 0 for h in handles)

    def test_batch_size_caps_one_tick_haul(self):
        cluster = fib.serve_cluster(
            3,
            num_lanes=2,
            policy=PinnedPolicy(),
            steal=StealPolicy(batch_size=1),
        )
        for _ in range(10):
            cluster.submit(np.int64(9))
        cluster.tick()
        # Two idle thieves, one request each despite two free lanes apiece.
        assert cluster.telemetry.steals == 2
        cluster.run_until_idle()

    def test_resolve_steal_policy_forms(self):
        assert resolve_steal_policy(None) is None
        assert resolve_steal_policy(False) is None
        assert isinstance(resolve_steal_policy(True), StealPolicy)
        assert isinstance(resolve_steal_policy("threshold"), StealPolicy)
        inst = StealPolicy(threshold=2, batch_size=3)
        assert resolve_steal_policy(inst) is inst
        assert isinstance(resolve_steal_policy(StealPolicy), StealPolicy)
        with pytest.raises(ValueError, match="unknown steal policy"):
            resolve_steal_policy("snatch")
        with pytest.raises(TypeError):
            resolve_steal_policy(42)
        with pytest.raises(ValueError, match="threshold"):
            StealPolicy(threshold=0)
        with pytest.raises(ValueError, match="batch_size"):
            StealPolicy(batch_size=0)

    def test_single_shard_never_steals(self):
        cluster = fib.serve_cluster(1, num_lanes=2, steal=True)
        cluster.map([(np.int64(n),) for n in range(6)])
        assert cluster.telemetry.steals == 0


class TestPriorityAcrossShards:
    """A high-priority request spilled or stolen onto another shard must
    not starve behind that shard's low-priority natives."""

    def test_spilled_high_priority_beats_queued_low_priority_natives(self):
        cluster = fib.serve_cluster(
            2, num_lanes=1, policy="round_robin", max_queue_depth=3
        )
        # Shard 0: busy lane + full queue.  Shard 1: busy lane + two
        # queued low-priority natives, one queue slot left.
        for _ in range(3):
            cluster.engines[0].submit(np.int64(10))
        cluster.engines[1].submit(np.int64(10))
        cluster.tick()  # seat each shard's first request in its lane
        cluster.engines[0].submit(np.int64(10))
        natives = [
            cluster.engines[1].submit(np.int64(10), priority=0)
            for _ in range(2)
        ]
        vip = cluster.submit(np.int64(10), priority=5)
        assert vip.shard == 1  # spilled: round robin preferred full shard 0
        assert cluster.telemetry.spillovers == 1
        cluster.run_until_idle()
        assert all(vip.finish_tick < n.finish_tick for n in natives)

    def test_stolen_high_priority_beats_victims_low_priority_backlog(self):
        cluster = fib.serve_cluster(
            2, num_lanes=1, policy=PinnedPolicy(), steal=True
        )
        low = [cluster.submit(np.int64(10), priority=0) for _ in range(4)]
        vip = cluster.submit(np.int64(10), priority=5)
        cluster.run_until_idle()
        # The vip was first in shard 0's queue (priority order), so the
        # steal moved exactly it onto the idle shard's vacant lane.
        assert vip.shard == 1
        assert all(vip.finish_tick < h.finish_tick for h in low[1:])
        assert {int(h.result()) for h in low + [vip]} == {FIB_REF[10]}

    def test_requeue_preserves_priority_and_arrival_order(self):
        """Queue-level contract: migrated handles keep their original
        ``(-priority, arrival)`` position among the destination's natives."""

        def handle(request_id, priority, submit_tick=0):
            return ResultHandle(
                ServeRequest(
                    request_id=request_id,
                    inputs=(np.int64(1),),
                    priority=priority,
                    submit_tick=submit_tick,
                )
            )

        source, dest = RequestQueue(), RequestQueue()
        migrant_vip = handle(100, priority=5)
        migrant_old = handle(101, priority=0, submit_tick=0)
        source.push(migrant_vip)
        source.push(migrant_old)
        native_mid = handle(0, priority=1, submit_tick=1)
        native_late = handle(1, priority=0, submit_tick=2)
        dest.push(native_mid)
        dest.push(native_late)
        for h in (migrant_vip, migrant_old):
            dest.requeue(h)
        order = [dest.pop().request_id for _ in range(4)]
        # Priority first (5, then 1, then the 0s); within priority 0 the
        # migrant's earlier arrival stamp (tick 0) beats the tick-2 native.
        assert order == [100, 0, 101, 1]


class TestPreemptedLaneMigration:
    """PR 4 left 'preempted-lane migration' open; these tests close it: a
    preempted request's snapshot rides work stealing (or a shard drain) to
    another machine and resumes there bit-identically."""

    def _saturated_cluster(self, **options):
        """Two 1-lane shards: shard 0 runs a long straggler, shard 1 a
        short native; a pinned high-priority arrival then preempts the
        straggler, whose snapshot must later migrate to shard 1."""
        cluster = fib.serve_cluster(
            2, num_lanes=1, policy=PinnedPolicy(), preempt=True, **options
        )
        strag = cluster.submit(np.int64(16))
        short = cluster.engines[1].submit(np.int64(5))
        cluster.tick()  # both seated
        vip = cluster.submit(np.int64(14), priority=5)
        return cluster, strag, short, vip

    def test_steal_migrates_preempted_snapshot_across_shards(self):
        cluster, strag, short, vip = self._saturated_cluster(steal=True)
        cluster.run_until_idle()
        t = cluster.telemetry
        assert strag.preemptions == 1
        assert t.preempted_migrations == 1
        # The straggler resumed on the *other* shard's machine — and still
        # produced the exact bits of an undisturbed run.
        assert strag.shard == cluster.engines[1].shard_id
        assert strag.resume_tick is not None and strag.snapshot is None
        np.testing.assert_array_equal(
            np.array([int(strag.result()), int(short.result()),
                      int(vip.result())]),
            fib.run_pc(np.array([16, 5, 14], dtype=np.int64)),
        )
        # Fleet counters balance even though eviction and resume happened
        # on different shards.
        assert t.preemptions == t.resumes == 1
        shard_preempts = [s.preemptions for s in t.shards]
        shard_resumes = [s.resumes for s in t.shards]
        assert shard_preempts == [1, 0] and shard_resumes == [0, 1]

    def test_include_preempted_false_keeps_snapshot_home(self):
        cluster, strag, short, vip = self._saturated_cluster(
            steal=StealPolicy(include_preempted=False)
        )
        cluster.run_until_idle()
        t = cluster.telemetry
        assert strag.preemptions >= 1
        assert t.preempted_migrations == 0
        # The straggler could only resume on its home shard, after the vip.
        assert strag.shard == cluster.engines[0].shard_id
        assert strag.resume_tick >= vip.finish_tick
        np.testing.assert_array_equal(
            np.array([int(strag.result()), int(short.result()),
                      int(vip.result())]),
            fib.run_pc(np.array([16, 5, 14], dtype=np.int64)),
        )

    def test_migrated_resume_matches_home_resume_bitwise(self):
        """The same preempt-heavy trace with and without migration must
        produce identical request results — where a snapshot resumes can
        never change what it computes."""
        results = {}
        for label, steal in (
            ("migrated", True),
            ("home", StealPolicy(include_preempted=False)),
        ):
            cluster, strag, short, vip = self._saturated_cluster(steal=steal)
            cluster.run_until_idle()
            results[label] = [
                int(strag.result()), int(short.result()), int(vip.result())
            ]
        assert results["migrated"] == results["home"]

    def test_drain_retirement_migrates_preempted_snapshot(self):
        """A shard retired by autoscale exports its queue — including a
        preempted request's snapshot — and the survivor resumes it."""
        cluster = fib.serve_cluster(
            2, num_lanes=1, policy=PinnedPolicy(), preempt=True
        )
        strag = cluster.submit(np.int64(14))
        cluster.tick()
        vip = cluster.submit(np.int64(12), priority=5)
        cluster.tick()  # straggler evicted, waiting with its snapshot
        assert strag.state == "preempted" and strag.snapshot is not None
        # Manually retire shard 0 (the autoscale drain path).
        victim = cluster.engines[0]
        cluster.engines.remove(victim)
        cluster.draining.append(victim)
        orphans = victim.begin_drain()
        assert orphans == [strag]
        cluster.engines[0].requeue(orphans)
        strag.shard = cluster.engines[0].shard_id
        cluster.run_until_idle()
        assert strag.state == "done" and strag.preemptions == 1
        np.testing.assert_array_equal(
            np.array([int(strag.result()), int(vip.result())]),
            fib.run_pc(np.array([14, 12], dtype=np.int64)),
        )

    def test_failed_restore_fails_only_its_handle(self):
        """A snapshot migrated onto a machine too shallow for its frames
        must fail that handle — and vacate the lane — not leak a lane or
        escape the tick loop."""
        from repro.vm.stack import StackOverflowError

        deep = fib.serve(num_lanes=1, preempt=True, max_stack_depth=64)
        strag = deep.submit(np.int64(14))
        deep.tick()
        while deep.vm.addr_stack.sp[0] < 5:
            deep.tick()  # recurse well past the shallow machine's depth
        deep.submit(np.int64(3), priority=5)
        while strag.state != "preempted":
            deep.tick()
        orphans = deep.export_queue()
        assert strag in orphans and strag.snapshot is not None
        assert strag.snapshot.addr_frames.shape[0] > 3

        shallow = fib.serve(num_lanes=1, max_stack_depth=2)
        shallow.requeue(orphans)
        survivor = shallow.submit(np.int64(1))  # fits the shallow stack
        shallow.run_until_idle()
        assert strag.state == "failed"
        assert isinstance(strag.exception(), StackOverflowError)
        assert strag.snapshot is None
        # The engine kept serving: no lane leaked, the native completed.
        assert int(survivor.result()) == FIB_REF[1]
        assert shallow.pool.busy_count() == 0
        assert shallow.telemetry.failed == 1

    def test_snapshot_only_backlog_is_not_a_steal_victim(self):
        """With include_preempted=False, a queue holding nothing but
        preempted snapshots must not be nominated for steals that would
        churn it and move nothing."""
        cluster, strag, short, vip = self._saturated_cluster(
            steal=StealPolicy(include_preempted=False)
        )
        cluster.tick()  # the straggler is evicted: shard 0's queue is one snapshot
        assert strag.state == "preempted"
        assert cluster.engines[0].queue.snapshot_count() == 1
        # Let shard 1 go idle next to the snapshot-only backlog: no steal
        # may ever fire.
        cluster.run_until_idle()
        assert cluster.telemetry.steals == 0
        assert cluster.telemetry.steal_ticks == 0
        np.testing.assert_array_equal(
            np.array([int(strag.result()), int(short.result()),
                      int(vip.result())]),
            fib.run_pc(np.array([16, 5, 14], dtype=np.int64)),
        )

    def test_per_shard_policy_instances_are_private(self):
        """Each shard gets its own copy of the preempt policy, so a
        stateful custom policy cannot leak decisions across shards."""
        shared = PreemptPolicy(min_age=3)
        cluster = fib.serve_cluster(3, num_lanes=1, preempt=shared)
        policies = [e.preempt for e in cluster.engines]
        assert all(p is not shared for p in policies)
        assert len({id(p) for p in policies}) == 3
        assert all(p.min_age == 3 for p in policies)

    def test_cluster_preempt_matches_static_batch(self):
        ns = np.array([14, 3, 13, 5, 9, 1, 12, 7, 2, 11], dtype=np.int64)
        prios = [0, 5, 0, 5, 2, 6, 1, 4, 6, 0]
        cluster = fib.serve_cluster(
            2, num_lanes=2, policy=PinnedPolicy(), steal=True, preempt=True,
            executor="fused",
        )
        handles = []
        for n, p in zip(ns, prios):
            handles.append(cluster.submit(np.int64(n), priority=p))
            cluster.tick()
        cluster.run_until_idle()
        got = np.array([int(h.result()) for h in handles])
        np.testing.assert_array_equal(got, fib.run_pc(ns))
        t = cluster.telemetry
        assert t.preemptions == t.resumes
        assert t.preemptions > 0


class TestAutoscale:
    def test_grows_under_pressure_without_recompiling(self):
        cluster = tri.serve_cluster(
            1,
            num_lanes=2,
            executor="fused",
            steal=True,
            autoscale=AutoscalePolicy(max_engines=4, grow_patience=1),
        )
        ns = np.array([9, 2, 13, 5, 11, 3, 7, 14, 1, 8, 6, 12], dtype=np.int64)
        handles = [cluster.submit(np.int64(n)) for n in ns]
        cluster.run_until_idle()
        t = cluster.telemetry
        assert t.grow_events >= 1
        # The acceptance criterion: one fused compile across grow events
        # (each grown shard binds the shared plan instead of recompiling).
        assert cluster.plan.executor.compile_count == 1
        assert cluster.plan.stats.bind_count >= 1 + t.grow_events
        np.testing.assert_array_equal(
            np.array([h.result() for h in handles]), tri.run_pc(ns)
        )
        assert t.completed == len(ns) and t.failed == 0

    def test_shrinks_back_when_load_subsides(self):
        cluster = fib.serve_cluster(
            1,
            num_lanes=2,
            steal=True,
            autoscale=AutoscalePolicy(
                max_engines=4, grow_patience=1, shrink_patience=2
            ),
        )
        cluster.map([(np.int64(n),) for n in range(14)])
        assert cluster.telemetry.grow_events >= 1
        for _ in range(20):  # idle ticks let the slack streak mature
            cluster.tick()
        assert cluster.num_engines == 1
        assert cluster.telemetry.shrink_events >= 1
        assert cluster.telemetry.shards_retired == cluster.telemetry.shrink_events
        assert not cluster.draining

    def test_drain_preserves_in_flight_handles(self):
        cluster = fib.serve_cluster(
            2,
            num_lanes=2,
            policy="round_robin",
            autoscale=AutoscalePolicy(min_engines=1, shrink_patience=1),
        )
        slow = cluster.submit(np.int64(20))  # lands on shard 0
        assert slow.shard == 0
        # Load (1) fits one shard, so the very next tick starts a drain;
        # ties on load retire the youngest shard (1), but keep ticking
        # until whichever shard holds the slow request finishes.
        cluster.run_until_idle()
        assert cluster.telemetry.shrink_events == 1
        assert cluster.telemetry.shards_retired == 1
        assert cluster.num_engines == 1
        assert int(slow.result()) == int(fib.run_pc(np.array([20]))[0])

    def test_drain_migrates_queued_natives_to_survivors(self):
        cluster = fib.serve_cluster(2, num_lanes=1, policy="round_robin")
        handles = [cluster.submit(np.int64(9)) for _ in range(6)]
        cluster.tick()  # seat each shard's first request in its lane
        queued_on_1 = [h for h in handles if h.shard == 1][1:]
        victim = cluster.engines[1]
        cluster.engines.remove(victim)
        cluster.draining.append(victim)
        orphans = victim.begin_drain()
        assert orphans == queued_on_1  # in-flight lane stays; queue exports
        cluster.engines[0].requeue(orphans)
        for h in orphans:
            h.shard = cluster.engines[0].shard_id
        cluster.run_until_idle()
        assert all(int(h.result()) == FIB_REF[9] for h in handles)
        assert not cluster.draining  # the drained shard retired itself

    def test_draining_engine_rejects_new_submissions(self):
        engine = fib.serve(num_lanes=1)
        engine.submit(np.int64(8))
        engine.submit(np.int64(9))
        engine.tick()
        orphans = engine.begin_drain()
        assert len(orphans) == 1 and engine.draining
        with pytest.raises(RuntimeError, match="draining"):
            engine.submit(np.int64(5))
        engine.run_until_idle()
        assert engine.pool.busy_count() == 0

    def test_resolve_autoscale_forms(self):
        assert resolve_autoscale(None) is None
        assert resolve_autoscale(False) is None
        assert isinstance(resolve_autoscale(True), AutoscalePolicy)
        inst = AutoscalePolicy(min_engines=2, max_engines=6)
        assert resolve_autoscale(inst) is inst
        assert isinstance(resolve_autoscale(AutoscalePolicy), AutoscalePolicy)
        with pytest.raises(TypeError):
            resolve_autoscale("pressure-cooker")
        with pytest.raises(ValueError, match="min_engines"):
            AutoscalePolicy(min_engines=0)
        with pytest.raises(ValueError, match="below min_engines"):
            AutoscalePolicy(min_engines=3, max_engines=2)
        with pytest.raises(ValueError, match="patience"):
            AutoscalePolicy(grow_patience=0)

    def test_default_max_engines_is_twice_the_initial_fleet(self):
        cluster = fib.serve_cluster(3, num_lanes=1, autoscale=True)
        assert cluster.autoscale.max_engines == 6
        assert cluster.autoscale.min_engines == 1

    def test_caller_policy_instance_is_never_mutated_or_shared(self):
        """The cluster works on a private copy: resolving the default cap
        must not write into the caller's AutoscalePolicy, and two clusters
        given the same instance must not share patience streaks."""
        shared = AutoscalePolicy()
        big = fib.serve_cluster(4, num_lanes=1, autoscale=shared)
        small = fib.serve_cluster(1, num_lanes=1, autoscale=shared)
        assert shared.max_engines is None  # caller's instance untouched
        assert big.autoscale is not shared and small.autoscale is not shared
        assert big.autoscale.max_engines == 8
        assert small.autoscale.max_engines == 2
        # Streak state is per-cluster: pressuring one must not advance the
        # other's grow decision.
        for _ in range(5):
            small.submit(np.int64(12))
        small.tick()
        assert big.autoscale._pressure_streak == 0
        small.run_until_idle()

    def test_skew_metrics_ignore_retired_shards(self):
        live_a = ServeTelemetry(num_lanes=1, completed=5)
        live_b = ServeTelemetry(num_lanes=1, completed=5)
        dead = ServeTelemetry(num_lanes=1, completed=1, retired=True)
        t = ClusterTelemetry(shards=[live_a, live_b, dead])
        # Totals still count the retired shard; skew does not.
        assert t.completed == 11
        assert t.completion_skew() == 0.0
        assert t.utilization_skew() == 0.0
        assert len(t.live_shards()) == 2


# -- property-based rebalancing schedules -------------------------------------
#
# The PR-3 schedule generator, extended with priorities plus
# steal/autoscale/preempt toggles: whatever the rebalancers and the
# preemptor do — including migrating preempted-lane snapshots between
# shards — no handle is lost or duplicated, every eviction resumes exactly
# once, results stay bit-identical to the unbatched reference, and the
# fleet returns to within the policy's bounds.

rebalance_schedule = st.lists(
    st.tuples(
        st.integers(0, 14),                            # fib argument
        st.integers(0, 3),                             # arrival gap (ticks)
        st.integers(-2, 2),                            # priority
        st.one_of(st.none(), st.integers(1, 2000)),    # step budget
        st.one_of(st.none(), st.integers(0, 500)),     # deadline_ticks
    ),
    min_size=1,
    max_size=14,
)


class TestRebalancingSchedules:
    @settings(max_examples=20, deadline=None)
    @given(
        schedule=rebalance_schedule,
        num_engines=st.integers(1, 3),
        num_lanes=st.integers(1, 2),
        policy=st.sampled_from(POLICIES + ["pinned"]),
        seed=st.integers(0, 3),
        steal=st.booleans(),
        autoscale=st.booleans(),
        preempt=st.sampled_from([None, "priority", "deadline"]),
        trace=st.booleans(),
        executor=st.sampled_from(["eager", "superblock"]),
        resume_batching=st.booleans(),
    )
    def test_random_schedule_invariants(
        self, schedule, num_engines, num_lanes, policy, seed, steal,
        autoscale, preempt, trace, executor, resume_batching
    ):
        max_engines = num_engines + 2
        cluster = fib.serve_cluster(
            num_engines,
            num_lanes=num_lanes,
            policy=PinnedPolicy() if policy == "pinned" else policy,
            seed=seed,
            steal=StealPolicy() if steal else None,
            autoscale=(
                AutoscalePolicy(
                    max_engines=max_engines, grow_patience=1, shrink_patience=2
                )
                if autoscale
                else None
            ),
            preempt={
                None: None,
                "priority": PreemptPolicy(),
                "deadline": DeadlinePreemptPolicy(),
            }[preempt],
            trace="events" if trace else None,
            executor=executor,
            resume_batching=resume_batching,
            max_stack_depth=64,
        )
        handles = []
        for n, gap, priority, budget, deadline in schedule:
            for _ in range(gap):
                cluster.tick()
            handles.append(
                (
                    n,
                    cluster.submit(
                        np.int64(n),
                        priority=priority,
                        step_budget=budget,
                        deadline_ticks=deadline,
                    ),
                )
            )
        cluster.run_until_idle()
        t = cluster.telemetry
        # No lost or duplicated handles: every submission reached exactly
        # one terminal state, and the counters agree one-for-one.
        assert all(h.done() for _, h in handles)
        done = [h for _, h in handles if h.state == "done"]
        failed = [h for _, h in handles if h.state == "failed"]
        assert len(done) + len(failed) == len(handles)
        assert t.submitted == len(handles)
        assert t.completed == len(done)
        assert t.failed == len(failed)
        assert t.injected == len(done) + len(failed)
        # Results bit-identical to the unbatched reference, wherever the
        # request ended up running.
        for n, h in handles:
            if h.state == "done":
                assert int(h.result()) == FIB_REF[n]
            else:
                assert isinstance(h.exception(), StepBudgetExceeded)
            assert h.shard is not None
            assert h.inject_tick is not None and h.finish_tick is not None
            assert h.request.submit_tick <= h.inject_tick <= h.finish_tick
            # No checkpoint survives the drain: every eviction resumed.
            assert h.snapshot is None
            if h.preemptions:
                assert h.resume_tick is not None
        # Preemption bookkeeping balances fleet-wide (a migrated snapshot
        # is evicted on one shard, resumed on another).
        assert t.preemptions == t.resumes
        assert sum(h.preemptions for _, h in handles) == t.preemptions
        assert t.preempted_migrations <= t.steals
        if preempt is None:
            assert t.preemptions == 0
        # Deadline accounting reconstructs from the handles fleet-wide.
        check_deadline_invariants(handles, t)
        assert cluster.load() == 0
        assert not cluster.draining
        if autoscale:
            assert 1 <= cluster.num_engines <= max_engines
        else:
            assert cluster.num_engines == num_engines
        # Every traced timeline is well-formed and the event counts agree
        # one-for-one with the fleet's telemetry counters.
        if trace:
            check_trace_invariants(handles, t, cluster.trace)
        else:
            assert cluster.trace is None


# -- observability determinism -------------------------------------------------
#
# Tracing rides the logical clock, so two identical schedules must produce
# *byte-identical* artifacts: the Chrome-trace export and the metrics series
# are pure functions of (program, schedule, seed), even under the full
# rebalancing stack (steal + preempt + autoscale).


class TestClusterObservability:
    def _traced_run(self, tmp_path, tag):
        from repro.observe import Trace, validate_chrome_trace

        trace = Trace()
        cluster = fib.serve_cluster(
            2,
            num_lanes=1,
            policy=PinnedPolicy(),
            seed=7,
            steal=StealPolicy(),
            autoscale=AutoscalePolicy(
                max_engines=4, grow_patience=1, shrink_patience=2
            ),
            preempt=PreemptPolicy(min_age=0),
            trace=trace,
            max_stack_depth=64,
        )
        handles = []
        for i, (n, priority) in enumerate(
            [(12, 0), (11, 0), (13, 0), (4, 3), (5, 3), (10, 1), (9, 2)]
        ):
            handles.append(cluster.submit(np.int64(n), priority=priority))
            if i % 2:
                cluster.tick()
        cluster.run_until_idle()
        path = tmp_path / f"trace_{tag}.json"
        trace.export_chrome_trace(path)
        validate_chrome_trace(path)
        return cluster, handles, trace, path.read_bytes()

    def test_two_identical_runs_are_byte_identical(self, tmp_path):
        cluster_a, handles_a, trace_a, chrome_a = self._traced_run(tmp_path, "a")
        cluster_b, handles_b, trace_b, chrome_b = self._traced_run(tmp_path, "b")
        # The exercise is real: the schedule provokes rebalancing events.
        assert trace_a.tracer.count("preempt") > 0
        assert cluster_a.telemetry.steals > 0
        # Chrome export, raw event stream, and metric series all match
        # byte-for-byte across the two runs.
        assert chrome_a == chrome_b
        assert trace_a.tracer.to_json() == trace_b.tracer.to_json()
        assert trace_a.metrics.to_json() == trace_b.metrics.to_json()
        assert [int(h.result()) for h in handles_a] == [
            int(h.result()) for h in handles_b
        ]
        check_trace_invariants(
            [(None, h) for h in handles_a], cluster_a.telemetry, trace_a
        )

    def test_first_result_tick_includes_retired_shards(self):
        # A completion on a since-retired shard is still the fleet's first
        # result: autoscale retirement keeps the shard's telemetry in the
        # rollup, and the lock-step clock keeps the min meaningful.
        early = ServeTelemetry(num_lanes=1, completed=3, retired=True)
        early.first_result_tick = 2
        late = ServeTelemetry(num_lanes=1, completed=5)
        late.first_result_tick = 9
        t = ClusterTelemetry(shards=[early, late], shards_retired=1)
        assert t.first_result_tick() == 2
        assert "retired=1" in t.summary()

    def test_first_result_tick_live_cluster_retirement(self):
        # End-to-end: force an autoscale shrink after completions, then
        # check the rollup still reports the pre-retirement first result.
        cluster = fib.serve_cluster(
            2,
            num_lanes=2,
            policy=PinnedPolicy(),
            autoscale=AutoscalePolicy(
                min_engines=1, max_engines=2, shrink_patience=1
            ),
            max_stack_depth=64,
        )
        handles = [cluster.submit(np.int64(n)) for n in (8, 9, 10, 11)]
        cluster.run_until_idle()
        first = cluster.telemetry.first_result_tick()
        assert first is not None
        # Idle ticks trigger the shrink; the retired shard's telemetry
        # stays in the rollup, so the fleet's first result is unchanged.
        for _ in range(20):
            cluster.tick()
            if cluster.telemetry.shards_retired:
                break
        assert cluster.telemetry.shards_retired == 1
        assert any(s.retired for s in cluster.telemetry.shards)
        assert cluster.telemetry.first_result_tick() == first
        assert all(int(h.result()) == FIB_REF[int(a)]
                   for h, a in zip(handles, (8, 9, 10, 11)))
