"""Tests for the Matchbox-style autobatcher, including the §5 equivalence:
this third implementation style must agree with both of our machines."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.matchbox import MaskedBatch, cond, matchbox_call, while_loop
from repro.matchbox.masked import as_masked

from .programs import collatz_steps, fib, gcd


# -- matchbox renditions of corpus programs ------------------------------------


def mb_fib(n: MaskedBatch):
    def base(n):
        return (as_masked(1, n.batch_size).with_mask(n.mask),)

    def recurse(n):
        (left,) = matchbox_call(mb_fib, n - 2)
        (right,) = matchbox_call(mb_fib, n - 1)
        return (left + right,)

    return cond(n <= 1, base, recurse, (n,))


def mb_gcd(a: MaskedBatch, b: MaskedBatch):
    def still_going(a, b):
        return b != 0

    def body(a, b):
        return b, a % b

    return while_loop(still_going, body, (a, b))


def mb_collatz(n: MaskedBatch):
    steps = as_masked(np.zeros(n.batch_size, dtype=np.int64), n.batch_size)

    def going(n, steps):
        return n != 1

    def body(n, steps):
        def even(n, steps):
            return n // 2, steps

        def odd(n, steps):
            return 3 * n + 1, steps

        n, steps = cond(n % 2 == 0, even, odd, (n, steps))
        return n, steps + 1

    return while_loop(going, body, (n, steps))


class TestMaskedBatch:
    def test_construction_and_masks(self):
        mb = MaskedBatch(np.arange(4), np.array([1, 0, 1, 1], dtype=bool))
        assert mb.batch_size == 4
        assert mb.event_shape == ()
        np.testing.assert_array_equal(mb.where_active(), [0, 2, 3])

    def test_scalar_rejected(self):
        with pytest.raises(ValueError):
            MaskedBatch(np.float64(3.0))

    def test_mask_shape_checked(self):
        with pytest.raises(ValueError):
            MaskedBatch(np.arange(4), np.ones(3, dtype=bool))

    def test_binop_intersects_masks(self):
        a = MaskedBatch(np.arange(4), np.array([1, 1, 0, 1], dtype=bool))
        b = MaskedBatch(np.arange(4), np.array([1, 0, 1, 1], dtype=bool))
        out = a + b
        np.testing.assert_array_equal(out.mask, [True, False, False, True])
        np.testing.assert_array_equal(out.data, [0, 2, 4, 6])

    def test_reflected_ops(self):
        mb = MaskedBatch(np.array([1.0, 2.0, 4.0]))
        np.testing.assert_allclose((8.0 / mb).data, [8.0, 4.0, 2.0])
        np.testing.assert_allclose((10.0 - mb).data, [9.0, 8.0, 6.0])

    def test_merge_writes_only_active(self):
        base = MaskedBatch(np.zeros(4))
        update = MaskedBatch(np.ones(4), np.array([0, 1, 0, 1], dtype=bool))
        out = base.merge(update)
        np.testing.assert_array_equal(out.data, [0, 1, 0, 1])
        assert out.mask.all()

    def test_merge_promotes_dtype(self):
        base = MaskedBatch(np.zeros(3, dtype=np.int64))
        update = MaskedBatch(np.full(3, 0.5), np.array([1, 0, 0], dtype=bool))
        out = base.merge(update)
        assert out.data.dtype == np.float64
        np.testing.assert_allclose(out.data, [0.5, 0.0, 0.0])

    def test_junk_lane_errors_suppressed(self):
        a = MaskedBatch(np.array([4.0, -1.0]), np.array([1, 0], dtype=bool))
        out = a / MaskedBatch(np.array([2.0, 0.0]))  # junk lane divides by 0
        assert out.data[0] == 2.0  # active lane fine


class TestCombinators:
    def test_cond_runs_only_needed_arms(self):
        calls = []

        def then(v):
            calls.append("then")
            return (v + 1,)

        def other(v):
            calls.append("else")
            return (v - 1,)

        v = MaskedBatch(np.array([5, 6]))
        (out,) = cond(v > 0, then, other, (v,))  # everyone takes then
        assert calls == ["then"]
        np.testing.assert_array_equal(out.data, [6, 7])

    def test_cond_merges_divergent_arms(self):
        v = MaskedBatch(np.array([-2, 3, -4, 5]))
        (out,) = cond(v > 0, lambda v: (v * 10,), lambda v: (-v,), (v,))
        np.testing.assert_array_equal(out.data, [2, 30, 4, 50])

    def test_cond_arity_checked(self):
        v = MaskedBatch(np.array([1, -1]))
        with pytest.raises(ValueError):
            cond(v > 0, lambda v: (v, v), lambda v: (v,), (v,))

    def test_while_freezes_finished_members(self):
        v = MaskedBatch(np.array([3, 0, 1]))
        total = MaskedBatch(np.zeros(3, dtype=np.int64))
        out_v, out_total = while_loop(
            lambda v, t: v > 0, lambda v, t: (v - 1, t + v), (v, total)
        )
        np.testing.assert_array_equal(out_total.data, [6, 0, 1])

    def test_while_iteration_guard(self):
        v = MaskedBatch(np.array([1]))
        with pytest.raises(RuntimeError):
            while_loop(lambda v: v > 0, lambda v: (v,), (v,), max_iterations=10)

    def test_while_arity_checked(self):
        v = MaskedBatch(np.array([1]))
        with pytest.raises(ValueError):
            while_loop(lambda v: v > 0, lambda v: (v, v), (v,))


class TestSection5Equivalence:
    """The paper: Matchbox's mask-queue 'data structure is equivalent' to
    Algorithm 1's program counter — so results must match our machines."""

    def test_fib_matches_machines(self):
        batch = np.array([0, 1, 3, 7, 4, 5, 10])
        (out,) = mb_fib(MaskedBatch(batch))
        np.testing.assert_array_equal(out.data, fib.run_reference(batch))
        np.testing.assert_array_equal(out.data, fib.run_local(batch))
        np.testing.assert_array_equal(out.data, fib.run_pc(batch))

    def test_gcd_matches_machines(self):
        a = np.array([48, 54, 17, 100])
        b = np.array([18, 24, 5, 75])
        out_a, _ = mb_gcd(MaskedBatch(a), MaskedBatch(b))
        np.testing.assert_array_equal(out_a.data, gcd.run_reference(a, b))
        np.testing.assert_array_equal(out_a.data, gcd.run_pc(a, b))

    def test_collatz_matches_machines(self):
        n = np.array([6, 27, 1, 97])
        _, steps = mb_collatz(MaskedBatch(n))
        np.testing.assert_array_equal(steps.data, collatz_steps.run_reference(n))

    @settings(max_examples=25, deadline=None)
    @given(hnp.arrays(np.int64, (5,), elements=st.integers(0, 14)))
    def test_fib_property(self, batch):
        (out,) = mb_fib(MaskedBatch(batch))
        np.testing.assert_array_equal(out.data, fib.run_reference(batch))
