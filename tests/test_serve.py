"""Tests for the continuous-batching serving engine (repro.serve).

The load-bearing property is *lane-recycling correctness*: a request's
trajectory through the machine must be bit-identical whether it ran in a
static batch (one ``run_pc`` call) or was injected mid-flight into a lane
vacated by an unrelated request.  Everything else — admission control,
step budgets, telemetry — is checked on top of that.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.serve import (
    DeadlinePreemptPolicy,
    Engine,
    LanePool,
    NO_PROGRESS_LIMIT,
    PreemptPolicy,
    QueueFullError,
    RequestQueue,
    ResultHandle,
    ServeRequest,
    ServeTelemetry,
    StepBudgetExceeded,
    resolve_preempt_policy,
)
from repro.vm.program_counter import ProgramCounterVM

from .programs import ALL_EXAMPLES, fib, gcd, poly, rng_walk

# Programs spanning recursion, loops, floats, RNG, and multiple outputs.
SERVE_CORPUS = ["fib", "gcd", "collatz_steps", "poly", "rng_walk", "swap_chain",
                "recursive_pair", "newton_sqrt", "ackermann"]


def rows_of(arrays):
    """Per-request input tuples from a batch of input arrays."""
    z = np.asarray(arrays[0]).shape[0]
    return [tuple(np.asarray(a)[b] for a in arrays) for b in range(z)]


class TestLaneRecyclingCorrectness:
    @pytest.mark.parametrize("name", SERVE_CORPUS)
    @pytest.mark.parametrize("num_lanes", [1, 2, 3])
    def test_engine_matches_static_run_pc(self, name, num_lanes):
        fn, inputs = ALL_EXAMPLES[name]
        expected = fn.run_pc(*inputs, max_stack_depth=64)
        engine = fn.serve(num_lanes=num_lanes, max_stack_depth=64)
        results = engine.map(rows_of(inputs))
        expected_tuple = expected if isinstance(expected, tuple) else (expected,)
        for b, result in enumerate(results):
            result_tuple = result if isinstance(result, tuple) else (result,)
            assert len(result_tuple) == len(expected_tuple)
            for out, (got, exp) in enumerate(zip(result_tuple, expected_tuple)):
                got = np.asarray(got)
                assert got.dtype == exp.dtype, (name, b, out)
                np.testing.assert_array_equal(got, exp[b], err_msg=f"{name}[{b}].{out}")

    @pytest.mark.parametrize("mode", ["mask", "gather"])
    def test_both_vm_modes(self, mode):
        ns = np.array([3, 10, 1, 8, 12, 5, 9, 0], dtype=np.int64)
        expected = fib.run_pc(ns)
        engine = fib.serve(num_lanes=3, mode=mode)
        results = engine.map(rows_of((ns,)))
        np.testing.assert_array_equal(np.stack(results), expected)

    def test_more_requests_than_lanes_recycles(self):
        ns = np.arange(12, dtype=np.int64)
        engine = fib.serve(num_lanes=2)
        results = engine.map(rows_of((ns,)))
        np.testing.assert_array_equal(np.stack(results), fib.run_pc(ns))
        # 12 requests flowed through 2 lanes: injection count proves recycling.
        assert engine.telemetry.injected == 12
        assert engine.telemetry.completed == 12
        assert engine.pool.busy_count() == 0

    def test_interleaved_submission_mid_flight(self):
        """Requests submitted while others are in flight still match."""
        engine = gcd.serve(num_lanes=2)
        first = [engine.submit(np.int64(a), np.int64(b))
                 for a, b in [(1071, 462), (17, 5)]]
        for _ in range(3):
            engine.tick()
        second = [engine.submit(np.int64(a), np.int64(b))
                  for a, b in [(100, 75), (3, 0), (270, 192)]]
        engine.run_until_idle()
        a = np.array([1071, 17, 100, 3, 270], dtype=np.int64)
        b = np.array([462, 5, 75, 0, 192], dtype=np.int64)
        expected = gcd.run_pc(a, b)
        got = np.array([h.result() for h in first + second])
        np.testing.assert_array_equal(got, expected)

    def test_drain_policy_matches_too(self):
        ns = np.array([6, 2, 11, 4, 9, 7], dtype=np.int64)
        engine = fib.serve(num_lanes=2, refill="drain")
        results = engine.map(rows_of((ns,)))
        np.testing.assert_array_equal(np.stack(results), fib.run_pc(ns))

    def test_continuous_beats_drain_utilization(self):
        """Skewed request lengths: recycling keeps lanes fuller than draining."""
        ns = np.array([14, 1, 13, 1, 14, 1, 13, 1], dtype=np.int64)
        utils = {}
        for refill in ("continuous", "drain"):
            engine = fib.serve(num_lanes=2, refill=refill)
            engine.map(rows_of((ns,)))
            utils[refill] = engine.telemetry.lane_utilization()
        assert utils["continuous"] > utils["drain"]


class TestAdmissionControl:
    def test_queue_overflow_rejection(self):
        engine = poly.serve(num_lanes=1, max_queue_depth=2)
        engine.submit(np.float64(1.0))
        engine.submit(np.float64(2.0))   # queue now at max_depth
        with pytest.raises(QueueFullError):
            engine.submit(np.float64(3.0))
        assert engine.telemetry.rejected == 1
        assert engine.telemetry.submitted == 2
        engine.run_until_idle()
        assert engine.telemetry.completed == 2

    def test_queue_drains_then_accepts_again(self):
        engine = poly.serve(num_lanes=1, max_queue_depth=1)
        h1 = engine.submit(np.float64(1.5))
        with pytest.raises(QueueFullError):
            engine.submit(np.float64(2.5))
        engine.run_until_idle()
        h2 = engine.submit(np.float64(2.5))
        engine.run_until_idle()
        np.testing.assert_array_equal(
            np.array([h1.result(), h2.result()]),
            poly.run_pc(np.array([1.5, 2.5])),
        )

    def test_wrong_arity_rejected(self):
        engine = gcd.serve(num_lanes=1)
        with pytest.raises(ValueError, match="takes 2 inputs"):
            engine.submit(np.int64(4))

    def test_bad_event_shape_fails_its_own_handle(self):
        """Malformed inputs must fail that handle, not poison the engine."""
        engine = fib.serve(num_lanes=2)
        good_before = engine.submit(np.int64(6))
        engine.run_until_idle()          # scalar storage now allocated
        bad = engine.submit(np.array([1, 2], dtype=np.int64))  # wrong event shape
        good_after = engine.submit(np.int64(7))
        engine.run_until_idle()
        assert bad.state == "failed"
        with pytest.raises(ValueError, match="event shape"):
            bad.result()
        assert good_before.result() == 13
        assert good_after.result() == 21
        assert engine.telemetry.failed == 1
        assert engine.pool.busy_count() == 0  # the poisoned lane was vacated

    def test_run_until_idle_exact_max_ticks_is_not_an_error(self):
        engine = fib.serve(num_lanes=1)
        engine.submit(np.int64(5))
        ticks = engine.run_until_idle()
        engine2 = fib.serve(num_lanes=1)
        engine2.submit(np.int64(5))
        assert engine2.run_until_idle(max_ticks=ticks) == ticks
        engine3 = fib.serve(num_lanes=1)
        engine3.submit(np.int64(5))
        with pytest.raises(RuntimeError, match="still busy"):
            engine3.run_until_idle(max_ticks=ticks - 1)

    def test_run_until_idle_zero_max_ticks_checks_before_ticking(self):
        """A zero budget on a busy server must raise without ticking at
        all — the budget check comes before the tick, not after."""
        engine = fib.serve(num_lanes=1)
        engine.submit(np.int64(5))
        with pytest.raises(RuntimeError, match="still busy"):
            engine.run_until_idle(max_ticks=0)
        assert engine.now == 0
        # An already-idle server spends a zero budget successfully.
        idle = fib.serve(num_lanes=1)
        assert idle.run_until_idle(max_ticks=0) == 0
        assert idle.now == 0

    def test_priority_admitted_first(self):
        engine = poly.serve(num_lanes=1)
        lo = engine.submit(np.float64(0.0), priority=0)
        hi = engine.submit(np.float64(1.0), priority=5)
        engine.run_until_idle()
        assert hi.inject_tick < lo.inject_tick

    def test_fifo_within_priority(self):
        q = RequestQueue(max_depth=None)
        handles = [
            ResultHandle(ServeRequest(request_id=i, inputs=(), priority=0))
            for i in range(5)
        ]
        for h in handles:
            q.push(h)
        assert [q.pop().request_id for _ in range(5)] == [0, 1, 2, 3, 4]

    def test_earliest_deadline_first_within_priority(self):
        """Equal priority: tighter absolute deadline pops first; requests
        without a deadline sort last (infinite slack)."""
        q = RequestQueue(max_depth=None)
        deadlines = [None, 50, 9, None, 30]
        for i, dl in enumerate(deadlines):
            q.push(ResultHandle(ServeRequest(
                request_id=i, inputs=(), deadline_ticks=dl)))
        assert [q.pop().request_id for _ in range(5)] == [2, 4, 1, 0, 3]

    def test_priority_still_dominates_deadlines(self):
        q = RequestQueue(max_depth=None)
        lo_tight = ResultHandle(ServeRequest(
            request_id=0, inputs=(), priority=0, deadline_ticks=1))
        hi_loose = ResultHandle(ServeRequest(
            request_id=1, inputs=(), priority=5, deadline_ticks=9999))
        q.push(lo_tight)
        q.push(hi_loose)
        assert q.pop() is hi_loose

    def test_queue_depth_is_public_and_tracks_len(self):
        q = RequestQueue(max_depth=3)
        assert q.depth() == 0 and q.snapshot_count() == 0
        handles = [
            ResultHandle(ServeRequest(request_id=i, inputs=()))
            for i in range(3)
        ]
        for i, h in enumerate(handles):
            q.push(h)
            assert q.depth() == len(q) == i + 1
        q.pop()
        assert q.depth() == len(q) == 2

    def test_queue_depth_counts_requeued_snapshots(self):
        """An evicted straggler sits in the queue with its checkpoint:
        depth() and snapshot_count() see it without touching privates."""
        engine = fib.serve(num_lanes=1, preempt=PreemptPolicy())
        engine.submit(np.int64(14))
        for _ in range(3):
            engine.tick()
        engine.submit(np.int64(3), priority=5)
        engine.tick()  # eviction checkpoints and requeues the straggler
        assert engine.queue.depth() == len(engine.queue) == 1
        assert engine.queue.snapshot_count() == 1
        engine.run_until_idle()
        assert engine.queue.depth() == 0
        assert engine.queue.snapshot_count() == 0


class TestStepBudgets:
    def test_budget_exhaustion_fails_request(self):
        # fib(25) needs far more than 10 active machine steps.
        engine = fib.serve(num_lanes=2, default_step_budget=10)
        doomed = engine.submit(np.int64(25))
        engine.run_until_idle()
        assert doomed.done()
        assert isinstance(doomed.exception(), StepBudgetExceeded)
        with pytest.raises(StepBudgetExceeded):
            doomed.result()
        assert engine.telemetry.failed == 1

    def test_budget_failure_recycles_the_lane(self):
        engine = fib.serve(num_lanes=1)
        doomed = engine.submit(np.int64(25), step_budget=5)
        survivor = engine.submit(np.int64(10))
        engine.run_until_idle()
        assert isinstance(doomed.exception(), StepBudgetExceeded)
        np.testing.assert_array_equal(
            survivor.result(), fib.run_pc(np.array([10], dtype=np.int64))[0]
        )
        assert engine.telemetry.failed == 1
        assert engine.telemetry.completed == 1

    def test_generous_budget_is_harmless(self):
        engine = fib.serve(num_lanes=2)
        h = engine.submit(np.int64(9), step_budget=100_000)
        engine.run_until_idle()
        assert h.result() == 55
        assert 0 < h.steps_used < 100_000


class TestTelemetry:
    def test_counters_consistent(self):
        ns = np.array([5, 9, 2, 12, 7, 3], dtype=np.int64)
        engine = fib.serve(num_lanes=2)
        engine.map(rows_of((ns,)))
        t = engine.telemetry
        assert t.submitted == t.injected == t.completed == 6
        assert t.rejected == 0 and t.failed == 0
        assert t.ticks > 0
        assert 0.0 < t.lane_utilization() <= 1.0
        assert t.lane_slots == t.ticks * 2
        assert t.first_result_tick is not None
        assert 0.0 < t.throughput() <= 1.0
        assert len(t.queue_waits) == 6
        # 6 requests through 2 lanes: someone must have waited.
        assert t.max_queue_wait() > 0
        assert "lane_utilization" in t.summary()

    def test_queue_wait_zero_when_lanes_free(self):
        engine = poly.serve(num_lanes=4)
        h = engine.submit(np.float64(2.0))
        engine.run_until_idle()
        assert h.queue_wait() == 0

    def test_vm_instrumentation_shared(self):
        engine = fib.serve(num_lanes=2)
        engine.map(rows_of((np.array([8, 4], dtype=np.int64),)))
        instr = engine.telemetry.instrumentation
        assert instr is engine.vm.instr
        assert instr.kernel_calls > 0
        assert 0.0 < instr.lane_utilization() <= 1.0

    def test_handle_repr_and_pending_result(self):
        engine = fib.serve(num_lanes=1)
        h = engine.submit(np.int64(20))
        assert "queued" in repr(h)
        with pytest.raises(RuntimeError, match="still"):
            h.result()
        engine.run_until_idle()
        assert h.done()


class TestVmLaneHooks:
    """The VM-level lifecycle primitives the engine is built on."""

    def test_inject_retire_roundtrip(self):
        program = fib.stack_program()
        vm = ProgramCounterVM(program, batch_size=4)
        vm.halt_lanes(np.arange(4))
        assert bool(vm.halted_mask().all())
        vm.inject_lanes(np.array([1, 3]), [np.array([7, 9], dtype=np.int64)])
        assert list(vm.halted_mask()) == [True, False, True, False]
        while not vm.halted_mask().all():
            vm.step()
        (out,) = vm.retire_lanes(np.array([1, 3]))
        np.testing.assert_array_equal(
            out, fib.run_pc(np.array([7, 9], dtype=np.int64))
        )

    def test_inject_validates_shapes(self):
        vm = ProgramCounterVM(fib.stack_program(), batch_size=2)
        vm.halt_lanes(np.arange(2))
        with pytest.raises(ValueError, match="takes 1 inputs"):
            vm.inject_lanes(np.array([0]), [])
        with pytest.raises(ValueError, match="leading dimension"):
            vm.inject_lanes(np.array([0]), [np.array([1, 2], dtype=np.int64)])

    def test_reset_lane_restores_initial_state(self):
        """A recycled lane is bitwise a fresh lane: same outputs, same stacks."""
        program = fib.stack_program()
        vm = ProgramCounterVM(program, batch_size=2)
        vm.halt_lanes(np.arange(2))
        # First occupant: deep recursion dirties lane 0's stacks.
        vm.inject_lanes(np.array([0]), [np.array([11], dtype=np.int64)])
        while not vm.halted_mask().all():
            vm.step()
        vm.reset_lanes(np.array([0]))
        assert vm.pcreg[0] == vm.entry_index
        assert vm.addr_stack.sp[0] == 0
        assert vm.addr_stack.cache[0] == vm.exit_index
        for st in vm.storages.values():
            if getattr(st, "array", None) is not None:
                assert not np.any(st.array[0])
            if getattr(st, "stack", None) is not None:
                assert st.stack.sp[0] == 0
                assert not np.any(st.stack.data[:, 0])

    def test_lane_pool_deterministic_and_guarded(self):
        pool = LanePool(2)
        h = [ResultHandle(ServeRequest(request_id=i, inputs=())) for i in range(3)]
        assert pool.acquire(h[0]) == 0
        assert pool.acquire(h[1]) == 1
        with pytest.raises(RuntimeError, match="no vacant lane"):
            pool.acquire(h[2])
        assert pool.release(0) is h[0]
        with pytest.raises(RuntimeError, match="already vacant"):
            pool.release(0)
        assert pool.acquire(h[2]) == 0  # lowest-index-first, deterministic
        assert list(pool.busy_lanes()) == [0, 1]
        with pytest.raises(ValueError):
            LanePool(0)

    def test_rng_requests_are_schedule_invariant(self):
        """Counter-based RNG: serving order must not change any member's draws."""
        ctrs, ns = ALL_EXAMPLES["rng_walk"][1]
        expected = rng_walk.run_pc(ctrs, ns, max_stack_depth=64)
        engine = rng_walk.serve(num_lanes=2, max_stack_depth=64)
        results = engine.map(rows_of((ctrs, ns)))
        np.testing.assert_array_equal(np.stack(results), expected)


class TestPreemption:
    """Lane checkpoint/resume: evicting a straggler must seat the
    higher-priority arrival immediately, and the straggler must *resume*
    from its snapshot — same bits, same step budget — not restart."""

    def test_high_priority_preempts_straggler(self):
        engine = fib.serve(num_lanes=1, preempt=True)
        strag = engine.submit(np.int64(18), priority=0)
        for _ in range(5):
            engine.tick()
        vip = engine.submit(np.int64(5), priority=2)
        engine.run_until_idle()
        assert vip.finish_tick < strag.finish_tick
        assert strag.preemptions == 1
        assert strag.resume_tick is not None and strag.snapshot is None
        assert int(vip.result()) == _FIB_REF[5]
        assert int(strag.result()) == int(
            fib.run_pc(np.array([18], dtype=np.int64))[0]
        )
        t = engine.telemetry
        assert t.preemptions == t.resumes == 1
        assert t.completed == 2 and t.failed == 0
        assert len(t.resume_waits) == 1 and t.mean_resume_wait() > 0
        assert "preemption" in t.summary()

    def test_resumed_not_restarted(self):
        """The load-bearing semantic: a preempted request spends exactly
        the active machine steps an undisturbed run does — the snapshot
        carried its position, nothing was recomputed."""
        solo = fib.serve(num_lanes=1)
        ref = solo.submit(np.int64(16))
        solo.run_until_idle()

        engine = fib.serve(num_lanes=1, preempt=True)
        strag = engine.submit(np.int64(16))
        for _ in range(10):
            engine.tick()
        engine.submit(np.int64(6), priority=3)
        engine.run_until_idle()
        assert strag.preemptions == 1
        assert strag.steps_used == ref.steps_used

    def test_step_budget_survives_preemption(self):
        """A resumed request keeps spending the same budget; it is never
        granted a fresh one by the eviction."""
        solo = fib.serve(num_lanes=1)
        ref = solo.submit(np.int64(14))
        solo.run_until_idle()
        budget = ref.steps_used  # exactly enough for an undisturbed run

        engine = fib.serve(num_lanes=1, preempt=True)
        tight = engine.submit(np.int64(14), step_budget=budget + 1)
        for _ in range(8):
            engine.tick()
        engine.submit(np.int64(4), priority=2)
        engine.run_until_idle()
        # Preempted once, resumed, still finished within the budget: the
        # eviction cost zero active steps.
        assert tight.preemptions == 1
        assert tight.state == "done"
        assert tight.steps_used == budget

    def test_equal_priority_never_preempts(self):
        engine = fib.serve(num_lanes=1, preempt=True)
        first = engine.submit(np.int64(14), priority=1)
        for _ in range(5):
            engine.tick()
        second = engine.submit(np.int64(3), priority=1)
        engine.run_until_idle()
        assert engine.telemetry.preemptions == 0
        assert first.finish_tick < second.finish_tick

    def test_free_lane_means_no_eviction(self):
        engine = fib.serve(num_lanes=2, preempt=True)
        engine.submit(np.int64(14), priority=0)
        engine.tick()
        engine.submit(np.int64(3), priority=9)
        engine.run_until_idle()
        assert engine.telemetry.preemptions == 0

    def test_min_age_defers_eviction(self):
        min_age = 10
        engine = fib.serve(
            num_lanes=1, preempt=PreemptPolicy(min_age=min_age)
        )
        strag = engine.submit(np.int64(16))
        engine.tick()  # seated at tick 0
        vip = engine.submit(np.int64(3), priority=5)
        engine.run_until_idle()
        assert strag.preemptions == 1
        # The eviction waited for the straggler to reach the age floor.
        assert strag.preempt_tick - strag.inject_tick >= min_age

    def test_straggler_cannot_delay_vip_beyond_age_threshold(self):
        """The SLO starvation regression: low-priority stragglers holding
        *every* lane bound the high-priority queue wait by the policy's
        age threshold, not by the stragglers' (much longer) runtime."""
        min_age = 6
        num_lanes = 2
        engine = fib.serve(
            num_lanes=num_lanes, preempt=PreemptPolicy(min_age=min_age)
        )
        strags = [engine.submit(np.int64(17)) for _ in range(num_lanes)]
        engine.tick()  # all lanes saturated
        vip = engine.submit(np.int64(4), priority=3)
        engine.run_until_idle()
        wait = vip.inject_tick - vip.request.submit_tick
        # Bounded by the age floor (+1 tick of scheduling slack), far
        # below any straggler's full runtime.
        assert wait <= min_age + 1
        got = np.array([int(s.result()) for s in strags] + [int(vip.result())])
        expected = fib.run_pc(np.array([17, 17, 4], dtype=np.int64))
        np.testing.assert_array_equal(got, expected)

        # Without preemption the same trace starves the vip for the whole
        # straggler runtime.
        plain = fib.serve(num_lanes=num_lanes)
        for _ in range(num_lanes):
            plain.submit(np.int64(17))
        plain.tick()
        vip2 = plain.submit(np.int64(4), priority=3)
        plain.run_until_idle()
        assert vip2.inject_tick - vip2.request.submit_tick > 10 * (min_age + 1)

    def test_preemption_decisions_replay_deterministically(self):
        """The same trace preempts the same requests at the same ticks on
        every rerun — scheduling is a pure function of the submissions."""

        def trace():
            engine = fib.serve(num_lanes=2, preempt=True)
            schedule = [
                (16, 0, 0), (15, 0, 0), (3, 2, 4), (12, 1, 2),
                (4, 3, 3), (5, 2, 0), (14, 1, 1), (6, 4, 2),
            ]
            handles = []
            for n, prio, gap in schedule:
                for _ in range(gap):
                    engine.tick()
                handles.append(engine.submit(np.int64(n), priority=prio))
            engine.run_until_idle()
            return [
                (
                    h.preemptions,
                    h.inject_tick,
                    h.preempt_tick,
                    h.resume_tick,
                    h.finish_tick,
                    int(h.result()),
                )
                for h in handles
            ]

        first = trace()
        assert first == trace()
        assert any(p for p, *_ in first)  # the trace really preempts

    def test_preempted_request_resumes_before_later_natives(self):
        """An evicted request re-queues under its original arrival stamp,
        so it resumes ahead of same-priority requests submitted later."""
        engine = fib.serve(num_lanes=1, preempt=True)
        strag = engine.submit(np.int64(14), priority=0)
        for _ in range(5):
            engine.tick()
        vip = engine.submit(np.int64(3), priority=5)
        late = engine.submit(np.int64(4), priority=0)
        engine.run_until_idle()
        assert strag.preemptions == 1
        # The lane the vip vacated goes back to the preempted straggler
        # (oldest arrival in priority 0), not the later native.
        assert vip.finish_tick <= strag.resume_tick
        assert strag.resume_tick < late.inject_tick
        assert strag.finish_tick < late.finish_tick

    def test_policy_validation(self):
        with pytest.raises(ValueError, match="priority_delta"):
            PreemptPolicy(priority_delta=0)
        with pytest.raises(ValueError, match="min_age"):
            PreemptPolicy(min_age=-1)
        with pytest.raises(ValueError, match="max_per_tick"):
            PreemptPolicy(max_per_tick=0)
        with pytest.raises(ValueError, match="refill"):
            fib.serve(num_lanes=1, preempt=True, refill="drain")

    def test_resolve_preempt_policy_forms(self):
        assert resolve_preempt_policy(None) is None
        assert resolve_preempt_policy(False) is None
        assert isinstance(resolve_preempt_policy(True), PreemptPolicy)
        assert isinstance(resolve_preempt_policy("priority"), PreemptPolicy)
        inst = PreemptPolicy(priority_delta=2, min_age=4)
        assert resolve_preempt_policy(inst) is inst
        assert isinstance(resolve_preempt_policy(PreemptPolicy), PreemptPolicy)
        with pytest.raises(ValueError, match="unknown preempt policy"):
            resolve_preempt_policy("nice")
        with pytest.raises(TypeError):
            resolve_preempt_policy(42)

    def test_max_per_tick_caps_evictions(self):
        engine = fib.serve(
            num_lanes=3, preempt=PreemptPolicy(max_per_tick=1)
        )
        for _ in range(3):
            engine.submit(np.int64(15), priority=0)
        engine.tick()  # saturate all three lanes
        for _ in range(3):
            engine.submit(np.int64(3), priority=5)
        evictions_per_tick = []
        before = engine.telemetry.preemptions
        for _ in range(3):
            engine.tick()
            now = engine.telemetry.preemptions
            evictions_per_tick.append(now - before)
            before = now
        assert evictions_per_tick == [1, 1, 1]
        engine.run_until_idle()
        assert engine.telemetry.preemptions == engine.telemetry.resumes == 3

    @pytest.mark.parametrize("executor", ["eager", "fused"])
    def test_preempted_results_bit_identical_both_executors(self, executor):
        """The differential: a preempt-heavy trace must still produce the
        static batch's exact bits under either executor."""
        ns = np.array([16, 15, 3, 4, 14, 5, 6, 13], dtype=np.int64)
        prios = [0, 0, 5, 5, 1, 6, 6, 2]
        expected = fib.run_pc(ns)
        engine = fib.serve(num_lanes=2, preempt=True, executor=executor)
        handles = []
        for n, p in zip(ns, prios):
            handles.append(engine.submit(np.int64(n), priority=p))
            engine.tick()
        engine.run_until_idle()
        got = np.array([int(h.result()) for h in handles])
        np.testing.assert_array_equal(got, expected)
        assert engine.telemetry.preemptions > 0
        assert engine.telemetry.preemptions == engine.telemetry.resumes


class TestDeadlineEviction:
    """DeadlinePreemptPolicy: slack-ranked eviction at equal priority."""

    def test_tight_deadline_evicts_slack_rich_straggler(self):
        engine = fib.serve(
            num_lanes=2, preempt=DeadlinePreemptPolicy(), executor="fused"
        )
        stragglers = [
            engine.submit(np.int64(14), deadline_ticks=100000)
            for _ in range(2)
        ]
        for _ in range(3):
            engine.tick()
        urgent = engine.submit(np.int64(3), deadline_ticks=40)
        engine.run_until_idle()
        assert engine.telemetry.preemptions >= 1
        assert engine.telemetry.preemptions == engine.telemetry.resumes
        assert urgent.finish_tick <= urgent.deadline_tick
        assert all(int(h.result()) == _FIB_REF[14] for h in stragglers)
        assert int(urgent.result()) == _FIB_REF[3]

    def test_priority_policy_cannot_help_at_equal_priority(self):
        """The contrast case: same workload, priority-only policy, no
        evictions — the urgent request waits out a straggler."""
        engine = fib.serve(num_lanes=2, preempt=PreemptPolicy(),
                           executor="fused")
        for _ in range(2):
            engine.submit(np.int64(14), deadline_ticks=100000)
        for _ in range(3):
            engine.tick()
        urgent = engine.submit(np.int64(3), deadline_ticks=40)
        engine.run_until_idle()
        assert engine.telemetry.preemptions == 0
        assert urgent.finish_tick > urgent.deadline_tick
        assert engine.telemetry.deadline_misses == 1

    def test_deadline_less_traffic_never_ping_pongs(self):
        """Regression: with no deadlines anywhere, victim slack minus
        waiter slack is inf - inf = nan, and the comparison must read
        that as "no gap" — an engine under pure overload used to evict
        (and immediately re-seat) a lane every single tick."""
        engine = fib.serve(
            num_lanes=2, preempt=DeadlinePreemptPolicy(), executor="fused"
        )
        ns = np.array([12, 11, 10, 9, 8, 7], dtype=np.int64)
        results = engine.map([(np.int64(n),) for n in ns])
        np.testing.assert_array_equal(np.stack(results), fib.run_pc(ns))
        assert engine.telemetry.preemptions == 0

    def test_deadline_less_victim_still_evicted_for_deadline_waiter(self):
        """inf victim slack minus finite waiter slack is +inf: always a
        big enough gap."""
        engine = fib.serve(
            num_lanes=1, preempt=DeadlinePreemptPolicy(), executor="fused"
        )
        straggler = engine.submit(np.int64(14))  # no deadline at all
        for _ in range(3):
            engine.tick()
        urgent = engine.submit(np.int64(2), deadline_ticks=30)
        engine.run_until_idle()
        assert straggler.preemptions == 1
        assert urgent.finish_tick <= urgent.deadline_tick

    def test_no_eviction_while_lanes_free(self):
        engine = fib.serve(
            num_lanes=3, preempt=DeadlinePreemptPolicy(), executor="fused"
        )
        engine.submit(np.int64(14), deadline_ticks=100000)
        for _ in range(3):
            engine.tick()
        engine.submit(np.int64(3), deadline_ticks=10)
        engine.run_until_idle()
        assert engine.telemetry.preemptions == 0

    def test_slack_delta_gates_eviction(self):
        """A waiter whose slack is within slack_delta of every victim's
        gains nothing from an eviction, so none happens."""
        engine = fib.serve(
            num_lanes=1,
            preempt=DeadlinePreemptPolicy(slack_delta=10**6),
            executor="fused",
        )
        engine.submit(np.int64(12), deadline_ticks=5000)
        for _ in range(3):
            engine.tick()
        engine.submit(np.int64(3), deadline_ticks=40)
        engine.run_until_idle()
        assert engine.telemetry.preemptions == 0

    def test_policy_validation_and_registry(self):
        with pytest.raises(ValueError, match="slack_delta"):
            DeadlinePreemptPolicy(slack_delta=0)
        policy = resolve_preempt_policy("deadline")
        assert isinstance(policy, DeadlinePreemptPolicy)
        assert "slack_delta" in repr(policy)

    def test_negative_deadline_rejected(self):
        engine = fib.serve(num_lanes=1)
        with pytest.raises(ValueError, match="deadline_ticks"):
            engine.submit(np.int64(3), deadline_ticks=-1)

    def test_deadline_telemetry_and_trace_event(self):
        """A completion past its deadline counts as a miss, scores against
        slo_attainment('deadline'), and emits a 'deadline' trace event
        just before its terminal."""
        engine = fib.serve(num_lanes=1, trace="events")
        missed = engine.submit(np.int64(12), deadline_ticks=1)
        made = engine.submit(np.int64(12), deadline_ticks=10**6)
        engine.run_until_idle()
        t = engine.telemetry
        assert t.deadline_misses == 1
        assert t.slo_attainment("deadline") == 0.5
        outcomes = t.deadline_outcomes()
        assert len(outcomes) == 2
        kinds = [e.kind for e in missed.trace()]
        assert "deadline" in kinds
        assert kinds.index("deadline") == len(kinds) - 2  # precedes terminal
        assert "deadline" not in [e.kind for e in made.trace()]
        from repro.observe import validate_timeline
        assert validate_timeline(missed.trace()) == "complete"


class _DrainingFleet:
    """Admission full, clock advancing, every other counter frozen — the
    observable shape of a fleet whose every shard is draining away."""

    def __init__(self):
        self.now = 0

    def busy(self):
        return True

    def admission_full(self):
        return True

    def tick(self):
        self.now += 1
        return True

    def progress_signature(self):
        return ("draining",)


class TestBackpressureWedge:
    def test_no_progress_backpressure_raises_instead_of_spinning(self):
        """Regression: map/serve_all backpressure used to tick forever
        against a server that could never admit, because the logical
        clock always advances; the progress signature excludes it."""
        from repro.serve.engine import serve_all

        stub = _DrainingFleet()
        with pytest.raises(QueueFullError, match="no progress"):
            serve_all(stub, [(np.int64(1),)])
        assert stub.now == NO_PROGRESS_LIMIT  # bounded, not forever

    def test_engine_progress_signature_moves_with_work(self):
        engine = fib.serve(num_lanes=1)
        idle = engine.progress_signature()
        engine.tick()  # an idle tick is NOT progress
        assert engine.progress_signature() == idle
        engine.submit(np.int64(5))
        moved = engine.progress_signature()
        assert moved != idle
        engine.tick()
        assert engine.progress_signature() != moved


class TestTelemetryEdgeCases:
    """Zero-traffic and failure-only corners must report zeros, not raise."""

    def test_fresh_telemetry_all_zeroes(self):
        t = ServeTelemetry(num_lanes=4)
        assert t.ticks == 0
        assert t.throughput() == 0.0
        assert t.lane_utilization() == 0.0
        assert t.mean_queue_wait() == 0.0
        assert t.max_queue_wait() == 0
        assert t.first_result_tick is None
        assert isinstance(t.summary(), str)

    def test_fresh_engine_zero_ticks(self):
        engine = fib.serve(num_lanes=2)
        t = engine.telemetry
        assert t.ticks == 0 and t.throughput() == 0.0
        assert t.lane_utilization() == 0.0 and t.mean_queue_wait() == 0.0
        assert isinstance(t.summary(), str)

    def test_zero_completions_with_failed_traffic(self):
        """Every request aborts on its budget: completed stays 0, derived
        metrics stay finite."""
        engine = fib.serve(num_lanes=2, default_step_budget=1)
        for _ in range(3):
            engine.submit(np.int64(20))
        engine.run_until_idle()
        t = engine.telemetry
        assert t.completed == 0 and t.failed == 3
        assert t.throughput() == 0.0
        assert t.first_result_tick is None
        assert t.mean_queue_wait() >= 0.0
        assert isinstance(t.summary(), str)

    def test_all_rejected_traffic(self):
        engine = fib.serve(num_lanes=1, max_queue_depth=0)
        for _ in range(4):
            with pytest.raises(QueueFullError):
                engine.submit(np.int64(5))
        t = engine.telemetry
        assert t.rejected == 4 and t.submitted == 0
        assert t.throughput() == 0.0 and t.mean_queue_wait() == 0.0
        engine.tick()  # an idle tick keeps everything well-defined
        assert t.idle_ticks == 1 and t.lane_utilization() == 0.0

# -- property-based serving (hypothesis) --------------------------------------
#
# Random arrival/step-budget schedules against Engine and Cluster.  The
# invariants: no lost or duplicated handle, every completed result
# bit-identical to the unbatched reference, and queue-wait accounting
# consistent with the logical clock.

# One request: (fib argument, arrival gap in ticks, optional step budget).
schedule_strategy = st.lists(
    st.tuples(
        st.integers(0, 14),
        st.integers(0, 3),
        st.one_of(st.none(), st.integers(1, 2000)),
    ),
    min_size=1,
    max_size=16,
)

_FIB_REF = {int(n): int(v) for n, v in zip(
    range(15), fib.run_pc(np.arange(15, dtype=np.int64))
)}


def check_serving_invariants(server, handles, telemetry):
    """Shared postconditions for a drained Engine or Cluster."""
    # No lost handles: every submission ended in exactly one terminal state.
    assert all(h.done() for _, h in handles)
    done = [h for _, h in handles if h.state == "done"]
    failed = [h for _, h in handles if h.state == "failed"]
    assert len(done) + len(failed) == len(handles)
    # No duplicated delivery: counters match the handle states one-for-one.
    assert telemetry.submitted == len(handles)
    assert telemetry.completed == len(done)
    assert telemetry.failed == len(failed)
    assert telemetry.injected == len(done) + len(failed)
    # Results bit-identical to the unbatched reference.
    for n, h in handles:
        if h.state == "done":
            assert int(h.result()) == _FIB_REF[n]
        else:
            assert isinstance(h.exception(), StepBudgetExceeded)
    # Queue-wait accounting consistent with the logical clock.
    for _, h in handles:
        assert h.inject_tick is not None and h.finish_tick is not None
        assert h.request.submit_tick <= h.inject_tick <= h.finish_tick
        assert h.finish_tick <= server.now
        assert h.queue_wait() == h.inject_tick - h.request.submit_tick
    check_preemption_invariants(handles, telemetry)


def check_trace_invariants(handles, telemetry, trace):
    """Every traced request's timeline is well-formed and the event
    stream reconstructs the telemetry counters exactly.

    Works for an engine's ServeTelemetry and a cluster's ClusterTelemetry
    alike (the counter names coincide by design).
    """
    from repro.observe import validate_timeline

    tracer = trace.tracer
    for _, h in handles:
        events = h.trace()
        terminal = validate_timeline(events)
        assert terminal == ("complete" if h.state == "done" else "fail")
        assert sum(1 for e in events if e.kind == "preempt") == h.preemptions
    assert tracer.count("submit") == telemetry.submitted
    assert tracer.count("inject") == telemetry.injected
    assert tracer.count("complete") == telemetry.completed
    assert tracer.count("fail") == telemetry.failed
    assert tracer.count("preempt") == telemetry.preemptions
    assert tracer.count("resume") == telemetry.resumes
    assert tracer.count("reject") == telemetry.rejected
    assert tracer.count("steal") == getattr(telemetry, "steals", 0)
    assert tracer.count("migrate") == getattr(
        telemetry, "preempted_migrations", 0
    )
    assert tracer.count("drain") == getattr(telemetry, "drain_migrations", 0)


def check_preemption_invariants(handles, telemetry):
    """Every eviction resumed exactly once, nothing lingers preempted.

    Works on per-shard and fleet telemetry alike: for a cluster, a
    migrated preemption is evicted on one shard and resumed on another, so
    only the aggregate counters balance (which is what ClusterTelemetry's
    rollup properties report).
    """
    assert telemetry.preemptions == telemetry.resumes
    assert sum(h.preemptions for _, h in handles) == telemetry.preemptions
    for _, h in handles:
        assert h.snapshot is None  # no checkpoint survives the drain
        if h.preemptions:
            assert h.preempt_tick is not None
            # The last eviction was followed by a resume (or the request
            # failed its budget *while running*, never while evicted —
            # eviction happens only to running lanes, so a drained server
            # implies every eviction was paired with a resume).
            assert h.resume_tick is not None
            assert h.preempt_tick <= h.resume_tick <= h.finish_tick


def check_deadline_invariants(handles, telemetry):
    """Deadline accounting reconstructs from the handles exactly."""
    done = [h for _, h in handles if h.state == "done"]
    expect_misses = sum(
        1
        for h in done
        if h.deadline_tick is not None and h.finish_tick > h.deadline_tick
    )
    assert telemetry.deadline_misses == expect_misses
    carried = [
        (h.finish_tick - h.request.submit_tick, h.request.deadline_ticks)
        for h in done
        if h.request.deadline_ticks is not None
    ]
    attained = (
        sum(1 for lat, dl in carried if lat <= dl) / len(carried)
        if carried
        else 0.0
    )
    assert telemetry.slo_attainment("deadline") == attained


class TestPropertyBasedSchedules:
    @settings(max_examples=25, deadline=None)
    @given(
        schedule=schedule_strategy,
        num_lanes=st.integers(1, 3),
        executor=st.sampled_from(["eager", "fused", "superblock"]),
    )
    def test_engine_random_schedule_invariants(
        self, schedule, num_lanes, executor
    ):
        engine = fib.serve(
            num_lanes=num_lanes, max_stack_depth=64, executor=executor
        )
        handles = []
        for n, gap, budget in schedule:
            for _ in range(gap):
                engine.tick()
            handles.append(
                (n, engine.submit(np.int64(n), step_budget=budget))
            )
        engine.run_until_idle()
        t = engine.telemetry
        check_serving_invariants(engine, handles, t)
        ids = [h.request_id for _, h in handles]
        assert len(set(ids)) == len(ids)
        assert t.ticks == engine.now
        assert t.lane_slots == t.ticks * num_lanes
        assert 0 <= t.busy_lane_slots <= t.lane_slots
        assert len(t.queue_waits) == t.injected
        assert sum(t.queue_waits) == sum(h.queue_wait() for _, h in handles)
        assert engine.pool.busy_count() == 0 and len(engine.queue) == 0

    @settings(max_examples=20, deadline=None)
    @given(
        schedule=st.lists(
            st.tuples(
                st.integers(0, 14),                          # fib argument
                st.integers(0, 3),                           # arrival gap
                st.integers(0, 3),                           # priority
                st.one_of(st.none(), st.integers(1, 2000)),  # step budget
            ),
            min_size=1,
            max_size=14,
        ),
        num_lanes=st.integers(1, 3),
        min_age=st.integers(0, 4),
        max_per_tick=st.one_of(st.none(), st.just(1)),
        executor=st.sampled_from(["fused", "superblock"]),
        resume_batching=st.booleans(),
    )
    def test_engine_preemption_schedule_invariants(
        self, schedule, num_lanes, min_age, max_per_tick, executor,
        resume_batching
    ):
        """Random arrivals x priorities under an always-on preempt policy:
        no lost/duplicated handles, every eviction resumes exactly once,
        results bit-identical to the unbatched reference, and every traced
        timeline well-formed (submit → inject → ... → one terminal).
        Drawn across executors (superblock resumes sweep lanes mid-run)
        and with resume re-batching on and off (pc-cohort refill must
        reorder seating without losing or duplicating anything)."""
        engine = fib.serve(
            num_lanes=num_lanes,
            max_stack_depth=64,
            executor=executor,
            resume_batching=resume_batching,
            preempt=PreemptPolicy(min_age=min_age, max_per_tick=max_per_tick),
            trace="events",
        )
        handles = []
        for n, gap, priority, budget in schedule:
            for _ in range(gap):
                engine.tick()
            handles.append(
                (
                    n,
                    engine.submit(
                        np.int64(n), priority=priority, step_budget=budget
                    ),
                )
            )
        engine.run_until_idle()
        check_serving_invariants(engine, handles, engine.telemetry)
        check_trace_invariants(handles, engine.telemetry, engine.trace)
        assert engine.pool.busy_count() == 0 and len(engine.queue) == 0

    @settings(max_examples=20, deadline=None)
    @given(
        schedule=st.lists(
            st.tuples(
                st.integers(0, 14),                          # fib argument
                st.integers(0, 3),                           # arrival gap
                st.one_of(st.none(), st.integers(0, 500)),   # deadline_ticks
                st.one_of(st.none(), st.integers(1, 2000)),  # step budget
            ),
            min_size=1,
            max_size=14,
        ),
        num_lanes=st.integers(1, 3),
        slack_delta=st.sampled_from([1, 5, 50]),
        min_age=st.integers(0, 4),
        max_per_tick=st.one_of(st.none(), st.just(1)),
        executor=st.sampled_from(["fused", "superblock"]),
    )
    def test_engine_deadline_schedule_invariants(
        self, schedule, num_lanes, slack_delta, min_age, max_per_tick,
        executor
    ):
        """Random deadline-carrying arrivals under slack-ranked eviction:
        the usual serving invariants (no lost/duplicated handles, every
        eviction resumed exactly once, bit-identical results, well-formed
        timelines) plus deadline accounting that reconstructs from the
        handles exactly."""
        engine = fib.serve(
            num_lanes=num_lanes,
            max_stack_depth=64,
            executor=executor,
            preempt=DeadlinePreemptPolicy(
                slack_delta=slack_delta,
                min_age=min_age,
                max_per_tick=max_per_tick,
            ),
            trace="events",
        )
        handles = []
        for n, gap, deadline, budget in schedule:
            for _ in range(gap):
                engine.tick()
            handles.append(
                (
                    n,
                    engine.submit(
                        np.int64(n),
                        step_budget=budget,
                        deadline_ticks=deadline,
                    ),
                )
            )
        engine.run_until_idle()
        check_serving_invariants(engine, handles, engine.telemetry)
        check_trace_invariants(handles, engine.telemetry, engine.trace)
        check_deadline_invariants(handles, engine.telemetry)
        assert engine.pool.busy_count() == 0 and len(engine.queue) == 0

    @settings(max_examples=15, deadline=None)
    @given(
        schedule=schedule_strategy,
        num_engines=st.integers(1, 3),
        num_lanes=st.integers(1, 2),
        policy=st.sampled_from(["round_robin", "least_loaded", "power_of_two"]),
        seed=st.integers(0, 3),
    )
    def test_cluster_random_schedule_invariants(
        self, schedule, num_engines, num_lanes, policy, seed
    ):
        cluster = fib.serve_cluster(
            num_engines,
            num_lanes=num_lanes,
            policy=policy,
            seed=seed,
            max_stack_depth=64,
        )
        handles = []
        for n, gap, budget in schedule:
            for _ in range(gap):
                cluster.tick()
            handles.append(
                (n, cluster.submit(np.int64(n), step_budget=budget))
            )
        cluster.run_until_idle()
        t = cluster.telemetry
        check_serving_invariants(cluster, handles, t)
        assert t.rejected == 0  # unbounded queues never reject
        for _, h in handles:
            assert h.shard is not None and 0 <= h.shard < num_engines
        # Shard clocks stay in lock-step with the cluster clock.
        assert t.ticks == cluster.now
        for shard in t.shards:
            assert shard.ticks == cluster.now
        assert sum(t.completed_per_shard()) == t.completed
        assert cluster.load() == 0


from .test_random_programs import (  # noqa: E402  (generator reuse)
    compile_source,
    program_strategy,
    render_program,
)


class TestGeneratedProgramServing:
    """Reuse the random-program generator: generated programs served
    through a sharded cluster must match their static run_pc batch."""

    @settings(max_examples=8, deadline=None)
    @given(
        spec=program_strategy,
        a_vals=st.lists(st.integers(-5, 20), min_size=2, max_size=6),
        b_vals=st.lists(st.integers(-5, 20), min_size=2, max_size=6),
        depth=st.integers(0, 3),
        num_engines=st.integers(1, 3),
    )
    def test_generated_program_cluster_matches_static(
        self, spec, a_vals, b_vals, depth, num_engines
    ):
        fn = compile_source(render_program(spec))
        z = min(len(a_vals), len(b_vals))
        a = np.asarray(a_vals[:z], dtype=np.int64)
        b = np.asarray(b_vals[:z], dtype=np.int64)
        n = np.full(z, depth, dtype=np.int64)
        expected = fn.run_pc(a, b, n, max_stack_depth=16)
        cluster = fn.serve_cluster(
            num_engines, num_lanes=2, policy="least_loaded", max_stack_depth=16
        )
        results = cluster.map([(a[i], b[i], n[i]) for i in range(z)])
        np.testing.assert_array_equal(np.stack(results), expected)
