"""Tests for the hybrid strategy: local static control + fused blocks."""

import numpy as np
import pytest

from repro.backend.local_fusion import compile_local_executors
from repro.frontend.registry import default_registry
from repro.ir.instructions import CallOp
from repro.nuts import NutsKernel
from repro.targets import CorrelatedGaussian
from repro.vm.local_static import LocalStaticInterpreter

from .programs import ALL_EXAMPLES, fib, gcd, use_divmod


class TestSegmentation:
    def test_pure_blocks_become_single_segment(self):
        plans = compile_local_executors(gcd.ir, default_registry, batch_size=4)
        for block, plan in zip(gcd.ir.blocks, plans):
            call_count = sum(isinstance(op, CallOp) for op in block.ops)
            assert call_count == 0
            assert len(plan) <= 1  # at most one fused closure, no calls

    def test_calls_split_segments(self):
        plans = compile_local_executors(fib.ir, default_registry, batch_size=4)
        recursive_block = fib.ir.blocks[-1]  # the two-call else branch
        call_count = sum(isinstance(op, CallOp) for op in recursive_block.ops)
        assert call_count == 2
        plan = plans[len(fib.ir.blocks) - 1]
        assert sum(isinstance(seg, CallOp) for seg in plan) == 2
        # Fused segments interleave with the calls.
        assert any(callable(seg) and not isinstance(seg, CallOp) for seg in plan)

    def test_fused_source_is_attached(self):
        plans = compile_local_executors(gcd.ir, default_registry, batch_size=4)
        for plan in plans:
            for seg in plan:
                if callable(seg) and not isinstance(seg, CallOp):
                    assert "def _fused_" in seg.__fused_source__


class TestHybridDifferential:
    @pytest.mark.parametrize(
        "name", ["fib", "ackermann", "gcd", "collatz_steps", "use_divmod",
                 "recursive_pair", "loop_calling", "newton_sqrt", "rng_walk"]
    )
    def test_hybrid_matches_reference(self, name):
        fn, inputs = ALL_EXAMPLES[name]
        expected = fn.run_reference(*inputs)
        actual = fn.run_local(*inputs, fuse_blocks=True)
        if isinstance(expected, tuple):
            for e, a in zip(expected, actual):
                np.testing.assert_array_equal(e, a)
        else:
            np.testing.assert_array_equal(expected, actual)

    def test_gather_mode_rejected(self):
        with pytest.raises(ValueError):
            LocalStaticInterpreter(gcd.program, mode="gather", fuse_blocks=True)

    def test_hybrid_nuts_bitwise_identical(self):
        target = CorrelatedGaussian(dim=4, rho=0.5)
        kernel = NutsKernel(target)
        q0 = target.initial_state(5, seed=1)
        ref = kernel.run(q0, step_size=0.15, n_trajectories=3, max_depth=4,
                         seed=2, strategy="reference")
        hyb = kernel.run(q0, step_size=0.15, n_trajectories=3, max_depth=4,
                         seed=2, strategy="hybrid")
        np.testing.assert_allclose(hyb.positions, ref.positions)
        np.testing.assert_allclose(hyb.grad_evals, ref.grad_evals)


class TestHybridDispatchCount:
    def test_hybrid_dispatches_per_segment_not_per_op(self):
        """The point of fusion: one dispatch per straight-line run instead of
        one per primitive.  Count runtime segment executions against the
        eager interpreter's per-primitive kernel calls."""
        from repro.vm.instrumentation import Instrumentation

        inputs = (np.array([20, 35, 50]), np.array([12, 25, 15]))
        eager_instr = Instrumentation()
        eager = LocalStaticInterpreter(gcd.program, instrumentation=eager_instr)
        eager.run(list(inputs))
        assert eager_instr.kernel_calls > 0

        dispatches = [0]
        hybrid = LocalStaticInterpreter(gcd.program, fuse_blocks=True)
        plans = hybrid._plans_for(gcd.program.main, 3)
        for plan in plans:
            for i, seg in enumerate(plan):
                if callable(seg) and not isinstance(seg, CallOp):
                    def counted(storage, mask, _seg=seg):
                        dispatches[0] += 1
                        return _seg(storage, mask)

                    plan[i] = counted
        hybrid.run(list(inputs))
        assert 0 < dispatches[0] < eager_instr.kernel_calls

    def test_segments_cover_multi_op_blocks(self):
        """Blocks with several primitives fuse to a single closure."""
        plans = compile_local_executors(gcd.ir, default_registry, batch_size=3)
        multi_op = [
            (block, plan)
            for block, plan in zip(gcd.ir.blocks, plans)
            if len([op for op in block.ops if not isinstance(op, CallOp)]) >= 2
        ]
        assert multi_op, "corpus lost its multi-op block"
        for block, plan in multi_op:
            assert len(plan) == 1
