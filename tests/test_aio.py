"""Tests for the asyncio front door (repro.serve.aio).

The load-bearing property mirrors the serving engine's own: wall-clock
submission jitter must never change *what* the machine computes.  The
async layer stamps every submission with the logical tick it landed on,
and replaying that recorded schedule synchronously must reproduce the
results, the event stream, and the telemetry exactly.
"""

import asyncio

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.serve import (
    Arrival,
    AsyncServer,
    DeadlinePreemptPolicy,
    NO_PROGRESS_LIMIT,
    QueueFullError,
    StepBudgetExceeded,
    replay_arrivals,
)

from .programs import fib
from .test_serve import _FIB_REF


class TestAsyncSubmission:
    @pytest.mark.asyncio
    async def test_submit_and_await(self):
        engine = fib.serve(num_lanes=2, max_stack_depth=64)
        async with AsyncServer(engine) as server:
            handle = await server.submit(np.int64(10))
            assert int(await handle) == _FIB_REF[10]
            assert handle.done()
        assert not engine.busy()
        assert engine.telemetry.completed == 1

    @pytest.mark.asyncio
    async def test_concurrent_submitters_all_resolve(self):
        sizes = (3, 9, 12, 0, 7)
        engine = fib.serve(num_lanes=2, max_stack_depth=64)

        async def client(n):
            handle = await server.submit(np.int64(n))
            return int(await handle)

        async with AsyncServer(engine) as server:
            results = await asyncio.gather(*(client(n) for n in sizes))
        assert results == [_FIB_REF[n] for n in sizes]

    @pytest.mark.asyncio
    async def test_map_yields_in_completion_order(self):
        sizes = [12, 1, 9, 2, 14, 0]
        engine = fib.serve(num_lanes=2, max_stack_depth=64)
        async with AsyncServer(engine) as server:
            got = [
                int(r)
                async for r in server.map([(np.int64(n),) for n in sizes])
            ]
        assert sorted(got) == sorted(_FIB_REF[n] for n in sizes)
        # Early finishers stream out before the longest request: fib(14)
        # dominates the machine, so it must be the last yield (the engine
        # is deterministic, so this order is stable, not probabilistic).
        assert got[-1] == _FIB_REF[14]
        assert got != [_FIB_REF[n] for n in sizes]

    @pytest.mark.asyncio
    async def test_backpressure_awaits_a_slot_instead_of_raising(self):
        sizes = [5, 8, 3, 11, 2, 6]
        engine = fib.serve(num_lanes=1, max_queue_depth=1, max_stack_depth=64)
        async with AsyncServer(engine) as server:
            handles = [await server.submit(np.int64(n)) for n in sizes]
            results = [int(await h) for h in handles]
        assert results == [_FIB_REF[n] for n in sizes]
        # The queue overflowed from the engine's point of view many times,
        # yet nothing was rejected: pressure became an await.
        assert engine.telemetry.rejected == 0
        assert engine.telemetry.completed == len(sizes)
        ticks = [a.tick for a in server.arrivals]
        assert ticks == sorted(ticks)
        assert ticks[-1] > 0  # later submissions genuinely waited

    @pytest.mark.asyncio
    async def test_parked_submitters_are_admitted_fifo(self):
        sizes = (9, 8, 7, 6, 5)
        engine = fib.serve(num_lanes=1, max_queue_depth=1, max_stack_depth=64)
        async with AsyncServer(engine) as server:
            tasks = [
                asyncio.ensure_future(server.submit(np.int64(n)))
                for n in sizes
            ]
            await asyncio.sleep(0)
            assert server.queue_depth >= 1  # someone is parked right now
            handles = await asyncio.gather(*tasks)
            await server.drain()
        assert all(h.done() for h in handles)
        # FIFO admission: the recorded arrival inputs preserve submission
        # order even though most submitters were parked on backpressure.
        assert [int(a.inputs[0]) for a in server.arrivals] == list(sizes)
        ids = [h.request_id for h in handles]
        assert ids == sorted(ids)

    @pytest.mark.asyncio
    async def test_failure_raised_only_when_awaited(self):
        engine = fib.serve(num_lanes=1, max_stack_depth=64)
        async with AsyncServer(engine) as server:
            handle = await server.submit(np.int64(12), step_budget=1)
            same = await handle.wait()  # must not raise
            assert same is handle and handle.done()
            with pytest.raises(StepBudgetExceeded):
                handle.result()
            with pytest.raises(StepBudgetExceeded):
                await handle

    @pytest.mark.asyncio
    async def test_submit_after_close_raises(self):
        engine = fib.serve(num_lanes=1, max_stack_depth=64)
        server = AsyncServer(engine)
        async with server:
            pass
        with pytest.raises(RuntimeError):
            await server.submit(np.int64(3))

    def test_negative_tick_interval_rejected(self):
        engine = fib.serve(num_lanes=1, max_stack_depth=64)
        with pytest.raises(ValueError):
            AsyncServer(engine, tick_interval=-0.001)

    @pytest.mark.asyncio
    async def test_wall_clock_pacing_slows_the_loop(self):
        interval = 0.005
        engine = fib.serve(num_lanes=1, max_stack_depth=64)
        async with AsyncServer(engine, tick_interval=interval) as server:
            loop = asyncio.get_running_loop()
            start = loop.time()
            handle = await server.submit(np.int64(8))
            await handle
            elapsed = loop.time() - start
        assert engine.now >= 10
        # Each tick pays its interval; the pacing deadline only resets when
        # the loop falls *behind*, so a conservative floor must hold.
        assert elapsed >= interval * min(engine.now, 5)


class TestArrivalReplay:
    @pytest.mark.asyncio
    async def test_replay_matches_live_run_bitwise(self):
        def build():
            return fib.serve(
                num_lanes=2, max_stack_depth=64,
                preempt=DeadlinePreemptPolicy(),
            )

        engine = build()
        async with AsyncServer(engine) as server:
            first = await server.submit(np.int64(13), deadline_ticks=5000)
            while engine.now < 4:
                await asyncio.sleep(0)
            rest = [
                await server.submit(np.int64(n), deadline_ticks=60)
                for n in (4, 2, 6)
            ]
            handles = [first] + rest
            for h in handles:
                await h.wait()
        arrivals = server.arrivals
        assert [a.tick for a in arrivals] == sorted(a.tick for a in arrivals)

        fresh = build()
        replayed = replay_arrivals(fresh, arrivals)
        assert len(replayed) == len(handles)
        for live, rep in zip(handles, replayed):
            assert rep.state == "done"
            assert int(rep.result()) == int(live.handle.result())
            assert rep.finish_tick == live.handle.finish_tick
            assert rep.preemptions == live.handle.preemptions
        assert fresh.telemetry.preemptions == engine.telemetry.preemptions
        assert fresh.telemetry.deadline_misses == engine.telemetry.deadline_misses

    @pytest.mark.asyncio
    async def test_replay_event_stream_identical(self):
        from repro.observe import Trace

        def build():
            return fib.serve(
                num_lanes=2, max_stack_depth=64,
                preempt=DeadlinePreemptPolicy(), trace=Trace(),
            )

        engine = build()
        async with AsyncServer(engine) as server:
            handles = [
                await server.submit(np.int64(n), deadline_ticks=200)
                for n in (10, 3, 7, 1)
            ]
            for h in handles:
                await h.wait()
        live_events = [e.as_dict() for e in engine.trace.tracer.events]
        assert engine.trace.tracer.count("arrive") == len(server.arrivals)

        for _ in range(2):
            fresh = build()
            replay_arrivals(fresh, server.arrivals)
            replay_events = [e.as_dict() for e in fresh.trace.tracer.events]
            assert replay_events == live_events

    def test_replay_rejects_past_arrivals(self):
        engine = fib.serve(num_lanes=1, max_stack_depth=64)
        arrivals = [
            Arrival(tick=3, inputs=(np.int64(2),)),
            Arrival(tick=1, inputs=(np.int64(2),)),
        ]
        with pytest.raises(ValueError, match="tick-ordered"):
            replay_arrivals(engine, arrivals)


class _WedgedServer:
    """A server whose admission is full and whose counters never move —
    the shape of a fleet where every shard is draining for retirement."""

    def __init__(self, busy_ticks):
        self.now = 0
        self._busy_ticks = busy_ticks

    def busy(self):
        return self.now < self._busy_ticks

    def admission_full(self):
        return True

    def tick(self):
        self.now += 1
        return True

    def progress_signature(self):
        return ("wedged",)


class TestWedgeDetection:
    @pytest.mark.asyncio
    async def test_wedged_server_fails_parked_waiters(self):
        stub = _WedgedServer(busy_ticks=NO_PROGRESS_LIMIT + 8)
        async with AsyncServer(stub) as server:
            with pytest.raises(QueueFullError, match="no progress"):
                await server.submit(np.int64(1))
        # The driver failed the waiter after the no-progress limit, not
        # after the stub happened to go idle.
        assert stub.now >= NO_PROGRESS_LIMIT


class _StubHandle:
    def __init__(self, request_id):
        self.request_id = request_id

    def done(self):
        return False


class _CrashingServer:
    """A server whose tick raises — the engine hit an internal error
    (bad input dtype, backend bug) while the driver owned the loop."""

    def __init__(self):
        self.now = 0
        self._submitted = 0

    def busy(self):
        return self._submitted > 0

    def admission_full(self):
        return False

    def submit(self, *inputs, priority=0, step_budget=None, deadline_ticks=None):
        self._submitted += 1
        return _StubHandle(request_id=self._submitted)

    def tick(self):
        raise ZeroDivisionError("backend exploded mid-tick")

    def progress_signature(self):
        return (self.now,)


class TestDriverCrash:
    @pytest.mark.asyncio
    async def test_crash_propagates_to_awaiters_instead_of_hanging(self):
        stub = _CrashingServer()
        server = AsyncServer(stub)
        handle = await server.submit(np.int64(1))
        # The engine error reaches the awaiter (chained), rather than the
        # driver dying silently and the await hanging forever.
        with pytest.raises(RuntimeError, match="driver crashed") as excinfo:
            await handle
        assert isinstance(excinfo.value.__cause__, ZeroDivisionError)
        # wait() still follows the observe-to-raise contract.
        assert (await handle.wait()).done()
        with pytest.raises(RuntimeError, match="driver crashed"):
            handle.result()
        # The driver refuses to restart over an engine in unknown state.
        with pytest.raises(RuntimeError, match="cannot be restarted"):
            await server.submit(np.int64(2))
        await server.aclose()


# -- property-based async interleavings ---------------------------------------
#
# Random submission schedules with cooperative yields between them, some
# requests carrying deadlines under a deadline-eviction policy.  The
# invariants: no lost or duplicated handle, every eviction resumed exactly
# once, results bit-identical to the unbatched reference — and the
# recorded arrival schedule replays to an identical run.

interleave_schedule = st.lists(
    st.tuples(
        st.integers(0, 12),                          # fib argument
        st.integers(0, 2),                           # event-loop yields first
        st.one_of(st.none(), st.integers(0, 400)),   # deadline_ticks
    ),
    min_size=1,
    max_size=10,
)


class TestAsyncPropertySchedules:
    @settings(max_examples=15, deadline=None)
    @given(
        schedule=interleave_schedule,
        num_lanes=st.integers(1, 2),
        max_queue_depth=st.one_of(st.none(), st.just(2)),
    )
    def test_async_interleavings_match_replay(
        self, schedule, num_lanes, max_queue_depth
    ):
        def build():
            return fib.serve(
                num_lanes=num_lanes,
                max_stack_depth=64,
                max_queue_depth=max_queue_depth,
                preempt=DeadlinePreemptPolicy(),
            )

        async def scenario():
            engine = build()
            async with AsyncServer(engine) as server:
                handles = []
                for n, yields, deadline in schedule:
                    for _ in range(yields):
                        await asyncio.sleep(0)
                    handles.append(
                        (
                            n,
                            await server.submit(
                                np.int64(n), deadline_ticks=deadline
                            ),
                        )
                    )
                results = [(n, await h) for n, h in handles]
            return engine, server.arrivals, handles, results

        engine, arrivals, handles, results = asyncio.run(scenario())
        # No lost or duplicated handles.
        ids = [h.request_id for _, h in handles]
        assert len(set(ids)) == len(ids) == len(schedule)
        assert all(h.done() for _, h in handles)
        for n, result in results:
            assert int(result) == _FIB_REF[n]
        t = engine.telemetry
        assert t.submitted == t.completed == len(schedule)
        assert t.rejected == 0
        # Every eviction resumed exactly once.
        assert t.preemptions == t.resumes
        assert sum(h.handle.preemptions for _, h in handles) == t.preemptions
        # The recorded schedule replays to the identical run.
        fresh = build()
        replayed = replay_arrivals(fresh, arrivals)
        for (n, live), rep in zip(handles, replayed):
            assert rep.state == "done"
            assert int(rep.result()) == _FIB_REF[n]
            assert rep.finish_tick == live.handle.finish_tick
        assert fresh.telemetry.preemptions == t.preemptions
        assert fresh.telemetry.deadline_misses == t.deadline_misses
