"""Differential tests: every corpus program, every strategy, identical results.

This is the backbone correctness argument for the whole system: plain
single-example Python is the semantics; Algorithm 1 and Algorithm 2 (under
every mode, scheduler, and optimization toggle) must reproduce it exactly.
"""

import numpy as np
import pytest

from repro.lowering.pipeline import lower_program
from repro.vm.program_counter import run_program_counter

from .helpers import OPTION_GRID, assert_all_strategies_agree, assert_results_equal
from .programs import ALL_EXAMPLES, ackermann, fib, gcd, rng_walk


@pytest.mark.parametrize("name", sorted(ALL_EXAMPLES))
def test_all_strategies_agree(name):
    fn, inputs = ALL_EXAMPLES[name]
    assert_all_strategies_agree(fn, inputs)


@pytest.mark.parametrize("opts_index", range(len(OPTION_GRID)))
@pytest.mark.parametrize("name", ["fib", "ackermann", "gcd", "recursive_pair", "loop_calling"])
def test_pc_optimization_grid(name, opts_index):
    """Every lowering-optimization combination preserves semantics."""
    fn, inputs = ALL_EXAMPLES[name]
    expected = fn.run_reference(*inputs)
    program = lower_program(fn.program, optimize=OPTION_GRID[opts_index])
    actual = run_program_counter(program, list(inputs), max_stack_depth=64)
    assert_results_equal(expected, actual, context=f"{name} opts={opts_index}")


@pytest.mark.parametrize("mode", ["mask", "gather"])
@pytest.mark.parametrize("top_cache", [True, False])
def test_pc_mode_cache_grid(mode, top_cache):
    batch = np.array([0, 1, 5, 9, 12, 3])
    expected = fib.run_reference(batch)
    actual = fib.run_pc(batch, mode=mode, top_cache=top_cache, max_stack_depth=32)
    assert_results_equal(expected, actual)


def test_batch_of_one():
    for name, (fn, inputs) in ALL_EXAMPLES.items():
        single = tuple(np.asarray(x)[:1] for x in inputs)
        assert_all_strategies_agree(fn, single)


def test_uniform_batch_matches_scalar():
    """A batch of identical members equals the scalar result replicated."""
    scalar = int(fib(9))
    batch = np.full(6, 9)
    out = fib.run_pc(batch)
    np.testing.assert_array_equal(out, np.full(6, scalar))


def test_results_independent_of_batch_companions():
    """Each member's result must not depend on who else is in the batch."""
    rng = np.random.default_rng(0)
    base = rng.integers(0, 12, size=8)
    expected = fib.run_reference(base)
    for _ in range(3):
        companions = rng.integers(0, 12, size=5)
        batch = np.concatenate([base, companions])
        out = np.asarray(fib.run_pc(batch, max_stack_depth=32))[: base.size]
        np.testing.assert_array_equal(out, expected)
        out_local = np.asarray(fib.run_local(batch))[: base.size]
        np.testing.assert_array_equal(out_local, expected)


def test_random_fib_batches():
    rng = np.random.default_rng(42)
    for _ in range(5):
        z = int(rng.integers(1, 17))
        batch = rng.integers(0, 14, size=z)
        assert_all_strategies_agree(fib, (batch,), max_stack_depth=32)


def test_random_gcd_batches():
    rng = np.random.default_rng(7)
    for _ in range(5):
        z = int(rng.integers(1, 33))
        a = rng.integers(0, 1000, size=z)
        b = rng.integers(0, 1000, size=z)
        assert_all_strategies_agree(gcd, (a, b))


def test_random_ackermann_batches():
    rng = np.random.default_rng(3)
    for _ in range(3):
        z = int(rng.integers(1, 9))
        m = rng.integers(0, 3, size=z)
        n = rng.integers(0, 4, size=z)
        assert_all_strategies_agree(ackermann, (m, n), max_stack_depth=128)


def test_rng_walk_strategy_invariance():
    """Counter-based RNG makes chains identical across all strategies."""
    from repro import ops

    ctr = ops.make_counters(123, 7)
    n = np.array([0, 1, 3, 10, 25, 4, 17])
    assert_all_strategies_agree(rng_walk, (ctr, n))
