"""Unit tests for the superblock layer: region selection, the region-aware
scheduler, and resume re-batching's queue/engine mechanics.

The end-to-end properties — bit-identical outputs across executors, no
lost/duplicated handles under preempt+resume schedules, compile/bind
accounting — live in tests/test_executors.py, tests/test_serve.py, and
tests/test_cluster.py; this file pins down the building blocks those
properties rest on.
"""

from types import SimpleNamespace

import numpy as np
import pytest

from repro.backend.fusion import SuperblockExecutor
from repro.backend.regions import (
    DEFAULT_MAX_LENGTH,
    RegionTable,
    select_regions,
)
from repro.observe.profile import BlockProfile, BlockRow
from repro.serve.engine import Engine
from repro.serve.queue import RequestQueue, ResultHandle, ServeRequest
from repro.vm.instrumentation import Instrumentation
from repro.vm.scheduler import RegionScheduler, make_scheduler

from .programs import ALL_EXAMPLES, fib


def _profile(rows):
    """A fake BlockProfile: ``{index: (active, slots)}``."""
    return BlockProfile({
        i: BlockRow(
            index=i, label=f"b{i}", source="", executions=1,
            active=active, live=slots, slots=slots,
        )
        for i, (active, slots) in rows.items()
    })


# fib's stack CFG (pinned by the static-chain test below):
#   0 Branch -> 1 | 2        (base-case test)
#   1 Return                 (base case)
#   2 PushJump ret=3 goto=0  (first recursive call)
#   3 PushJump ret=4 goto=0  (second recursive call)
#   4 Return                 (sum and return)


class TestRegionSelection:
    def test_static_chains_fib(self):
        table = select_regions(fib.stack_program())
        assert table.chains == ((0,), (1,), (2, 0), (3, 0), (4,))
        assert table.next_block == (None, None, 0, 0, None)
        assert not table.profiled
        assert table.chain(2) == (2, 0)
        assert table.mean_length() == pytest.approx(7 / 5)

    @pytest.mark.parametrize("name", sorted(ALL_EXAMPLES))
    def test_structural_invariants_every_program(self, name):
        fn, _ = ALL_EXAMPLES[name]
        program = fn.stack_program()
        table = select_regions(program)
        assert len(table.chains) == len(program.blocks)
        for i, chain in enumerate(table.chains):
            # Every block fronts its own run; members follow the selected
            # continuation edges, never repeat, and respect the cap.
            assert chain[0] == i
            assert 1 <= len(chain) <= DEFAULT_MAX_LENGTH
            assert len(set(chain)) == len(chain)
            for a, b in zip(chain, chain[1:]):
                assert table.next_block[a] == b

    def test_max_length_caps_and_validates(self):
        table = select_regions(fib.stack_program(), max_length=1)
        assert all(len(c) == 1 for c in table.chains)
        with pytest.raises(ValueError, match="max_length"):
            select_regions(fib.stack_program(), max_length=0)

    def test_profile_extends_dominant_branch(self):
        # Recursive side (block 2) dominates the base case (block 1), so
        # the entry's run extends through the branch.
        profile = _profile({1: (10, 120), 2: (100, 120)})
        table = select_regions(fib.stack_program(), profile=profile)
        assert table.profiled
        assert table.next_block[0] == 2
        assert table.chain(0) == (0, 2)
        # ...and the loop 2 -> 0 -> 2 stops at the revisit.
        assert table.chain(2) == (2, 0)

    def test_profile_tie_does_not_extend(self):
        profile = _profile({1: (50, 120), 2: (50, 120)})
        table = select_regions(fib.stack_program(), profile=profile)
        assert table.next_block[0] is None
        assert table.chain(0) == (0,)

    def test_profile_min_slots_gates_extension(self):
        # Block 2 dominates but on 4 offered slots of evidence — below the
        # floor, the branch must not extend.
        profile = _profile({1: (1, 120), 2: (4, 4)})
        assert select_regions(
            fib.stack_program(), profile=profile
        ).next_block[0] == 2
        assert select_regions(
            fib.stack_program(), profile=profile, min_slots=5
        ).next_block[0] is None

    def test_table_json_round_trips(self):
        table = select_regions(fib.stack_program())
        doc = table.to_json()
        assert doc["chains"] == [list(c) for c in table.chains]
        assert doc["profiled"] is False
        assert "mean_length" in doc
        assert "blocks=5" in repr(table)


class TestRegionScheduler:
    @staticmethod
    def _table(chains):
        nxt = tuple(c[1] if len(c) > 1 else None for c in chains)
        return RegionTable(chains=tuple(chains), next_block=nxt, profiled=False)

    def test_registered_by_name(self):
        assert isinstance(make_scheduler("region"), RegionScheduler)

    def test_prefers_longest_covered_run(self):
        sched = RegionScheduler()
        sched.set_regions(self._table([(0,), (1, 0), (2,)]))
        # 3 lanes at block 0 (run length 1, score 3) vs 2 lanes at block 1
        # (run length 2, score 4): the run wins.
        pcs = np.array([0, 0, 0, 1, 1])
        assert sched.select(pcs, exit_index=3) == 1

    def test_ties_go_earliest_and_no_table_degrades(self):
        sched = RegionScheduler()
        # Without a table every run has length 1: most-active wins,
        # equal-score ties go to the earliest block.
        assert sched.select(np.array([2, 2, 0, 0]), exit_index=3) == 0
        sched.reset()
        assert sched.select(np.array([2, 2, 0]), exit_index=3) == 2

    def test_starvation_guard(self):
        sched = RegionScheduler(max_defer=2)
        sched.set_regions(self._table([(0, 1), (1,), (2,)]))
        pcs = np.array([0, 0, 2])  # block 2 always loses on score
        assert sched.select(pcs, exit_index=3) == 0
        assert sched.select(pcs, exit_index=3) == 0
        # Passed over max_defer consecutive selects: chosen unconditionally.
        assert sched.select(pcs, exit_index=3) == 2
        assert sched.select(pcs, exit_index=3) == 0

    def test_no_live_lanes_and_reset(self):
        sched = RegionScheduler(max_defer=1)
        assert sched.select(np.array([5, 5]), exit_index=5) is None
        sched.select(np.array([0, 1]), exit_index=5)
        sched.reset()
        assert sched._age == {}
        with pytest.raises(ValueError, match="max_defer"):
            RegionScheduler(max_defer=0)

    def test_drives_a_real_superblock_run(self):
        ns = np.array([3, 9, 6, 11], dtype=np.int64)
        out = fib.run_pc(
            ns, executor="superblock", scheduler="region", max_stack_depth=32
        )
        np.testing.assert_array_equal(out, fib.run_pc(ns, max_stack_depth=32))


class TestSuperblockDispatch:
    def test_host_dispatches_below_block_executions(self):
        instr = {}
        for executor in ("fused", "superblock"):
            instr[executor] = Instrumentation()
            fib.run_pc(
                np.array([9, 4, 11, 7]),
                executor=executor,
                instrumentation=instr[executor],
                max_stack_depth=32,
            )
        # Fused pays one host dispatch per block execution; superblock
        # sweeps multiple member blocks into one dispatch.
        fused, sb = instr["fused"], instr["superblock"]
        assert fused.host_dispatches == fused.steps
        assert sb.host_dispatches < sb.steps
        plan = fib.execution_plan("superblock")
        assert plan.dispatch_count(sb) == sb.host_dispatches
        assert plan.device_dispatch_count(sb) == sb.host_dispatches

    def test_regions_cached_per_program(self):
        ex = SuperblockExecutor()
        sp = fib.stack_program()
        assert ex.regions_for(sp) is ex.regions_for(sp)

    def test_profile_seeded_executor_uses_profile_regions(self):
        profile = _profile({1: (10, 120), 2: (100, 120)})
        ex = SuperblockExecutor(profile=profile)
        table = ex.regions_for(fib.stack_program())
        assert table.profiled and table.chain(0) == (0, 2)
        ns = np.array([8, 2, 10], dtype=np.int64)
        from repro.vm.executors import ExecutionPlan
        from repro.vm.program_counter import ProgramCounterVM

        plan = ExecutionPlan.compile(fib.stack_program(), executor=ex)
        vm = ProgramCounterVM(plan, batch_size=3, max_stack_depth=32)
        np.testing.assert_array_equal(
            vm.run([ns])[0], fib.run_pc(ns, max_stack_depth=32)
        )


def _snapshot_handle(request_id, pc, priority=0):
    """A queued-preempted handle carrying a fake lane snapshot at ``pc``."""
    handle = ResultHandle(
        ServeRequest(request_id=request_id, inputs=(), priority=priority)
    )
    handle.snapshot = SimpleNamespace(pc=pc)
    return handle


class TestResumeQueueBuckets:
    def test_counts_track_admit_and_pop(self):
        q = RequestQueue()
        for rid, pc in enumerate([5, 7, 7, 9]):
            q.push(_snapshot_handle(rid, pc))
        q.push(ResultHandle(ServeRequest(request_id=9, inputs=())))
        assert q.resume_pc_counts(0) == {5: 1, 7: 2, 9: 1}
        assert q.snapshot_count() == 4
        q.pop()  # rid 0 (pc 5)
        assert q.resume_pc_counts(0) == {7: 2, 9: 1}
        assert q.snapshot_count() == 3

    def test_buckets_keyed_by_priority(self):
        q = RequestQueue()
        q.push(_snapshot_handle(0, pc=7, priority=1))
        q.push(_snapshot_handle(1, pc=7, priority=0))
        assert q.resume_pc_counts(1) == {7: 1}
        assert q.resume_pc_counts(0) == {7: 1}
        assert q.resume_pc_counts(2) == {}

    def test_pop_resume_at_takes_first_in_service_order(self):
        q = RequestQueue()
        for rid, pc in enumerate([5, 7, 7]):
            q.push(_snapshot_handle(rid, pc))
        picked = q.pop_resume_at(0, 7)
        assert picked.request_id == 1  # oldest of the pc-7 cohort
        # The heap stays valid: remaining handles pop in service order.
        assert q.pop().request_id == 0
        assert q.pop().request_id == 2
        assert q.snapshot_count() == 0
        assert q.resume_pc_counts(0) == {}

    def test_pop_resume_at_empty_bucket_is_none(self):
        q = RequestQueue()
        q.push(_snapshot_handle(0, pc=5))
        assert q.pop_resume_at(0, 6) is None
        assert q.pop_resume_at(1, 5) is None
        assert q.pop_resume_at(0, 5).request_id == 0
        assert q.pop_resume_at(0, 5) is None


class TestResumeRebatchingPolicy:
    @staticmethod
    def _engine(**options):
        return Engine(fib, num_lanes=2, resume_batching=True, **options)

    def test_prefers_largest_same_pc_cohort(self):
        engine = self._engine()
        a = _snapshot_handle(0, pc=5)
        b = _snapshot_handle(1, pc=7)
        c = _snapshot_handle(2, pc=7)
        for h in (a, b, c):
            engine.queue.push(h)
        # Head (pc 5, cohort of 1) is deferred for the pc-7 cohort of 2.
        assert engine._pop_next() is b
        assert a.resume_defers == 1
        assert engine.telemetry.resume_rebatches == 1
        # The wave sticks with the pc-7 cohort until it runs dry; only
        # then does the deferred head get its turn.
        assert engine._pop_next() is c
        assert a.resume_defers == 2
        assert engine._pop_next() is a

    def test_sticky_cohort_does_not_round_robin_ties(self):
        # Two equal cohorts: a per-pop greedy max would alternate between
        # them (each pop demotes the picked cohort below the other),
        # seating a perfectly mixed wave.  Stickiness drains one cohort
        # fully before starting the next.
        engine = self._engine()
        d1 = _snapshot_handle(0, pc=7)
        a1 = _snapshot_handle(1, pc=3)
        a2 = _snapshot_handle(2, pc=3)
        d2 = _snapshot_handle(3, pc=7)
        for h in (d1, a1, a2, d2):
            engine.queue.push(h)
        # Tie at 2 each goes to the lowest pc; the head defers for it.
        assert engine._pop_next() is a1
        # pc 3 now counts 1 vs pc 7's 2 — a greedy max would seat the
        # head here.  The sticky wave keeps draining pc 3 instead.
        assert engine._pop_next() is a2
        assert engine._pop_next() is d1
        assert engine._pop_next() is d2
        assert d1.resume_defers == 2
        # A new admission wave starts from a clean slate.
        engine._admit()
        assert engine._resume_sticky_pc is None

    def test_defer_limit_bounds_queue_jumping(self):
        engine = self._engine(resume_defer_limit=1)
        head = _snapshot_handle(0, pc=1)
        engine.queue.push(head)
        for rid in range(1, 4):
            engine.queue.push(_snapshot_handle(rid, pc=2))
        assert engine._pop_next().request_id == 1
        assert head.resume_defers == 1
        # At the limit the head refuses to wait again, cohort or not.
        assert engine._pop_next() is head
        with pytest.raises(ValueError, match="resume_defer_limit"):
            self._engine(resume_defer_limit=0)

    def test_fresh_head_is_never_deferred(self):
        engine = self._engine()
        fresh = ResultHandle(ServeRequest(request_id=0, inputs=()))
        engine.queue.push(fresh)
        engine.queue.push(_snapshot_handle(1, pc=2))
        engine.queue.push(_snapshot_handle(2, pc=2))
        # A never-preempted head has no pc to re-batch on: FIFO holds.
        assert engine._pop_next() is fresh
        assert engine.telemetry.resume_rebatches == 0

    def test_rebatching_never_crosses_priority(self):
        engine = self._engine()
        head = _snapshot_handle(0, pc=5, priority=1)
        engine.queue.push(head)
        engine.queue.push(_snapshot_handle(1, pc=9, priority=0))
        engine.queue.push(_snapshot_handle(2, pc=9, priority=0))
        # The lower-priority pc-9 cohort is invisible to the head's level.
        assert engine._pop_next() is head
        assert engine.telemetry.resume_rebatches == 0

    def test_off_by_default(self):
        engine = Engine(fib, num_lanes=2)
        assert engine.resume_batching is False
