"""Tests for the benchmark harness (timing, reporting, figure sweeps)."""

import numpy as np
import pytest

from repro.bench.ablations import (
    AblationConfig,
    ablation_masking,
    ablation_optimizations,
    ablation_scheduler,
    render,
)
from repro.bench.figure5 import Figure5Config, run_figure5
from repro.bench.figure6 import Figure6Config, run_figure6
from repro.bench.report import crossover, format_series, format_table
from repro.bench.timing import best_of, timed


class TestTiming:
    def test_timed_returns_value(self):
        seconds, value = timed(lambda: 42)
        assert value == 42
        assert seconds >= 0

    def test_best_of_runs_warmup_and_repeats(self):
        calls = []
        timing = best_of(lambda: calls.append(1), k=3, warmup=2)
        assert len(calls) == 5
        assert len(timing.all_seconds) == 3
        assert timing.best_seconds == min(timing.all_seconds)
        assert timing.mean_seconds >= timing.best_seconds

    def test_budget_stops_early(self):
        import time

        timing = best_of(
            lambda: time.sleep(0.02), k=50, warmup=0, budget_seconds=0.05
        )
        assert len(timing.all_seconds) < 50

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            best_of(lambda: None, k=0)


class TestReport:
    def test_format_table_alignment(self):
        out = format_table(["a", "long header"], [[1, 2.5], [333, 0.001]])
        lines = out.splitlines()
        assert len(lines) == 4
        assert all(len(line) == len(lines[0]) for line in lines)
        assert "long header" in lines[0]

    def test_format_series_handles_gaps(self):
        out = format_series(
            [1, 10, 100],
            {"a": [1.0, 10.0, 100.0], "b": [None, 5.0, None]},
            x_label="batch",
        )
        assert "A=a" in out and "B=b" in out
        assert "(no data)" not in out

    def test_format_series_no_data(self):
        assert format_series([1], {"a": [None]}) == "(no data)"

    def test_crossover_interpolates(self):
        x = [1, 10, 100]
        a = [1.0, 10.0, 100.0]   # rising
        b = [20.0, 20.0, 20.0]   # flat
        c = crossover(x, a, b)
        assert 10 < c < 100

    def test_crossover_none_when_never(self):
        assert crossover([1, 2], [1.0, 1.0], [5.0, 5.0]) is None

    def test_crossover_immediate(self):
        assert crossover([1, 2], [9.0, 9.0], [5.0, 5.0]) == 1.0


@pytest.fixture(scope="module")
def fig5():
    return run_figure5(Figure5Config.smoke())


class TestFigure5:
    def test_every_strategy_present(self, fig5):
        strategies = {p.strategy for p in fig5.points}
        assert {"pc", "pc_fused", "local", "reference", "stan", "hybrid"} <= strategies

    def test_grads_consistent_across_strategies(self, fig5):
        """All batched strategies run identical chains, so equal batch sizes
        must report equal gradient counts (stan uses its own RNG)."""
        for z in fig5.config.batch_sizes:
            grads = {
                p.strategy: p.grad_evals
                for p in fig5.points
                if p.batch_size == z and p.strategy not in ("stan",)
            }
            assert len(set(grads.values())) == 1, grads

    def test_simulated_gpu_scales_with_batch(self, fig5):
        """The GPU model's grads/sec for the PC strategy must grow with Z."""
        xs, series = fig5.series(metric="simulated", device="gpu")
        pc = [v for v in series["pc"] if v is not None]
        assert pc[-1] > pc[0]

    def test_hybrid_is_executed_and_simulated(self, fig5):
        hybrid = [p for p in fig5.points if p.strategy == "hybrid"]
        assert hybrid and all(p.best_seconds is not None for p in hybrid)
        assert all(p.simulated_seconds for p in hybrid)

    def test_render_mentions_each_section(self, fig5):
        text = fig5.render()
        assert "## Figure 5 sweep" in text
        assert "simulated GPU device" in text

    def test_crossovers_dict(self, fig5):
        cross = fig5.crossovers(metric="simulated", device="cpu")
        assert set(cross) <= {"pc_fused", "pc", "local", "hybrid"}


@pytest.fixture(scope="module")
def fig6():
    return run_figure6(Figure6Config.smoke())


class TestFigure6:
    def test_utilization_bounds(self, fig6):
        for p in fig6.points:
            assert 0.0 < p.utilization <= 1.0

    def test_batch_one_is_fully_utilized(self, fig6):
        for p in fig6.points:
            if p.batch_size == 1:
                assert p.utilization == pytest.approx(1.0)

    def test_pc_at_least_as_utilized_as_local(self, fig6):
        """The paper's headline: PC batches across recursion depths."""
        for z in fig6.config.batch_sizes:
            local = next(p for p in fig6.points if p.strategy == "local" and p.batch_size == z)
            pc = next(p for p in fig6.points if p.strategy == "pc" and p.batch_size == z)
            assert pc.utilization >= local.utilization - 1e-12

    def test_useful_grads_equal_between_strategies(self, fig6):
        for z in fig6.config.batch_sizes:
            grads = {
                p.strategy: p.grad_evals for p in fig6.points if p.batch_size == z
            }
            assert grads["local"] == grads["pc"]

    def test_render(self, fig6):
        text = fig6.render()
        assert "Utilization vs batch size" in text
        assert "recovery" in text


class TestAblations:
    @pytest.fixture(scope="class")
    def config(self):
        return AblationConfig.smoke()

    def test_masking_vs_gather(self, config):
        rows = ablation_masking(config)
        by = {(r.workload, r.variant): r for r in rows}
        # Gather mode never executes inactive lanes.
        for (workload, variant), row in by.items():
            if variant.endswith("/gather"):
                assert row.utilization == pytest.approx(1.0)
        # Masked runs waste lanes whenever control diverges.
        assert by[("fib", "pc/mask")].utilization < 1.0

    def test_scheduler_rows(self, config):
        rows = ablation_scheduler(config)
        variants = {r.variant for r in rows}
        assert variants == {"earliest", "most_active", "round_robin"}

    def test_optimizations_cut_stack_traffic(self, config):
        rows = ablation_optimizations(config)
        by = {(r.workload, r.variant): r for r in rows}
        for workload in ("fib", "nuts"):
            opt = by[(workload, "optimized")]
            raw = by[(workload, "unoptimized")]
            assert opt.stacked_writes < raw.stacked_writes
            assert raw.register_writes == 0  # everything stacked when off

    def test_render_smoke(self, config):
        rows = ablation_scheduler(config)
        text = render(rows, "Ablation B")
        assert "Ablation B" in text and "earliest" in text


class TestBenchAll:
    def test_smoke_writes_all_result_files(self, tmp_path):
        from repro.bench.all import main

        main(["--smoke", "--out-dir", str(tmp_path)])
        for name in ("results_figure5.md", "results_figure6.md", "results_ablations.md"):
            text = (tmp_path / name).read_text()
            assert text.strip(), name

    def test_paper_scale_config_constructs(self):
        config = Figure5Config.paper_scale()
        assert config.n_data == 10_000 and config.n_features == 100
        assert max(config.batch_sizes) >= 4096
