"""Shared assertion helpers for the test suite."""

import numpy as np

from repro.lowering.pipeline import LoweringOptions


def as_tuple(result):
    return result if isinstance(result, tuple) else (result,)


def assert_results_equal(expected, actual, context=""):
    expected, actual = as_tuple(expected), as_tuple(actual)
    assert len(expected) == len(actual), (
        f"{context}: arity mismatch {len(expected)} vs {len(actual)}"
    )
    for i, (e, a) in enumerate(zip(expected, actual)):
        e, a = np.asarray(e), np.asarray(a)
        np.testing.assert_allclose(
            a.astype(np.float64, copy=False),
            e.astype(np.float64, copy=False),
            rtol=1e-10,
            atol=1e-12,
            err_msg=f"{context}: output {i} differs",
        )


def assert_instrumentation_identical(a, b, context=""):
    """Field-by-field op-count comparison (names the divergent counter)."""
    for field in (
        "steps", "kernel_calls", "pushes", "pops", "push_lanes", "pop_lanes",
        "stacked_reads", "stacked_writes", "register_writes",
    ):
        assert getattr(a, field) == getattr(b, field), f"{context}: {field}"
    assert dict(a.by_prim) == dict(b.by_prim), f"{context}: by_prim"
    assert dict(a.by_tag) == dict(b.by_tag), f"{context}: by_tag"


def run_all_strategies(fn, inputs, max_stack_depth=64):
    """Run every execution strategy; return {name: result}."""
    results = {"reference": fn.run_reference(*inputs)}
    for mode in ("mask", "gather"):
        results[f"local/{mode}"] = fn.run_local(*inputs, mode=mode)
        results[f"pc/{mode}"] = fn.run_pc(
            *inputs, mode=mode, max_stack_depth=max_stack_depth
        )
    results["pc/noopt"] = fn.run_pc(
        *inputs, optimize=False, max_stack_depth=max_stack_depth
    )
    results["pc/fused"] = fn.run_pc(
        *inputs, executor="fused", max_stack_depth=max_stack_depth
    )
    results["pc/nocache"] = fn.run_pc(
        *inputs, top_cache=False, max_stack_depth=max_stack_depth
    )
    for sched in ("most_active", "round_robin"):
        results[f"pc/{sched}"] = fn.run_pc(
            *inputs, scheduler=sched, max_stack_depth=max_stack_depth
        )
    return results


def assert_all_strategies_agree(fn, inputs, max_stack_depth=64):
    results = run_all_strategies(fn, inputs, max_stack_depth=max_stack_depth)
    reference = results.pop("reference")
    for name, result in results.items():
        assert_results_equal(reference, result, context=f"{fn.name} under {name}")
    return reference


OPTION_GRID = [
    LoweringOptions(),
    LoweringOptions(temp_opt=False),
    LoweringOptions(register_opt=False),
    LoweringOptions(pop_push_opt=False),
    LoweringOptions.none(),
]
