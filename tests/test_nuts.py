"""Tests for the NUTS implementations: differential, structural, statistical."""

import numpy as np
import pytest

from repro.nuts import IterativeNuts, NutsKernel, run_nuts
from repro.nuts.kernel import KERNEL_STRATEGIES
from repro.nuts.sampler import STRATEGIES, DualAveragingAdapter, find_reasonable_step_size
from repro.targets import CorrelatedGaussian, NealsFunnel, Rosenbrock
from repro.vm.instrumentation import Instrumentation


@pytest.fixture(scope="module")
def gauss():
    return CorrelatedGaussian(dim=4, rho=0.5)


@pytest.fixture(scope="module")
def kernel(gauss):
    return NutsKernel(gauss)


@pytest.fixture(scope="module")
def reference_run(gauss, kernel):
    q0 = gauss.initial_state(6, seed=1)
    result = kernel.run(
        q0, step_size=0.15, n_trajectories=4, max_depth=5, seed=11,
        strategy="reference",
    )
    return q0, result


class TestDifferential:
    """Every execution strategy reproduces the plain-Python chains bitwise."""

    @pytest.mark.parametrize("strategy", [s for s in KERNEL_STRATEGIES if s != "reference"])
    def test_strategy_matches_reference(self, gauss, kernel, reference_run, strategy):
        q0, ref = reference_run
        result = kernel.run(
            q0, step_size=0.15, n_trajectories=4, max_depth=5, seed=11,
            strategy=strategy,
        )
        np.testing.assert_allclose(result.positions, ref.positions)
        np.testing.assert_allclose(result.grad_evals, ref.grad_evals)
        np.testing.assert_array_equal(result.rng, ref.rng)

    @pytest.mark.parametrize("mode", ["mask", "gather"])
    def test_execution_modes_agree(self, gauss, kernel, reference_run, mode):
        q0, ref = reference_run
        result = kernel.run(
            q0, step_size=0.15, n_trajectories=4, max_depth=5, seed=11,
            strategy="pc", mode=mode,
        )
        np.testing.assert_allclose(result.positions, ref.positions)

    def test_schedulers_agree(self, gauss, kernel, reference_run):
        q0, ref = reference_run
        for scheduler in ("earliest", "most_active", "round_robin"):
            result = kernel.run(
                q0, step_size=0.15, n_trajectories=4, max_depth=5, seed=11,
                strategy="pc", scheduler=scheduler,
            )
            np.testing.assert_allclose(result.positions, ref.positions)

    def test_batch_members_independent_of_batch_composition(self, gauss, kernel):
        """A member's chain is identical whether run alone or in a batch."""
        q0 = gauss.initial_state(5, seed=2)
        rng_all = kernel.initial_rng(5, seed=3)
        full = kernel.run(
            q0, step_size=0.15, n_trajectories=3, max_depth=4,
            strategy="pc", rng=rng_all,
        )
        for b in range(5):
            solo = kernel.run(
                q0[b : b + 1], step_size=0.15, n_trajectories=3, max_depth=4,
                strategy="pc", rng=rng_all[b : b + 1],
            )
            np.testing.assert_allclose(solo.positions[0], full.positions[b])


class TestStructure:
    def test_moves_from_start(self, gauss, kernel):
        q0 = gauss.initial_state(4, seed=4)
        result = kernel.run(
            q0, step_size=0.1, n_trajectories=2, max_depth=5, seed=5, strategy="pc"
        )
        assert not np.allclose(result.positions, q0)

    def test_grad_evals_multiple_of_leaf_cost(self, gauss, kernel):
        # Each leaf costs n_leapfrog + 1 gradients, plus nothing else.
        q0 = gauss.initial_state(3, seed=6)
        result = kernel.run(
            q0, step_size=0.1, n_trajectories=2, max_depth=5, seed=7,
            strategy="reference", n_leapfrog=4,
        )
        assert np.all(result.grad_evals % 5 == 0)
        assert np.all(result.grad_evals >= 5)

    def test_max_depth_caps_tree_size(self, gauss, kernel):
        q0 = gauss.initial_state(3, seed=8)
        # Tiny step + depth cap: at most 2^1 + 2^0 = 3 doublings' leaves/traj.
        result = kernel.run(
            q0, step_size=0.001, n_trajectories=1, max_depth=2, seed=9,
            strategy="reference", n_leapfrog=4,
        )
        assert np.all(result.grad_evals <= 3 * 5)

    def test_instrumentation_counts_gradients(self, gauss, kernel):
        q0 = gauss.initial_state(4, seed=10)
        result = kernel.run(
            q0, step_size=0.15, n_trajectories=2, max_depth=4, seed=11,
            strategy="pc", instrument=True,
        )
        instr = result.instrumentation
        assert isinstance(instr, Instrumentation)
        # Active gradient lanes == the in-program per-member counters.
        assert instr.count(tag="gradient").active == int(np.sum(result.grad_evals))
        # Masked execution wastes some lanes whenever members diverge.
        assert instr.count(tag="gradient").slots >= instr.count(tag="gradient").active

    def test_unknown_strategy_rejected(self, gauss, kernel):
        with pytest.raises(ValueError):
            kernel.run(gauss.initial_state(2), step_size=0.1, strategy="warp")
        with pytest.raises(ValueError):
            run_nuts(gauss, 2, 1, 0.1, strategy="warp")

    def test_wrong_dim_rejected(self, gauss, kernel):
        with pytest.raises(ValueError):
            kernel.run(np.zeros((2, 3)), step_size=0.1)

    def test_per_member_step_sizes(self, gauss, kernel):
        q0 = gauss.initial_state(3, seed=12)
        eps = np.array([0.05, 0.1, 0.2])
        result = kernel.run(
            q0, step_size=eps, n_trajectories=2, max_depth=4, seed=13, strategy="pc"
        )
        ref = kernel.run(
            q0, step_size=eps, n_trajectories=2, max_depth=4, seed=13,
            strategy="reference",
        )
        np.testing.assert_allclose(result.positions, ref.positions)


class TestIterative:
    def test_matches_reference_tree_statistics(self, gauss):
        """Iterative and recursive NUTS agree on mean tree size (distribution-level)."""
        q0 = gauss.initial_state(1, seed=14)[0]
        it = IterativeNuts(gauss, step_size=0.12, max_depth=6)
        res = it.sample(q0, 150, seed=15)
        # Recursive version, same regime:
        kernel = NutsKernel(gauss)
        ref = kernel.run(
            q0[None, :], step_size=0.12, n_trajectories=150, max_depth=6,
            seed=16, strategy="reference",
        )
        rec_leaves = float(ref.grad_evals[0]) / 5.0 / 150.0
        assert res.mean_tree_leaves == pytest.approx(rec_leaves, rel=0.35)

    def test_divergence_terminates_subtree(self):
        """A huge step size must not loop forever or error out."""
        target = Rosenbrock(dim=2, temperature=1.0)
        it = IterativeNuts(target, step_size=5.0, max_depth=8)
        res = it.sample(np.array([1.0, 1.0]), 20, seed=17)
        assert res.positions.shape == (20, 2)
        assert np.all(np.isfinite(res.positions))

    def test_sample_batch_serial_equivalence(self, gauss):
        it = IterativeNuts(gauss, step_size=0.12, max_depth=5)
        q0 = gauss.initial_state(3, seed=18)
        finals, total = it.sample_batch(q0, 10, seed=19)
        for b in range(3):
            single = it.sample(q0[b], 10, seed=19 + b)
            np.testing.assert_allclose(finals[b], single.positions[-1])

    def test_invalid_args_rejected(self, gauss):
        with pytest.raises(ValueError):
            IterativeNuts(gauss, step_size=0.0)
        with pytest.raises(ValueError):
            IterativeNuts(gauss, step_size=0.1, max_depth=0)
        it = IterativeNuts(gauss, step_size=0.1)
        with pytest.raises(ValueError):
            it.sample(np.zeros(3), 5)


class TestStatistical:
    """NUTS must actually sample the target (slow-ish, small sizes)."""

    def test_gaussian_moments_recovered(self):
        target = CorrelatedGaussian(dim=3, rho=0.6, min_scale=0.5, max_scale=1.0)
        result = run_nuts(
            target, batch_size=16, n_trajectories=150, step_size=0.25,
            strategy="pc", seed=20, trace=True, max_depth=6,
        )
        chains = result.samples[50:]  # warmup discard
        flat = chains.reshape(-1, 3)
        np.testing.assert_allclose(flat.mean(axis=0), 0.0, atol=0.15)
        np.testing.assert_allclose(
            np.cov(flat.T), target.covariance, atol=0.35
        )

    def test_iterative_gaussian_moments(self):
        target = CorrelatedGaussian(dim=3, rho=0.6, min_scale=0.5, max_scale=1.0)
        it = IterativeNuts(target, step_size=0.25, max_depth=6)
        res = it.sample(target.initial_state(1, seed=21)[0], 1500, seed=22)
        draws = res.positions[300:]
        np.testing.assert_allclose(draws.mean(axis=0), 0.0, atol=0.15)
        np.testing.assert_allclose(np.cov(draws.T), target.covariance, atol=0.4)

    def test_funnel_explores_negative_v(self):
        target = NealsFunnel(dim=3, scale=1.5)
        result = run_nuts(
            target, batch_size=8, n_trajectories=200, step_size=0.1,
            strategy="pc", seed=23, trace=True, max_depth=7,
        )
        v = result.samples[50:, :, 0]
        assert v.min() < -1.0 and v.max() > 1.0  # both funnel regimes visited


class TestSamplerHelpers:
    def test_strategies_tuple_is_exhaustive(self):
        assert set(STRATEGIES) == {
            "reference", "local", "hybrid", "pc", "pc_fused", "pc_noopt", "stan",
        }

    def test_find_reasonable_step_size(self, gauss):
        eps = find_reasonable_step_size(gauss, gauss.initial_state(1, seed=24)[0])
        assert 1e-4 < eps < 10.0

    def test_dual_averaging_converges_to_target(self):
        adapter = DualAveragingAdapter(initial_step_size=1.0, target_accept=0.8)
        # Fake environment: acceptance decreases with step size.
        for _ in range(200):
            accept = float(np.clip(1.2 - adapter.step_size, 0.0, 1.0))
            adapter.update(accept)
        final_accept = 1.2 - adapter.adapted_step_size
        assert final_accept == pytest.approx(0.8, abs=0.1)

    def test_trace_matches_untraced_final_state(self, gauss):
        kernel = NutsKernel(gauss)
        traced = run_nuts(
            gauss, batch_size=4, n_trajectories=5, step_size=0.15,
            strategy="pc", seed=25, trace=True, kernel=kernel,
        )
        plain = run_nuts(
            gauss, batch_size=4, n_trajectories=5, step_size=0.15,
            strategy="pc", seed=25, trace=False, kernel=kernel,
        )
        np.testing.assert_allclose(traced.positions, plain.positions)
        assert traced.grad_evals == plain.grad_evals
