"""Tests for the step-size adaptation extension on the iterative sampler."""

import numpy as np
import pytest

from repro.nuts.iterative import IterativeNuts
from repro.targets import CorrelatedGaussian


@pytest.fixture(scope="module")
def target():
    return CorrelatedGaussian(dim=4, rho=0.5, min_scale=0.5, max_scale=1.0)


class TestAcceptStatistic:
    def test_tracked_per_trajectory(self, target):
        it = IterativeNuts(target, step_size=0.2, max_depth=5)
        rng = np.random.RandomState(0)
        it.trajectory(target.initial_state(1, seed=1)[0], rng)
        assert 0.0 <= it.last_accept_stat <= 1.0

    def test_small_steps_accept_more(self, target):
        q0 = target.initial_state(1, seed=2)[0]

        def mean_accept(eps):
            it = IterativeNuts(target, step_size=eps, max_depth=5)
            rng = np.random.RandomState(3)
            stats = []
            q = q0
            for _ in range(20):
                q, _ = it.trajectory(q, rng)
                stats.append(it.last_accept_stat)
            return float(np.mean(stats))

        assert mean_accept(0.05) > mean_accept(1.5)


class TestWarmup:
    def test_warmup_reaches_target_acceptance(self, target):
        it = IterativeNuts(target, step_size=3.0, max_depth=6)  # way too big
        q0 = target.initial_state(1, seed=4)[0]
        q, eps = it.warmup(q0, n_warmup=150, seed=5, target_accept=0.8)
        assert eps < 3.0  # adapted downward
        # Measure realized acceptance at the adapted step size.
        rng = np.random.RandomState(6)
        stats = []
        for _ in range(30):
            q, _ = it.trajectory(q, rng)
            stats.append(it.last_accept_stat)
        assert 0.55 < np.mean(stats) <= 1.0

    def test_warmup_updates_sampler_state(self, target):
        it = IterativeNuts(target, step_size=0.001, max_depth=5)  # too small
        q0 = target.initial_state(1, seed=7)[0]
        _, eps = it.warmup(q0, n_warmup=100, seed=8)
        assert eps > 0.001  # adapted upward
        assert it.step_size == eps

    def test_adapted_sampler_still_correct(self, target):
        it = IterativeNuts(target, step_size=1.0, max_depth=6)
        q0 = target.initial_state(1, seed=9)[0]
        q, _ = it.warmup(q0, n_warmup=100, seed=10)
        res = it.sample(q, 800, seed=11)
        draws = res.positions[200:]
        np.testing.assert_allclose(draws.mean(axis=0), 0.0, atol=0.2)
