"""Unit and property tests for the batched stacks (paper optimization 4)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.vm.stack import BatchedStack, StackOverflowError, UncachedBatchedStack

STACK_CLASSES = [BatchedStack, UncachedBatchedStack]


def full_mask(z):
    return np.ones(z, dtype=bool)


@pytest.mark.parametrize("cls", STACK_CLASSES)
class TestBasicOps:
    def test_initial_top_is_zero(self, cls):
        s = cls(batch_size=3, depth=4)
        np.testing.assert_array_equal(s.read(), np.zeros(3))
        np.testing.assert_array_equal(s.depths(), np.ones(3))

    def test_update_then_read(self, cls):
        s = cls(batch_size=3, depth=4)
        s.update(full_mask(3), np.array([1.0, 2.0, 3.0]))
        np.testing.assert_array_equal(s.read(), [1.0, 2.0, 3.0])

    def test_masked_update_leaves_inactive_lanes(self, cls):
        s = cls(batch_size=3, depth=4)
        s.update(np.array([True, False, True]), np.array([1.0, 2.0, 3.0]))
        np.testing.assert_array_equal(s.read(), [1.0, 0.0, 3.0])

    def test_push_pop_roundtrip(self, cls):
        s = cls(batch_size=2, depth=4)
        s.update(full_mask(2), np.array([10.0, 20.0]))
        s.push(full_mask(2), np.array([11.0, 21.0]))
        np.testing.assert_array_equal(s.read(), [11.0, 21.0])
        np.testing.assert_array_equal(s.depths(), [2, 2])
        popped = s.pop(full_mask(2))
        np.testing.assert_array_equal(popped, [11.0, 21.0])
        np.testing.assert_array_equal(s.read(), [10.0, 20.0])

    def test_masked_push_diverges_depths(self, cls):
        s = cls(batch_size=3, depth=4)
        s.update(full_mask(3), np.array([1.0, 2.0, 3.0]))
        s.push(np.array([True, False, True]), np.array([9.0, 9.0, 9.0]))
        np.testing.assert_array_equal(s.depths(), [2, 1, 2])
        np.testing.assert_array_equal(s.read(), [9.0, 2.0, 9.0])
        s.pop(np.array([True, False, False]))
        np.testing.assert_array_equal(s.read(), [1.0, 2.0, 9.0])
        np.testing.assert_array_equal(s.depths(), [1, 1, 2])

    def test_vector_events(self, cls):
        s = cls(batch_size=2, depth=3, event_shape=(2,))
        v0 = np.array([[1.0, 2.0], [3.0, 4.0]])
        v1 = np.array([[5.0, 6.0], [7.0, 8.0]])
        s.update(full_mask(2), v0)
        s.push(full_mask(2), v1)
        np.testing.assert_array_equal(s.read(), v1)
        s.pop(full_mask(2))
        np.testing.assert_array_equal(s.read(), v0)

    def test_overflow_raises(self, cls):
        s = cls(batch_size=1, depth=2)
        s.push(full_mask(1), np.array([1.0]))
        s.push(full_mask(1), np.array([2.0]))
        with pytest.raises(StackOverflowError):
            s.push(full_mask(1), np.array([3.0]))

    def test_masked_overflow_only_on_active_lanes(self, cls):
        s = cls(batch_size=2, depth=1)
        s.push(np.array([True, False]), np.array([1.0, 1.0]))
        # Lane 0 is full; pushing only on lane 1 must succeed.
        s.push(np.array([False, True]), np.array([2.0, 2.0]))
        with pytest.raises(StackOverflowError):
            s.push(np.array([True, False]), np.array([3.0, 3.0]))

    def test_pop_at_base_is_clamped(self, cls):
        s = cls(batch_size=1, depth=2)
        s.update(full_mask(1), np.array([5.0]))
        s.pop(full_mask(1))  # popping the base frame is benign by design
        np.testing.assert_array_equal(s.depths(), [1])

    def test_frames_inspection(self, cls):
        s = cls(batch_size=2, depth=4)
        s.update(full_mask(2), np.array([1.0, 10.0]))
        s.push(np.array([True, False]), np.array([2.0, 0.0]))
        s.push(np.array([True, False]), np.array([3.0, 0.0]))
        np.testing.assert_array_equal(s.frames(0), [1.0, 2.0, 3.0])
        np.testing.assert_array_equal(s.frames(1), [10.0])

    def test_gathered_ops_match_masked(self, cls):
        z = 5
        masked = cls(batch_size=z, depth=4)
        gathered = cls(batch_size=z, depth=4)
        rng = np.random.default_rng(0)
        vals = rng.normal(size=z)
        mask = np.array([True, False, True, True, False])
        idx = np.flatnonzero(mask)
        masked.update(full_mask(z), vals)
        gathered.update_at(np.arange(z), vals)
        masked.push(mask, vals * 2)
        gathered.push_at(idx, (vals * 2)[idx])
        np.testing.assert_array_equal(masked.read(), gathered.read())
        np.testing.assert_array_equal(masked.sp, gathered.sp)
        masked.pop(mask)
        gathered.pop_at(idx)
        np.testing.assert_array_equal(masked.read(), gathered.read())


class _ReferenceStacks:
    """Per-member Python-list stacks: the obvious model."""

    def __init__(self, z):
        self.stacks = [[0.0] for _ in range(z)]

    def update(self, mask, values):
        for b, on in enumerate(mask):
            if on:
                self.stacks[b][-1] = values[b]

    def push(self, mask, values):
        for b, on in enumerate(mask):
            if on:
                self.stacks[b].append(values[b])

    def pop(self, mask):
        for b, on in enumerate(mask):
            if on and len(self.stacks[b]) > 1:
                self.stacks[b].pop()
            elif on:
                self.stacks[b][-1] = 0.0  # clamped base pop reads junk; model as 0

    def tops(self):
        return np.array([s[-1] for s in self.stacks])


@settings(max_examples=60, deadline=None)
@given(
    ops=st.lists(
        st.tuples(
            st.sampled_from(["push", "pop", "update"]),
            st.lists(st.booleans(), min_size=4, max_size=4),
            st.lists(st.floats(-100, 100), min_size=4, max_size=4),
        ),
        max_size=30,
    ),
    cached=st.booleans(),
)
def test_stack_matches_reference_model(ops, cached):
    """Property: batched stacks behave like Z independent list stacks.

    Pops are only applied on lanes whose model stack is non-empty (the
    machine never underflows on well-formed programs; clamped behavior at
    the base is unspecified junk).
    """
    z = 4
    cls = BatchedStack if cached else UncachedBatchedStack
    s = cls(batch_size=z, depth=40)
    ref = _ReferenceStacks(z)
    for kind, mask_list, vals_list in ops:
        mask = np.array(mask_list)
        vals = np.array(vals_list)
        if kind == "push":
            s.push(mask, vals)
            ref.push(mask, vals)
        elif kind == "update":
            s.update(mask, vals)
            ref.update(mask, vals)
        else:
            # Only pop lanes that have something above the base frame.
            depth_ok = s.depths() > 1
            mask = mask & depth_ok
            s.pop(mask)
            ref.pop(mask)
        np.testing.assert_allclose(s.read(), ref.tops())
        np.testing.assert_array_equal(
            s.depths(), [len(st_) for st_ in ref.stacks]
        )


@settings(max_examples=40, deadline=None)
@given(
    values=st.lists(st.floats(-1e6, 1e6), min_size=1, max_size=10),
)
def test_push_pop_is_identity(values):
    """Property: n pushes followed by n pops restore the original top."""
    s = BatchedStack(batch_size=2, depth=len(values) + 1)
    mask = np.ones(2, dtype=bool)
    s.update(mask, np.array([3.5, -1.25]))
    for v in values:
        s.push(mask, np.array([v, v]))
    for _ in values:
        s.pop(mask)
    np.testing.assert_array_equal(s.read(), [3.5, -1.25])
    np.testing.assert_array_equal(s.depths(), [1, 1])
