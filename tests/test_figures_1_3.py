"""Structural tests for the Figure 1 / Figure 3 runtime-state snapshots."""

import numpy as np
import pytest

from repro import autobatch
from repro.vm.local_static import LocalStaticInterpreter
from repro.vm.program_counter import ProgramCounterVM


@autobatch
def fib_f13(n):
    if n <= 1:
        return 1
    return fib_f13(n - 2) + fib_f13(n - 1)


class TestFigure1:
    """Local static autobatching: the recursion IS the Python stack."""

    def test_activation_stack_grows_with_recursion(self):
        depths = []

        def on_step(interp, block_index, mask):
            depths.append(len(interp.frames))

        interp = LocalStaticInterpreter(fib_f13.program, on_step=on_step)
        out = interp.run([np.array([3, 7, 4, 5])])
        np.testing.assert_array_equal(out[0], [3, 21, 5, 8])
        assert max(depths) >= 4          # fib(7) recurses at least this deep
        assert min(depths) == 1
        assert interp.frames == []       # all activations unwound

    def test_frames_expose_member_state(self):
        captured = {}

        def on_step(interp, block_index, mask):
            if len(interp.frames) == 3 and "snap" not in captured:
                captured["snap"] = [
                    {
                        "active": f["active"].copy(),
                        "pc": f["pc"].copy(),
                        "has_n": "n" in f["env"],
                    }
                    for f in interp.frames
                ]

        interp = LocalStaticInterpreter(fib_f13.program, on_step=on_step)
        interp.run([np.array([3, 7, 4, 5])])
        snap = captured["snap"]
        assert len(snap) == 3
        # Deeper frames serve a subset of the members active above them.
        for shallow, deep in zip(snap, snap[1:]):
            assert np.all(~deep["active"] | shallow["active"])
        assert all(f["has_n"] for f in snap)

    def test_deeper_frames_cannot_batch_with_shallow(self):
        """Members in different activations never share a primitive call:
        each call() activation runs its blocks on its own active set."""
        records = []

        def on_step(interp, block_index, mask):
            records.append((len(interp.frames), int(mask.sum())))

        interp = LocalStaticInterpreter(fib_f13.program, on_step=on_step)
        interp.run([np.array([6, 7, 8, 9])])
        # At least one step deep in the recursion runs with a strict subset
        # of the batch — the members stranded in other Python frames.
        assert any(active < 4 for depth, active in records if depth > 1)


class TestFigure3:
    """Program-counter autobatching: recursion is data, not control."""

    @pytest.fixture()
    def paused_vm(self):
        vm = ProgramCounterVM(
            fib_f13.stack_program(optimize=True),
            batch_size=4,
            max_stack_depth=16,
        )
        vm.bind_inputs([np.array([6, 7, 8, 9])])
        vm.scheduler.reset()
        for _ in range(40):
            if not vm.step():
                break
        return vm

    def test_snapshot_shape(self, paused_vm):
        snap = paused_vm.snapshot()
        assert snap["program_counter"].shape == (4,)
        assert len(snap["pc_stack"]["frames"]) == 4
        # fib's lowering leaves exactly n and the first call's result stacked,
        # as in the paper's Figure 3 (n and left).
        stacked = set(snap["variable_stacks"])
        assert "fib_f13.n" in stacked

    def test_members_at_different_depths(self, paused_vm):
        snap = paused_vm.snapshot()
        depths = snap["pc_stack"]["stack_pointers"]
        assert len(set(depths.tolist())) > 1  # genuinely divergent stack depths

    def test_n_stack_frames_match_stack_pointers(self, paused_vm):
        snap = paused_vm.snapshot()
        data = snap["variable_stacks"]["fib_f13.n"]
        for member, frames in enumerate(data["frames"]):
            assert len(frames) == data["stack_pointers"][member] + 1

    def test_resume_after_snapshot_is_correct(self, paused_vm):
        paused_vm.snapshot()
        while paused_vm.step():
            pass
        np.testing.assert_array_equal(paused_vm.outputs()[0], [13, 21, 34, 55])

    def test_batches_across_depths(self):
        """The headline: one block execution serves members whose stacks
        differ in depth (impossible for the local machine)."""
        vm = ProgramCounterVM(
            fib_f13.stack_program(optimize=True),
            batch_size=4,
            max_stack_depth=16,
        )
        vm.bind_inputs([np.array([6, 7, 8, 9])])
        vm.scheduler.reset()
        found = False
        while vm.step():
            mask = None  # step already executed; inspect current state
            depths = vm.addr_stack.sp
            pcs = vm.pcreg
            for block in set(pcs.tolist()):
                members = np.flatnonzero(pcs == block)
                if len(members) > 1 and len(set(depths[members].tolist())) > 1:
                    found = True
                    break
            if found:
                break
        assert found, "no step batched members at different stack depths"
