"""Unit tests for the reverse-mode autodiff substrate."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.autodiff import Tape, Variable, check_grad, grad, ops as ad, value_and_grad


def finite_floats(shape):
    return hnp.arrays(
        np.float64,
        shape,
        elements=st.floats(-3.0, 3.0, allow_nan=False, allow_infinity=False),
    )


class TestTape:
    def test_gradient_of_identity_sum(self):
        x = Variable(np.array([1.0, 2.0, 3.0]))
        with Tape() as tape:
            y = ad.sum(x)
        (g,) = tape.gradient(y, [x])
        np.testing.assert_allclose(g, np.ones(3))

    def test_unused_source_gets_zero_gradient(self):
        x = Variable(np.array([1.0, 2.0]))
        z = Variable(np.array([5.0, 6.0]))
        with Tape() as tape:
            y = ad.sum(x * x)
        (gx, gz) = tape.gradient(y, [x, z])
        np.testing.assert_allclose(gx, 2.0 * x.value)
        np.testing.assert_allclose(gz, np.zeros(2))

    def test_fanout_accumulates(self):
        x = Variable(2.0)
        with Tape() as tape:
            y = x * x + x * x  # x used four times
        (g,) = tape.gradient(y, [x])
        np.testing.assert_allclose(g, 8.0)

    def test_no_tape_means_no_recording(self):
        x = Variable(1.0)
        y = x + x  # outside any tape: still computes
        assert y.value == 2.0

    def test_nested_tapes_record_independently(self):
        x = Variable(3.0)
        with Tape() as outer:
            a = x * x
            with Tape() as inner:
                b = x * x * x
            (gi,) = inner.gradient(b, [x])
        (go,) = outer.gradient(a, [x])
        np.testing.assert_allclose(gi, 27.0)
        np.testing.assert_allclose(go, 6.0)

    def test_custom_seed(self):
        x = Variable(np.array([1.0, 2.0]))
        with Tape() as tape:
            y = x * 3.0
        (g,) = tape.gradient(y, [x], seed=np.array([10.0, 100.0]))
        np.testing.assert_allclose(g, [30.0, 300.0])


class TestOps:
    @pytest.mark.parametrize(
        "f",
        [
            lambda x: ad.sum(x + x),
            lambda x: ad.sum(x - 2.0 * x),
            lambda x: ad.sum(x * x * x),
            lambda x: ad.sum(x / (2.0 + x * x)),
            lambda x: ad.sum(-x),
            lambda x: ad.sum(ad.exp(x)),
            lambda x: ad.sum(ad.log(x * x + 1.0)),
            lambda x: ad.sum(ad.log1p(x * x)),
            lambda x: ad.sum(ad.sqrt(x * x + 1.0)),
            lambda x: ad.sum(ad.tanh(x)),
            lambda x: ad.sum(ad.sin(x) * ad.cos(x)),
            lambda x: ad.sum(ad.sigmoid(x)),
            lambda x: ad.sum(ad.log_sigmoid(x)),
            lambda x: ad.sum(x ** 3.0),
            lambda x: ad.logsumexp(x, axis=-1),
            lambda x: ad.sum(ad.logsumexp(x * x, axis=0)),
        ],
        ids=[
            "add", "sub", "mul", "div", "neg", "exp", "log", "log1p", "sqrt",
            "tanh", "sincos", "sigmoid", "log_sigmoid", "pow", "logsumexp",
            "logsumexp_axis0",
        ],
    )
    def test_against_finite_differences(self, f):
        rng = np.random.RandomState(0)
        x = rng.randn(7)
        check_grad(f, x)

    def test_matmul_matrix_matrix(self):
        rng = np.random.RandomState(1)
        a = rng.randn(4, 3)
        b = rng.randn(3, 5)
        check_grad(lambda x: ad.sum(ad.matmul(x, b)), a)
        check_grad(lambda y: ad.sum(ad.matmul(a, y)), b)

    def test_matmul_vector_cases(self):
        rng = np.random.RandomState(2)
        m = rng.randn(4, 3)
        v = rng.randn(3)
        check_grad(lambda x: ad.sum(ad.matmul(m, x)), v)

    def test_where_routes_gradients(self):
        cond = np.array([True, False, True])
        a = np.array([1.0, 2.0, 3.0])
        b = np.array([4.0, 5.0, 6.0])
        g = grad(lambda x: ad.sum(ad.where(cond, x, b)))(a)
        np.testing.assert_allclose(g, [1.0, 0.0, 1.0])
        g = grad(lambda y: ad.sum(ad.where(cond, a, y)))(b)
        np.testing.assert_allclose(g, [0.0, 1.0, 0.0])

    def test_dot_last_matches_manual(self):
        rng = np.random.RandomState(3)
        x = rng.randn(5, 4)
        y = rng.randn(5, 4)
        g = grad(lambda v: ad.sum(ad.dot_last(v, y)))(x)
        np.testing.assert_allclose(g, y)

    def test_mean(self):
        x = np.arange(6.0).reshape(2, 3)
        g = grad(lambda v: ad.mean(v))(x)
        np.testing.assert_allclose(g, np.full((2, 3), 1.0 / 6.0))
        g = grad(lambda v: ad.sum(ad.mean(v, axis=0)))(x)
        np.testing.assert_allclose(g, np.full((2, 3), 0.5))

    def test_sum_axis(self):
        x = np.arange(6.0).reshape(2, 3)
        g = grad(lambda v: ad.sum(ad.sum(v, axis=-1) * np.array([1.0, 10.0])))(x)
        np.testing.assert_allclose(g, [[1.0, 1.0, 1.0], [10.0, 10.0, 10.0]])

    def test_abs(self):
        x = np.array([-2.0, 3.0])
        g = grad(lambda v: ad.sum(ad.abs_(v)))(x)
        np.testing.assert_allclose(g, [-1.0, 1.0])

    def test_log_sigmoid_is_stable_for_large_inputs(self):
        x = np.array([-1000.0, 0.0, 1000.0])
        v, g = value_and_grad(lambda v: ad.sum(ad.log_sigmoid(v)))(x)
        assert np.isfinite(v)
        assert np.all(np.isfinite(g))

    def test_sigmoid_is_stable_for_large_inputs(self):
        x = np.array([-1000.0, 1000.0])
        v = ad.sigmoid(x).value
        np.testing.assert_allclose(v, [0.0, 1.0], atol=1e-12)


class TestGradAPI:
    def test_grad_batched_objective_is_per_member(self):
        # f maps (Z, d) -> (Z,); because members are independent, one
        # backward sweep computes every member's gradient.
        rng = np.random.RandomState(4)
        q = rng.randn(6, 3)
        g = grad(lambda v: ad.sum(v * v, axis=-1) * -0.5)(q)
        np.testing.assert_allclose(g, -q)

    def test_value_and_grad_returns_both(self):
        v, g = value_and_grad(lambda x: ad.sum(x * x))(np.array([3.0, 4.0]))
        np.testing.assert_allclose(v, 25.0)
        np.testing.assert_allclose(g, [6.0, 8.0])

    def test_multiple_argnums(self):
        f = lambda a, b: ad.sum(a * b)
        v, (ga, gb) = value_and_grad(f, argnums=(0, 1))(
            np.array([1.0, 2.0]), np.array([3.0, 4.0])
        )
        np.testing.assert_allclose(ga, [3.0, 4.0])
        np.testing.assert_allclose(gb, [1.0, 2.0])

    def test_non_variable_return_raises(self):
        with pytest.raises(TypeError):
            grad(lambda x: 3.0)(np.array([1.0]))

    def test_check_grad_catches_wrong_vjp(self):
        from repro.autodiff.tape import defvjp

        bad_square = defvjp(np.square, lambda r, x: lambda g: g * x)  # missing 2x
        with pytest.raises(AssertionError):
            check_grad(lambda x: ad.sum(bad_square(x)), np.array([1.0, 2.0]))


class TestGradProperties:
    @settings(max_examples=30, deadline=None)
    @given(finite_floats((5,)))
    def test_linearity_of_gradient(self, x):
        f = lambda v: ad.sum(2.5 * v)
        np.testing.assert_allclose(grad(f)(x), np.full(5, 2.5))

    @settings(max_examples=30, deadline=None)
    @given(finite_floats((4,)), finite_floats((4,)))
    def test_sum_rule(self, x, y):
        ga = grad(lambda v: ad.sum(ad.exp(-v * v)))(x)
        gb = grad(lambda v: ad.sum(ad.tanh(v)))(x)
        gsum = grad(lambda v: ad.sum(ad.exp(-v * v)) + ad.sum(ad.tanh(v)))(x)
        np.testing.assert_allclose(gsum, ga + gb, rtol=1e-10)

    @settings(max_examples=30, deadline=None)
    @given(finite_floats((3, 4)))
    def test_batched_objective_rows_independent(self, q):
        # Perturbing row i must not change row j's gradient.
        f = lambda v: ad.sum(ad.tanh(v) * v, axis=-1)
        g0 = grad(f)(q)
        q2 = q.copy()
        q2[0] += 1.0
        g2 = grad(f)(q2)
        np.testing.assert_allclose(g0[1:], g2[1:])
