"""Package marker so the suite's relative imports (``from .programs import
...``) resolve under plain ``python -m pytest`` from the repo root."""
