"""Unit tests for the Python AST frontend (parser + CFG builder + API)."""

import numpy as np
import pytest

from repro import autobatch, ops, primitive
from repro.frontend.parser import FrontendError
from repro.frontend.registry import PrimitiveRegistry, default_registry
from repro.ir.instructions import Branch, CallOp, ConstOp, Jump, PrimOp, Return
from repro.ir.validate import validate_function, validate_program

from .helpers import assert_results_equal
from .programs import fib, is_even, power


# -- compilation structure ---------------------------------------------------


def test_fib_ir_structure():
    fn = fib.ir
    validate_function(fn)
    assert fn.params == ("n",)
    assert fn.outputs == ("__ret0",)
    assert isinstance(fn.entry.terminator, Branch)
    calls = [
        op for blk in fn.blocks for op in blk.ops if isinstance(op, CallOp)
    ]
    assert len(calls) == 2
    assert all(c.func == "fib" for c in calls)


def test_program_assembles_transitive_closure():
    program = is_even.program
    assert set(program.functions) == {"is_even", "is_odd"}
    assert program.main == "is_even"
    validate_program(program)


def test_while_loop_shape():
    fn = power.ir
    labels = [b.label for b in fn.blocks]
    assert any("for_head" in l for l in labels)
    assert any("for_body" in l for l in labels)


def test_callable_remains_plain_python():
    assert fib(10) == 89
    assert fib.__name__ == "fib"
    assert "AutobatchFunction" in repr(fib)


def test_ir_compiled_once_and_cached():
    assert fib.ir is fib.ir
    assert fib.program is fib.program
    assert fib.stack_program() is fib.stack_program()


# -- supported syntax --------------------------------------------------------


@autobatch
def _augmented(x):
    x += 3
    x *= 2
    x -= 1
    return x


def test_augmented_assignment():
    out = _augmented.run_pc(np.array([1, 5]))
    np.testing.assert_array_equal(out, [(1 + 3) * 2 - 1, (5 + 3) * 2 - 1])


@autobatch
def _chained_compare(x):
    if 0 < x <= 10:
        return 1
    return 0


def test_chained_comparison():
    out = _chained_compare.run_pc(np.array([-1, 0, 5, 10, 11]))
    np.testing.assert_array_equal(out, [0, 0, 1, 1, 0])


@autobatch
def _ifexp(x):
    return (x if x > 0 else -x) + (1 if x == 0 else 0)


def test_conditional_expression():
    out = _ifexp.run_pc(np.array([-3, 0, 4]))
    np.testing.assert_array_equal(out, [3, 1, 4])


@autobatch
def _builtins(x):
    return abs(x) + max(x, 0) + min(x, 0) + int(float(x))


def test_builtin_mapping():
    out = _builtins.run_pc(np.array([-2, 3]))
    np.testing.assert_array_equal(out, [2 + 0 + -2 + -2, 3 + 3 + 0 + 3])


@autobatch
def _range_variants(n):
    a = 0
    for i in range(n):
        a += i
    b = 0
    for i in range(2, n):
        b += i
    c = 0
    for i in range(0, n, 2):
        c += i
    return a, b, c


def test_range_variants():
    expected = _range_variants.run_reference(np.array([0, 1, 5, 8]))
    actual = _range_variants.run_pc(np.array([0, 1, 5, 8]))
    assert_results_equal(expected, actual)


@autobatch
def _docstringed(x):
    """This docstring must be skipped, not compiled."""
    return x + 1


def test_docstring_skipped():
    np.testing.assert_array_equal(_docstringed.run_pc(np.array([1])), [2])


@autobatch
def _annotated(x):
    y: int = x + 1
    return y


def test_annotated_assignment():
    np.testing.assert_array_equal(_annotated.run_pc(np.array([4])), [5])


def test_unary_plus_is_noop():
    @autobatch
    def f(x):
        return +x

    np.testing.assert_array_equal(f.run_pc(np.array([3])), [3])


# -- custom primitives --------------------------------------------------------


def test_custom_primitive_roundtrip():
    reg = default_registry.child()

    @primitive(registry=reg, tags=("custom",))
    def triple(x):
        return 3 * np.asarray(x)

    @autobatch(registry=reg)
    def use_triple(x):
        return triple(x) + 1

    out = use_triple.run_pc(np.array([1, 2]))
    np.testing.assert_array_equal(out, [4, 7])
    assert triple(5) == 15  # still plain-callable
    assert reg.get("triple").tags == frozenset({"custom"})


def test_multi_output_primitive():
    reg = default_registry.child()

    @primitive(registry=reg, n_outputs=2)
    def split_sign(x):
        x = np.asarray(x)
        return np.maximum(x, 0), np.minimum(x, 0)

    @autobatch(registry=reg)
    def use_split(x):
        pos, neg = split_sign(x)
        return pos - neg

    out = use_split.run_pc(np.array([-4, 7]))
    np.testing.assert_array_equal(out, [4, 7])


def test_registry_layering():
    parent = PrimitiveRegistry()
    child = parent.child()

    @primitive(registry=parent)
    def parent_prim(x):
        return x

    assert "parent_prim" in child
    assert child.get("parent_prim") is parent.get("parent_prim")
    with pytest.raises(KeyError):
        child.get("missing_prim")
    assert "parent_prim" in child.names()


def test_registry_duplicate_rejected():
    reg = PrimitiveRegistry()

    @primitive(registry=reg)
    def dup(x):
        return x

    with pytest.raises(ValueError, match="already registered"):
        @primitive(registry=reg)  # noqa: F811
        def dup(x):  # noqa: F811
            return x


# -- rejection of unsupported constructs ---------------------------------------


def _expect_frontend_error(fn, match):
    with pytest.raises(FrontendError, match=match):
        _ = fn.ir


@autobatch
def _uses_kwargs(x):
    return ops.dot(x, y=x)


def test_keyword_arguments_rejected():
    _expect_frontend_error(_uses_kwargs, "keyword")


@autobatch
def _no_return(x):
    y = x + 1


def test_missing_return_rejected():
    _expect_frontend_error(_no_return, "without return")


@autobatch
def _inconsistent_returns(x):
    if x > 0:
        return x
    return x, x


def test_inconsistent_return_arity_rejected():
    _expect_frontend_error(_inconsistent_returns, "inconsistent return arity")


@autobatch
def _bare_return(x):
    return


def test_bare_return_rejected():
    _expect_frontend_error(_bare_return, "must return a value")


@autobatch
def _string_constant(x):
    y = "nope"
    return x


def test_string_constant_rejected():
    _expect_frontend_error(_string_constant, "unsupported constant")


@autobatch
def _subscript(x):
    return x[0]


def test_subscript_rejected():
    _expect_frontend_error(_subscript, "unsupported expression")


@autobatch
def _calls_numpy(x):
    return np.sqrt(x)


def test_unregistered_callable_rejected():
    _expect_frontend_error(_calls_numpy, "neither a registered primitive")


@autobatch
def _default_args(x, y=3):
    return x + y


def test_default_arguments_rejected():
    _expect_frontend_error(_default_args, "default values")


@autobatch
def _while_else(x):
    while x > 0:
        x -= 1
    else:
        x = 5
    return x


def test_while_else_rejected():
    _expect_frontend_error(_while_else, "while/else")


@autobatch
def _for_over_list(x):
    for i in [1, 2]:
        x += i
    return x


def test_for_over_list_rejected():
    _expect_frontend_error(_for_over_list, "range")


@autobatch
def _break_outside(x):
    break_ = x
    return break_


@autobatch
def _try_stmt(x):
    try:
        return x
    except Exception:
        return x


def test_try_rejected():
    _expect_frontend_error(_try_stmt, "unsupported statement")


@autobatch
def _starred_target(x):
    a, *rest = x, x
    return a


def test_starred_target_rejected():
    _expect_frontend_error(_starred_target, "names")


def test_name_collision_between_functions():
    @autobatch(name="collide_x")
    def f1(x):
        return x

    @autobatch(name="collide_x")
    def f2(x):
        return _helper_calling(x)

    @autobatch
    def _helper_calling(x):
        return x

    @autobatch
    def caller(x):
        return f1(x) + f2(x)

    with pytest.raises(ValueError, match="share the name"):
        _ = caller.program


def test_run_reference_requires_inputs():
    with pytest.raises(ValueError, match="at least one input"):
        fib.run_reference()


def test_mismatched_batch_sizes_rejected():
    from .programs import gcd

    with pytest.raises(ValueError, match="batch"):
        gcd.run_local(np.array([1, 2]), np.array([1, 2, 3]))
