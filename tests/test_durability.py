"""Tests for durable serving: the snapshot wire format, spilling, and
journal-based crash recovery (repro.serve.durability + repro.vm.snapshot_codec).

Three load-bearing properties:

1. **Codec fidelity** — serialize → deserialize → restore must complete
   bit-identically to the uninterrupted run, for every corpus program, at
   any interruption point, under every executor and both stack layouts.
2. **Admission before allocation** — corrupt, truncated, cross-program, or
   forged-depth bytes are rejected with typed errors *before* any lane
   state is touched; a bad spill entry fails only its own handle.
3. **Replay determinism** — a journaled run recovered after a crash
   completes all unfinished work bit-identically to an uninterrupted run,
   including same-tick cross-shard migration under work stealing.
"""

import os

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.serve import (
    DiskSpillStore,
    Journal,
    MemorySpillStore,
    PreemptPolicy,
    RequestQueue,
    ResultHandle,
    ServeRequest,
    SpilledSnapshot,
    recover,
    resolve_spill_store,
)
from repro.serve.aio import AsyncServer
from repro.vm import (
    ExecutorStateError,
    LaneSnapshot,
    SnapshotCodecError,
    SnapshotDecodeError,
    SnapshotIncompatibleError,
    SnapshotProgramMismatchError,
    program_fingerprint,
)
from repro.vm.program_counter import ProgramCounterVM

from .helpers import assert_results_equal
from .programs import ALL_EXAMPLES, fib, gcd

CORPUS = sorted(ALL_EXAMPLES)
EXECUTORS = ["eager", "fused", "superblock"]

_PLANS = {}
_TOTALS = {}


def plan_for(name, executor):
    key = (name, executor)
    if key not in _PLANS:
        _PLANS[key] = ALL_EXAMPLES[name][0].execution_plan(executor=executor)
    return _PLANS[key]


def total_steps(name, executor, **vm_options):
    key = (name, executor, tuple(sorted(vm_options.items())))
    if key not in _TOTALS:
        fn, inputs = ALL_EXAMPLES[name]
        vm = ProgramCounterVM(
            plan_for(name, executor),
            batch_size=len(np.asarray(inputs[0])),
            **vm_options,
        )
        vm.bind_inputs([np.asarray(x) for x in inputs])
        steps = 0
        while vm.step():
            steps += 1
        _TOTALS[key] = steps
    return _TOTALS[key]


def snapshots_at(name, executor, stop_at, **vm_options):
    fn, inputs = ALL_EXAMPLES[name]
    inputs = [np.asarray(x) for x in inputs]
    vm = ProgramCounterVM(
        plan_for(name, executor), batch_size=len(inputs[0]), **vm_options
    )
    vm.bind_inputs(inputs)
    for _ in range(stop_at):
        vm.step()
    return [vm.snapshot_lane(b) for b in range(vm.batch_size)]


def finish_from(name, executor, snapshots, **vm_options):
    vm = ProgramCounterVM(
        plan_for(name, executor), batch_size=len(snapshots), **vm_options
    )
    for b, snap in enumerate(snapshots):
        vm.restore_lane(b, snap)
    while vm.step():
        pass
    outputs = vm.outputs()
    return outputs[0] if len(outputs) == 1 else tuple(outputs)


def rows_of(arrays):
    z = np.asarray(arrays[0]).shape[0]
    return [tuple(np.asarray(a)[b] for a in arrays) for b in range(z)]


class TestSnapshotBytesRoundTrip:
    """Tentpole property: the wire format is lossless and admission-checked."""

    @pytest.mark.parametrize("executor", EXECUTORS)
    @pytest.mark.parametrize("name", CORPUS)
    def test_mid_flight_bytes_roundtrip(self, name, executor):
        fn, inputs = ALL_EXAMPLES[name]
        expected = fn.run_pc(
            *[np.asarray(x) for x in inputs], executor=executor, max_stack_depth=64
        )
        total = total_steps(name, executor, max_stack_depth=64)
        plan = plan_for(name, executor)
        snaps = snapshots_at(name, executor, total // 2, max_stack_depth=64)
        rehydrated = [
            LaneSnapshot.from_bytes(
                s.to_bytes(), plan.program, facts=plan.facts, max_stack_depth=64
            )
            for s in snaps
        ]
        got = finish_from(name, executor, rehydrated, max_stack_depth=64)
        assert_results_equal(got, expected, context=f"{name}/{executor}")

    @settings(max_examples=40, deadline=None)
    @given(
        name=st.sampled_from(CORPUS),
        executor=st.sampled_from(EXECUTORS),
        src_cache=st.booleans(),
        dst_cache=st.booleans(),
        frac=st.floats(0.0, 1.0),
    )
    def test_roundtrip_property(self, name, executor, src_cache, dst_cache, frac):
        """Hypothesis-chosen interruption point × executor × both stack
        layouts on both sides of the wire — completion stays bit-identical."""
        fn, inputs = ALL_EXAMPLES[name]
        expected = fn.run_pc(
            *[np.asarray(x) for x in inputs], executor=executor, max_stack_depth=64
        )
        total = total_steps(
            name, executor, max_stack_depth=64, top_cache=src_cache
        )
        stop_at = int(round(frac * total))
        plan = plan_for(name, executor)
        snaps = snapshots_at(
            name, executor, stop_at, max_stack_depth=64, top_cache=src_cache
        )
        blobs = [s.to_bytes() for s in snaps]
        # Determinism: re-encoding yields byte-identical blobs.
        assert blobs == [s.to_bytes() for s in snaps]
        rehydrated = [
            LaneSnapshot.from_bytes(
                b, plan.program, facts=plan.facts, max_stack_depth=64
            )
            for b in blobs
        ]
        got = finish_from(
            name, executor, rehydrated, max_stack_depth=64, top_cache=dst_cache
        )
        assert_results_equal(
            got, expected, context=f"{name}/{executor}@{stop_at}/{total}"
        )

    def test_executor_tag_roundtrips(self):
        plan = plan_for("fib", "fused")
        snap = snapshots_at("fib", "fused", 10, max_stack_depth=32)[0]
        assert snap.executor == plan.name
        back = LaneSnapshot.from_bytes(snap.to_bytes(), plan.program)
        assert back.executor == snap.executor


class TestSnapshotBytesRejection:
    """Mutation tests: every corruption is rejected with a typed error
    before any lane state is allocated."""

    def _blob(self):
        snap = snapshots_at("fib", "eager", 12, max_stack_depth=32)[0]
        return snap, snap.to_bytes()

    def test_every_flipped_byte_rejected(self):
        snap, blob = self._blob()
        program = plan_for("fib", "eager").program
        for i in range(len(blob)):
            mutated = bytearray(blob)
            mutated[i] ^= 0xFF
            with pytest.raises(SnapshotCodecError):
                LaneSnapshot.from_bytes(bytes(mutated), program)

    def test_truncation_rejected(self):
        snap, blob = self._blob()
        program = plan_for("fib", "eager").program
        for cut in (0, 1, 4, len(blob) // 2, len(blob) - 1):
            with pytest.raises(SnapshotDecodeError):
                LaneSnapshot.from_bytes(blob[:cut], program)
        with pytest.raises(SnapshotDecodeError):
            LaneSnapshot.from_bytes(blob + b"\x00", program)

    def test_cross_program_bytes_rejected(self):
        snap, blob = self._blob()
        wrong = plan_for("gcd", "eager").program
        assert program_fingerprint(wrong) != program_fingerprint(
            plan_for("fib", "eager").program
        )
        with pytest.raises(SnapshotProgramMismatchError):
            LaneSnapshot.from_bytes(blob, wrong)

    def test_forged_depth_rejected_by_cap_and_verifier(self):
        plan = plan_for("fib", "eager")
        snap = snapshots_at("fib", "eager", 12, max_stack_depth=32)[0]
        # Forge a return-address stack far deeper than the verifier's bound.
        deep = LaneSnapshot(
            program=snap.program,
            pc=snap.pc,
            addr_frames=np.concatenate(
                [snap.addr_frames, np.zeros(200, dtype=snap.addr_frames.dtype)]
            ),
            storages=snap.storages,
            executor_state=dict(snap.executor_state),
            executor=snap.executor,
        )
        blob = deep.to_bytes()
        with pytest.raises(SnapshotIncompatibleError):
            LaneSnapshot.from_bytes(blob, plan.program, max_stack_depth=32)

    def test_forged_depth_rejected_by_verifier_bound(self):
        """A snapshot claiming more frames than the verifier proved this
        program can ever produce is refused even on a deep machine.  (This
        needs a *bounded* program — recursion makes the proven bound None.)"""
        plan = plan_for("poly", "eager")
        facts = plan.verify()
        assert facts.required_stack_depth is not None
        snap = snapshots_at("poly", "eager", 2, max_stack_depth=32)[0]
        forged = facts.required_stack_depth + 8
        deep = LaneSnapshot(
            program=snap.program,
            pc=snap.pc,
            addr_frames=np.concatenate(
                [
                    snap.addr_frames,
                    np.zeros(
                        forged - (snap.addr_frames.shape[0] - 1),
                        dtype=snap.addr_frames.dtype,
                    ),
                ]
            ),
            storages=snap.storages,
            executor_state=dict(snap.executor_state),
            executor=snap.executor,
        )
        blob = deep.to_bytes()
        with pytest.raises(ValueError):
            LaneSnapshot.from_bytes(blob, plan.program, facts=facts)
        # Without facts a deep enough machine would admit it — the verifier
        # bound is what catches the forgery.
        LaneSnapshot.from_bytes(blob, plan.program, max_stack_depth=forged + 8)

    def test_rejected_before_arrays_materialize(self, monkeypatch):
        """Admission runs on parsed headers only — a corrupt blob never
        triggers array materialization."""
        import repro.vm.snapshot_codec as codec

        snap, blob = self._blob()
        program = plan_for("fib", "eager").program

        calls = []
        original = codec._Reader.materialize

        def counting(self, *args, **kwargs):
            calls.append(1)
            return original(self, *args, **kwargs)

        monkeypatch.setattr(codec._Reader, "materialize", counting)
        mutated = bytearray(blob)
        mutated[-1] ^= 0xFF  # break the CRC
        with pytest.raises(SnapshotCodecError):
            LaneSnapshot.from_bytes(bytes(mutated), program)
        wrong = plan_for("gcd", "eager").program
        with pytest.raises(SnapshotProgramMismatchError):
            LaneSnapshot.from_bytes(blob, wrong)
        assert calls == []
        # The pristine blob does materialize.
        LaneSnapshot.from_bytes(blob, program)
        assert calls


class TestExecutorStateExtras:
    """Satellite: executor extras round-trip exactly or fail loudly."""

    def test_extras_roundtrip(self):
        plan = plan_for("fib", "fused")
        snap = snapshots_at("fib", "fused", 8, max_stack_depth=32)[0]
        snap.executor_state = {
            "counters": np.arange(5, dtype=np.int64),
            "flags": {"warm": True, "epoch": 3},
            "scale": 1.5,
        }
        back = LaneSnapshot.from_bytes(snap.to_bytes(), plan.program)
        np.testing.assert_array_equal(
            back.executor_state["counters"], snap.executor_state["counters"]
        )
        assert back.executor_state["counters"].dtype == np.int64
        assert back.executor_state["flags"] == {"warm": True, "epoch": 3}
        assert back.executor_state["scale"] == 1.5

    def test_unserializable_extra_fails_loudly(self):
        snap = snapshots_at("fib", "fused", 8, max_stack_depth=32)[0]
        snap.executor_state = {"handle": object()}
        with pytest.raises(ExecutorStateError) as exc:
            snap.to_bytes()
        message = str(exc.value)
        assert "handle" in message
        # The error names the executor whose state could not be encoded.
        assert snap.executor in message


class TestArrivalStampDeterminism:
    """Satellite bugfix: the queue tie-break is the fleet-unique request id,
    not the admitting queue's local sequence counter."""

    @staticmethod
    def _handle(request_id, submit_tick):
        return ResultHandle(
            ServeRequest(request_id, (np.int64(1),), submit_tick=submit_tick)
        )

    def test_admit_stamps_submit_tick_and_request_id(self):
        queue = RequestQueue()
        handle = self._handle(7, submit_tick=3)
        queue.push(handle)
        assert handle.arrival == (3, 7)

    def test_same_tick_cross_shard_migration_orders_by_request_id(self):
        """Two requests admitted on different shards in the same tick must
        keep one global service order after migration, regardless of each
        shard's local _seq history."""
        shard_a, shard_b = RequestQueue(), RequestQueue()
        late = self._handle(5, submit_tick=3)
        early = self._handle(2, submit_tick=3)
        shard_a.push(late)  # shard A stamps it first (local seq 0)
        migrated = shard_a.pop()
        shard_b.requeue(migrated)  # lands on B before B admits anything
        shard_b.push(early)  # B's local seq would order `late` first
        assert shard_b.pop() is early
        assert shard_b.pop() is late

    def test_requeue_preserves_original_arrival(self):
        queue = RequestQueue()
        handle = self._handle(4, submit_tick=1)
        queue.push(handle)
        stamped = handle.arrival
        popped = queue.pop()
        queue.requeue(popped)
        assert popped.arrival == stamped == (1, 4)


class TestSpilling:
    """Tentpole: a resident cap bounds preempted-snapshot memory; overflow
    spills to a store and rehydrates transparently on resume."""

    def _drive(self, store, cap, lanes=4):
        engine = fib.serve(
            num_lanes=lanes,
            executor="fused",
            preempt=PreemptPolicy(),
            max_resident_snapshots=cap,
            spill_store=store,
        )
        handles = [engine.submit(np.int64(n)) for n in (10, 11, 12, 13)]
        for _ in range(3):
            engine.tick()
        handles += [
            engine.submit(np.int64(n), priority=5) for n in (5, 6, 7, 8, 9, 10)
        ]
        max_backlog = 0
        max_resident = 0
        for _ in range(50000):
            engine.tick()
            max_backlog = max(max_backlog, engine.queue.snapshot_count())
            max_resident = max(max_resident, engine.queue.resident_snapshots())
            if all(h.done() for h in handles):
                break
        assert all(h.done() for h in handles)
        return engine, handles, max_backlog, max_resident

    def _expected(self):
        ns = np.array([10, 11, 12, 13, 5, 6, 7, 8, 9, 10], dtype=np.int64)
        return [int(v) for v in fib.run_pc(ns)]

    def test_memory_spill_respects_cap(self):
        store = MemorySpillStore()
        engine, handles, backlog, resident = self._drive(store, cap=1)
        assert [int(h.result()) for h in handles] == self._expected()
        assert backlog >= 4, "workload must build a real preempted backlog"
        assert resident <= 1
        assert engine.telemetry.resident_peak <= 1
        assert engine.telemetry.spills >= 3
        assert engine.telemetry.rehydrations == engine.telemetry.spills
        assert len(store) == 0, "every spilled entry was reclaimed"

    def test_disk_spill_respects_cap(self, tmp_path):
        store = DiskSpillStore(str(tmp_path / "spill"))
        engine, handles, backlog, resident = self._drive(store, cap=1)
        assert [int(h.result()) for h in handles] == self._expected()
        assert resident <= 1
        assert engine.telemetry.spills >= 3
        assert len(store) == 0

    def test_results_match_uncapped_run(self):
        capped_engine, capped, _, _ = self._drive(MemorySpillStore(), cap=1)
        uncapped_engine, uncapped, _, _ = self._drive(None, cap=10**9)
        assert uncapped_engine.telemetry.spills == 0
        assert [int(h.result()) for h in capped] == [
            int(h.result()) for h in uncapped
        ]
        assert [h.finish_tick for h in capped] == [h.finish_tick for h in uncapped]

    def test_resolve_spill_store_specs(self, tmp_path):
        assert isinstance(resolve_spill_store(None), MemorySpillStore)
        assert isinstance(resolve_spill_store("memory"), MemorySpillStore)
        disk = resolve_spill_store(str(tmp_path / "d"))
        assert isinstance(disk, DiskSpillStore)
        store = MemorySpillStore()
        assert resolve_spill_store(store) is store
        with pytest.raises(TypeError):
            resolve_spill_store(123)

    def test_truncated_spill_entry_fails_only_that_handle(self):
        """Satellite bugfix: a corrupt spill entry fails its own handle and
        vacates the lane; every other request completes normally."""
        store = MemorySpillStore()
        engine = fib.serve(
            num_lanes=2,
            executor="fused",
            preempt=PreemptPolicy(),
            max_resident_snapshots=0,
            spill_store=store,
        )
        stragglers = [engine.submit(np.int64(n)) for n in (15, 16)]
        for _ in range(3):
            engine.tick()
        burst = [engine.submit(np.int64(n), priority=5) for n in (5, 6, 7, 8)]
        while not store:
            engine.tick()
        for key in list(store._data):
            store._data[key] = store._data[key][:10]
        engine.run_until_idle()
        doomed = [h for h in stragglers if h.state == "failed"]
        assert doomed, "at least one spilled straggler must have been corrupted"
        for handle in doomed:
            with pytest.raises(SnapshotDecodeError):
                handle.result()
        survivors = [h for h in stragglers + burst if h.state == "done"]
        expected = {
            5: 8, 6: 13, 7: 21, 8: 34, 15: 987, 16: 1597,
        }
        for handle in survivors:
            n = int(handle.request.inputs[0])
            assert int(handle.result()) == expected[n]
        for handle in burst:
            assert handle.state == "done"
        assert engine.pool.busy_count() == 0, "failed rehydration vacated lanes"
        assert engine.telemetry.failed == len(doomed)

    def test_cluster_spills_with_stealing(self, tmp_path):
        cluster = fib.serve_cluster(
            num_engines=2,
            num_lanes=2,
            executor="fused",
            preempt=PreemptPolicy(),
            steal=True,
            max_resident_snapshots=1,
            spill_store=str(tmp_path / "spill"),
        )
        handles = [cluster.submit(np.int64(n)) for n in (13, 14, 15, 16)]
        for _ in range(3):
            cluster.tick()
        handles += [
            cluster.submit(np.int64(n), priority=5)
            for n in (5, 6, 7, 8, 9, 10, 11, 12)
        ]
        cluster.run_until_idle()
        ns = np.array([13, 14, 15, 16, 5, 6, 7, 8, 9, 10, 11, 12], dtype=np.int64)
        assert [int(h.result()) for h in handles] == [
            int(v) for v in fib.run_pc(ns)
        ]
        assert cluster.telemetry.spills > 0
        assert cluster.telemetry.resident_peak <= 1


class TestJournalRecovery:
    """Tentpole: replaying the admission journal reproduces the run
    bit-identically, completing all unfinished work."""

    SCHEDULE = [
        (0, [(14, 0), (15, 0)]),
        (3, [(5, 5), (6, 5), (7, 5), (8, 5)]),
        (5, [(9, 0)]),
    ]

    def _run(self, journal, crash_after=None, **options):
        engine = fib.serve(
            num_lanes=2,
            executor="fused",
            preempt=PreemptPolicy(),
            journal=journal,
            checkpoint_interval=2,
            **options,
        )
        handles = []
        for tick, batch in self.SCHEDULE:
            while engine.now < tick:
                engine.tick()
            for n, priority in batch:
                handles.append(engine.submit(np.int64(n), priority=priority))
        if crash_after is None:
            engine.run_until_idle()
        else:
            for _ in range(crash_after):
                engine.tick()
        return engine, handles

    def test_recover_bit_identical_engine(self):
        baseline_journal = Journal()
        _, baseline = self._run(baseline_journal)
        expected = {
            h.request_id: (int(h.result()), h.finish_tick) for h in baseline
        }

        crash_journal = Journal()
        self._run(crash_journal, crash_after=6)
        assert crash_journal.unfinished(), "crash must leave work in flight"
        run = recover(
            crash_journal,
            fib,
            2,
            executor="fused",
            preempt=PreemptPolicy(),
        )
        recovered = {
            rid: (int(h.result()), h.finish_tick) for rid, h in run.handles.items()
        }
        assert recovered == expected
        assert run.failures() == {}
        # unfinished_ids() is the crash-time view: the work recovery
        # existed to finish — and every one of those requests is now done.
        crashed = set(run.unfinished_ids())
        assert crashed
        assert all(run.handles[rid].state == "done" for rid in crashed)

    def test_recover_with_spilling_and_checkpoints(self, tmp_path):
        baseline_journal = Journal()
        _, baseline = self._run(
            baseline_journal,
            max_resident_snapshots=1,
            spill_store=MemorySpillStore(),
        )
        expected = {h.request_id: int(h.result()) for h in baseline}

        journal = Journal(str(tmp_path / "j.jsonl"))
        engine, _ = self._run(
            journal,
            crash_after=8,
            max_resident_snapshots=1,
            spill_store=str(tmp_path / "spill"),
        )
        del engine
        reloaded = Journal.load(str(tmp_path / "j.jsonl"))
        assert len(reloaded) == len(journal)
        run = recover(
            reloaded,
            fib,
            2,
            executor="fused",
            preempt=PreemptPolicy(),
            max_resident_snapshots=1,
            spill_store=MemorySpillStore(),
        )
        assert {rid: int(h.result()) for rid, h in run.handles.items()} == expected

    def test_recover_bit_identical_cluster_with_stealing(self, tmp_path):
        """Regression for the arrival-stamp fix: same-tick submissions that
        migrate across shards keep one global order on replay."""

        def drive(journal, crash_after=None):
            cluster = fib.serve_cluster(
                num_engines=2,
                num_lanes=2,
                executor="fused",
                preempt=PreemptPolicy(),
                steal=True,
                journal=journal,
                checkpoint_interval=2,
            )
            handles = [cluster.submit(np.int64(n)) for n in (13, 14, 15, 16)]
            for _ in range(3):
                cluster.tick()
            # Same-tick burst fans out across both shards; stealing then
            # migrates some of them — order must still be fleet-global.
            handles += [
                cluster.submit(np.int64(n), priority=5)
                for n in (5, 6, 7, 8, 9, 10, 11, 12)
            ]
            if crash_after is None:
                cluster.run_until_idle()
            else:
                for _ in range(crash_after):
                    cluster.tick()
            return cluster, handles

        _, baseline = drive(Journal())
        expected = {
            h.request_id: (int(h.result()), h.finish_tick) for h in baseline
        }

        journal = Journal(str(tmp_path / "cluster.jsonl"))
        drive(journal, crash_after=5)
        run = recover(
            Journal.load(str(tmp_path / "cluster.jsonl")),
            fib,
            2,
            num_engines=2,
            executor="fused",
            preempt=PreemptPolicy(),
            steal=True,
        )
        recovered = {
            rid: (int(h.result()), h.finish_tick) for rid, h in run.handles.items()
        }
        assert recovered == expected

    def test_journal_tolerates_torn_final_line(self, tmp_path):
        journal = Journal(str(tmp_path / "j.jsonl"))
        self._run(journal, crash_after=6)
        with open(str(tmp_path / "j.jsonl"), "a") as f:
            f.write('{"type": "sub')  # torn mid-record by the crash
        reloaded = Journal.load(str(tmp_path / "j.jsonl"))
        assert len(reloaded) == len(journal)
        run = recover(reloaded, fib, 2, executor="fused", preempt=PreemptPolicy())
        assert all(h.state == "done" for h in run.handles.values())

    def test_journal_rejects_mid_file_corruption(self, tmp_path):
        path = str(tmp_path / "j.jsonl")
        journal = Journal(path)
        self._run(journal, crash_after=4)
        lines = open(path).read().splitlines()
        assert len(lines) >= 3
        lines[1] = "not json at all"
        with open(path, "w") as f:
            f.write("\n".join(lines) + "\n")
        with pytest.raises(ValueError):
            Journal.load(path)

    def test_recover_records_failures(self):
        journal = Journal()
        engine = fib.serve(num_lanes=1, executor="fused", journal=journal)
        doomed = engine.submit(np.int64(16), step_budget=5)
        fine = engine.submit(np.int64(6))
        engine.run_until_idle()
        assert doomed.state == "failed"
        # Completions (including failures) are journaled; replaying the
        # journal reproduces the same failure.
        run = recover(journal, fib, 1, executor="fused")
        assert set(run.failures()) == {doomed.request_id}
        assert int(run.handles[fine.request_id].result()) == 13

    def test_async_server_threads_journal(self):
        journal = Journal()
        engine = fib.serve(num_lanes=2, executor="fused")
        server = AsyncServer(engine, journal=journal)
        assert engine.journal is journal
        engine.submit(np.int64(5))
        assert len(journal.submissions()) == 1
