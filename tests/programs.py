"""Corpus of autobatchable programs used across the test suite.

Each entry exercises a distinct combination of language features; the
differential tests run every one of them under plain Python, Algorithm 1,
and Algorithm 2 (in both masking and gather-scatter modes) and require
identical results.
"""

import numpy as np

from repro import autobatch, ops


# -- recursion ----------------------------------------------------------------


@autobatch
def fib(n):
    if n <= 1:
        return 1
    return fib(n - 2) + fib(n - 1)


@autobatch
def ackermann(m, n):
    if m == 0:
        return n + 1
    if n == 0:
        return ackermann(m - 1, 1)
    return ackermann(m - 1, ackermann(m, n - 1))


@autobatch
def sum_to(n):
    """Linear recursion with an accumulator-free shape."""
    if n <= 0:
        return 0
    return n + sum_to(n - 1)


@autobatch
def count_tree(depth, seed):
    """Binary recursion whose branching depends on hashed state."""
    if depth <= 0:
        return 1
    left = count_tree(depth - 1, seed * 2)
    right = count_tree(depth - 1, seed * 2 + 1)
    if seed % 3 == 0:
        return left + right
    return left + right + 1


@autobatch
def is_odd(n):
    if n == 0:
        return 0
    return is_even(n - 1)


@autobatch
def is_even(n):
    if n == 0:
        return 1
    return is_odd(n - 1)


@autobatch
def consecutive_calls(n):
    """Two calls whose save/restore pairs are pop-push cancellable."""
    if n <= 0:
        return 1
    a = n - 1
    b = n - 2
    left = consecutive_calls(a)
    right = consecutive_calls(b)
    return left + right


# -- loops ----------------------------------------------------------------


@autobatch
def gcd(a, b):
    while b != 0:
        t = b
        b = a % b
        a = t
    return a


@autobatch
def collatz_steps(n):
    steps = 0
    while n != 1:
        if n % 2 == 0:
            n = n // 2
        else:
            n = 3 * n + 1
        steps = steps + 1
    return steps


@autobatch
def power(base, exponent):
    result = 1
    for _ in range(exponent):
        result = result * base
    return result


@autobatch
def loop_with_break(n):
    total = 0
    i = 0
    while True:
        if i >= n:
            break
        if i % 3 == 0:
            i = i + 1
            continue
        total = total + i
        i = i + 1
    return total


@autobatch
def nested_loops(n):
    total = 0
    for i in range(n):
        for j in range(i):
            total = total + i * j
    return total


@autobatch
def loop_calling(n):
    """A loop body containing a recursive call (stacks inside a loop)."""
    total = 0
    i = 0
    while i < n:
        total = total + fib(i)
        i = i + 1
    return total


# -- straight-line / branching ----------------------------------------------


@autobatch
def poly(x):
    return 3.0 * x * x * x - 2.0 * x * x + x - 7.0


@autobatch
def clamp(x, lo, hi):
    if x < lo:
        return lo
    elif x > hi:
        return hi
    else:
        return x


@autobatch
def sign_of(x):
    if x > 0:
        return 1
    if x < 0:
        return -1
    return 0


@autobatch
def abs_diff(x, y):
    big = x if x > y else y
    small = y if x > y else x
    return big - small


@autobatch
def logic_soup(a, b):
    p = a > 0 and b > 0
    q = a < 0 or b < 0
    r = not p
    s = 0 < a < 10
    return (1 if p else 0) + (2 if q else 0) + (4 if r else 0) + (8 if s else 0)


# -- tuples / multiple returns ------------------------------------------------


@autobatch
def divmod_ab(a, b):
    q = a // b
    r = a % b
    return q, r


@autobatch
def use_divmod(a, b):
    q, r = divmod_ab(a, b)
    return q * 1000 + r


@autobatch
def swap_chain(a, b):
    a, b = b, a
    a, b = b, a + b
    return a, b


@autobatch
def minmax3(a, b, c):
    lo = a
    hi = a
    if b < lo:
        lo = b
    if b > hi:
        hi = b
    if c < lo:
        lo = c
    if c > hi:
        hi = c
    return lo, hi


@autobatch
def recursive_pair(n):
    """Recursion through a multi-output function."""
    if n <= 0:
        return 0, 1
    evens, odds = recursive_pair(n - 1)
    if n % 2 == 0:
        return evens + 1, odds
    return evens, odds + 1


# -- float / primitive-using programs -----------------------------------------


@autobatch
def newton_sqrt(x):
    guess = x
    i = 0
    while i < 20:
        guess = 0.5 * (guess + x / guess)
        i = i + 1
    return guess


@autobatch
def smooth(x):
    return ops.exp(-0.5 * x * x) / ops.sqrt(2.0 * 3.141592653589793)


@autobatch
def vector_norm(v):
    return ops.sqrt(ops.dot(v, v))


@autobatch
def rng_walk(ctr, n):
    """Counter-based RNG: each member's draws depend only on its own state."""
    x = 0.0
    i = 0
    while i < n:
        u = ops.runif(ctr)
        ctr = ops.rng_next(ctr)
        if u > 0.5:
            x = x + 1.0
        else:
            x = x - 1.0
        i = i + 1
    return x


# -- grouped corpora for parametrized tests ------------------------------------


INT_UNARY = {
    "fib": (fib, np.array([0, 1, 3, 7, 4, 5, 10])),
    "sum_to": (sum_to, np.array([0, 1, 5, 13, 2])),
    "collatz_steps": (collatz_steps, np.array([1, 2, 7, 27, 6])),
    "loop_with_break": (loop_with_break, np.array([0, 1, 5, 11])),
    "nested_loops": (nested_loops, np.array([0, 1, 3, 6])),
    "sign_of": (sign_of, np.array([-4, 0, 9])),
    "loop_calling": (loop_calling, np.array([0, 2, 5, 7])),
    "consecutive_calls": (consecutive_calls, np.array([0, 3, 6, 9])),
    "is_even": (is_even, np.array([0, 1, 4, 9])),
}

INT_BINARY = {
    "ackermann": (ackermann, np.array([0, 1, 2, 2, 3]), np.array([3, 2, 3, 0, 3])),
    "gcd": (gcd, np.array([12, 17, 100, 3]), np.array([18, 5, 75, 0])),
    "power": (power, np.array([2, 3, 5, 1]), np.array([0, 4, 3, 7])),
    "divmod_ab": (divmod_ab, np.array([17, 5, 100]), np.array([5, 17, 9])),
    "use_divmod": (use_divmod, np.array([17, 5, 100]), np.array([5, 17, 9])),
    "swap_chain": (swap_chain, np.array([1, 10, -3]), np.array([2, 20, 4])),
    "logic_soup": (logic_soup, np.array([3, -2, 0, 12]), np.array([4, 5, -1, 12])),
}

ALL_EXAMPLES = {}
for _name, (_fn, _arr) in INT_UNARY.items():
    ALL_EXAMPLES[_name] = (_fn, (_arr,))
for _name, (_fn, _a, _b) in INT_BINARY.items():
    ALL_EXAMPLES[_name] = (_fn, (_a, _b))
ALL_EXAMPLES["recursive_pair"] = (recursive_pair, (np.array([0, 1, 5, 8]),))
ALL_EXAMPLES["poly"] = (poly, (np.array([0.0, -1.5, 2.25]),))
ALL_EXAMPLES["newton_sqrt"] = (newton_sqrt, (np.array([1.0, 2.0, 49.0, 0.25]),))
ALL_EXAMPLES["smooth"] = (smooth, (np.array([0.0, 1.0, -2.0]),))
ALL_EXAMPLES["clamp"] = (
    clamp,
    (np.array([1.0, -5.0, 9.0]), np.array([0.0, 0.0, 0.0]), np.array([5.0, 5.0, 5.0])),
)
ALL_EXAMPLES["abs_diff"] = (abs_diff, (np.array([3.0, -1.0]), np.array([1.0, 4.0])))
ALL_EXAMPLES["minmax3"] = (
    minmax3,
    (np.array([3, 1, 7]), np.array([2, 9, 7]), np.array([5, 4, 0])),
)
ALL_EXAMPLES["count_tree"] = (
    count_tree,
    (np.array([0, 1, 3, 4]), np.array([5, 1, 2, 9])),
)
ALL_EXAMPLES["rng_walk"] = (
    rng_walk,
    (ops.make_counters(7, 5), np.array([0, 1, 5, 9, 20])),
)
ALL_EXAMPLES["vector_norm"] = (
    vector_norm,
    (np.array([[3.0, 4.0], [1.0, 0.0], [0.5, 0.5]]),),
)
