"""Tests for R-hat / ESS diagnostics."""

import numpy as np
import pytest

from repro.nuts.diagnostics import (
    effective_sample_size,
    potential_scale_reduction,
    summarize,
)


def iid_chains(n=500, m=8, dim=2, seed=0):
    return np.random.RandomState(seed).randn(n, m, dim)


class TestRhat:
    def test_iid_chains_near_one(self):
        rhat = potential_scale_reduction(iid_chains())
        assert np.all(rhat < 1.02)

    def test_shifted_chain_detected(self):
        chains = iid_chains()
        chains[:, 0, :] += 5.0  # one chain exploring a different mode
        rhat = potential_scale_reduction(chains)
        assert np.all(rhat > 1.5)

    def test_within_chain_drift_detected(self):
        """Split R-hat catches non-stationarity inside a single chain."""
        n, m = 600, 4
        chains = np.random.RandomState(1).randn(n, m, 1)
        chains[:, :, 0] += np.linspace(0.0, 4.0, n)[:, None]  # common drift
        rhat = potential_scale_reduction(chains)
        assert rhat[0] > 1.2

    def test_2d_input_promoted(self):
        chains = iid_chains(dim=1)[:, :, 0]
        rhat = potential_scale_reduction(chains)
        assert rhat.shape == (1,)

    def test_bad_shapes_rejected(self):
        with pytest.raises(ValueError):
            potential_scale_reduction(np.zeros(10))
        with pytest.raises(ValueError):
            potential_scale_reduction(np.zeros((2, 3, 1)))


class TestESS:
    def test_iid_ess_near_sample_count(self):
        chains = iid_chains(n=400, m=4, dim=1, seed=2)
        ess = effective_sample_size(chains)
        assert ess[0] > 0.5 * 400 * 4

    def test_correlated_chain_has_lower_ess(self):
        n, m = 800, 4
        rng = np.random.RandomState(3)
        chains = np.empty((n, m, 1))
        for c in range(m):
            x = 0.0
            for t in range(n):
                x = 0.95 * x + rng.randn() * np.sqrt(1 - 0.95**2)
                chains[t, c, 0] = x
        ess = effective_sample_size(chains)
        assert ess[0] < 0.2 * n * m

    def test_anticorrelated_chain_hits_the_cap(self):
        """Antithetic chains are super-efficient; we cap ESS at n*m."""
        n, m = 600, 4
        rng = np.random.RandomState(4)
        chains = np.empty((n, m, 1))
        for c in range(m):
            x = 0.0
            for t in range(n):
                x = -0.7 * x + rng.randn() * np.sqrt(1 - 0.49)
                chains[t, c, 0] = x
        ess = effective_sample_size(chains)
        assert ess[0] == pytest.approx(n * m)

    def test_ess_capped(self):
        # Strongly antithetic chains would give ESS >> n*m; we cap at n*m.
        n, m = 100, 2
        t = np.arange(n)
        base = np.where(t % 2 == 0, 1.0, -1.0)
        chains = np.stack([base + 0.01 * np.random.RandomState(c).randn(n) for c in range(m)], axis=1)[:, :, None]
        ess = effective_sample_size(chains)
        assert ess[0] <= n * m

    def test_per_coordinate(self):
        chains = iid_chains(n=300, m=4, dim=3, seed=5)
        # Make coordinate 2 sticky.
        for c in range(4):
            for t in range(1, 300):
                chains[t, c, 2] = 0.97 * chains[t - 1, c, 2] + 0.03 * chains[t, c, 2]
        ess = effective_sample_size(chains)
        assert ess[2] < ess[0] and ess[2] < ess[1]


class TestSummarize:
    def test_keys_and_shapes(self):
        chains = iid_chains(n=200, m=4, dim=3, seed=6)
        s = summarize(chains)
        assert set(s) == {"mean", "std", "rhat", "ess"}
        for key in s:
            assert s[key].shape == (3,)

    def test_moments_match_numpy(self):
        chains = iid_chains(n=200, m=4, dim=2, seed=7)
        s = summarize(chains)
        flat = chains.reshape(-1, 2)
        np.testing.assert_allclose(s["mean"], flat.mean(axis=0))
        np.testing.assert_allclose(s["std"], flat.std(axis=0, ddof=1))
