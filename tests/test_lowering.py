"""Unit tests for renaming, call lowering, pop-push elimination, pipeline."""

import numpy as np
import pytest

from repro.ir.builder import FunctionBuilder, ProgramBuilder
from repro.ir.instructions import (
    Block,
    Jump,
    PopOp,
    PrimOp,
    PushJump,
    PushOp,
    Return,
    VarKind,
)
from repro.ir.validate import validate_stack_program
from repro.lowering.pipeline import LoweringError, LoweringOptions, lower_program
from repro.lowering.pop_push import eliminate_pop_push
from repro.lowering.rename import rename_function, rename_program
from repro.vm.program_counter import run_program_counter

from .helpers import assert_results_equal
from .programs import consecutive_calls, fib, gcd, is_even, loop_calling, poly


class TestRename:
    def test_variables_qualified(self):
        fn = rename_function(fib.ir)
        assert fn.params == ("fib.n",)
        assert all(v.startswith("fib.") for v in fn.variables())

    def test_labels_qualified(self):
        fn = rename_function(fib.ir)
        assert all(b.label.startswith("fib.") for b in fn.blocks)

    def test_function_names_preserved(self):
        program = rename_program(is_even.program)
        assert set(program.functions) == {"is_even", "is_odd"}
        for f in program.functions.values():
            for blk in f.blocks:
                for op in blk.ops:
                    if hasattr(op, "func"):
                        assert op.func in program.functions

    def test_rename_is_injective_across_functions(self):
        program = rename_program(is_even.program)
        seen = set()
        for f in program.functions.values():
            for v in f.variables():
                assert v not in seen or v.split(".")[0] == f.name
            seen |= set(f.variables())


class TestLowerCalls:
    def test_fib_block_count_and_structure(self):
        sp = fib.stack_program()
        validate_stack_program(sp)
        pushjumps = [
            b for b in sp.blocks if isinstance(b.terminator, PushJump)
        ]
        returns = [b for b in sp.blocks if isinstance(b.terminator, Return)]
        assert len(pushjumps) == 2  # two call sites
        assert len(returns) == 2    # base case + final return

    def test_pushjump_targets_entry(self):
        sp = fib.stack_program()
        entry = sp.function_entries["fib"]
        for b in sp.blocks:
            if isinstance(b.terminator, PushJump):
                assert b.terminator.jump_target == entry

    def test_recursive_formal_pushed_at_each_call(self):
        sp = fib.stack_program()
        pushes = [
            op
            for b in sp.blocks
            for op in b.ops
            if isinstance(op, PushOp) and op.output == "fib.n"
        ]
        assert len(pushes) == 2

    def test_non_recursive_call_emits_no_stack_ops(self):
        """Paper claim: non-recursive programs need no variable stacks."""

        # loop_calling -> fib is recursive, so use a truly call-free chain:
        b1 = FunctionBuilder("sq", params=("x",), outputs=("__ret0",))
        b1.block("entry").prim(("__ret0",), "mul", ("x", "x")).ret()
        b2 = FunctionBuilder("main2", params=("a",), outputs=("__ret0",))
        b2.block("entry").call(("t",), "sq", ("a",)).call(
            ("__ret0",), "sq", ("t",)
        ).ret()
        program = ProgramBuilder(main="main2").add(b2.build()).add(b1.build()).build()
        sp = lower_program(program)
        stack_ops = [
            op
            for blk in sp.blocks
            for op in blk.ops
            if isinstance(op, (PushOp, PopOp))
        ]
        assert stack_ops == []
        out = run_program_counter(sp, [np.array([2.0, 3.0])])
        np.testing.assert_array_equal(out, [16.0, 81.0])

    def test_swapped_actuals_are_staged(self):
        """fib(b, a) with formals (a, b) must not clobber before reading."""
        b = FunctionBuilder("swapper", params=("a", "b"), outputs=("__ret0",))
        entry, base, rec = b.blocks("entry", "base", "rec")
        entry.prim(("c",), "le", ("a", "b")).branch("c", base, rec)
        base.prim(("__ret0",), "sub", ("b", "a")).ret()
        rec.call(("__ret0",), "swapper", ("b", "a")).ret()
        program = ProgramBuilder().add(b.build()).build()
        sp = lower_program(program)
        out = run_program_counter(sp, [np.array([5, 1]), np.array([2, 9])])
        # swapper(5,2) -> swapper(2,5) -> 3 ; swapper(1,9) -> 8
        np.testing.assert_array_equal(out, [3, 8])

    def test_main_entry_is_block_zero(self):
        sp = loop_calling.stack_program()
        assert sp.function_entries["loop_calling"] == 0
        assert sp.block_sources[0] == "loop_calling"

    def test_inputs_outputs_renamed(self):
        sp = gcd.stack_program()
        assert sp.inputs == ("gcd.a", "gcd.b")
        assert sp.outputs == ("gcd.__ret0",)


class TestPopPushElimination:
    def _block(self, label, ops, terminator):
        return Block(label=label, ops=list(ops), terminator=terminator)

    def test_cancels_simple_pair(self):
        blocks = [
            self._block(
                "b0",
                [
                    PopOp(var="v"),
                    PrimOp(outputs=("t",), fn="id", inputs=("w",)),
                    PushOp(output="v", fn="id", inputs=("t",)),
                ],
                Return(),
            )
        ]
        blocks, n = eliminate_pop_push(blocks)
        assert n == 1
        kinds = [type(op).__name__ for op in blocks[0].ops]
        assert kinds == ["PrimOp", "PrimOp"]  # pop gone, push -> update

    def test_intervening_read_blocks_cancellation(self):
        blocks = [
            self._block(
                "b0",
                [
                    PopOp(var="v"),
                    PrimOp(outputs=("t",), fn="id", inputs=("v",)),  # reads v
                    PushOp(output="v", fn="id", inputs=("t",)),
                ],
                Return(),
            )
        ]
        _, n = eliminate_pop_push(blocks)
        assert n == 0

    def test_push_dup_never_cancels(self):
        blocks = [
            self._block(
                "b0",
                [PopOp(var="v"), PushOp(output="v", fn="id", inputs=("v",))],
                Return(),
            )
        ]
        _, n = eliminate_pop_push(blocks)
        assert n == 0

    def test_intervening_write_blocks_cancellation(self):
        blocks = [
            self._block(
                "b0",
                [
                    PopOp(var="v"),
                    PrimOp(outputs=("v",), fn="id", inputs=("w",)),  # writes v
                    PushOp(output="v", fn="id", inputs=("w",)),
                ],
                Return(),
            )
        ]
        _, n = eliminate_pop_push(blocks)
        assert n == 0

    def test_cancellation_across_jump_chain(self):
        blocks = [
            self._block("b0", [PopOp(var="v")], Jump(target="b1")),
            self._block(
                "b1", [PushOp(output="v", fn="id", inputs=("w",))], Return()
            ),
        ]
        blocks, n = eliminate_pop_push(blocks)
        assert n == 1
        assert blocks[0].ops == []
        assert isinstance(blocks[1].ops[0], PrimOp)

    def test_no_chaining_into_multi_predecessor_block(self):
        blocks = [
            self._block("b0", [PopOp(var="v")], Jump(target="b1")),
            self._block(
                "b1", [PushOp(output="v", fn="id", inputs=("w",))], Return()
            ),
            self._block("b2", [], Jump(target="b1")),  # second predecessor
        ]
        _, n = eliminate_pop_push(blocks)
        assert n == 0

    def test_consecutive_calls_program_cancels_frames(self):
        """The corpus program engineered to trigger optimization 5."""
        with_opt = lower_program(consecutive_calls.program)
        without = lower_program(
            consecutive_calls.program,
            optimize=LoweringOptions(pop_push_opt=False),
        )

        def stack_op_count(sp):
            return sum(
                isinstance(op, (PushOp, PopOp))
                for blk in sp.blocks
                for op in blk.ops
            )

        assert stack_op_count(with_opt) < stack_op_count(without)
        batch = np.array([0, 4, 7])
        assert_results_equal(
            run_program_counter(without, [batch], max_stack_depth=64),
            run_program_counter(with_opt, [batch], max_stack_depth=64),
        )


class TestPipeline:
    def test_rejects_possibly_unassigned(self):
        b = FunctionBuilder("bad", params=("a",), outputs=("__ret0",))
        entry, left, join = b.blocks("entry", "left", "join")
        entry.prim(("c",), "gt", ("a", "a")).branch("c", left, join)
        left.prim(("y",), "id", ("a",)).jump(join)
        join.prim(("__ret0",), "id", ("y",)).ret()
        program = ProgramBuilder().add(b.build()).build()
        with pytest.raises(LoweringError, match="unassigned"):
            lower_program(program)

    def test_optimize_flag_variants(self):
        for optimize in (True, False, LoweringOptions(register_opt=False)):
            sp = lower_program(fib.program, optimize=optimize)
            validate_stack_program(sp)

    def test_var_kinds_cover_all_variables(self):
        sp = fib.stack_program()
        for v in sp.variables():
            assert v in sp.var_kinds, f"{v} missing a storage class"

    def test_unoptimized_has_no_temps(self):
        sp = lower_program(poly.program, optimize=False)
        assert all(k is not VarKind.TEMP for k in sp.var_kinds.values())

    def test_function_entries_recorded(self):
        sp = is_even.stack_program()
        assert set(sp.function_entries) == {"is_even", "is_odd"}

    def test_block_sources_align(self):
        sp = is_even.stack_program()
        assert len(sp.block_sources) == len(sp.blocks)
        assert set(sp.block_sources) == {"is_even", "is_odd"}
