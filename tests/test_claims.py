"""Direct tests of the paper's specific prose claims (see EXPERIMENTS.md)."""

import numpy as np
import pytest

from repro import autobatch, ops, primitive
from repro.frontend.registry import PrimitiveRegistry, default_registry
from repro.ir.instructions import PushOp, VarKind


# ---------------------------------------------------------------------------
# §3: "program counter autobatching will run a non-recursive program
# entirely without variable stacks (except for the program counter itself)"
# ---------------------------------------------------------------------------


def stacked_vars(fn):
    sp = fn.stack_program(optimize=True)
    return sorted(v for v, k in sp.var_kinds.items() if k is VarKind.STACKED)


class TestNoStacksForNonRecursive:
    def test_loop_program_has_no_stacks(self):
        from .programs import collatz_steps, gcd, newton_sqrt

        for fn in (gcd, collatz_steps, newton_sqrt):
            assert stacked_vars(fn) == [], fn.name

    def test_non_recursive_call_chain_has_no_stacks(self):
        """Calls alone do not force stacks — only *recursive* liveness does."""
        from .programs import use_divmod

        assert stacked_vars(use_divmod) == []

    def test_recursive_program_stacks_only_live_variables(self):
        """fib needs exactly n (live across both calls) and the first call's
        result (live across the second call) — the paper's Figure 3 pair."""
        from .programs import fib

        names = [v.split(".")[-1] for v in stacked_vars(fib)]
        assert "n" in names
        assert len(names) == 2

    def test_non_recursive_stack_program_pushes_nothing_at_runtime(self):
        from .programs import use_divmod
        from repro.vm.instrumentation import Instrumentation

        instr = Instrumentation()
        a = np.array([17, 23, 99])
        b = np.array([5, 7, 10])
        use_divmod.run_pc(a, b, instrumentation=instr)
        assert instr.pushes == 0
        assert instr.pops == 0


# ---------------------------------------------------------------------------
# §3: "this compiled approach doesn't amount to inlining all function calls,
# so can autobatch a program with significant subroutine reuse without
# combinatorial explosion in code size"
# ---------------------------------------------------------------------------


@autobatch
def _shared_leaf(x):
    return x * x + 1


@autobatch
def _layer1(x):
    return _shared_leaf(x) + _shared_leaf(x + 1)


@autobatch
def _layer2(x):
    return _layer1(x) + _layer1(x + 1)


@autobatch
def _layer3(x):
    return _layer2(x) + _layer2(x + 1)


class TestNoInliningExplosion:
    def test_block_count_linear_in_source_not_call_tree(self):
        # The call *tree* has 2^3 = 8 leaf invocations; a tracing/inlining
        # system would emit ~15 function bodies.  The compiled program holds
        # each function once.
        sp = _layer3.stack_program()
        per_fn_blocks = len(_shared_leaf.ir.blocks)
        assert len(sp.blocks) < 4 * 8  # far below inlined size
        assert len(sp.function_entries) == 4  # one entry per function, once

    def test_shared_subroutine_result_correct(self):
        x = np.array([0, 1, 2, 5])
        np.testing.assert_array_equal(
            _layer3.run_pc(x), _layer3.run_reference(x)
        )


# ---------------------------------------------------------------------------
# §2: masked execution "happens with junk data, which may trigger spurious
# failures in the underlying platform"; gather-scatter "avoids computing on
# junk data".
# ---------------------------------------------------------------------------

_strict_registry = PrimitiveRegistry(parent=default_registry)


@primitive(registry=_strict_registry, name="strict_sqrt")
def strict_sqrt(x):
    """A platform kernel that *faults* (rather than warns) on bad input."""
    x = np.asarray(x)
    if np.any(x < 0):
        raise FloatingPointError("strict_sqrt: negative input lane")
    return np.sqrt(x)


@autobatch(registry=_strict_registry)
def _guarded_sqrt(x):
    if x >= 0:
        y = strict_sqrt(x)
    else:
        y = 0.0 - strict_sqrt(0.0 - x)
    return y


class TestJunkDataClaim:
    BATCH = np.array([4.0, -9.0, 16.0, -25.0])

    def test_masked_execution_trips_strict_kernel(self):
        """Masking runs the kernel on lanes headed down the other branch."""
        with pytest.raises(FloatingPointError):
            _guarded_sqrt.run_pc(self.BATCH, mode="mask")

    def test_gather_execution_avoids_junk(self):
        out = _guarded_sqrt.run_pc(self.BATCH, mode="gather")
        np.testing.assert_allclose(out, [2.0, -3.0, 4.0, -5.0])

    def test_local_machine_same_contrast(self):
        with pytest.raises(FloatingPointError):
            _guarded_sqrt.run_local(self.BATCH, mode="mask")
        out = _guarded_sqrt.run_local(self.BATCH, mode="gather")
        np.testing.assert_allclose(out, [2.0, -3.0, 4.0, -5.0])

    def test_reference_never_sees_junk(self):
        out = _guarded_sqrt.run_reference(self.BATCH)
        np.testing.assert_allclose(out, [2.0, -3.0, 4.0, -5.0])


# ---------------------------------------------------------------------------
# §2: "as long as we don't starve any blocks, any selection criterion will
# lead to a correct end result" + scheduler fairness under divergence.
# ---------------------------------------------------------------------------


@autobatch
def _spin(n):
    total = 0
    while n > 0:
        total = total + n
        n = n - 1
    return total


class TestSchedulerClaims:
    def test_every_heuristic_correct_under_extreme_divergence(self):
        # One member loops 1000x, others exit immediately.
        n = np.array([1000, 0, 1, 0])
        expected = _spin.run_reference(n)
        for scheduler in ("earliest", "most_active", "round_robin"):
            np.testing.assert_array_equal(
                _spin.run_pc(n, scheduler=scheduler), expected
            )
            np.testing.assert_array_equal(
                _spin.run_local(n, scheduler=scheduler), expected
            )

    def test_no_member_starves(self):
        """All members terminate even when one dominates the schedule."""
        from .programs import collatz_steps

        n = np.array([837799, 1, 2, 1])  # member 0 takes 524 loop iterations
        out = collatz_steps.run_pc(n, max_steps=10**7)
        np.testing.assert_array_equal(
            out, collatz_steps.run_reference(n)
        )


# ---------------------------------------------------------------------------
# §1/§3: the PC machine is non-recursive — Python recursion depth stays flat
# no matter how deep the *program's* recursion goes.
# ---------------------------------------------------------------------------


@autobatch
def _countdown(n):
    if n <= 0:
        return 0
    return 1 + _countdown(n - 1)


class TestHostRecursionClaim:
    def test_pc_machine_depth_independent_of_program_recursion(self):
        import sys

        depths = []
        real_step = None

        # Record Python stack depth at every machine step via a probe
        # primitive would be invasive; instead exercise a recursion depth the
        # *local* machine could not survive with a small recursion limit.
        n = np.array([400, 200, 100, 399])
        out = _countdown.run_pc(n, max_stack_depth=410)
        np.testing.assert_array_equal(out, n)

        limit = sys.getrecursionlimit()
        try:
            sys.setrecursionlimit(220)
            # The local machine recurses through Python and must blow up...
            with pytest.raises(RecursionError):
                _countdown.run_local(n)
            # ...while the PC machine at the same limit does not.
            out = _countdown.run_pc(n, max_stack_depth=410)
            np.testing.assert_array_equal(out, n)
        finally:
            sys.setrecursionlimit(limit)

    def test_stack_overflow_diagnosed(self):
        from repro.vm.stack import StackOverflowError

        n = np.array([50])
        with pytest.raises(StackOverflowError):
            _countdown.run_pc(n, max_stack_depth=10)
