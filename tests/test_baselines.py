"""Tests for the Figure 5 baseline comparators."""

import numpy as np
import pytest

from repro.baselines import EagerUnbatchedSampler, StanLikeSampler
from repro.nuts import NutsKernel
from repro.targets import CorrelatedGaussian


@pytest.fixture(scope="module")
def target():
    return CorrelatedGaussian(dim=3, rho=0.4)


class TestStanLike:
    def test_runs_and_counts(self, target):
        sampler = StanLikeSampler(target, step_size=0.2, max_depth=5)
        q0 = target.initial_state(3, seed=0)
        run = sampler.run(q0, n_trajectories=5, seed=1)
        assert run.positions.shape == (3, 3)
        assert run.grad_evals > 0
        assert run.gradients_per_second() > 0

    def test_throughput_flat_in_batch_size(self, target):
        """Serial chains: total gradients scale with Z, so grads/sec is ~flat
        while total wall time grows ~linearly."""
        sampler = StanLikeSampler(target, step_size=0.2, max_depth=5)
        small = sampler.run(target.initial_state(1, seed=2), 20, seed=3)
        large = sampler.run(target.initial_state(8, seed=2), 20, seed=3)
        assert large.grad_evals > 4 * small.grad_evals
        assert large.wall_time > small.wall_time

    def test_calibration_scales_throughput(self, target):
        fast = StanLikeSampler(target, step_size=0.2, speed_ratio=10.0)
        run = fast.run(target.initial_state(2, seed=4), 3, seed=5)
        assert fast.calibrated_grads_per_second(run) == pytest.approx(
            10.0 * run.gradients_per_second()
        )

    def test_invalid_speed_ratio(self, target):
        with pytest.raises(ValueError):
            StanLikeSampler(target, step_size=0.1, speed_ratio=0.0)


class TestEagerUnbatched:
    def test_matches_batched_strategies_bitwise(self, target):
        kernel = NutsKernel(target)
        q0 = target.initial_state(4, seed=6)
        eager = EagerUnbatchedSampler(target, step_size=0.15, max_depth=4, kernel=kernel)
        run = eager.run(q0, n_trajectories=3, seed=7)
        batched = kernel.run(
            q0, step_size=0.15, n_trajectories=3, max_depth=4, seed=7, strategy="pc"
        )
        np.testing.assert_allclose(run.positions, batched.positions)
        assert run.grad_evals == batched.total_grad_evals

    def test_builds_own_kernel_when_not_given(self, target):
        eager = EagerUnbatchedSampler(target, step_size=0.15)
        run = eager.run(target.initial_state(2, seed=8), 2, seed=9)
        assert run.positions.shape == (2, 3)
