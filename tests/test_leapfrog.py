"""Physics tests for the leapfrog integrator."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nuts.leapfrog import hamiltonian, kinetic_energy, leapfrog
from repro.targets import CorrelatedGaussian


@pytest.fixture(scope="module")
def target():
    return CorrelatedGaussian(dim=3, rho=0.4)


class TestLeapfrog:
    def test_single_and_batched_agree(self, target):
        rng = np.random.RandomState(0)
        q = rng.randn(5, 3)
        p = rng.randn(5, 3)
        qb, pb = leapfrog(q, p, 0.1, target.grad_log_prob, n_steps=3)
        for b in range(5):
            q1, p1 = leapfrog(q[b], p[b], 0.1, target.grad_log_prob, n_steps=3)
            np.testing.assert_allclose(qb[b], q1)
            np.testing.assert_allclose(pb[b], p1)

    def test_per_member_step_sizes(self, target):
        rng = np.random.RandomState(1)
        q = rng.randn(4, 3)
        p = rng.randn(4, 3)
        steps = np.array([0.05, 0.1, -0.05, 0.2])
        qb, pb = leapfrog(q, p, steps, target.grad_log_prob, n_steps=2)
        for b in range(4):
            q1, p1 = leapfrog(q[b], p[b], steps[b], target.grad_log_prob, n_steps=2)
            np.testing.assert_allclose(qb[b], q1)
            np.testing.assert_allclose(pb[b], p1)

    def test_reversibility(self, target):
        """Integrating forward then backward returns to the start."""
        rng = np.random.RandomState(2)
        q0 = rng.randn(3)
        p0 = rng.randn(3)
        q1, p1 = leapfrog(q0, p0, 0.1, target.grad_log_prob, n_steps=7)
        q2, p2 = leapfrog(q1, p1, -0.1, target.grad_log_prob, n_steps=7)
        np.testing.assert_allclose(q2, q0, atol=1e-10)
        np.testing.assert_allclose(p2, p0, atol=1e-10)

    def test_momentum_flip_reversibility(self, target):
        """The classical form: flip momentum, integrate, flip again."""
        rng = np.random.RandomState(3)
        q0, p0 = rng.randn(3), rng.randn(3)
        q1, p1 = leapfrog(q0, p0, 0.1, target.grad_log_prob, n_steps=5)
        q2, p2 = leapfrog(q1, -p1, 0.1, target.grad_log_prob, n_steps=5)
        np.testing.assert_allclose(q2, q0, atol=1e-10)
        np.testing.assert_allclose(-p2, p0, atol=1e-10)

    def test_energy_conservation_scales_with_step(self, target):
        """Leapfrog is second order: energy error ~ O(eps^2)."""
        rng = np.random.RandomState(4)
        q0, p0 = rng.randn(3), rng.randn(3)
        h0 = hamiltonian(q0, p0, target.log_prob)

        def error(eps, total_time=1.0):
            n = int(round(total_time / eps))
            q1, p1 = leapfrog(q0, p0, eps, target.grad_log_prob, n_steps=n)
            return abs(float(hamiltonian(q1, p1, target.log_prob) - h0))

        coarse = error(0.1)
        fine = error(0.025)
        assert fine < coarse / 4  # at least ~quadratic improvement

    def test_volume_preservation_2d(self):
        """The Jacobian of one leapfrog step has determinant one."""
        target = CorrelatedGaussian(dim=2, rho=0.3)
        q0 = np.array([0.3, -0.2])
        p0 = np.array([0.7, 0.1])
        eps_fd = 1e-6

        def flow(x):
            q, p = leapfrog(x[:2], x[2:], 0.2, target.grad_log_prob, n_steps=1)
            return np.concatenate([q, p])

        x0 = np.concatenate([q0, p0])
        jac = np.empty((4, 4))
        for i in range(4):
            bump = np.zeros(4)
            bump[i] = eps_fd
            jac[:, i] = (flow(x0 + bump) - flow(x0 - bump)) / (2 * eps_fd)
        assert np.linalg.det(jac) == pytest.approx(1.0, abs=1e-6)

    def test_invalid_steps_rejected(self, target):
        with pytest.raises(ValueError):
            leapfrog(np.zeros(3), np.zeros(3), 0.1, target.grad_log_prob, n_steps=0)

    @settings(max_examples=20, deadline=None)
    @given(st.integers(1, 8))
    def test_n_steps_composes(self, n):
        """n steps in one call equals n calls of one step."""
        target = CorrelatedGaussian(dim=2, rho=0.5)
        rng = np.random.RandomState(5)
        q0, p0 = rng.randn(2), rng.randn(2)
        q1, p1 = leapfrog(q0, p0, 0.05, target.grad_log_prob, n_steps=n)
        q2, p2 = q0, p0
        for _ in range(n):
            q2, p2 = leapfrog(q2, p2, 0.05, target.grad_log_prob, n_steps=1)
        np.testing.assert_allclose(q1, q2, atol=1e-12)
        np.testing.assert_allclose(p1, p2, atol=1e-12)


class TestEnergyHelpers:
    def test_kinetic_energy_batched(self):
        p = np.array([[3.0, 4.0], [0.0, 0.0]])
        np.testing.assert_allclose(kinetic_energy(p), [12.5, 0.0])

    def test_hamiltonian_is_logp_minus_ke(self):
        target = CorrelatedGaussian(dim=2, rho=0.1)
        q = np.array([0.5, -0.5])
        p = np.array([1.0, 2.0])
        expected = target.log_prob(q) - 2.5
        np.testing.assert_allclose(hamiltonian(q, p, target.log_prob), expected)
