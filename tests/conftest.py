"""Shared pytest configuration: asyncio test support with a fallback.

``tests/test_aio.py`` exercises the asyncio front door with native
``async def`` tests marked ``@pytest.mark.asyncio``.  CI installs
``pytest-asyncio`` to run them; in minimal environments without the
plugin, the hook below runs each coroutine test through ``asyncio.run``
so the suite needs no extra dependency either way.
"""

import asyncio
import inspect

import pytest

try:
    import pytest_asyncio  # noqa: F401

    _HAVE_PLUGIN = True
except ImportError:
    _HAVE_PLUGIN = False


def pytest_configure(config):
    config.addinivalue_line(
        "markers", "asyncio: run the coroutine test on an event loop"
    )


if not _HAVE_PLUGIN:

    @pytest.hookimpl(tryfirst=True)
    def pytest_pyfunc_call(pyfuncitem):
        test_fn = pyfuncitem.obj
        if not inspect.iscoroutinefunction(test_fn):
            return None
        kwargs = {
            name: pyfuncitem.funcargs[name]
            for name in pyfuncitem._fixtureinfo.argnames
        }
        asyncio.run(test_fn(**kwargs))
        return True
