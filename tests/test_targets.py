"""Tests for the target densities: analytic vs autodiff vs finite differences."""

import numpy as np
import pytest

# Target densities must stay warning-clean even on the extreme states a
# diverging leapfrog integrator proposes — a numpy RuntimeWarning here is a
# regression (see Rosenbrock's controlled errstate), so escalate them all.
pytestmark = pytest.mark.filterwarnings("error::RuntimeWarning")
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.frontend.registry import PrimitiveRegistry
from repro.targets import (
    BayesianLogisticRegression,
    CorrelatedGaussian,
    NealsFunnel,
    Rosenbrock,
)

# Small instances keep the suite fast; sizes are exercised elsewhere.
TARGETS = [
    CorrelatedGaussian(dim=5, rho=0.7),
    BayesianLogisticRegression(n_data=50, n_features=4, seed=1),
    NealsFunnel(dim=4),
    Rosenbrock(dim=3),
]
IDS = [type(t).__name__ for t in TARGETS]


def finite_diff_grad(f, q, eps=1e-6):
    q = np.asarray(q, dtype=np.float64)
    g = np.zeros_like(q)
    for i in range(q.size):
        bump = np.zeros_like(q)
        bump.flat[i] = eps
        g.flat[i] = (f(q + bump) - f(q - bump)) / (2.0 * eps)
    return g


@pytest.mark.parametrize("target", TARGETS, ids=IDS)
class TestEveryTarget:
    def test_analytic_grad_matches_finite_differences(self, target):
        rng = np.random.RandomState(0)
        for _ in range(3):
            q = rng.randn(target.dim)
            fd = finite_diff_grad(lambda v: float(target.log_prob(v)), q)
            np.testing.assert_allclose(
                target.grad_log_prob(q), fd, rtol=1e-4, atol=1e-5
            )

    def test_analytic_grad_matches_autodiff(self, target):
        rng = np.random.RandomState(1)
        q = rng.randn(6, target.dim)
        np.testing.assert_allclose(
            target.grad_log_prob(q),
            target.grad_log_prob_autodiff(q),
            rtol=1e-8,
            atol=1e-10,
        )

    def test_batched_matches_loop(self, target):
        rng = np.random.RandomState(2)
        q = rng.randn(5, target.dim)
        batched_lp = target.log_prob(q)
        batched_gr = target.grad_log_prob(q)
        for b in range(5):
            np.testing.assert_allclose(batched_lp[b], target.log_prob(q[b]))
            np.testing.assert_allclose(batched_gr[b], target.grad_log_prob(q[b]))

    def test_initial_state_shape(self, target):
        q0 = target.initial_state(batch_size=7, seed=3)
        assert q0.shape == (7, target.dim)
        assert np.all(np.isfinite(target.log_prob(q0)))

    def test_primitives_register_once_and_run(self, target):
        registry = PrimitiveRegistry()
        prims = target.primitives(registry)
        assert prims is target.primitives(registry)  # cached
        q = target.initial_state(4, seed=4)
        np.testing.assert_allclose(prims.log_prob.fn(q), target.log_prob(q))
        np.testing.assert_allclose(prims.grad_log_prob.fn(q), target.grad_log_prob(q))
        assert "gradient" in prims.grad_log_prob.tags

    def test_grad_cost_positive(self, target):
        assert target.grad_flops_per_member() > 0
        assert target.logp_flops_per_member() > 0


class TestCorrelatedGaussian:
    def test_paper_size_constructs(self):
        t = CorrelatedGaussian(dim=100)
        assert t.covariance.shape == (100, 100)
        # Covariance must be positive definite (Cholesky succeeded).
        assert np.all(np.linalg.eigvalsh(t.covariance) > 0)

    def test_mode_is_mu(self):
        t = CorrelatedGaussian(dim=4, rho=0.5, mu=np.array([1.0, -2.0, 0.5, 3.0]))
        np.testing.assert_allclose(t.grad_log_prob(t.mu), np.zeros(4), atol=1e-12)
        assert t.log_prob(t.mu) == pytest.approx(0.0)

    def test_log_prob_decreases_away_from_mode(self):
        t = CorrelatedGaussian(dim=3, rho=0.2)
        assert t.log_prob(np.ones(3)) < t.log_prob(np.zeros(3))

    def test_sample_exact_moments(self):
        t = CorrelatedGaussian(dim=3, rho=0.8)
        draws = t.sample_exact(200_000, seed=5)
        np.testing.assert_allclose(draws.mean(axis=0), t.mu, atol=0.01)
        np.testing.assert_allclose(np.cov(draws.T), t.covariance, atol=0.02)

    def test_invalid_rho_rejected(self):
        with pytest.raises(ValueError):
            CorrelatedGaussian(dim=3, rho=1.0)

    def test_invalid_mu_shape_rejected(self):
        with pytest.raises(ValueError):
            CorrelatedGaussian(dim=3, mu=np.zeros(4))

    @settings(max_examples=25, deadline=None)
    @given(
        hnp.arrays(
            np.float64, (4,), elements=st.floats(-5, 5, allow_nan=False)
        )
    )
    def test_log_prob_bounded_above_by_mode(self, q):
        t = CorrelatedGaussian(dim=4, rho=0.6)
        assert t.log_prob(q) <= t.log_prob(t.mu) + 1e-12


class TestLogisticRegression:
    def test_paper_size_constructs(self):
        t = BayesianLogisticRegression()  # 10k x 100 default
        assert t.features.shape == (10_000, 100)
        assert t.labels.shape == (10_000,)
        assert set(np.unique(t.labels)) <= {0.0, 1.0}

    def test_true_weights_have_high_accuracy(self):
        t = BayesianLogisticRegression(n_data=2000, n_features=10, seed=2)
        assert t.accuracy(t.true_weights) > 0.6
        assert t.accuracy(t.true_weights) > t.accuracy(np.zeros(10)) - 0.5

    def test_log_prob_stable_for_extreme_weights(self):
        t = BayesianLogisticRegression(n_data=100, n_features=5, seed=3)
        q = np.full(5, 100.0)
        assert np.isfinite(t.log_prob(q))
        assert np.all(np.isfinite(t.grad_log_prob(q)))

    def test_posterior_peaks_near_true_weights(self):
        t = BayesianLogisticRegression(n_data=5000, n_features=3, seed=4)
        assert t.log_prob(t.true_weights) > t.log_prob(-t.true_weights)

    def test_prior_scale_pulls_toward_origin(self):
        tight = BayesianLogisticRegression(n_data=10, n_features=3, prior_scale=0.01, seed=5)
        # With a minuscule prior scale the gradient at any sizeable q points
        # strongly back toward the origin.
        q = np.ones(3)
        g = tight.grad_log_prob(q)
        assert np.all(g < 0)

    def test_invalid_args_rejected(self):
        with pytest.raises(ValueError):
            BayesianLogisticRegression(n_data=0)
        with pytest.raises(ValueError):
            BayesianLogisticRegression(prior_scale=0.0)


class TestFunnelAndRosenbrock:
    def test_funnel_exact_sampler_moments(self):
        t = NealsFunnel(dim=3, scale=1.5)
        draws = t.sample_exact(300_000, seed=6)
        assert draws[:, 0].std() == pytest.approx(1.5, rel=0.02)
        assert abs(draws.mean(axis=0)).max() < 0.05

    def test_funnel_requires_dim_2(self):
        with pytest.raises(ValueError):
            NealsFunnel(dim=1)

    def test_rosenbrock_mode(self):
        t = Rosenbrock(dim=2, a=1.0, b=100.0)
        mode = np.array([1.0, 1.0])  # the classic minimum of the Rosenbrock fn
        np.testing.assert_allclose(t.grad_log_prob(mode), 0.0, atol=1e-12)
        assert t.log_prob(mode) == pytest.approx(0.0)

    def test_rosenbrock_requires_dim_2(self):
        with pytest.raises(ValueError):
            Rosenbrock(dim=1)

    def test_temperature_scales_density(self):
        cold = Rosenbrock(dim=2, temperature=1.0)
        warm = Rosenbrock(dim=2, temperature=10.0)
        q = np.array([0.0, 2.0])
        np.testing.assert_allclose(cold.log_prob(q), 10.0 * warm.log_prob(q))

    def test_rosenbrock_extreme_proposal_no_overflow_warning(self):
        """A runaway leapfrog state must give -inf, not a RuntimeWarning.

        ``(tail - head*head)**2`` overflows float64 for |q| beyond ~1e80;
        the module-level ``error::RuntimeWarning`` escalation turns any
        warning here into a failure, so this pins the errstate fix down.
        """
        t = Rosenbrock(dim=3)
        extreme = np.array([1e200, -1e200, 1e155])
        lp = t.log_prob(extreme)
        assert lp == -np.inf
        grad = t.grad_log_prob(extreme)
        assert grad.shape == extreme.shape
        # Batched extreme states alongside sane ones: sane lanes unharmed.
        batch = np.stack([extreme, np.array([1.0, 1.0, 1.0])])
        lp_batch = t.log_prob(batch)
        assert lp_batch[0] == -np.inf
        assert lp_batch[1] == pytest.approx(0.0)

    def test_rosenbrock_inf_minus_inf_proposal_rejected_not_nan(self):
        """inf^2 - inf^2 residuals collapse to -inf log-density, never NaN."""
        t = Rosenbrock(dim=2)
        q = np.array([np.inf, np.inf])
        assert t.log_prob(q) == -np.inf
