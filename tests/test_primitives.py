"""Unit and property tests for the built-in batched primitives."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.frontend import primitives as P
from repro.frontend.registry import default_registry


class TestAlignment:
    def test_scalar_times_vector_batched(self):
        s = np.array([2.0, 3.0])            # (Z,)
        v = np.array([[1.0, 2.0], [3.0, 4.0]])  # (Z, d)
        out = P.mul(s, v)
        np.testing.assert_array_equal(out, [[2.0, 4.0], [9.0, 12.0]])

    def test_scalar_times_vector_unbatched(self):
        out = P.mul(2.0, np.array([1.0, 2.0]))
        np.testing.assert_array_equal(out, [2.0, 4.0])

    def test_select_broadcasts_condition(self):
        c = np.array([True, False])
        a = np.array([[1.0, 1.0], [1.0, 1.0]])
        b = np.array([[2.0, 2.0], [2.0, 2.0]])
        np.testing.assert_array_equal(P.select(c, a, b), [[1.0, 1.0], [2.0, 2.0]])

    def test_comparison_on_scalars(self):
        assert P.lt(1.0, 2.0)
        assert not P.lt(np.array([3.0]), np.array([2.0]))[0]


class TestReductions:
    def test_dot_batched(self):
        x = np.array([[1.0, 2.0], [0.0, 3.0]])
        np.testing.assert_array_equal(P.dot(x, x), [5.0, 9.0])

    def test_dot_unbatched(self):
        assert P.dot(np.array([3.0, 4.0]), np.array([3.0, 4.0])) == 25.0

    def test_norm_sq_matches_dot(self):
        x = np.random.default_rng(0).normal(size=(4, 7))
        np.testing.assert_allclose(P.norm_sq(x), P.dot(x, x))

    def test_sum_max_min_last(self):
        x = np.array([[1.0, -2.0, 3.0]])
        assert P.sum_last(x)[0] == 2.0
        assert P.max_last(x)[0] == 3.0
        assert P.min_last(x)[0] == -2.0


class TestSigmoid:
    def test_extreme_values_stable(self):
        out = P.sigmoid(np.array([-1000.0, 0.0, 1000.0]))
        np.testing.assert_allclose(out, [0.0, 0.5, 1.0], atol=1e-12)
        assert np.all(np.isfinite(out))

    def test_matches_naive_in_moderate_range(self):
        x = np.linspace(-20, 20, 101)
        np.testing.assert_allclose(P.sigmoid(x), 1 / (1 + np.exp(-x)), rtol=1e-12)


class TestCasts:
    def test_to_int_floors_floats(self):
        np.testing.assert_array_equal(
            P.to_int(np.array([1.9, -1.1, 0.0])), [1, -2, 0]
        )

    def test_to_int_passes_ints(self):
        out = P.to_int(np.array([3, -4]))
        assert out.dtype == np.int64
        np.testing.assert_array_equal(out, [3, -4])

    def test_to_float_bool(self):
        np.testing.assert_array_equal(P.to_float(np.array([True, False])), [1.0, 0.0])


class TestRegistryContents:
    @pytest.mark.parametrize(
        "name",
        ["add", "sub", "mul", "div", "where", "select", "dot", "id",
         "runif", "rnorm_like", "rng_next", "exp", "log", "sigmoid"],
    )
    def test_builtin_registered(self, name):
        assert name in default_registry

    def test_id_copies(self):
        x = np.array([1.0, 2.0])
        y = default_registry.get("id").fn(x)
        y[0] = 99.0
        assert x[0] == 1.0

    def test_rng_tags(self):
        assert "rng" in default_registry.get("runif").tags


class TestCounterRNG:
    def test_deterministic(self):
        ctr = P.make_counters(0, 8)
        np.testing.assert_array_equal(P._runif(ctr), P._runif(ctr))

    def test_member_streams_differ(self):
        ctr = P.make_counters(0, 100)
        u = P._runif(ctr)
        assert len(np.unique(u)) == 100

    def test_seed_changes_streams(self):
        a = P._runif(P.make_counters(1, 10))
        b = P._runif(P.make_counters(2, 10))
        assert not np.allclose(a, b)

    def test_uniform_in_open_interval(self):
        ctr = P.make_counters(3, 10000)
        u = P._runif(ctr)
        assert np.all(u > 0.0) and np.all(u < 1.0)

    def test_uniform_moments(self):
        ctr = P.make_counters(4, 200_000)
        u = P._runif(ctr)
        assert abs(u.mean() - 0.5) < 0.005
        assert abs(u.var() - 1 / 12) < 0.005

    def test_normal_moments(self):
        ctr = P.make_counters(5, 4)
        draws = P._rnorm_like(ctr, np.zeros((4, 50_000)))
        flat = draws.ravel()
        assert abs(flat.mean()) < 0.02
        assert abs(flat.std() - 1.0) < 0.02

    def test_normal_shape_follows_template(self):
        ctr = P.make_counters(6, 3)
        out = P._rnorm_like(ctr, np.zeros((3, 5)))
        assert out.shape == (3, 5)
        out_scalar = P._rnorm_like(ctr, np.zeros(3))
        assert out_scalar.shape == (3,)

    def test_unbatched_scalar_draw(self):
        u = P._runif(np.uint64(12345))
        assert np.ndim(u) == 0
        assert 0.0 < float(u) < 1.0

    def test_successive_counters_decorrelated(self):
        base = P.make_counters(7, 1)[0]
        ctrs = base + np.arange(10000, dtype=np.uint64)
        u = P._runif(ctrs)
        lag1 = np.corrcoef(u[:-1], u[1:])[0, 1]
        assert abs(lag1) < 0.03

    def test_splitmix_bijective_no_collisions(self):
        x = np.arange(100_000, dtype=np.uint64)
        z = P._splitmix64(x)
        assert len(np.unique(z)) == len(x)

    def test_vector_draw_uses_distinct_elements(self):
        ctr = P.make_counters(8, 2)
        out = P._rnorm_like(ctr, np.zeros((2, 64)))
        assert len(np.unique(out)) == out.size

    def test_rng_next_advances(self):
        ctr = P.make_counters(9, 4)
        nxt = P._rng_next(ctr)
        np.testing.assert_array_equal(nxt, ctr + np.uint64(1))
        assert not np.allclose(P._runif(ctr), P._runif(nxt))


@settings(max_examples=50, deadline=None)
@given(
    x=st.lists(st.floats(-1e6, 1e6), min_size=1, max_size=8),
    y=st.lists(st.floats(-1e6, 1e6), min_size=1, max_size=8),
)
def test_binary_ops_match_numpy_semantics(x, y):
    """Property: same-rank batched ops agree with raw numpy."""
    n = min(len(x), len(y))
    a, b = np.array(x[:n]), np.array(y[:n])
    np.testing.assert_allclose(P.add(a, b), a + b)
    np.testing.assert_allclose(P.sub(a, b), a - b)
    np.testing.assert_allclose(P.mul(a, b), a * b)
    np.testing.assert_array_equal(P.lt(a, b), a < b)
    np.testing.assert_array_equal(P.maximum(a, b), np.maximum(a, b))


@settings(max_examples=50, deadline=None)
@given(
    s=st.lists(st.floats(-100, 100), min_size=2, max_size=4),
    d=st.integers(1, 5),
)
def test_scale_alignment_property(s, d):
    """Property: (Z,) op (Z,d) right-pads — equals per-member scalar ops."""
    z = len(s)
    scal = np.array(s)
    vec = np.arange(z * d, dtype=float).reshape(z, d)
    out = P.mul(scal, vec)
    expected = np.stack([s_i * vec[i] for i, s_i in enumerate(s)])
    np.testing.assert_allclose(out, expected)
