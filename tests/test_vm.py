"""Unit tests for VM internals: schedulers, instrumentation, storage, errors."""

import numpy as np
import pytest

from repro.vm.instrumentation import Instrumentation
from repro.vm.local_static import ExecutionLimitExceeded, run_local_static
from repro.vm.program_counter import ProgramCounterVM, run_program_counter
from repro.vm.scheduler import (
    EarliestBlockScheduler,
    MostActiveScheduler,
    RoundRobinScheduler,
    make_scheduler,
)
from repro.vm.stack import StackOverflowError
from repro.vm.state import RegisterStorage, StackedStorage, UninitializedRead
from repro.ir.builder import FunctionBuilder, ProgramBuilder

from .programs import fib, gcd, rng_walk


class TestSchedulers:
    def test_earliest(self):
        s = EarliestBlockScheduler()
        assert s.select(np.array([3, 1, 5]), exit_index=6) == 1
        assert s.select(np.array([6, 6]), exit_index=6) is None

    def test_earliest_ignores_halted(self):
        s = EarliestBlockScheduler()
        assert s.select(np.array([6, 2, 6]), exit_index=6) == 2

    def test_most_active(self):
        s = MostActiveScheduler()
        assert s.select(np.array([2, 2, 5, 2, 5]), exit_index=6) == 2
        assert s.select(np.array([6, 6]), exit_index=6) is None

    def test_most_active_tie_breaks_earliest(self):
        s = MostActiveScheduler()
        assert s.select(np.array([4, 1, 4, 1]), exit_index=6) == 1

    def test_round_robin_cycles(self):
        s = RoundRobinScheduler()
        pcs = np.array([0, 2, 4])
        picks = [s.select(pcs, 6) for _ in range(4)]
        assert picks == [0, 2, 4, 0]

    def test_round_robin_reset(self):
        s = RoundRobinScheduler()
        s.select(np.array([0, 2]), 6)
        s.reset()
        assert s.select(np.array([0, 2]), 6) == 0

    def test_round_robin_no_starvation_across_wrap(self):
        """Every live block is selected within len(live) picks, from any cursor."""
        pcs = np.array([0, 2, 4])
        live = {0, 2, 4}
        for start_cursor in range(7):
            s = RoundRobinScheduler()
            s._cursor = start_cursor
            picks = [s.select(pcs, 6) for _ in range(len(live))]
            assert set(picks) == live, (start_cursor, picks)

    def test_round_robin_reaches_block_behind_cursor(self):
        """A block that becomes live behind the cursor is still reached."""
        s = RoundRobinScheduler()
        assert s.select(np.array([4, 6]), 6) == 4      # cursor advances past 4
        # Block 0 wakes up behind the cursor; the wrap must pick it up.
        assert s.select(np.array([0, 4]), 6) == 0
        assert s.select(np.array([0, 4]), 6) == 4

    def test_round_robin_reset_restores_determinism_across_runs(self):
        """Reusing one scheduler instance across run() calls is deterministic."""
        a = np.array([1071, 17, 100, 3], dtype=np.int64)
        b = np.array([462, 5, 75, 0], dtype=np.int64)
        rr = RoundRobinScheduler()
        first = gcd.run_pc(a, b, scheduler=rr)
        second = gcd.run_pc(a, b, scheduler=rr)  # run() must reset the cursor
        np.testing.assert_array_equal(first, second)
        np.testing.assert_array_equal(first, gcd.run_pc(a, b, scheduler="round_robin"))

    def test_make_scheduler_specs(self):
        assert isinstance(make_scheduler("earliest"), EarliestBlockScheduler)
        assert isinstance(make_scheduler(MostActiveScheduler), MostActiveScheduler)
        rr = RoundRobinScheduler()
        assert make_scheduler(rr) is rr
        with pytest.raises(ValueError, match="unknown scheduler"):
            make_scheduler("bogus")

    def test_all_schedulers_terminate_fib(self):
        batch = np.array([5, 9, 2])
        expected = fib.run_reference(batch)
        for name in ("earliest", "most_active", "round_robin"):
            out = fib.run_pc(batch, scheduler=name)
            np.testing.assert_array_equal(out, expected)


class TestInstrumentation:
    def test_counts_populated(self):
        instr = Instrumentation()
        fib.run_pc(np.array([8, 3, 5, 1]), instrumentation=instr)
        assert instr.steps > 0
        assert instr.kernel_calls > 0
        assert instr.push_lanes == instr.pop_lanes  # per-lane balanced stacks
        assert 0.0 < instr.utilization() <= 1.0

    def test_batch_of_one_full_utilization(self):
        instr = Instrumentation()
        fib.run_pc(np.array([9]), instrumentation=instr)
        assert instr.utilization() == 1.0

    def test_divergent_batch_wastes_slots(self):
        instr = Instrumentation()
        fib.run_pc(np.array([1, 12]), instrumentation=instr)
        assert instr.utilization() < 1.0

    def test_gather_mode_counts_only_active_slots(self):
        masked, gathered = Instrumentation(), Instrumentation()
        batch = np.array([1, 12, 4])
        fib.run_pc(batch, mode="mask", instrumentation=masked)
        fib.run_pc(batch, mode="gather", instrumentation=gathered)
        assert gathered.utilization() == 1.0
        assert masked.utilization() < 1.0
        # Same work was useful in both:
        total_active_m = sum(c.active for c in masked.by_prim.values())
        total_active_g = sum(c.active for c in gathered.by_prim.values())
        assert total_active_m == total_active_g

    def test_tag_accounting(self):
        instr = Instrumentation()
        from repro import ops

        rng_walk.run_pc(
            ops.make_counters(0, 3), np.array([2, 5, 9]), instrumentation=instr
        )
        assert instr.count(tag="rng").executions > 0
        assert "tag rng" in instr.summary()

    def test_local_static_instrumentation(self):
        instr = Instrumentation()
        fib.run_local(np.array([2, 9]), instrumentation=instr)
        assert instr.steps > 0
        assert instr.pushes == 0  # Algorithm 1 has no explicit stacks


class TestStorage:
    def test_register_uninitialized_read(self):
        st = RegisterStorage("v", 3)
        with pytest.raises(UninitializedRead, match="'v'"):
            st.read()

    def test_register_event_shape_fixed(self):
        st = RegisterStorage("v", 2)
        st.write(np.ones(2, bool), np.zeros((2, 3)))
        with pytest.raises(ValueError, match="event shape"):
            st.write(np.ones(2, bool), np.zeros((2, 4)))

    def test_register_dtype_promotion(self):
        st = RegisterStorage("v", 2)
        st.write(np.ones(2, bool), np.array([1, 2]))
        st.write(np.array([True, False]), np.array([0.5, 0.5]))
        assert st.read().dtype == np.float64
        np.testing.assert_allclose(st.read(), [0.5, 2.0])

    def test_stacked_uninitialized(self):
        st = StackedStorage("v", 2, depth=4)
        with pytest.raises(UninitializedRead):
            st.read()
        with pytest.raises(UninitializedRead):
            st.pop(np.ones(2, bool))

    def test_stacked_write_then_push_pop(self):
        st = StackedStorage("v", 2, depth=4)
        st.write(np.ones(2, bool), np.array([1.0, 2.0]))
        st.push(np.ones(2, bool), np.array([3.0, 4.0]))
        np.testing.assert_array_equal(st.read(), [3.0, 4.0])
        st.pop(np.ones(2, bool))
        np.testing.assert_array_equal(st.read(), [1.0, 2.0])

    def test_stacked_dtype_promotion(self):
        st = StackedStorage("v", 2, depth=4)
        st.write(np.ones(2, bool), np.array([1, 2]))
        st.write(np.ones(2, bool), np.array([1.5, 2.5]))
        assert st.read().dtype == np.float64


class TestVMErrors:
    def test_stack_depth_exhausted(self):
        with pytest.raises(StackOverflowError, match="max_stack_depth"):
            fib.run_pc(np.array([20]), max_stack_depth=3)

    def test_max_steps_guard_pc(self):
        with pytest.raises(ExecutionLimitExceeded):
            fib.run_pc(np.array([15]), max_steps=10)

    def test_max_steps_guard_local(self):
        with pytest.raises(ExecutionLimitExceeded):
            fib.run_local(np.array([15]), max_steps=10)

    def test_bad_mode_rejected(self):
        with pytest.raises(ValueError, match="mode"):
            fib.run_pc(np.array([3]), mode="telepathy")
        with pytest.raises(ValueError, match="mode"):
            fib.run_local(np.array([3]), mode="telepathy")

    def test_wrong_input_count(self):
        with pytest.raises(ValueError, match="inputs"):
            run_program_counter(fib.stack_program(), [np.array([1]), np.array([2])])

    def test_no_inputs(self):
        with pytest.raises(ValueError, match="at least one input"):
            run_program_counter(fib.stack_program(), [])


class TestSnapshots:
    def test_pc_snapshot_shape(self):
        sp = fib.stack_program()
        vm = ProgramCounterVM(sp, batch_size=4, max_stack_depth=16)
        vm.bind_inputs([np.array([6, 7, 8, 9])])
        for _ in range(25):
            if not vm.step():
                break
        snap = vm.snapshot()
        assert snap["program_counter"].shape == (4,)
        assert "fib.n" in snap["variable_stacks"]
        depths = snap["variable_stacks"]["fib.n"]["stack_pointers"]
        assert depths.shape == (4,)

    def test_snapshot_shows_divergent_depths(self):
        """Mid-run, different members sit at different stack depths —
        precisely the state Figure 3 illustrates."""
        sp = fib.stack_program()
        vm = ProgramCounterVM(sp, batch_size=4, max_stack_depth=16)
        vm.bind_inputs([np.array([2, 12, 4, 9])])
        seen_divergence = False
        while vm.step():
            sps = vm.snapshot()["variable_stacks"]
            if "fib.n" in sps:
                sp_vals = sps["fib.n"]["stack_pointers"]
                if len(np.unique(sp_vals)) > 1:
                    seen_divergence = True
        assert seen_divergence
