"""Unit tests for the IR data model, builder, validators, and printers."""

import numpy as np
import pytest

from repro.ir import (
    Branch,
    FunctionBuilder,
    IRValidationError,
    Jump,
    ProgramBuilder,
    PushJump,
    Return,
    TensorType,
    VarKind,
    format_function,
    format_program,
    format_stack_program,
    scalar,
    validate_function,
    validate_program,
    validate_stack_program,
    vector,
)
from repro.ir.instructions import Block, CallOp, ConstOp, PopOp, PrimOp, PushOp, StackProgram


def build_abs_diff():
    b = FunctionBuilder("abs_diff", params=("x", "y"), outputs=("out",))
    entry, big, small, done = b.blocks("entry", "big", "small", "done")
    entry.prim(("c",), "gt", ("x", "y")).branch("c", big, small)
    big.prim(("out",), "sub", ("x", "y")).jump(done)
    small.prim(("out",), "sub", ("y", "x")).jump(done)
    done.ret()
    return b.build()


class TestTensorType:
    def test_scalar_helper(self):
        t = scalar("float32")
        assert t.dtype == "float32"
        assert t.event_shape == ()

    def test_vector_helper(self):
        t = vector(5)
        assert t.event_shape == (5,)
        assert t.batched_shape(3) == (3, 5)
        assert t.stacked_shape(4, 3) == (4, 3, 5)

    def test_dtype_normalization(self):
        assert TensorType("float").dtype == TensorType("float64").dtype

    def test_of_value(self):
        t = TensorType.of_value(np.zeros((4, 7)), batch_size=4)
        assert t.event_shape == (7,)

    def test_of_value_rejects_wrong_batch(self):
        with pytest.raises(ValueError):
            TensorType.of_value(np.zeros((4, 7)), batch_size=5)

    def test_str(self):
        assert str(scalar()) == "float64"
        assert str(vector(3, "int64")) == "int64[3]"


class TestBuilder:
    def test_builds_valid_function(self):
        fn = build_abs_diff()
        validate_function(fn)
        assert fn.params == ("x", "y")
        assert [b.label for b in fn.blocks] == ["entry", "big", "small", "done"]

    def test_entry_is_first_block(self):
        fn = build_abs_diff()
        assert fn.entry.label == "entry"
        assert fn.block_index("small") == 2

    def test_duplicate_label_rejected(self):
        b = FunctionBuilder("f", params=("x",), outputs=("y",))
        b.block("entry")
        with pytest.raises(ValueError, match="duplicate"):
            b.block("entry")

    def test_double_terminate_rejected(self):
        b = FunctionBuilder("f", params=("x",), outputs=("y",))
        blk = b.block("entry").ret()
        with pytest.raises(ValueError, match="already terminated"):
            blk.ret()

    def test_unterminated_block_rejected(self):
        b = FunctionBuilder("f", params=("x",), outputs=("y",))
        b.block("entry")
        with pytest.raises(ValueError, match="no terminator"):
            b.build()

    def test_fresh_labels_unique(self):
        b = FunctionBuilder("f")
        labels = {b.fresh_label() for _ in range(10)}
        assert len(labels) == 10

    def test_variables_enumeration(self):
        fn = build_abs_diff()
        assert set(fn.variables()) == {"x", "y", "c", "out"}

    def test_block_handle_targets(self):
        b = FunctionBuilder("f", params=("x",), outputs=("y",))
        entry = b.block("entry")
        done = b.block("done")
        entry.jump(done)  # by handle, not label
        done.prim(("y",), "id", ("x",)).ret()
        fn = b.build()
        assert fn.block("entry").terminator == Jump(target="done")


class TestValidation:
    def test_missing_return_rejected(self):
        b = FunctionBuilder("f", params=("x",), outputs=("y",))
        e = b.block("entry")
        e.jump(e)
        with pytest.raises(IRValidationError, match="no Return"):
            validate_function(b.build())

    def test_dangling_target_rejected(self):
        fn = build_abs_diff()
        fn.blocks[0].terminator = Branch(cond="c", true_target="nowhere", false_target="small")
        with pytest.raises(IRValidationError, match="undefined"):
            validate_function(fn)

    def test_stack_ops_rejected_in_callable_dialect(self):
        b = FunctionBuilder("f", params=("x",), outputs=("y",))
        b.block("entry").push_dup("x").ret()
        with pytest.raises(IRValidationError, match="stack operation"):
            validate_function(b.build())

    def test_pushjump_rejected_in_callable_dialect(self):
        fn = build_abs_diff()
        fn.blocks[1].terminator = PushJump(return_target="done", jump_target="done")
        with pytest.raises(IRValidationError, match="PushJump"):
            validate_function(fn)

    def test_call_arity_checked(self):
        callee = build_abs_diff()
        b = FunctionBuilder("main", params=("a",), outputs=("r",))
        b.block("entry").call(("r",), "abs_diff", ("a",)).ret()
        program = ProgramBuilder().add(b.build()).add(callee).build()
        with pytest.raises(IRValidationError, match="arguments"):
            validate_program(program)

    def test_call_to_unknown_function(self):
        b = FunctionBuilder("main", params=("a",), outputs=("r",))
        b.block("entry").call(("r",), "ghost", ("a",)).ret()
        program = ProgramBuilder().add(b.build()).build()
        with pytest.raises(IRValidationError, match="undefined function"):
            validate_program(program)

    def test_stack_program_rejects_callop(self):
        blk = Block(
            label="b0", ops=[CallOp(outputs=("y",), func="f", inputs=("x",))],
            terminator=Return(),
        )
        sp = StackProgram(blocks=[blk], inputs=("x",), outputs=("y",))
        with pytest.raises(IRValidationError, match="CallOp"):
            validate_stack_program(sp)

    def test_stack_program_rejects_out_of_range_target(self):
        blk = Block(label="b0", ops=[], terminator=Jump(target=7))
        sp = StackProgram(blocks=[blk], inputs=("x",), outputs=("y",))
        with pytest.raises(IRValidationError, match="out of range"):
            validate_stack_program(sp)

    def test_stack_program_rejects_unresolved_label(self):
        blk = Block(label="b0", ops=[], terminator=Jump(target="b0"))
        sp = StackProgram(blocks=[blk], inputs=("x",), outputs=("y",))
        with pytest.raises(IRValidationError, match="unresolved"):
            validate_stack_program(sp)

    def test_stack_program_rejects_direct_exit_jump(self):
        blk = Block(label="b0", ops=[], terminator=Jump(target=1))
        sp = StackProgram(blocks=[blk], inputs=("x",), outputs=("y",))
        with pytest.raises(IRValidationError, match="exit index"):
            validate_stack_program(sp)


class TestPretty:
    def test_function_format_mentions_everything(self):
        text = format_function(build_abs_diff())
        for fragment in ("abs_diff", "entry", "branch c", "sub", "return"):
            assert fragment in text

    def test_program_format(self):
        program = ProgramBuilder().add(build_abs_diff()).build()
        assert "main = abs_diff" in format_program(program)

    def test_stack_program_format(self):
        ops = [
            PushOp(output="v", fn="id", inputs=("v",)),
            PopOp(var="v"),
            PrimOp(outputs=("y",), fn="id", inputs=("v",)),
            ConstOp(output="c", value=3),
        ]
        blk = Block(label="b0", ops=ops, terminator=Return())
        sp = StackProgram(
            blocks=[blk],
            inputs=("v",),
            outputs=("y",),
            var_kinds={"v": VarKind.STACKED, "y": VarKind.REGISTER, "c": VarKind.TEMP},
            function_entries={"main": 0},
        )
        text = format_stack_program(sp)
        assert "push v" in text
        assert "pop v" in text
        assert "v:s" in text and "y:r" in text and "c:t" in text
        assert "---- main ----" in text

    def test_op_strs(self):
        assert "call f" in str(CallOp(outputs=("y",), func="f", inputs=("x",)))
        assert str(PopOp(var="v")) == "pop v"
        assert "const" in str(ConstOp(output="c", value=1))
        assert "pushjump" in str(PushJump(return_target=1, jump_target=2))
