"""Property-based differential testing on *generated* programs.

Hypothesis draws a random program in the autobatchable Python subset
(assignments, integer arithmetic, nested if/else, bounded while loops, and
optionally self-recursion on a decreasing argument), the generator renders
it to source, and the test requires plain per-member Python, Algorithm 1,
and Algorithm 2 (masked and gathered) to agree exactly.

Values are renormalized modulo a prime after every assignment so that any
arithmetic blowup stays representable identically under every strategy.
"""

import importlib.util
import sys
import tempfile
from pathlib import Path

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from .helpers import assert_instrumentation_identical

_MODULE_DIR = Path(tempfile.mkdtemp(prefix="repro_genprog_"))
_MODULE_COUNT = [0]
_COMPILED = {}

# -- program spec ------------------------------------------------------------
# An expression is a nested tuple; a statement list is a tuple of statements.

NAMES = ("a", "b", "n")

expr_strategy = st.deferred(
    lambda: st.one_of(
        st.sampled_from(NAMES).map(lambda v: ("var", v)),
        st.integers(-3, 3).map(lambda c: ("const", c)),
        st.tuples(
            st.sampled_from(("+", "-", "*")), expr_strategy, expr_strategy
        ).map(lambda t: ("binop", *t)),
        st.tuples(expr_strategy, expr_strategy).map(lambda t: ("min", *t)),
    )
)


def statements(depth: int):
    assign = st.tuples(st.sampled_from(("a", "b")), expr_strategy).map(
        lambda t: ("assign", *t)
    )
    if depth <= 0:
        return st.lists(assign, min_size=1, max_size=3)
    sub = statements(depth - 1)
    branch = st.tuples(
        st.sampled_from(("<", "<=", "==", "%2")), expr_strategy, sub, sub
    ).map(lambda t: [("if", *t)])
    loop = st.tuples(st.integers(1, 3), sub).map(lambda t: [("while", *t)])
    piece = st.one_of(assign.map(lambda s: [s]), branch, loop)
    return st.lists(piece, min_size=1, max_size=3).map(
        lambda chunks: [s for chunk in chunks for s in chunk]
    )


program_strategy = st.tuples(
    statements(2),
    st.booleans(),          # recursive?
    expr_strategy,          # return expression
)


# -- rendering ----------------------------------------------------------------


def render_expr(e) -> str:
    kind = e[0]
    if kind == "var":
        return e[1]
    if kind == "const":
        return str(e[1])
    if kind == "binop":
        return f"({render_expr(e[2])} {e[1]} {render_expr(e[3])})"
    if kind == "min":
        return f"min({render_expr(e[1])}, {render_expr(e[2])})"
    raise AssertionError(e)


def render_stmts(stmts, indent, lines, loop_id=[0]):
    pad = "    " * indent
    for s in stmts:
        kind = s[0]
        if kind == "assign":
            _, name, expr = s
            lines.append(f"{pad}{name} = ({render_expr(expr)}) % 97")
        elif kind == "if":
            _, op, expr, then_body, else_body = s
            if op == "%2":
                lines.append(f"{pad}if ({render_expr(expr)}) % 2 == 0:")
            else:
                lines.append(f"{pad}if ({render_expr(expr)}) {op} a:")
            render_stmts(then_body, indent + 1, lines)
            lines.append(f"{pad}else:")
            render_stmts(else_body, indent + 1, lines)
        elif kind == "while":
            _, trips, body = s
            loop_id[0] += 1
            k = f"k{loop_id[0]}"
            lines.append(f"{pad}{k} = 0")
            lines.append(f"{pad}while {k} < {trips}:")
            render_stmts(body, indent + 1, lines)
            lines.append(f"{pad}    {k} = {k} + 1")
        else:
            raise AssertionError(s)


def render_program(spec) -> str:
    stmts, recursive, ret = spec
    lines = ["from repro import autobatch", "", "", "@autobatch"]
    lines.append("def genprog(a, b, n):")
    if recursive:
        lines.append("    if n <= 0:")
        lines.append(f"        return ({render_expr(ret)}) % 97")
    render_stmts(stmts, 1, lines)
    if recursive:
        lines.append("    r = genprog(b % 97, a % 97, n - 1)")
        lines.append(f"    return (r + ({render_expr(ret)})) % 97")
    else:
        lines.append(f"    return ({render_expr(ret)}) % 97")
    return "\n".join(lines) + "\n"


def compile_source(source: str):
    """Write the generated program to a real file and import it (the
    frontend needs ``inspect.getsource`` to work)."""
    if source in _COMPILED:
        return _COMPILED[source]
    _MODULE_COUNT[0] += 1
    name = f"repro_genprog_{_MODULE_COUNT[0]}"
    path = _MODULE_DIR / f"{name}.py"
    path.write_text(source)
    spec = importlib.util.spec_from_file_location(name, path)
    module = importlib.util.module_from_spec(spec)
    sys.modules[name] = module
    spec.loader.exec_module(module)
    _COMPILED[source] = module.genprog
    return module.genprog


# -- the property ---------------------------------------------------------------


@settings(max_examples=40, deadline=None)
@given(
    program_strategy,
    st.lists(st.integers(-5, 20), min_size=1, max_size=6),
    st.lists(st.integers(-5, 20), min_size=1, max_size=6),
    st.integers(0, 4),
)
def test_generated_program_all_strategies_agree(spec, a_vals, b_vals, depth):
    fn = compile_source(render_program(spec))
    z = min(len(a_vals), len(b_vals))
    a = np.asarray(a_vals[:z], dtype=np.int64)
    b = np.asarray(b_vals[:z], dtype=np.int64)
    n = np.full(z, depth, dtype=np.int64)
    expected = fn.run_reference(a, b, n)
    for run in (
        lambda: fn.run_local(a, b, n),
        lambda: fn.run_local(a, b, n, mode="gather"),
        lambda: fn.run_pc(a, b, n, max_stack_depth=16),
        lambda: fn.run_pc(a, b, n, mode="gather", max_stack_depth=16),
        lambda: fn.run_pc(a, b, n, optimize=False, max_stack_depth=16),
        lambda: fn.run_pc(a, b, n, executor="fused", max_stack_depth=16),
    ):
        np.testing.assert_array_equal(run(), expected)


@settings(max_examples=25, deadline=None)
@given(
    program_strategy,
    st.lists(st.integers(-5, 20), min_size=1, max_size=6),
    st.lists(st.integers(-5, 20), min_size=1, max_size=6),
    st.integers(0, 4),
)
def test_generated_program_eager_vs_fused_executors(spec, a_vals, b_vals, depth):
    """Executors must be bitwise interchangeable: identical outputs AND
    identical instrumentation op counts on every generated program."""
    from repro.vm.instrumentation import Instrumentation

    fn = compile_source(render_program(spec))
    z = min(len(a_vals), len(b_vals))
    a = np.asarray(a_vals[:z], dtype=np.int64)
    b = np.asarray(b_vals[:z], dtype=np.int64)
    n = np.full(z, depth, dtype=np.int64)
    instr = {"eager": Instrumentation(), "fused": Instrumentation()}
    outs = {
        ex: fn.run_pc(
            a, b, n, executor=ex, instrumentation=instr[ex], max_stack_depth=16
        )
        for ex in ("eager", "fused")
    }
    np.testing.assert_array_equal(outs["eager"], outs["fused"])
    assert_instrumentation_identical(instr["eager"], instr["fused"])


@settings(max_examples=10, deadline=None)
@given(
    program_strategy,
    st.lists(st.integers(-5, 20), min_size=2, max_size=8),
    st.lists(st.integers(-5, 20), min_size=2, max_size=8),
    st.integers(0, 3),
)
def test_generated_program_eager_vs_fused_serving(spec, a_vals, b_vals, depth):
    """Lane-recycled serving through either executor must match the static
    batch bit-for-bit and record identical op counts."""
    fn = compile_source(render_program(spec))
    z = min(len(a_vals), len(b_vals))
    a = np.asarray(a_vals[:z], dtype=np.int64)
    b = np.asarray(b_vals[:z], dtype=np.int64)
    n = np.full(z, depth, dtype=np.int64)
    expected = fn.run_pc(a, b, n, max_stack_depth=16)
    engines = {}
    for ex in ("eager", "fused"):
        engine = fn.serve(num_lanes=2, executor=ex, max_stack_depth=16)
        results = engine.map([(a[i], b[i], n[i]) for i in range(z)])
        np.testing.assert_array_equal(np.stack(results), expected)
        engines[ex] = engine
    assert_instrumentation_identical(
        engines["eager"].vm.instr, engines["fused"].vm.instr
    )


@settings(max_examples=15, deadline=None)
@given(program_strategy)
def test_generated_program_compiles_and_validates(spec):
    """Compilation alone must never produce an invalid program."""
    from repro.ir.validate import validate_program
    from repro.ir.validate import validate_stack_program

    fn = compile_source(render_program(spec))
    validate_program(fn.program)
    validate_stack_program(fn.stack_program())


def test_generator_produces_divergent_control_flow():
    """Sanity: the generator's rendering is what we think it is."""
    spec = (
        [("if", "<", ("var", "b"), [("assign", "a", ("const", 1))],
          [("assign", "a", ("const", 2))])],
        True,
        ("binop", "+", ("var", "a"), ("var", "b")),
    )
    source = render_program(spec)
    assert "if (b) < a:" in source
    assert "genprog(b % 97, a % 97, n - 1)" in source
    fn = compile_source(source)
    out = fn.run_pc(
        np.array([1, 2]), np.array([3, 0]), np.array([2, 3]), max_stack_depth=8
    )
    np.testing.assert_array_equal(
        out, fn.run_reference(np.array([1, 2]), np.array([3, 0]), np.array([2, 3]))
    )
