"""Tests for the simulated accelerator backend: fusion, devices, kernels."""

import numpy as np
import pytest

from repro.backend.device import CPU_DEVICE, GPU_DEVICE, DeviceModel
from repro.backend.fusion import FusionUnsupported, compile_block_executors, run_fused
from repro.backend.kernels import KernelLibrary
from repro.frontend.registry import default_registry
from repro.vm.instrumentation import Instrumentation
from repro.vm.program_counter import ProgramCounterVM

from .helpers import assert_results_equal
from .programs import ALL_EXAMPLES, fib, gcd


class TestFusion:
    @pytest.mark.parametrize("name", sorted(ALL_EXAMPLES))
    def test_fused_matches_reference(self, name):
        fn, inputs = ALL_EXAMPLES[name]
        expected = fn.run_reference(*inputs)
        actual = run_fused(fn.stack_program(), list(inputs), max_stack_depth=64)
        assert_results_equal(expected, actual, context=f"fused {name}")

    def test_fused_source_attached(self):
        sp = fib.stack_program()
        vm = ProgramCounterVM(sp, batch_size=2, max_stack_depth=8)
        executors = compile_block_executors(vm)
        assert len(executors) == len(sp.blocks)
        assert "def _fused_block_0" in executors[0].__fused_source__
        # The generated code is straight-line: no interpreter loop artifacts.
        assert "for " not in executors[0].__fused_source__

    def test_gather_mode_rejected(self):
        sp = fib.stack_program()
        vm = ProgramCounterVM(sp, batch_size=2, mode="gather")
        with pytest.raises(FusionUnsupported, match="masking"):
            compile_block_executors(vm)

    def test_fused_fewer_python_dispatches(self):
        """Fusion's whole point: fewer per-op Python-level dispatches."""
        lib_eager = KernelLibrary(default_registry)
        lib_fused = KernelLibrary(default_registry)
        batch = np.array([6, 9, 3])

        from repro.lowering.pipeline import lower_program
        from repro.vm.program_counter import run_program_counter

        sp = lower_program(fib.program)
        run_program_counter(sp, [batch], registry=lib_eager.registry, max_stack_depth=32)

        vm = ProgramCounterVM(
            sp, batch_size=3, registry=lib_fused.registry, max_stack_depth=32
        )
        vm.block_executors = compile_block_executors(vm, lib_fused.registry)
        vm.run([batch])
        # Same kernel-level calls happen inside fused blocks (they wrap the
        # same primitives), so kernel counts match; the savings are in the
        # plan-loop overhead, which test_benchmarks covers with timing.
        assert lib_fused.stats.calls == lib_eager.stats.calls

    def test_fused_partial_executors(self):
        """None entries fall back to interpretation per block."""
        sp = fib.stack_program()
        vm = ProgramCounterVM(sp, batch_size=4, max_stack_depth=16)
        executors = compile_block_executors(vm)
        executors[0] = None  # interpret the entry block
        vm.block_executors = executors
        out = vm.run([np.array([3, 7, 4, 5])])
        np.testing.assert_array_equal(out[0], [3, 21, 5, 8])


class TestDeviceModel:
    def test_kernel_seconds_scales_in_waves(self):
        d = DeviceModel("d", 1e-6, 1e-7, 1e-9, parallel_width=100)
        assert d.kernel_seconds(1) == pytest.approx(1e-9)
        assert d.kernel_seconds(100) == pytest.approx(1e-9)
        assert d.kernel_seconds(101) == pytest.approx(2e-9)

    def _instr_for(self, batch):
        instr = Instrumentation()
        fib.run_pc(batch, instrumentation=instr, max_stack_depth=32)
        return instr

    def test_fused_faster_than_eager(self):
        instr = self._instr_for(np.array([9, 4, 11]))
        for device in (CPU_DEVICE, GPU_DEVICE):
            assert device.estimate(instr, "fused") < device.estimate(instr, "eager")

    def test_gpu_batching_amortizes(self):
        """Simulated GPU throughput grows with batch size (Figure 5 shape)."""
        t_small = GPU_DEVICE.estimate(self._instr_for(np.full(1, 10)), "fused")
        t_big = GPU_DEVICE.estimate(self._instr_for(np.full(256, 10)), "fused")
        # 256x the work in far less than 256x the simulated time:
        assert t_big < t_small * 32

    def test_unknown_strategy_rejected(self):
        with pytest.raises(ValueError, match="unknown strategy"):
            CPU_DEVICE.estimate(Instrumentation(), "quantum")

    def test_estimate_monotone_in_work(self):
        small = self._instr_for(np.array([3]))
        big = self._instr_for(np.array([14]))
        assert CPU_DEVICE.estimate(big, "eager") > CPU_DEVICE.estimate(small, "eager")


class TestKernelLibrary:
    def test_counts_calls(self):
        lib = KernelLibrary(default_registry)
        gcd.run_local(
            np.array([12, 9]), np.array([18, 6]), registry=lib.registry
        )
        assert lib.stats.calls > 0
        assert lib.stats.by_kernel.get("mod", 0) > 0

    def test_wrapped_results_identical(self):
        lib = KernelLibrary(default_registry)
        a, b = np.array([48, 7]), np.array([36, 0])
        out = gcd.run_local(a, b, registry=lib.registry)
        np.testing.assert_array_equal(out, gcd.run_reference(a, b))

    def test_reset(self):
        lib = KernelLibrary(default_registry)
        gcd.run_local(np.array([4]), np.array([2]), registry=lib.registry)
        assert lib.stats.calls > 0
        lib.reset()
        assert lib.stats.calls == 0
        gcd.run_local(np.array([4]), np.array([2]), registry=lib.registry)
        assert lib.stats.calls > 0
