"""Unit tests for liveness, call-graph, and storage-class analyses."""

import pytest

from repro.analysis.call_graph import analyze_call_graph
from repro.analysis.cfg import predecessors, reverse_postorder, successors
from repro.analysis.liveness import (
    call_save_sets,
    compute_liveness,
    definitely_assigned_check,
)
from repro.analysis.storage import assign_storage
from repro.ir.builder import FunctionBuilder, ProgramBuilder
from repro.ir.instructions import VarKind
from repro.lowering.rename import rename_program

from .programs import fib, gcd, is_even, loop_calling, poly


def diamond_function():
    """entry -> (left | right) -> join; x defined in entry, used at join."""
    b = FunctionBuilder("diamond", params=("a",), outputs=("__ret0",))
    entry, left, right, join = b.blocks("entry", "left", "right", "join")
    entry.prim(("x",), "id", ("a",)).prim(("c",), "gt", ("a", "a")).branch(
        "c", left, right
    )
    left.prim(("y",), "add", ("x", "a")).jump(join)
    right.prim(("y",), "sub", ("x", "a")).jump(join)
    join.prim(("__ret0",), "id", ("y",)).ret()
    return b.build()


class TestCFG:
    def test_successors(self):
        fn = diamond_function()
        succ = successors(fn)
        assert set(succ["entry"]) == {"left", "right"}
        assert succ["join"] == ()

    def test_predecessors(self):
        fn = diamond_function()
        preds = predecessors(fn)
        assert set(preds["join"]) == {"left", "right"}
        assert preds["entry"] == ()

    def test_reverse_postorder_starts_at_entry(self):
        order = reverse_postorder(diamond_function())
        assert order[0] == "entry"
        assert order.index("join") > order.index("left")
        assert order.index("join") > order.index("right")

    def test_reverse_postorder_on_loop(self):
        order = reverse_postorder(gcd.ir)
        assert order[0] == gcd.ir.blocks[0].label
        assert set(order) == {b.label for b in gcd.ir.blocks}


class TestLiveness:
    def test_diamond_live_sets(self):
        fn = diamond_function()
        live = compute_liveness(fn)
        # x flows through both arms; y is live into the join.
        assert "x" in live.live_in["left"]
        assert "x" in live.live_in["right"]
        assert "y" in live.live_in["join"]
        assert "y" not in live.live_in["entry"]

    def test_outputs_live_at_return(self):
        fn = diamond_function()
        live = compute_liveness(fn)
        # __ret0 is used by the Return, hence live after the last op's def.
        assert "__ret0" not in live.live_in["join"]  # defined there
        assert "y" in live.live_in["join"]

    def test_loop_keeps_condition_inputs_live(self):
        fn = gcd.ir
        live = compute_liveness(fn)
        head = next(b.label for b in fn.blocks if "loop_head" in b.label)
        assert "gcd.a".split(".")[-1] not in ()  # placeholder clarity
        assert {"a", "b"} <= set(live.live_in[head])

    def test_fib_save_set_is_exactly_left(self):
        """The Figure 3 fact: only `left` needs caller-saving in fib."""
        program = rename_program(fib.program)
        fn = program.functions["fib"]
        cg = analyze_call_graph(program)
        live = compute_liveness(fn)
        saves = call_save_sets(fn, live, cg.clobbers)
        nonempty = {k: v for k, v in saves.items() if v}
        assert len(saves) == 2  # two recursive call sites
        assert len(nonempty) == 1  # only the second call saves anything
        (save_set,) = nonempty.values()
        assert len(save_set) == 1
        (saved_var,) = save_set
        assert saved_var.startswith("fib.")  # the `left` temporary


class TestDefiniteAssignment:
    def test_clean_function_passes(self):
        assert definitely_assigned_check(diamond_function()) == []

    def test_catches_branch_only_assignment(self):
        b = FunctionBuilder("bad", params=("a",), outputs=("__ret0",))
        entry, left, join = b.blocks("entry", "left", "join")
        entry.prim(("c",), "gt", ("a", "a")).branch("c", left, join)
        left.prim(("y",), "id", ("a",)).jump(join)
        join.prim(("__ret0",), "id", ("y",)).ret()  # y maybe unassigned
        problems = definitely_assigned_check(b.build())
        assert any("'y'" in p for p in problems)

    def test_catches_loop_skippable_assignment(self):
        b = FunctionBuilder("bad2", params=("n",), outputs=("__ret0",))
        entry, head, body, after = b.blocks("entry", "head", "body", "after")
        entry.jump(head)
        head.prim(("c",), "gt", ("n", "n")).branch("c", body, after)
        body.prim(("x",), "id", ("n",)).jump(head)
        after.prim(("__ret0",), "id", ("x",)).ret()
        problems = definitely_assigned_check(b.build())
        assert any("'x'" in p for p in problems)


class TestCallGraph:
    def test_self_recursion_detected(self):
        cg = analyze_call_graph(fib.program)
        assert "fib" in cg.recursive

    def test_mutual_recursion_detected(self):
        cg = analyze_call_graph(is_even.program)
        assert {"is_even", "is_odd"} <= cg.recursive

    def test_non_recursive_function(self):
        cg = analyze_call_graph(poly.program)
        assert cg.recursive == frozenset()

    def test_closure_includes_transitive_callees(self):
        cg = analyze_call_graph(loop_calling.program)
        assert cg.closure["loop_calling"] == frozenset({"loop_calling", "fib"})
        assert cg.closure["fib"] == frozenset({"fib"})

    def test_caller_of_recursive_fn_is_not_recursive(self):
        cg = analyze_call_graph(loop_calling.program)
        assert "loop_calling" not in cg.recursive
        assert "fib" in cg.recursive

    def test_recursive_formals_not_in_clobbers(self):
        program = rename_program(fib.program)
        cg = analyze_call_graph(program)
        assert "fib.n" not in cg.clobbers["fib"]

    def test_non_recursive_formals_in_clobbers(self):
        program = rename_program(loop_calling.program)
        cg = analyze_call_graph(program)
        # fib is recursive so its formal stays out; loop_calling's own formal
        # is in its clobber set (it is non-recursive, bound by update).
        assert "loop_calling.n" in cg.clobbers["loop_calling"]


class TestStorage:
    def test_fib_matches_figure3(self):
        """Stacks for exactly n, left (and the pc) — the paper's Figure 3."""
        program = rename_program(fib.program)
        storage = assign_storage(program)
        stacked = {v for v, k in storage.kinds.items() if k is VarKind.STACKED}
        assert "fib.n" in stacked
        assert len(stacked) == 2  # n plus the `left` call temporary
        # The return variable and `right` need no stack:
        assert storage.kinds["fib.__ret0"] is not VarKind.STACKED

    def test_non_recursive_program_has_no_stacks(self):
        """Paper claim: non-recursive programs run without variable stacks."""
        program = rename_program(gcd.program)
        storage = assign_storage(program)
        assert all(k is not VarKind.STACKED for k in storage.kinds.values())

    def test_straightline_is_mostly_temps(self):
        program = rename_program(poly.program)
        storage = assign_storage(program)
        kinds = storage.kinds
        temps = [v for v, k in kinds.items() if k is VarKind.TEMP]
        assert len(temps) >= 5  # all intermediate products

    def test_params_never_temp(self):
        for fn in (fib, gcd, poly, loop_calling):
            program = rename_program(fn.program)
            storage = assign_storage(program)
            for f in program.functions.values():
                for p in f.params:
                    assert storage.kinds[p] is not VarKind.TEMP

    def test_temp_opt_off(self):
        program = rename_program(poly.program)
        storage = assign_storage(program, temp_opt=False)
        assert all(k is not VarKind.TEMP for k in storage.kinds.values())

    def test_register_opt_off(self):
        program = rename_program(fib.program)
        storage = assign_storage(program, register_opt=False)
        non_temp = [k for k in storage.kinds.values() if k is not VarKind.TEMP]
        assert all(k is VarKind.STACKED for k in non_temp)

    def test_loop_calling_var_live_across_call_is_stacked_or_register(self):
        program = rename_program(loop_calling.program)
        storage = assign_storage(program)
        # `total` is live across the call to fib, but fib cannot clobber
        # loop_calling's variables (no recursion back) — so no stack needed.
        assert storage.kinds["loop_calling.total"] is VarKind.REGISTER
