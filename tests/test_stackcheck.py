"""Static verification: the stackcheck abstract interpreter and its wiring.

Covers the verifier itself (corpus-wide clean verification, exact depth
bounds vs instrumented runtime high-water marks under every executor,
mutation rejection), the shared structural checks behind
``validate_stack_program``, region-table validation, the snapshot
admission pre-check, plan-compilation wiring (verify-once, ``verify=False``
opt-out, stack pre-sizing from proven bounds), and the lint driver.
"""

import copy

import numpy as np
import pytest
from hypothesis import given, settings

from repro.analysis.stackcheck import (
    Severity,
    VerificationError,
    analyze_stack_program,
    region_diagnostics,
    verify_region_table,
    verify_stack_program,
)
from repro.backend.fusion import SuperblockExecutor
from repro.backend.regions import RegionTable, select_regions
from repro.ir.instructions import (
    Block,
    Branch,
    Jump,
    PopOp,
    PrimOp,
    PushJump,
    PushOp,
    Return,
    StackProgram,
    VarKind,
)
from repro.ir.validate import IRValidationError, validate_stack_program
from repro.vm import (
    EagerBlockExecutor,
    ExecutionPlan,
    ProgramCounterVM,
    SnapshotIncompatibleError,
)
from repro.vm.stack import StackOverflowError

from tests.programs import ALL_EXAMPLES, fib, gcd, is_even, use_divmod
from tests.test_random_programs import (
    compile_source,
    program_strategy,
    render_program,
)

EXECUTORS = ("eager", "fused", "superblock")


def error_codes(diags):
    return {d.code for d in diags if d.severity is Severity.ERROR}


# -- the whole corpus verifies ------------------------------------------------


class TestCorpusVerifies:
    def test_every_example_verifies_clean(self):
        for name, (fn, _inputs) in sorted(ALL_EXAMPLES.items()):
            result = analyze_stack_program(fn.stack_program())
            assert result.ok, (name, result.diagnostics)
            facts = result.facts
            assert facts is not None
            # Bounded iff not recursive, and the bound fields agree.
            assert facts.bounded == (not facts.recursive), name
            if facts.bounded:
                assert facts.max_logical_depth == 1 + max(
                    [facts.max_addr_depth, *facts.var_peaks.values()]
                )
                assert facts.required_stack_depth >= 1

    def test_recursive_examples_get_unbounded_verdict(self):
        result = analyze_stack_program(fib.stack_program())
        assert result.facts.recursive
        assert result.facts.required_stack_depth is None
        codes = {d.code for d in result.diagnostics}
        assert "depth-unbounded" in codes
        (verdict,) = [d for d in result.diagnostics if d.code == "depth-unbounded"]
        assert verdict.severity is Severity.INFO  # a verdict, not a defect

    def test_bounded_example_facts_are_exact(self):
        facts = verify_stack_program(use_divmod.stack_program())
        assert not facts.recursive
        assert facts.entries == (0, min(e for e in facts.entries if e > 0))
        assert facts.call_edges == ((0, facts.entries[1]),)
        assert facts.max_addr_depth == 1  # one non-recursive call deep
        assert facts.max_logical_depth == 2
        assert set(facts.function_names.values()) == {"use_divmod", "divmod_ab"}

    def test_loop_only_program_needs_depth_one(self):
        facts = verify_stack_program(gcd.stack_program())
        assert facts.max_addr_depth == 0
        assert facts.var_peaks == {}
        assert facts.required_stack_depth == 1
        assert facts.max_logical_depth == 1


# -- static bound == instrumented runtime depth -------------------------------


class TestDepthEquality:
    def test_static_bound_equals_observed_depth_all_executors(self):
        for name, (fn, inputs) in sorted(ALL_EXAMPLES.items()):
            width = np.asarray(inputs[0]).shape[0]
            for executor in EXECUTORS:
                plan = fn.execution_plan(executor=executor)
                facts = plan.facts
                if facts.bounded:
                    # Machines pre-size from the proven bound, and the
                    # proven logical peak is *exactly* what the high-water
                    # marks observed.
                    vm = ProgramCounterVM(plan, batch_size=width)
                    assert vm.max_stack_depth == facts.required_stack_depth
                    vm.run([np.asarray(x) for x in inputs])
                    assert vm.observed_max_depth() == facts.max_logical_depth, (
                        name,
                        executor,
                    )
                else:
                    # Unbounded verdict: no proven bound, so the default
                    # applies; run at the corpus-wide test depth instead.
                    assert ProgramCounterVM(plan, width).max_stack_depth == 32
                    vm = ProgramCounterVM(plan, width, max_stack_depth=64)
                    vm.run([np.asarray(x) for x in inputs])
                    assert vm.observed_max_depth() <= 64 + 1, (name, executor)

    def test_hand_built_push_program_bound_is_exact(self):
        sp = StackProgram(
            blocks=[
                Block(
                    label="b0",
                    ops=[
                        PushOp(output="x", fn="id", inputs=("x",)),
                        PushOp(output="x", fn="id", inputs=("x",)),
                    ],
                    terminator=Jump(target=1),
                ),
                Block(
                    label="b1",
                    ops=[
                        PopOp(var="x"),
                        PopOp(var="x"),
                        PrimOp(outputs=("y",), fn="id", inputs=("x",)),
                    ],
                    terminator=Return(),
                ),
            ],
            inputs=("x",),
            outputs=("y",),
            var_kinds={"x": VarKind.STACKED, "y": VarKind.REGISTER},
        )
        plan = ExecutionPlan.compile(sp, executor="eager")
        assert plan.facts.var_peaks == {"x": 2}
        assert plan.facts.required_stack_depth == 2
        assert plan.facts.max_logical_depth == 3
        vm = ProgramCounterVM(plan, batch_size=3)
        assert vm.max_stack_depth == 2  # pre-sized from the proven bound
        (out,) = vm.run([np.array([4.0, -1.0, 9.5])])
        np.testing.assert_array_equal(out, np.array([4.0, -1.0, 9.5]))
        assert vm.observed_max_depth() == 3

    def test_hand_built_call_program_bound_is_exact(self):
        # main pushes x twice, holds both frames across a call; the callee
        # pushes/pops one more x frame.  Peaks: x=3 saved frames, addr=1.
        sp = StackProgram(
            blocks=[
                Block(
                    label="main",
                    ops=[
                        PushOp(output="x", fn="id", inputs=("x",)),
                        PushOp(output="x", fn="id", inputs=("x",)),
                    ],
                    terminator=PushJump(return_target=1, jump_target=2),
                ),
                Block(
                    label="main.ret",
                    ops=[
                        PopOp(var="x"),
                        PopOp(var="x"),
                        PrimOp(outputs=("y",), fn="id", inputs=("x",)),
                    ],
                    terminator=Return(),
                ),
                Block(
                    label="callee",
                    ops=[
                        PushOp(output="x", fn="id", inputs=("x",)),
                        PopOp(var="x"),
                    ],
                    terminator=Return(),
                ),
            ],
            inputs=("x",),
            outputs=("y",),
            var_kinds={"x": VarKind.STACKED, "y": VarKind.REGISTER},
        )
        facts = verify_stack_program(sp)
        assert facts.entries == (0, 2)
        assert facts.var_peaks == {"x": 3}
        assert facts.max_addr_depth == 1
        assert facts.required_stack_depth == 3
        assert facts.entry_depths[1] == {"x": 2}  # the return continuation
        plan = ExecutionPlan.compile(sp, executor="eager")
        vm = ProgramCounterVM(plan, batch_size=2)
        assert vm.max_stack_depth == 3
        (out,) = vm.run([np.array([7.0, 2.0])])
        np.testing.assert_array_equal(out, np.array([7.0, 2.0]))
        assert vm.observed_max_depth() == 4


# -- mutation tests: corrupted programs are rejected with the right code ------


class TestMutations:
    @staticmethod
    def _mutable_fib():
        return copy.deepcopy(fib.stack_program())

    def test_dropped_push_is_rejected(self):
        sp = self._mutable_fib()
        victim = next(
            blk
            for blk in sp.blocks
            if any(isinstance(op, PushOp) for op in blk.ops)
        )
        victim.ops = [op for op in victim.ops if not isinstance(op, PushOp)][
            : len(victim.ops)
        ]
        # Drop *all* pushes of that call block: the matching pops at the
        # return continuation now consume a caller's frames.
        result = analyze_stack_program(sp)
        assert not result.ok
        codes = error_codes(result.diagnostics)
        assert codes & {"pop-underflow", "unbalanced-return", "depth-mismatch"}
        assert "pop-underflow" in codes
        first = [d for d in result.diagnostics if d.severity is Severity.ERROR][0]
        assert first.block is not None and first.function is not None
        with pytest.raises(VerificationError, match="pop-underflow"):
            verify_stack_program(sp)

    def test_single_dropped_push_is_rejected(self):
        sp = self._mutable_fib()
        for blk in sp.blocks:
            for i, op in enumerate(blk.ops):
                if isinstance(op, PushOp):
                    blk.ops = blk.ops[:i] + blk.ops[i + 1 :]
                    result = analyze_stack_program(sp)
                    assert not result.ok, f"dropping push in {blk.label}"
                    return
        pytest.fail("fib lowering no longer contains a push")

    def test_retargeted_branch_is_rejected_as_depth_mismatch(self):
        sp = self._mutable_fib()
        facts = verify_stack_program(fib.stack_program())
        # Point the entry branch's base-case edge into a return
        # continuation — a block whose verified entry state holds
        # caller-pushed frames.  The recursive edge stays intact, so the
        # continuation now joins two different stack depths.
        ret_block = next(
            i for i, d in enumerate(facts.entry_depths) if d  # nonzero depths
        )
        entry = sp.blocks[0]
        assert isinstance(entry.terminator, Branch)
        entry.terminator = Branch(
            cond=entry.terminator.cond,
            true_target=ret_block,
            false_target=entry.terminator.false_target,
        )
        result = analyze_stack_program(sp)
        assert not result.ok
        assert "depth-mismatch" in error_codes(result.diagnostics)

    def test_cross_function_branch_is_rejected(self):
        sp = copy.deepcopy(is_even.stack_program())
        facts = verify_stack_program(is_even.stack_program())
        other_entry = next(e for e in facts.entries if e != 0)
        mutated = False
        for i, blk in enumerate(sp.blocks):
            if facts.function_entry[i] != 0:
                continue
            if isinstance(blk.terminator, Branch):
                blk.terminator = Branch(
                    cond=blk.terminator.cond,
                    true_target=blk.terminator.true_target,
                    false_target=other_entry,
                )
                mutated = True
                break
        assert mutated, "main has no branch to retarget"
        result = analyze_stack_program(sp)
        assert not result.ok
        assert "cross-function-jump" in error_codes(result.diagnostics)

    def test_mutation_findings_are_severity_ranked(self):
        sp = self._mutable_fib()
        victim = next(
            blk for blk in sp.blocks if any(isinstance(op, PushOp) for op in blk.ops)
        )
        victim.ops = [op for op in victim.ops if not isinstance(op, PushOp)]
        diags = analyze_stack_program(sp).diagnostics
        severities = [int(d.severity) for d in diags]
        assert severities == sorted(severities, reverse=True)


# -- region-table validation --------------------------------------------------


class TestRegionTables:
    def test_static_and_profiled_tables_verify(self):
        sp = fib.stack_program()
        facts = verify_stack_program(sp)
        assert region_diagnostics(sp, select_regions(sp), facts) == []

    def test_truncated_table_is_rejected(self):
        sp = fib.stack_program()
        table = select_regions(sp)
        truncated = RegionTable(
            chains=table.chains[:-1],
            next_block=table.next_block[:-1],
            profiled=False,
        )
        with pytest.raises(VerificationError, match="region-shape"):
            verify_region_table(sp, truncated)

    def test_phantom_run_edge_is_rejected(self):
        sp = fib.stack_program()
        table = select_regions(sp)
        # Extend run 0 into a block its terminator has no edge to.
        entry_targets = set(sp.blocks[0].terminator.targets())
        phantom = next(
            b for b in range(len(sp.blocks)) if b not in entry_targets and b != 0
        )
        chains = list(table.chains)
        chains[0] = (0, phantom)
        bad = RegionTable(
            chains=tuple(chains), next_block=table.next_block, profiled=True
        )
        diags = region_diagnostics(sp, bad, verify_stack_program(sp))
        assert "region-bad-edge" in error_codes(diags)

    def test_run_past_return_is_rejected(self):
        sp = fib.stack_program()
        ret_idx = next(
            i for i, b in enumerate(sp.blocks) if isinstance(b.terminator, Return)
        )
        table = select_regions(sp)
        chains = list(table.chains)
        chains[ret_idx] = (ret_idx, 0)
        bad = RegionTable(
            chains=tuple(chains), next_block=table.next_block, profiled=True
        )
        diags = region_diagnostics(sp, bad)
        assert "region-past-return" in error_codes(diags)

    def test_superblock_executor_refuses_corrupt_table(self):
        sp = fib.stack_program()
        ex = SuperblockExecutor()
        good = ex.regions_for(sp)
        entry_targets = set(sp.blocks[0].terminator.targets())
        phantom = next(
            b for b in range(len(sp.blocks)) if b not in entry_targets and b != 0
        )
        chains = list(good.chains)
        chains[0] = (0, phantom)
        ex._regions[id(sp)] = (
            sp,
            RegionTable(
                chains=tuple(chains), next_block=good.next_block, profiled=True
            ),
        )
        plan = ExecutionPlan(program=sp, executor=ex)  # bypasses verify
        with pytest.raises(VerificationError, match="region-bad-edge"):
            ProgramCounterVM(plan, batch_size=1)

    def test_plan_verification_checks_the_region_table(self):
        sp = fib.stack_program()
        ex = SuperblockExecutor()
        good = ex.regions_for(sp)
        chains = list(good.chains)
        chains[0] = (0,) + tuple()
        ex._regions[id(sp)] = (
            sp,
            RegionTable(
                chains=tuple(chains[:-1]),
                next_block=good.next_block[:-1],
                profiled=True,
            ),
        )
        with pytest.raises(VerificationError, match="region"):
            ExecutionPlan.compile(sp, executor=ex)


# -- snapshot admission: static pre-check before any state is touched ---------


class TestSnapshotAdmission:
    @staticmethod
    def _deep_fib_snapshot(min_saved_frames=5):
        plan = fib.execution_plan("eager")
        vm = ProgramCounterVM(plan, batch_size=1, max_stack_depth=64)
        vm.bind_inputs([np.array([14], dtype=np.int64)])
        vm.scheduler.reset()
        while vm.addr_stack.sp[0] < min_saved_frames:
            assert vm.step()
        return plan, vm.snapshot_lane(0)

    def test_incompatible_snapshot_rejected_before_state_is_touched(self):
        plan, snap = self._deep_fib_snapshot()
        shallow = ProgramCounterVM(plan, batch_size=1, max_stack_depth=2)
        with pytest.raises(SnapshotIncompatibleError) as excinfo:
            shallow.restore_lane(0, snap)
        message = str(excinfo.value)
        assert f"requires stack depth {snap.required_depth()}" in message
        assert "max_stack_depth=2" in message
        # Statically rejected: nothing was allocated or written — the old
        # behavior overflowed mid-restore after the lane had been reset.
        assert shallow.storages == {}
        assert int(shallow.addr_stack.sp[0]) == 0

    def test_incompatible_error_is_a_stack_overflow(self):
        # The serving engine's fail-only-this-handle contract catches
        # StackOverflowError; the static pre-check must stay inside it.
        assert issubclass(SnapshotIncompatibleError, StackOverflowError)

    def test_required_depth_matches_frame_contents(self):
        _plan, snap = self._deep_fib_snapshot()
        expected = int(snap.addr_frames.shape[0]) - 1
        for name, payload in snap.storages.items():
            if payload is not None and snap.program.kind(name) is VarKind.STACKED:
                expected = max(expected, int(payload.shape[0]) - 1)
        assert snap.required_depth() == expected >= 5

    def test_compatible_snapshot_still_restores(self):
        plan, snap = self._deep_fib_snapshot()
        deep = ProgramCounterVM(plan, batch_size=1, max_stack_depth=64)
        deep.restore_lane(0, snap)
        deep.scheduler.reset()
        while deep.step():
            pass
        np.testing.assert_array_equal(
            deep.outputs()[0], fib.run_pc(np.array([14], dtype=np.int64))
        )

    def test_forged_snapshot_rejected_by_proven_bound(self):
        plan = use_divmod.execution_plan("eager")
        vm = ProgramCounterVM(plan, batch_size=1, max_stack_depth=8)
        vm.bind_inputs([np.array([17]), np.array([5])])
        forged = vm.snapshot_lane(0)
        # Physically admissible on this deep machine, but verification
        # proved use_divmod never exceeds one saved frame.
        forged.addr_frames = np.concatenate([forged.addr_frames] * 4)
        with pytest.raises(ValueError, match="never exceeds"):
            vm.restore_lane(0, forged)

    def test_out_of_range_pc_rejected(self):
        plan = gcd.execution_plan("eager")
        vm = ProgramCounterVM(plan, batch_size=1, max_stack_depth=4)
        snap = vm.snapshot_lane(0)
        snap.pc = vm.exit_index + 7
        with pytest.raises(ValueError, match="pc range"):
            vm.restore_lane(0, snap)

    def test_engine_migration_onto_shallow_machine_fails_precisely(self):
        """Cross-shard-style migration onto a too-shallow machine: the
        static pre-check fails that handle with the precise error and the
        engine keeps serving."""
        deep = fib.serve(num_lanes=1, preempt=True, max_stack_depth=64)
        strag = deep.submit(np.int64(14))
        deep.tick()
        while deep.vm.addr_stack.sp[0] < 5:
            deep.tick()
        deep.submit(np.int64(3), priority=5)
        while strag.state != "preempted":
            deep.tick()
        orphans = deep.export_queue()
        assert strag in orphans and strag.snapshot is not None

        shallow = fib.serve(num_lanes=1, max_stack_depth=2)
        shallow.requeue(orphans)
        survivor = shallow.submit(np.int64(1))
        shallow.run_until_idle()
        assert strag.state == "failed"
        exc = strag.exception()
        assert isinstance(exc, SnapshotIncompatibleError)
        assert "requires stack depth" in str(exc)
        assert "max_stack_depth=2" in str(exc)
        assert int(survivor.result()) == 1
        assert shallow.pool.busy_count() == 0


# -- validate_stack_program gaps fixed (shared structural checks) -------------


class TestValidateStackProgramGaps:
    @staticmethod
    def _single(terminator, label="b0"):
        return StackProgram(
            blocks=[Block(label=label, ops=[], terminator=terminator)],
            inputs=("x",),
            outputs=("x",),
        )

    def test_duplicate_labels_rejected(self):
        sp = StackProgram(
            blocks=[
                Block(label="b0", ops=[], terminator=Jump(target=1)),
                Block(label="b0", ops=[], terminator=Return()),
            ],
            inputs=("x",),
            outputs=("x",),
        )
        with pytest.raises(IRValidationError, match="already used"):
            validate_stack_program(sp)

    def test_pushjump_call_into_exit_rejected(self):
        sp = self._single(PushJump(return_target=0, jump_target=1))
        with pytest.raises(IRValidationError, match="exit index"):
            validate_stack_program(sp)

    def test_pushjump_return_at_exit_rejected(self):
        sp = StackProgram(
            blocks=[
                Block(
                    label="b0",
                    ops=[],
                    terminator=PushJump(return_target=2, jump_target=1),
                ),
                Block(label="b1", ops=[], terminator=Return()),
            ],
            inputs=("x",),
            outputs=("x",),
        )
        with pytest.raises(IRValidationError, match="exit index"):
            validate_stack_program(sp)

    def test_missing_terminator_rejected(self):
        sp = self._single(None)
        with pytest.raises(IRValidationError, match="missing terminator"):
            validate_stack_program(sp)

    def test_branch_target_out_of_range_rejected(self):
        sp = self._single(Branch(cond="x", true_target=0, false_target=9))
        with pytest.raises(IRValidationError, match="out of range"):
            validate_stack_program(sp)


# -- plan wiring: verify once, opt out, pre-size ------------------------------


class TestPlanVerification:
    def test_facts_shared_across_executor_plans(self):
        facts = fib.program_facts()
        for executor in EXECUTORS:
            assert fib.execution_plan(executor=executor).facts is facts

    def test_verify_opt_out_then_upgrade_in_place(self):
        from repro import autobatch

        @autobatch
        def stackcheck_tri(n):
            total = 0
            while n > 0:
                total = total + n
                n = n - 1
            return total

        plan = stackcheck_tri.execution_plan("eager", verify=False)
        assert plan.facts is None
        upgraded = stackcheck_tri.execution_plan("eager")
        assert upgraded is plan  # same cached plan,
        assert plan.facts is not None  # now carrying the proven facts

    def test_compile_rejects_corrupt_program_by_default(self):
        sp = copy.deepcopy(fib.stack_program())
        victim = next(
            blk for blk in sp.blocks if any(isinstance(op, PushOp) for op in blk.ops)
        )
        victim.ops = [op for op in victim.ops if not isinstance(op, PushOp)]
        with pytest.raises(VerificationError):
            ExecutionPlan.compile(sp, executor="eager")
        plan = ExecutionPlan.compile(sp, executor="eager", verify=False)
        assert plan.facts is None  # escape hatch for negative tests

    def test_run_pc_verify_opt_out_still_correct(self):
        ns = np.array([3, 8, 5], dtype=np.int64)
        np.testing.assert_array_equal(
            fib.run_pc(ns, verify=False), fib.run_pc(ns)
        )

    def test_unverified_plan_machine_uses_default_depth(self):
        plan = ExecutionPlan(
            program=gcd.stack_program(), executor=EagerBlockExecutor()
        )
        assert plan.facts is None
        vm = ProgramCounterVM(plan, batch_size=1)
        assert vm.max_stack_depth == 32

    def test_explicit_depth_always_wins(self):
        vm = ProgramCounterVM(
            use_divmod.execution_plan("eager"), batch_size=1, max_stack_depth=7
        )
        assert vm.max_stack_depth == 7

    def test_recursive_program_falls_back_to_default_depth(self):
        vm = ProgramCounterVM(fib.execution_plan("eager"), batch_size=1)
        assert vm.max_stack_depth == 32


# -- hypothesis: every frontend-lowered random program verifies clean ---------


class TestRandomPrograms:
    @settings(max_examples=25, deadline=None)
    @given(program_strategy)
    def test_random_lowered_program_verifies_clean(self, spec):
        fn = compile_source(render_program(spec))
        result = analyze_stack_program(fn.stack_program())
        assert result.ok, result.diagnostics
        facts = result.facts
        recursive = spec[1]
        assert facts.recursive == recursive
        if not recursive:
            assert facts.required_stack_depth is not None
            # The proven bound really is enough to execute on.
            plan = fn.execution_plan("eager")
            vm = ProgramCounterVM(plan, batch_size=2)
            assert vm.max_stack_depth == facts.required_stack_depth
            vm.run(
                [
                    np.array([3, 11], dtype=np.int64),
                    np.array([7, 2], dtype=np.int64),
                    np.array([1, 2], dtype=np.int64),
                ]
            )
            assert vm.observed_max_depth() == facts.max_logical_depth


# -- the lint driver ----------------------------------------------------------


class TestLint:
    def test_lint_function_reports_unbounded_verdict(self):
        from repro.analysis.lint import lint_function

        findings = lint_function(fib)
        assert [d for d in findings if d.code == "depth-unbounded"]
        assert not [d for d in findings if d.severity is Severity.ERROR]

    def test_lint_detects_dead_store(self):
        from repro import autobatch
        from repro.analysis.lint import lint_function

        @autobatch
        def stackcheck_dead_store(n):
            wasted = n + 1
            wasted2 = wasted * 2  # noqa: F841 -- the point of the test
            return n - 1

        findings = lint_function(stackcheck_dead_store)
        assert [d for d in findings if d.code == "dead-store"]
        assert not [d for d in findings if d.severity is Severity.ERROR]

    def test_cli_all_exits_clean_on_corpus(self, capsys):
        from repro.analysis.lint import main

        assert main(["all"]) == 0
        out = capsys.readouterr().out
        assert "0 error(s)" in out
        assert "depth-unbounded" in out

    def test_cli_single_and_list(self, capsys):
        from repro.analysis.lint import main

        assert main(["gcd"]) == 0
        assert "gcd: clean" in capsys.readouterr().out
        assert main(["--list"]) == 0
        assert "fib" in capsys.readouterr().out

    def test_cli_unknown_example_errors(self):
        from repro.analysis.lint import main

        with pytest.raises(SystemExit):
            main(["no_such_example"])

    def test_cli_json_output(self, capsys):
        import json

        from repro.analysis.lint import main

        assert main(["fib", "--json"]) == 0
        lines = [
            json.loads(line)
            for line in capsys.readouterr().out.splitlines()
            if line.strip()
        ]
        assert any(d["code"] == "depth-unbounded" for d in lines)
        assert all(d["program"] == "fib" for d in lines)
