"""Tests for the pluggable block-executor layer (ExecutionPlan et al.).

The contract under test: executors are *observationally interchangeable*.
For any program, the eager interpreter and the fused code generator must
produce bit-identical outputs and bit-identical
:class:`~repro.vm.instrumentation.Instrumentation` op counts — whether the
machine runs a static batch (``run_pc``) or recycles lanes under the
serving engine.
"""

import warnings

import numpy as np
import pytest

from repro.backend.fusion import (
    FusedBlockExecutor,
    FusionUnsupported,
    SuperblockExecutor,
)
from repro.lowering.pipeline import LoweringOptions
from repro.serve.engine import Engine
from repro.vm.executors import (
    EagerBlockExecutor,
    ExecutionPlan,
    executor_names,
    resolve_executor,
)
from repro.vm.instrumentation import Instrumentation
from repro.vm.program_counter import ProgramCounterVM

from .helpers import assert_instrumentation_identical, assert_results_equal
from .programs import ALL_EXAMPLES, fib, gcd


class TestResolution:
    def test_names(self):
        names = executor_names()
        assert "eager" in names and "fused" in names
        assert "superblock" in names

    def test_resolve_by_name(self):
        assert isinstance(resolve_executor("eager"), EagerBlockExecutor)
        assert isinstance(resolve_executor("fused"), FusedBlockExecutor)
        assert isinstance(resolve_executor("superblock"), SuperblockExecutor)

    def test_resolve_instance_passthrough(self):
        ex = FusedBlockExecutor()
        assert resolve_executor(ex) is ex

    def test_resolve_none_is_eager(self):
        assert isinstance(resolve_executor(None), EagerBlockExecutor)

    def test_unknown_name(self):
        with pytest.raises(ValueError, match="unknown executor"):
            resolve_executor("tpu")

    def test_unknown_type(self):
        with pytest.raises(TypeError):
            resolve_executor(42)


class TestExecutionPlan:
    def test_cached_per_executor_and_options(self):
        p1 = fib.execution_plan(executor="fused")
        p2 = fib.execution_plan(executor="fused")
        p3 = fib.execution_plan(executor="eager")
        p4 = fib.execution_plan(executor="fused", optimize=False)
        assert p1 is p2
        assert p3 is not p1 and p4 is not p1
        assert p1.name == "fused" and p3.name == "eager"

    def test_lowering_options_instance_distinguished(self):
        """The regression the cache-key satellite fixes: per-optimization
        ablation configs must not collide with the all-on default."""
        ablation = LoweringOptions(pop_push_opt=False)
        p_opt = fib.execution_plan(optimize=True)
        p_ablation = fib.execution_plan(optimize=ablation)
        assert p_opt is not p_ablation
        assert p_ablation.options == ablation
        assert fib.stack_program(ablation) is not fib.stack_program(True)
        assert fib.stack_program(ablation) is fib.stack_program(ablation)

    def test_compile_from_stack_program(self):
        plan = ExecutionPlan.compile(fib.stack_program(), executor="fused")
        assert plan.name == "fused"
        assert plan.program is fib.stack_program()

    def test_dispatch_counts_by_accounting(self):
        instr = Instrumentation()
        fib.run_pc(np.array([6, 9, 3]), instrumentation=instr, max_stack_depth=32)
        eager = fib.execution_plan("eager").dispatch_count(instr)
        fused = fib.execution_plan("fused").dispatch_count(instr)
        assert fused == instr.steps
        assert eager > fused  # per-op launches vs one per block
        # Device accounting is kernel-level (comparable across machines).
        assert fib.execution_plan("eager").device_dispatch_count(instr) \
            == instr.kernel_calls
        assert fib.execution_plan("fused").device_dispatch_count(instr) \
            == instr.steps
        assert fib.execution_plan("eager").accounting == "eager"
        assert fib.execution_plan("fused").accounting == "fused"

    def test_plan_estimate_matches_legacy_string_accounting(self):
        """Plan-derived device estimates must agree exactly with the legacy
        string accounting, so Figure 5's strategies stay comparable."""
        from repro.backend.device import CPU_DEVICE, GPU_DEVICE

        instr = Instrumentation()
        fib.run_pc(np.array([6, 9, 3]), instrumentation=instr, max_stack_depth=32)
        for device in (CPU_DEVICE, GPU_DEVICE):
            for executor in ("eager", "fused"):
                assert device.estimate(instr, fib.execution_plan(executor)) \
                    == device.estimate(instr, executor)

    def test_plan_cache_shared_with_engine(self):
        """Engine(fn, ..., executor=name) must reuse the function's cached
        plan, not compile a fresh one per engine."""
        engine = Engine(fib, num_lanes=2, executor="fused")
        assert engine.plan is fib.execution_plan("fused")
        assert Engine(fib, num_lanes=2).plan is fib.execution_plan("eager")

    def test_engine_rejects_plan_plus_executor(self):
        with pytest.raises(ValueError, match="not both"):
            Engine(fib.execution_plan("eager"), num_lanes=2, executor="fused")

    def test_vm_rejects_plan_plus_executor(self):
        plan = fib.execution_plan("eager")
        with pytest.raises(ValueError, match="not both"):
            ProgramCounterVM(plan, batch_size=2, executor="fused")

    def test_fused_plan_rejects_gather_mode(self):
        with pytest.raises(FusionUnsupported, match="masking"):
            ProgramCounterVM(
                fib.execution_plan("fused"), batch_size=2, mode="gather"
            )

    def test_fused_compile_counter_once_across_machines(self):
        """The code-cache-sharing regression: one fused plan bound to two
        machines does exactly one codegen/compile, and both machines produce
        identical outputs AND identical instrumentation op counts."""
        plan = ExecutionPlan.compile(
            gcd.stack_program(), executor=FusedBlockExecutor()
        )
        assert plan.executor.compile_count == 0
        assert plan.stats.bind_count == 0
        i1, i2 = Instrumentation(), Instrumentation()
        vm1 = ProgramCounterVM(
            plan, batch_size=3, max_stack_depth=32, instrumentation=i1
        )
        assert plan.executor.compile_count == 1
        vm2 = ProgramCounterVM(
            plan, batch_size=3, max_stack_depth=32, instrumentation=i2
        )
        assert plan.executor.compile_count == 1  # bind is not compile
        assert plan.stats.bind_count == 2
        a = np.array([48, 17, 270], dtype=np.int64)
        b = np.array([36, 5, 192], dtype=np.int64)
        out1, out2 = vm1.run([a, b]), vm2.run([a, b])
        np.testing.assert_array_equal(out1[0], out2[0])
        assert_instrumentation_identical(i1, i2)

    def test_superblock_plan_cached_by_name(self):
        p1 = fib.execution_plan(executor="superblock")
        p2 = fib.execution_plan(executor="superblock")
        assert p1 is p2
        assert p1.name == "superblock"
        assert p1 is not fib.execution_plan(executor="fused")

    def test_superblock_profile_instance_bypasses_cache(self):
        """The stale-region guard: a profile-seeded executor instance must
        yield a *fresh* plan — never the cached static-region one — so a
        new profile can never run through stale compiled regions."""
        from repro.observe.profile import BlockProfile, BlockRow

        profile = BlockProfile({
            i: BlockRow(
                index=i, label=f"b{i}", source="", executions=1,
                active=a, live=s, slots=s,
            )
            for i, (a, s) in {1: (10, 120), 2: (100, 120)}.items()
        })
        cached = fib.execution_plan(executor="superblock")
        seeded = fib.execution_plan(executor=SuperblockExecutor(profile=profile))
        assert seeded is not cached
        assert seeded is not fib.execution_plan(
            executor=SuperblockExecutor(profile=profile)
        )
        # The two plans really select different regions: the profile
        # extends fib's entry branch into the dominant recursive side.
        sp = fib.stack_program()
        assert cached.executor.regions_for(sp).chain(0) == (0,)
        assert seeded.executor.regions_for(sp).chain(0) == (0, 2)

    def test_superblock_compile_once_bind_many(self):
        """compile_count/bind_count regression: one superblock plan bound
        to two machines does exactly one region codegen, and both machines
        produce identical outputs."""
        plan = ExecutionPlan.compile(
            gcd.stack_program(), executor=SuperblockExecutor()
        )
        assert plan.executor.compile_count == 0
        assert plan.stats.bind_count == 0
        vm1 = ProgramCounterVM(plan, batch_size=3, max_stack_depth=32)
        assert plan.executor.compile_count == 1
        vm2 = ProgramCounterVM(plan, batch_size=3, max_stack_depth=32)
        assert plan.executor.compile_count == 1  # bind is not compile
        assert plan.stats.bind_count == 2
        a = np.array([48, 17, 270], dtype=np.int64)
        b = np.array([36, 5, 192], dtype=np.int64)
        np.testing.assert_array_equal(vm1.run([a, b])[0], vm2.run([a, b])[0])

    def test_eager_executor_never_compiles(self):
        plan = ExecutionPlan.compile(fib.stack_program(), executor="eager")
        ProgramCounterVM(plan, batch_size=2, max_stack_depth=8)
        assert plan.executor.compile_count == 0
        assert plan.stats.bind_count == 1

    def test_shared_executor_alternating_programs_no_thrash(self):
        """One executor instance serving two programs must cache both:
        alternating binds across programs never re-trigger codegen."""
        ex = FusedBlockExecutor()
        p_fib = ExecutionPlan.compile(fib.stack_program(), executor=ex)
        p_gcd = ExecutionPlan.compile(gcd.stack_program(), executor=ex)
        ProgramCounterVM(p_fib, batch_size=2, max_stack_depth=16)
        ProgramCounterVM(p_gcd, batch_size=2, max_stack_depth=16)
        assert ex.compile_count == 2
        ProgramCounterVM(p_fib, batch_size=4, max_stack_depth=16)
        ProgramCounterVM(p_gcd, batch_size=4, max_stack_depth=16)
        assert ex.compile_count == 2

    def test_total_fused_compiles_counts_fleet_builds_once(self):
        from repro.backend.fusion import total_fused_compiles

        plan = ExecutionPlan.compile(
            fib.stack_program(), executor=FusedBlockExecutor()
        )
        before = total_fused_compiles()
        for width in (2, 3, 5, 8):
            ProgramCounterVM(plan, batch_size=width, max_stack_depth=8)
        assert total_fused_compiles() == before + 1

    def test_fused_codegen_compiled_once_per_plan(self):
        """Binding the same fused plan to two machines must reuse the
        compiled code objects — only namespaces are per-VM."""
        plan = fib.execution_plan("fused")
        vm1 = ProgramCounterVM(plan, batch_size=2, max_stack_depth=8)
        vm2 = ProgramCounterVM(plan, batch_size=5, max_stack_depth=8)
        for f1, f2 in zip(vm1._block_fns, vm2._block_fns):
            assert f1.__code__ is f2.__code__
        # ...and the bound machines still run correctly at their widths.
        np.testing.assert_array_equal(vm1.run([np.array([4, 7])])[0], [5, 21])
        np.testing.assert_array_equal(
            vm2.run([np.array([3, 7, 4, 5, 6])])[0], [3, 21, 5, 8, 13]
        )


class TestEagerFusedDifferential:
    @pytest.mark.parametrize("name", sorted(ALL_EXAMPLES))
    def test_outputs_and_opcounts_identical(self, name):
        fn, inputs = ALL_EXAMPLES[name]
        instr = {}
        outs = {}
        for executor in ("eager", "fused"):
            instr[executor] = Instrumentation()
            outs[executor] = fn.run_pc(
                *inputs,
                executor=executor,
                instrumentation=instr[executor],
                max_stack_depth=64,
            )
        assert_results_equal(outs["eager"], outs["fused"], context=name)
        assert_instrumentation_identical(instr["eager"], instr["fused"])

    @pytest.mark.parametrize("name", sorted(ALL_EXAMPLES))
    def test_superblock_outputs_identical(self, name):
        """Superblock sweeps change lane *grouping*, not lane results: the
        op-count accounting may differ from fused, but outputs must stay
        bit-identical and the host never dispatches more often than it
        executes blocks."""
        fn, inputs = ALL_EXAMPLES[name]
        instr = Instrumentation()
        got = fn.run_pc(
            *inputs,
            executor="superblock",
            instrumentation=instr,
            max_stack_depth=64,
        )
        expected = fn.run_pc(*inputs, executor="eager", max_stack_depth=64)
        assert_results_equal(got, expected, context=name)
        assert instr.host_dispatches <= instr.steps

    def test_device_model_estimates_comparable(self):
        """Same run, two plans: fused must cost less on every device."""
        from repro.backend.device import CPU_DEVICE, GPU_DEVICE

        instr = Instrumentation()
        fib.run_pc(np.array([9, 4, 11]), instrumentation=instr, max_stack_depth=32)
        for device in (CPU_DEVICE, GPU_DEVICE):
            t_eager = device.estimate(instr, fib.execution_plan("eager"))
            t_fused = device.estimate(instr, fib.execution_plan("fused"))
            assert t_fused < t_eager


class TestServingDifferential:
    def test_engine_fused_matches_eager_and_static(self):
        ns = np.array([7, 3, 9, 12, 5, 8, 14, 2], dtype=np.int64)
        expected = fib.run_pc(ns, max_stack_depth=64)
        results = {}
        engines = {}
        for executor in ("eager", "fused"):
            engine = Engine(fib, num_lanes=3, executor=executor, max_stack_depth=64)
            results[executor] = engine.map([(n,) for n in ns])
            engines[executor] = engine
        np.testing.assert_array_equal(np.stack(results["eager"]), expected)
        np.testing.assert_array_equal(np.stack(results["fused"]), expected)
        assert_instrumentation_identical(
            engines["eager"].vm.instr, engines["fused"].vm.instr
        )
        assert engines["fused"].dispatch_count() < engines["eager"].dispatch_count()

    def test_fused_lane_recycling_multi_input(self):
        pairs = [(48, 36), (7, 0), (12, 18), (27, 6), (9, 9), (100, 8)]
        a = np.array([p[0] for p in pairs], dtype=np.int64)
        b = np.array([p[1] for p in pairs], dtype=np.int64)
        expected = gcd.run_pc(a, b, max_stack_depth=64)
        engine = gcd.serve(num_lanes=2, executor="fused", max_stack_depth=64)
        results = engine.map([(x, y) for x, y in pairs])
        np.testing.assert_array_equal(np.stack(results), expected)

    def test_fused_drain_policy(self):
        ns = np.array([6, 11, 4, 9], dtype=np.int64)
        engine = fib.serve(num_lanes=2, executor="fused", refill="drain")
        results = engine.map([(n,) for n in ns])
        np.testing.assert_array_equal(np.stack(results), fib.run_pc(ns))

    def test_fused_step_budget_abort_then_recycle(self):
        from repro.serve.queue import StepBudgetExceeded

        engine = fib.serve(num_lanes=1, executor="fused")
        doomed = engine.submit(np.int64(16), step_budget=5)
        survivor = engine.submit(np.int64(9))
        engine.run_until_idle()
        with pytest.raises(StepBudgetExceeded):
            doomed.result()
        np.testing.assert_array_equal(
            survivor.result(), fib.run_pc(np.array([9], dtype=np.int64))[0]
        )


class TestSnapshotRestoreDifferential:
    """Lane checkpoint/resume (the preemptive-serving primitive): snapshot
    every lane of a mid-flight machine, restore into a *fresh* machine, and
    the completed run must be bit-identical to the uninterrupted one —
    under both executors, at any interruption point, across stack layouts,
    and into any lane permutation."""

    @staticmethod
    def _count_steps(plan, inputs, **vm_options):
        vm = ProgramCounterVM(plan, batch_size=len(inputs[0]), **vm_options)
        vm.bind_inputs(inputs)
        steps = 0
        while vm.step():
            steps += 1
        return steps

    @staticmethod
    def _snapshot_at(plan, inputs, stop_at, **vm_options):
        """All lane snapshots of a machine stepped ``stop_at`` times."""
        vm = ProgramCounterVM(plan, batch_size=len(inputs[0]), **vm_options)
        vm.bind_inputs(inputs)
        for _ in range(stop_at):
            vm.step()
        return [vm.snapshot_lane(b) for b in range(vm.batch_size)]

    @staticmethod
    def _finish_from(plan, snapshots, **vm_options):
        vm = ProgramCounterVM(
            plan, batch_size=len(snapshots), **vm_options
        )
        for b, snap in enumerate(snapshots):
            vm.restore_lane(b, snap)
        while vm.step():
            pass
        return vm.outputs()

    @pytest.mark.parametrize("name", sorted(ALL_EXAMPLES))
    @pytest.mark.parametrize("executor", ["eager", "fused", "superblock"])
    def test_roundtrip_matches_static(self, name, executor):
        fn, inputs = ALL_EXAMPLES[name]
        inputs = [np.asarray(x) for x in inputs]
        expected = fn.run_pc(*inputs, executor=executor, max_stack_depth=64)
        plan = fn.execution_plan(executor=executor)
        total = self._count_steps(plan, inputs, max_stack_depth=64)
        # Interrupt early, mid-flight, and after every lane halted; the
        # offsets are seeded per program so the corpus covers many pcs.
        rng = np.random.RandomState(len(name))
        for stop_at in sorted({rng.randint(0, total + 1), total // 2, total}):
            snaps = self._snapshot_at(
                plan, inputs, stop_at, max_stack_depth=64
            )
            outputs = self._finish_from(plan, snaps, max_stack_depth=64)
            got = outputs[0] if len(outputs) == 1 else tuple(outputs)
            assert_results_equal(
                got, expected, context=f"{name}@{stop_at}/{total}"
            )

    def test_restore_across_executors(self):
        """A snapshot taken under the eager machine resumes bit-identically
        under the fused machine, and vice versa."""
        ns = np.array([4, 11, 7, 13], dtype=np.int64)
        expected = fib.run_pc(ns)
        names = ("eager", "fused", "superblock")
        plans = {ex: fib.execution_plan(executor=ex) for ex in names}
        for src in names:
            for dst in names:
                if src == dst:
                    continue
                snaps = self._snapshot_at(
                    plans[src], [ns], 25, max_stack_depth=32
                )
                (out,) = self._finish_from(
                    plans[dst], snaps, max_stack_depth=32
                )
                np.testing.assert_array_equal(
                    out, expected, err_msg=f"{src}->{dst}"
                )

    def test_restore_across_stack_layouts(self):
        """The frame representation is layout-independent: a top-cached
        snapshot restores into an uncached machine and vice versa."""
        ns = np.array([9, 3, 12], dtype=np.int64)
        expected = fib.run_pc(ns)
        plan = fib.execution_plan("eager")
        for src_cache, dst_cache in ((True, False), (False, True)):
            snaps = self._snapshot_at(
                plan, [ns], 30, max_stack_depth=32, top_cache=src_cache
            )
            (out,) = self._finish_from(
                plan, snaps, max_stack_depth=32, top_cache=dst_cache
            )
            np.testing.assert_array_equal(
                out, expected, err_msg=f"cache {src_cache}->{dst_cache}"
            )

    def test_restore_into_permuted_lanes(self):
        """A snapshot is lane-independent: restoring lane b's thread into
        lane (Z-1-b) of a fresh machine permutes the outputs and nothing
        else."""
        ns = np.array([5, 10, 2, 8], dtype=np.int64)
        plan = fib.execution_plan("fused")
        snaps = self._snapshot_at(plan, [ns], 40, max_stack_depth=32)
        (out,) = self._finish_from(plan, snaps[::-1], max_stack_depth=32)
        np.testing.assert_array_equal(out, fib.run_pc(ns[::-1]))

    def test_restore_rejects_program_mismatch(self):
        vm_fib = ProgramCounterVM(fib.execution_plan("eager"), batch_size=1)
        vm_gcd = ProgramCounterVM(gcd.execution_plan("eager"), batch_size=1)
        snap = vm_fib.snapshot_lane(0)
        with pytest.raises(ValueError, match="different program"):
            vm_gcd.restore_lane(0, snap)

    def test_restore_rejects_too_shallow_stack(self):
        from repro.vm.stack import StackOverflowError

        plan = fib.execution_plan("eager")
        ns = np.array([12], dtype=np.int64)
        snaps = self._snapshot_at(plan, [ns], 60, max_stack_depth=32)
        shallow = ProgramCounterVM(plan, batch_size=1, max_stack_depth=2)
        with pytest.raises(StackOverflowError, match="snapshot"):
            shallow.restore_lane(0, snaps[0])

    def test_snapshot_does_not_disturb_the_source(self):
        """Snapshotting is read-only: the source machine finishes as if
        never observed."""
        ns = np.array([8, 3, 11], dtype=np.int64)
        plan = fib.execution_plan("eager")
        vm = ProgramCounterVM(plan, batch_size=3, max_stack_depth=32)
        vm.bind_inputs([ns])
        for _ in range(20):
            vm.step()
        for b in range(3):
            vm.snapshot_lane(b)
        while vm.step():
            pass
        np.testing.assert_array_equal(vm.outputs()[0], fib.run_pc(ns))


class TestFusedErrorHygiene:
    def test_masked_lanes_raise_no_fp_warnings(self):
        """gcd's loop computes ``a % b`` for every lane, including masked-off
        lanes where b == 0; neither executor may let the spurious
        divide-by-zero warning escape."""
        a = np.array([12, 17, 100, 3], dtype=np.int64)
        b = np.array([18, 5, 75, 0], dtype=np.int64)
        for executor in ("eager", "fused"):
            with warnings.catch_warnings():
                warnings.simplefilter("error", RuntimeWarning)
                gcd.run_pc(a, b, executor=executor, max_stack_depth=64)

    def test_generated_source_wraps_errstate(self):
        vm = ProgramCounterVM(
            fib.execution_plan("fused"), batch_size=2, max_stack_depth=8
        )
        source = vm._block_fns[0].__fused_source__
        assert "np.errstate(all='ignore')" in source
