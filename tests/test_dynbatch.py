"""Tests for the dynamic batcher and the paper's §5 architectural claims."""

import numpy as np
import pytest

from repro.dynbatch import DynamicBatcher, Lazy, LazyContext


def fresh_context():
    return LazyContext(DynamicBatcher())


class TestLazyGraphs:
    def test_constant_is_preforced(self):
        ctx = fresh_context()
        c = ctx.constant(3.0)
        assert c.value() == 3.0

    def test_arithmetic_chain(self):
        ctx = fresh_context()
        x = ctx.constant(2.0)
        y = (x * 3.0 + 4.0) / 2.0
        assert y.value() == pytest.approx(5.0)

    def test_reflected_operators(self):
        ctx = fresh_context()
        x = ctx.constant(4.0)
        assert (10.0 - x).value() == pytest.approx(6.0)
        assert (3.0 + x).value() == pytest.approx(7.0)

    def test_comparisons(self):
        ctx = fresh_context()
        x = ctx.constant(5)
        assert bool((x > 3).value())
        assert not bool((x <= 4).value())

    def test_force_is_idempotent(self):
        ctx = fresh_context()
        x = ctx.constant(1.0) + 1.0
        assert x.value() == x.value() == 2.0

    def test_wedged_graph_detected(self):
        ctx_a = fresh_context()
        ctx_b = fresh_context()
        orphan = ctx_a.constant(1.0) + 1.0
        # A node whose argument lives in a foreign context can never become
        # ready in ctx_b's agenda.
        alien = ctx_b.apply("add", ctx_b.constant(1.0), orphan)
        ctx_a.pending.clear()  # simulate the other session vanishing
        with pytest.raises(RuntimeError):
            alien.value()


class TestOpportunisticBatching:
    def test_independent_examples_batch_per_op(self):
        """N independent straight-line programs; each op level becomes ONE
        kernel call — the dynamic architecture's headline ability."""
        batcher = DynamicBatcher()
        ctx = LazyContext(batcher)
        outs = []
        for i in range(16):
            x = ctx.constant(float(i))
            outs.append(x * 2.0 + 1.0)
        values = [o.value() for o in outs]
        np.testing.assert_allclose(values, [2.0 * i + 1.0 for i in range(16)])
        # 16 muls in one call, 16 adds in one call (+0 for constants).
        assert batcher.kernel_calls == 2
        assert batcher.nodes_executed == 32
        assert batcher.batching_factor() == pytest.approx(16.0)

    def test_different_ops_do_not_batch_together(self):
        batcher = DynamicBatcher()
        ctx = LazyContext(batcher)
        a = ctx.constant(1.0) + 1.0
        b = ctx.constant(2.0) * 3.0
        a.value(), b.value()
        assert batcher.kernel_calls == 2

    def test_batches_across_divergent_control_flow(self):
        """Examples that took DIFFERENT Python branches still batch their
        later common ops — 'recover more batching... if there is no data
        dependence' is conditional on forcing, tested next."""
        batcher = DynamicBatcher()
        ctx = LazyContext(batcher)
        outs = []
        for i in range(8):
            x = ctx.constant(float(i))
            # Python-level branch on the *index* (not on lazy data): graphs
            # differ per example, tails still share ops.
            y = x * 2.0 if i % 2 == 0 else x * 3.0
            outs.append(y + 1.0)
        values = [o.value() for o in outs]
        expected = [(i * 2.0 if i % 2 == 0 else i * 3.0) + 1.0 for i in range(8)]
        np.testing.assert_allclose(values, expected)
        # mul batches in one call (same op name!), add in another.
        assert batcher.kernel_calls == 2

    def test_data_dependent_forcing_fragments_batches(self):
        """The §5 trade-off: branching on a lazy value forces it, splitting
        the agenda into more, smaller kernel calls."""
        def run(force_mid: bool) -> int:
            batcher = DynamicBatcher()
            ctx = LazyContext(batcher)
            outs = []
            for i in range(8):
                x = ctx.constant(float(i)) * 2.0
                if force_mid:
                    # Data-dependent control: must know x's value NOW.
                    branch = bool((x > 6.0).value())
                    outs.append(x + (1.0 if branch else -1.0))
                else:
                    outs.append(x + 1.0)
            for o in outs:
                o.value()
            return batcher.kernel_calls

        assert run(force_mid=True) > run(force_mid=False)

    def test_recursion_through_python(self):
        """Fibonacci with lazy adds: the control skeleton runs in Python per
        example; same-depth additions across (and within!) examples batch —
        'including within a single execution, if there is no data
        dependence'."""
        batcher = DynamicBatcher()
        ctx = LazyContext(batcher)

        def lazy_fib(n: int):
            if n <= 1:
                return ctx.constant(1)
            return lazy_fib(n - 2) + lazy_fib(n - 1)

        outs = [lazy_fib(n) for n in (3, 7, 4, 5)]
        np.testing.assert_array_equal(
            [int(o.value()) for o in outs], [3, 21, 5, 8]
        )
        # Adds batch by readiness wave; far fewer calls than additions.
        assert batcher.kernel_calls < batcher.nodes_executed

    def test_matches_static_machines(self):
        """All three architectures compute the same function."""
        from .programs import fib

        batch = np.array([3, 7, 4, 5, 9])
        batcher = DynamicBatcher()
        ctx = LazyContext(batcher)

        def lazy_fib(n: int):
            if n <= 1:
                return ctx.constant(1)
            return lazy_fib(n - 2) + lazy_fib(n - 1)

        dynamic = [int(lazy_fib(int(n)).value()) for n in batch]
        np.testing.assert_array_equal(dynamic, fib.run_pc(batch))
