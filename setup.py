from setuptools import find_packages, setup

setup(
    name="repro-autobatching",
    version="1.2.0",
    description=(
        "Reproduction of 'Automatically Batching Control-Intensive Programs "
        "for Modern Accelerators' (Radul et al., MLSys 2020), plus a "
        "pluggable block-executor layer and a continuous-batching serving "
        "engine on top of the program-counter machine"
    ),
    package_dir={"": "src"},
    packages=find_packages("src"),
    python_requires=">=3.9",
    install_requires=["numpy", "networkx"],
    extras_require={"test": ["pytest", "hypothesis"]},
)
