"""Figure 5 cells as pytest benchmarks: NUTS throughput per strategy.

Each benchmark is one (strategy, batch size) cell of the paper's Figure 5
sweep on a laptop-scale Bayesian logistic regression.  The benchmark's
``extra_info`` records the gradient-evaluation count so grads/sec can be
derived from the pytest-benchmark output; the full sweep with the simulated
CPU/GPU devices is ``python -m repro.bench.figure5``.
"""

import pytest

from common import NUTS_ARGS, logistic_kernel

BATCH_SIZES = (4, 32)
STRATEGIES = ("reference", "local", "hybrid", "pc", "pc_fused", "stan")


@pytest.mark.parametrize("batch_size", BATCH_SIZES)
@pytest.mark.parametrize("strategy", STRATEGIES)
def test_nuts_throughput(benchmark, strategy, batch_size):
    kernel = logistic_kernel()
    target = kernel.target
    q0 = target.initial_state(batch_size, seed=0)

    if strategy == "stan":
        from repro.baselines.stan_like import StanLikeSampler

        sampler = StanLikeSampler(
            target,
            NUTS_ARGS["step_size"],
            max_depth=NUTS_ARGS["max_depth"],
            n_leapfrog=NUTS_ARGS["n_leapfrog"],
        )
        run = benchmark(
            sampler.run, q0, NUTS_ARGS["n_trajectories"], NUTS_ARGS["seed"]
        )
        benchmark.extra_info["grad_evals"] = run.grad_evals
    else:
        result = benchmark(lambda: kernel.run(q0, strategy=strategy, **NUTS_ARGS))
        benchmark.extra_info["grad_evals"] = result.total_grad_evals
    benchmark.extra_info["batch_size"] = batch_size
    benchmark.extra_info["strategy"] = strategy
