"""Verification-overhead smoke: verified plan compile must stay cheap.

Plan compilation now runs the :mod:`repro.analysis.stackcheck` abstract
interpreter by default (structural checks, stack-effect/depth analysis,
region-table validation).  This smoke times the full lower-and-compile
pipeline for a small corpus with ``verify=True`` vs ``verify=False`` —
fresh lowering every iteration, so no AutobatchFunction cache flattens the
comparison — and **asserts** the verified pipeline's best wall time is at
most 1.5x the unverified one's.  Also sanity-checks that every corpus
program verifies clean and that the proven depth bound is attached to the
verified plan.

Run: ``python benchmarks/bench_verify.py [--quick] [--repeats N] [--out FILE]``
→ ``BENCH_verify.json``
"""

import argparse
import json
import os
import sys
import time

_HERE = os.path.dirname(os.path.abspath(__file__))
sys.path.insert(0, os.path.join(os.path.dirname(_HERE), "src"))
sys.path.insert(0, _HERE)

from repro import autobatch  # noqa: E402
from repro.lowering.pipeline import lower_program  # noqa: E402
from repro.vm import ExecutionPlan  # noqa: E402
from common import fib  # noqa: E402

MAX_SLOWDOWN = 1.5


@autobatch
def looped_gcd(a, b):
    while b > 0:
        t = b
        b = a % b
        a = t
    return a


@autobatch
def helper_double(x):
    return x + x


@autobatch
def calls_helper(x, n):
    total = 0
    while n > 0:
        total = total + helper_double(x + n)
        n = n - 1
    return total


CORPUS = {
    "fib": fib,
    "looped_gcd": looped_gcd,
    "calls_helper": calls_helper,
}


def compile_once(fn, verify: bool) -> ExecutionPlan:
    """One cold lower-and-compile: lowering is re-run so nothing is cached."""
    stack_program = lower_program(fn.program, optimize=True)
    return ExecutionPlan.compile(stack_program, executor="eager", verify=verify)


def best_wall(fn, verify: bool, repeats: int) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        compile_once(fn, verify)
        best = min(best, time.perf_counter() - start)
    return best


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true", help="fewer repeats")
    parser.add_argument("--repeats", type=int, default=None)
    parser.add_argument("--out", default=None)
    args = parser.parse_args(argv)
    repeats = (
        args.repeats
        if args.repeats is not None
        else (5 if args.quick else 15)
    )

    rows = []
    total_plain = total_verified = 0.0
    for name, fn in CORPUS.items():
        plan = compile_once(fn, verify=True)
        assert plan.facts is not None, name  # verified clean, facts attached
        # Warm both paths once before timing (imports, prim registry).
        compile_once(fn, verify=False)
        plain = best_wall(fn, verify=False, repeats=repeats)
        verified = best_wall(fn, verify=True, repeats=repeats)
        total_plain += plain
        total_verified += verified
        rows.append(
            {
                "program": name,
                "compile_ms": plain * 1e3,
                "compile_verified_ms": verified * 1e3,
                "slowdown": verified / plain,
                "bounded": plan.facts.bounded,
                "required_stack_depth": plan.facts.required_stack_depth,
            }
        )
        print(
            f"{name:>14}: compile {plain * 1e3:7.3f} ms, "
            f"verified {verified * 1e3:7.3f} ms "
            f"({verified / plain:4.2f}x)"
        )

    slowdown = total_verified / total_plain
    print(
        f"-- corpus total: {total_plain * 1e3:.3f} ms -> "
        f"{total_verified * 1e3:.3f} ms verified ({slowdown:.2f}x, "
        f"limit {MAX_SLOWDOWN}x)"
    )
    assert slowdown <= MAX_SLOWDOWN, (
        f"verification overhead {slowdown:.2f}x exceeds {MAX_SLOWDOWN}x"
    )

    result = {
        "bench": "verify",
        "params": {"repeats": repeats, "quick": bool(args.quick)},
        "rows": rows,
        "total_slowdown": slowdown,
        "limit": MAX_SLOWDOWN,
    }
    out = args.out or os.path.join(os.curdir, "BENCH_verify.json")
    with open(out, "w") as f:
        json.dump(result, f, indent=2, sort_keys=True)
    print(f"wrote {out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
