"""Shared fixtures and workloads for the pytest-benchmark suites.

Sizes here are laptop-scale on purpose: each benchmark cell runs in well
under a second so the whole ``pytest benchmarks/ --benchmark-only`` sweep
finishes in minutes.  The figure-scale sweeps (bigger problems, more batch
sizes) live in ``repro.bench`` and are run via ``python -m``.
"""

import numpy as np

from repro import autobatch
from repro.nuts.kernel import NutsKernel
from repro.targets.gaussian import CorrelatedGaussian
from repro.targets.logistic import BayesianLogisticRegression


@autobatch
def fib(n):
    if n <= 1:
        return 1
    return fib(n - 2) + fib(n - 1)


def fib_inputs(batch_size: int, seed: int = 0) -> np.ndarray:
    rng = np.random.RandomState(seed)
    return rng.randint(6, 16, size=batch_size).astype(np.int64)


_KERNELS = {}


def logistic_kernel() -> NutsKernel:
    """A shared small logistic-regression NUTS kernel (compiled once)."""
    if "logistic" not in _KERNELS:
        target = BayesianLogisticRegression(n_data=500, n_features=16, seed=0)
        _KERNELS["logistic"] = NutsKernel(target)
    return _KERNELS["logistic"]


def gaussian_kernel() -> NutsKernel:
    """A shared correlated-Gaussian NUTS kernel (compiled once)."""
    if "gaussian" not in _KERNELS:
        target = CorrelatedGaussian(dim=16, rho=0.9)
        _KERNELS["gaussian"] = NutsKernel(target)
    return _KERNELS["gaussian"]


NUTS_ARGS = dict(step_size=0.1, n_trajectories=1, max_depth=5, n_leapfrog=4, seed=0)
