"""Ablation B benchmarks: block-selection heuristics.

The paper's second "significant free choice": which runnable block to
execute next.  All heuristics are correct (no starvation); they differ in
step count and batching quality on divergent workloads.
"""

import pytest

from common import NUTS_ARGS, fib, fib_inputs, gaussian_kernel

SCHEDULERS = ("earliest", "most_active", "round_robin")


@pytest.mark.parametrize("scheduler", SCHEDULERS)
def test_fib_scheduler(benchmark, scheduler):
    inputs = fib_inputs(32)
    benchmark(lambda: fib.run_pc(inputs, scheduler=scheduler, max_stack_depth=32))
    benchmark.extra_info["scheduler"] = scheduler


@pytest.mark.parametrize("scheduler", SCHEDULERS)
def test_nuts_scheduler(benchmark, scheduler):
    kernel = gaussian_kernel()
    q0 = kernel.target.initial_state(16, seed=0)
    benchmark(lambda: kernel.run(q0, strategy="pc", scheduler=scheduler, **NUTS_ARGS))
    benchmark.extra_info["scheduler"] = scheduler
