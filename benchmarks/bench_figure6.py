"""Figure 6 cells as pytest benchmarks: gradient utilization per machine.

Each benchmark runs the instrumented multi-trajectory NUTS chain on the
correlated Gaussian and records the batch gradient utilization in
``extra_info`` — the Figure 6 metric.  The full sweep is
``python -m repro.bench.figure6``.
"""

import pytest

from common import gaussian_kernel
from repro.vm.instrumentation import Instrumentation

ARGS = dict(step_size=0.05, n_trajectories=5, max_depth=6, n_leapfrog=4, seed=0)
BATCH_SIZES = (2, 16)


@pytest.mark.parametrize("batch_size", BATCH_SIZES)
@pytest.mark.parametrize("strategy", ("local", "pc"))
def test_gradient_utilization(benchmark, strategy, batch_size):
    kernel = gaussian_kernel()
    q0 = kernel.target.initial_state(batch_size, seed=0)

    def run():
        return kernel.run(q0, strategy=strategy, instrument=True, **ARGS)

    result = benchmark(run)
    counter = result.instrumentation.count(tag="gradient")
    benchmark.extra_info["utilization"] = round(counter.utilization(), 4)
    benchmark.extra_info["useful_grads"] = result.total_grad_evals
    benchmark.extra_info["strategy"] = strategy
    benchmark.extra_info["batch_size"] = batch_size
    # The paper's Figure 6 invariants, asserted on every benchmark run:
    assert 0.0 < counter.utilization() <= 1.0
    if batch_size == 1:
        assert counter.utilization() == 1.0
