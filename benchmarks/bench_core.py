"""Core machinery micro-benchmarks: compilation, machines, stacks, fusion.

Not tied to a paper figure; these catch performance regressions in the
substrate that every experiment sits on.

Two entry points:

* ``pytest benchmarks/bench_core.py --benchmark-only`` — the
  pytest-benchmark suite (interactive, statistical);
* ``python benchmarks/bench_core.py [--quick] [--out BENCH_core.json]`` —
  a standalone run that writes a machine-readable result file (throughput,
  plan-derived dispatch counts) so the performance trajectory is tracked
  across PRs instead of only printed.
"""

import argparse
import json
import os
import sys

import numpy as np

_HERE = os.path.dirname(os.path.abspath(__file__))
sys.path.insert(0, os.path.join(os.path.dirname(_HERE), "src"))
sys.path.insert(0, _HERE)

from common import fib, fib_inputs  # noqa: E402
from repro.vm.stack import BatchedStack  # noqa: E402

try:
    import pytest
except ImportError:  # standalone mode needs no pytest
    pytest = None


# -- pytest-benchmark suite ----------------------------------------------------


def test_compile_pipeline(benchmark):
    """Full frontend + lowering pipeline on the recursive Fibonacci."""
    from repro.lowering.pipeline import lower_program

    program = fib.program  # frontend compile (cached) outside the loop
    benchmark(lambda: lower_program(program, optimize=True))


if pytest is not None:
    _machine_mark = pytest.mark.parametrize(
        "machine", ("reference", "local", "pc", "pc_fused")
    )
else:  # pragma: no cover - script mode never collects tests
    _machine_mark = lambda f: f  # noqa: E731


@_machine_mark
def test_fib_machines(benchmark, machine):
    inputs = fib_inputs(64)
    benchmark(lambda: _run_machine(machine, inputs))
    benchmark.extra_info["machine"] = machine


def test_batched_stack_push_pop(benchmark):
    stack = BatchedStack(batch_size=256, depth=32, event_shape=(8,))
    mask = np.ones(256, dtype=bool)
    mask[::3] = False
    value = np.random.RandomState(0).randn(256, 8)

    def cycle():
        stack.push(mask, value)
        stack.pop(mask)

    benchmark(cycle)


def test_gradient_primitive_dispatch(benchmark):
    """Cost of one batched gradient kernel (the Figure 5 unit of work)."""
    from repro.targets.logistic import BayesianLogisticRegression

    target = BayesianLogisticRegression(n_data=500, n_features=16, seed=0)
    q = target.initial_state(64, seed=1)
    benchmark(lambda: target.grad_log_prob(q))


# -- standalone JSON mode ------------------------------------------------------


def _run_machine(machine: str, inputs: np.ndarray):
    if machine == "reference":
        return fib.run_reference(inputs)
    if machine == "local":
        return fib.run_local(inputs)
    if machine == "pc":
        return fib.run_pc(inputs, max_stack_depth=32)
    if machine == "pc_fused":
        return fib.run_pc(inputs, executor="fused", max_stack_depth=32)
    raise ValueError(machine)


def _machine_result(machine: str, batch_size: int, repeats: int) -> dict:
    from repro.bench.timing import best_of
    from repro.vm.instrumentation import Instrumentation

    inputs = fib_inputs(batch_size)
    timing = best_of(lambda: _run_machine(machine, inputs), k=repeats, warmup=1)
    row = {
        "workload": "fib",
        "machine": machine,
        "batch_size": batch_size,
        "best_seconds": timing.best_seconds,
        "mean_seconds": timing.mean_seconds,
        "lanes_per_second": batch_size / timing.best_seconds,
    }
    if machine in ("pc", "pc_fused"):
        executor = "fused" if machine == "pc_fused" else "eager"
        instr = Instrumentation()
        fib.run_pc(
            inputs, executor=executor, instrumentation=instr, max_stack_depth=32
        )
        plan = fib.execution_plan(executor=executor)
        row.update(
            executor=executor,
            steps=instr.steps,
            kernel_calls=instr.kernel_calls,
            dispatches=plan.dispatch_count(instr),
        )
    return row


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="smaller batch and fewer repeats for CI smoke runs")
    parser.add_argument("--out", default=os.path.join(os.curdir, "BENCH_core.json"),
                        help="result file path (default ./BENCH_core.json)")
    args = parser.parse_args(argv)

    batch_size = 16 if args.quick else 64
    repeats = 2 if args.quick else 5

    from repro.bench.timing import best_of
    from repro.lowering.pipeline import lower_program

    program = fib.program
    compile_timing = best_of(
        lambda: lower_program(program, optimize=True), k=repeats, warmup=1
    )

    rows = [
        _machine_result(machine, batch_size, repeats)
        for machine in ("reference", "local", "pc", "pc_fused")
    ]

    pc = next(r for r in rows if r["machine"] == "pc")
    fused = next(r for r in rows if r["machine"] == "pc_fused")
    result = {
        "benchmark": "bench_core",
        "config": {"batch_size": batch_size, "repeats": repeats,
                   "quick": bool(args.quick)},
        "compile_pipeline_seconds": compile_timing.best_seconds,
        "machines": rows,
        "dispatch_ratio_eager_over_fused":
            pc["dispatches"] / fused["dispatches"],
    }

    with open(args.out, "w") as f:
        json.dump(result, f, indent=2, sort_keys=True)
    print(f"wrote {args.out}")
    for row in rows:
        extra = (f", dispatches={row['dispatches']}"
                 if "dispatches" in row else "")
        print(f"  {row['machine']:>10}: {row['best_seconds']:.4f}s best, "
              f"{row['lanes_per_second']:.1f} lanes/s{extra}")
    print(f"  eager/fused dispatch ratio: "
          f"{result['dispatch_ratio_eager_over_fused']:.2f}x")


if __name__ == "__main__":
    main()
