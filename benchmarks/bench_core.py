"""Core machinery micro-benchmarks: compilation, machines, stacks, fusion.

Not tied to a paper figure; these catch performance regressions in the
substrate that every experiment sits on.
"""

import numpy as np
import pytest

from common import fib, fib_inputs
from repro.backend.fusion import run_fused
from repro.vm.stack import BatchedStack


def test_compile_pipeline(benchmark):
    """Full frontend + lowering pipeline on the recursive Fibonacci."""
    from repro.frontend.api import AutobatchFunction
    from repro.lowering.pipeline import lower_program

    program = fib.program  # frontend compile (cached) outside the loop
    benchmark(lambda: lower_program(program, optimize=True))


@pytest.mark.parametrize("machine", ("reference", "local", "pc", "pc_fused"))
def test_fib_machines(benchmark, machine):
    inputs = fib_inputs(64)
    if machine == "reference":
        benchmark(lambda: fib.run_reference(inputs))
    elif machine == "local":
        benchmark(lambda: fib.run_local(inputs))
    elif machine == "pc":
        benchmark(lambda: fib.run_pc(inputs, max_stack_depth=32))
    else:
        benchmark(
            lambda: run_fused(
                fib.stack_program(optimize=True), [inputs], max_stack_depth=32
            )
        )
    benchmark.extra_info["machine"] = machine


def test_batched_stack_push_pop(benchmark):
    stack = BatchedStack(batch_size=256, depth=32, event_shape=(8,))
    mask = np.ones(256, dtype=bool)
    mask[::3] = False
    value = np.random.RandomState(0).randn(256, 8)

    def cycle():
        stack.push(mask, value)
        stack.pop(mask)

    benchmark(cycle)


def test_gradient_primitive_dispatch(benchmark):
    """Cost of one batched gradient kernel (the Figure 5 unit of work)."""
    from repro.targets.logistic import BayesianLogisticRegression

    target = BayesianLogisticRegression(n_data=500, n_features=16, seed=0)
    q = target.initial_state(64, seed=1)
    benchmark(lambda: target.grad_log_prob(q))
