"""Ablation A benchmarks: masking vs gather-scatter primitive application.

The paper's first "significant free choice" (Section 2): masking executes
every lane and discards inactive results; gather-scatter executes only
active lanes but pays index-based data movement.
"""

import pytest

from common import NUTS_ARGS, fib, fib_inputs, gaussian_kernel


@pytest.mark.parametrize("mode", ("mask", "gather"))
@pytest.mark.parametrize("machine", ("local", "pc"))
def test_fib_mode(benchmark, machine, mode):
    inputs = fib_inputs(32)
    if machine == "local":
        benchmark(lambda: fib.run_local(inputs, mode=mode))
    else:
        benchmark(lambda: fib.run_pc(inputs, mode=mode, max_stack_depth=32))
    benchmark.extra_info.update(machine=machine, mode=mode)


@pytest.mark.parametrize("mode", ("mask", "gather"))
def test_nuts_mode(benchmark, mode):
    kernel = gaussian_kernel()
    q0 = kernel.target.initial_state(16, seed=0)
    benchmark(lambda: kernel.run(q0, strategy="pc", mode=mode, **NUTS_ARGS))
    benchmark.extra_info["mode"] = mode
