"""Ablation C benchmarks: the Section 3 lowering optimizations.

``optimize=False`` disables block-local temporaries (optimization 2),
stack-free registers (optimization 3) and Pop;Push cancellation
(optimization 5), forcing every variable onto a gathered/scattered stack.
``top_cache=False`` disables the runtime top-of-stack cache
(optimization 4).  Stack-traffic counters are recorded alongside the times.
"""

import pytest

from common import NUTS_ARGS, fib, fib_inputs, gaussian_kernel
from repro.vm.instrumentation import Instrumentation


@pytest.mark.parametrize("optimize", (True, False), ids=("optimized", "unoptimized"))
def test_fib_lowering(benchmark, optimize):
    inputs = fib_inputs(32)
    benchmark(lambda: fib.run_pc(inputs, optimize=optimize, max_stack_depth=64))
    instr = Instrumentation()
    fib.run_pc(inputs, optimize=optimize, max_stack_depth=64, instrumentation=instr)
    benchmark.extra_info.update(
        optimize=optimize,
        stacked_writes=instr.stacked_writes,
        register_writes=instr.register_writes,
        push_lanes=instr.push_lanes,
    )


@pytest.mark.parametrize("optimize", (True, False), ids=("optimized", "unoptimized"))
def test_nuts_lowering(benchmark, optimize):
    kernel = gaussian_kernel()
    q0 = kernel.target.initial_state(16, seed=0)
    strategy = "pc" if optimize else "pc_noopt"
    benchmark(lambda: kernel.run(q0, strategy=strategy, **NUTS_ARGS))
    benchmark.extra_info["optimize"] = optimize


@pytest.mark.parametrize("top_cache", (True, False), ids=("cached", "uncached"))
def test_fib_top_cache(benchmark, top_cache):
    inputs = fib_inputs(32)
    benchmark(
        lambda: fib.run_pc(inputs, top_cache=top_cache, max_stack_depth=32)
    )
    benchmark.extra_info["top_cache"] = top_cache
