"""Open-loop serving benchmark: continuous batching vs drain-then-refill.

Requests (``fib`` calls with skewed sizes) arrive by a Poisson process on
the engine's logical clock — open-loop, so a slow server cannot throttle
its own offered load.  Both policies see the *identical* arrival sequence
and run on the same machine width; the only difference is the refill
discipline:

* ``continuous`` — a retired lane is re-injected from the queue on the
  next tick (the ``repro.serve`` tentpole),
* ``drain`` — requests are admitted only into a fully drained machine
  (the static ``run_pc``-style baseline).

Reported per policy: steady-state lane utilization, makespan in ticks,
queue-wait distribution, time-to-first-result, throughput, and wall time.
Continuous batching must win on lane utilization — that inequality is
asserted, not just printed.

Run: ``python benchmarks/bench_serve.py [--quick]``
"""

import argparse
import os
import sys
import time

import numpy as np

_HERE = os.path.dirname(os.path.abspath(__file__))
sys.path.insert(0, os.path.join(os.path.dirname(_HERE), "src"))
sys.path.insert(0, _HERE)

from repro.bench.report import format_table  # noqa: E402
from common import fib  # noqa: E402


def poisson_arrivals(n_requests: int, rate: float, seed: int) -> np.ndarray:
    """Arrival ticks of an open-loop Poisson process (rate = requests/tick)."""
    rng = np.random.RandomState(seed)
    gaps = rng.exponential(scale=1.0 / rate, size=n_requests)
    return np.floor(np.cumsum(gaps)).astype(np.int64)


def skewed_sizes(n_requests: int, seed: int) -> np.ndarray:
    """Request sizes with a heavy tail, so lanes finish at very different times."""
    rng = np.random.RandomState(seed)
    small = rng.randint(3, 8, size=n_requests)
    large = rng.randint(12, 17, size=n_requests)
    return np.where(rng.rand(n_requests) < 0.25, large, small).astype(np.int64)


def run_policy(refill: str, requests, arrivals, num_lanes: int):
    """Drive one engine through the arrival schedule; returns telemetry + results."""
    engine = fib.serve(num_lanes=num_lanes, refill=refill)
    handles = []
    i = 0
    wall_start = time.perf_counter()
    while i < len(requests) or engine.pool.busy_count() or len(engine.queue):
        while i < len(requests) and arrivals[i] <= engine.now:
            handles.append(engine.submit(*requests[i]))
            i += 1
        engine.tick()
    wall = time.perf_counter() - wall_start
    return engine, [h.result() for h in handles], wall


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="small sweep for CI smoke runs")
    parser.add_argument("--lanes", type=int, default=None)
    parser.add_argument("--requests", type=int, default=None)
    parser.add_argument("--rate", type=float, default=None,
                        help="offered load in requests per machine tick")
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args()

    n_requests = args.requests if args.requests is not None else (40 if args.quick else 200)
    num_lanes = args.lanes if args.lanes is not None else (4 if args.quick else 16)
    rate = args.rate if args.rate is not None else (0.08 if args.quick else 0.05)
    if n_requests <= 0 or num_lanes <= 0 or rate <= 0:
        parser.error("--requests, --lanes, and --rate must all be positive")

    sizes = skewed_sizes(n_requests, seed=args.seed)
    arrivals = poisson_arrivals(n_requests, rate=rate, seed=args.seed + 1)
    requests = [(np.int64(n),) for n in sizes]

    print(f"workload: {n_requests} fib requests (sizes {sizes.min()}..{sizes.max()}), "
          f"Poisson rate {rate}/tick, {num_lanes} lanes\n")

    expected = fib.run_pc(sizes)
    rows, utils = [], {}
    for refill in ("continuous", "drain"):
        engine, results, wall = run_policy(refill, requests, arrivals, num_lanes)
        if not np.array_equal(np.stack(results), expected):
            raise AssertionError(f"{refill}: results diverge from static run_pc")
        t = engine.telemetry
        utils[refill] = t.lane_utilization()
        rows.append([
            refill,
            f"{t.lane_utilization():.3f}",
            f"{t.ticks:,}",
            f"{t.mean_queue_wait():.0f}",
            f"{t.max_queue_wait():,}",
            f"{t.first_result_tick}",
            f"{t.throughput():.4f}",
            f"{t.instrumentation.utilization():.3f}",
            f"{wall:.3f}",
        ])

    print(format_table(
        ["policy", "lane util", "ticks", "mean wait", "max wait",
         "ttfr", "req/tick", "prim util", "wall s"],
        rows,
    ))

    gain = utils["continuous"] / utils["drain"] if utils["drain"] else float("inf")
    print(f"\ncontinuous/drain lane-utilization ratio: {gain:.2f}x")
    assert utils["continuous"] > utils["drain"], (
        "continuous batching failed to beat drain-then-refill on lane utilization"
    )
    print("OK: continuous batching sustains higher lane utilization")


if __name__ == "__main__":
    main()
