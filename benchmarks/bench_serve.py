"""Serving benchmarks: continuous batching, shard scaling, rebalancing,
preemption, and observability overhead.

Eight subcommands share one workload generator (``fib`` calls with skewed
sizes) and one assertion discipline — inequalities are asserted, not just
printed, and every scenario's outputs must stay bit-identical to the static
``run_pc`` batch:

* ``serve`` (default) — continuous batching vs drain-then-refill, eager vs
  fused block execution, under open-loop Poisson arrivals.  Continuous must
  beat drain on lane utilization; the fused engine must need at most a
  third of the eager engine's dispatches at equal (tick-clock) throughput.
  → ``BENCH_serve.json``
* ``cluster`` — the same closed-load request set through 1, 2, and 4 engine
  shards of equal lane width (one shared execution plan).  4-shard
  aggregate throughput >= 2.5x single-engine; exactly one fused compile for
  the whole sweep.  → ``BENCH_cluster.json``
* ``steal`` — an adversarially skewed trace (every request routed to shard
  0 of 4) with work stealing off and on, plus an elastic cluster growing
  from one shard.  Stealing must sustain >= 1.8x the no-steal throughput.
  → ``BENCH_steal.json``
* ``preempt`` — a high-priority burst into straggler-saturated lanes, with
  and without priority preemption (lane checkpoint/resume).  Preemption
  must improve high-priority time-to-first-result >= 2x, stragglers must
  *resume* (not restart), and a preempt+steal cluster must migrate at
  least one preempted-lane snapshot to another shard.
  → ``BENCH_preempt.json``
* ``trace`` — observability overhead and determinism on the preempt
  workload.  Full tracing (events + metrics + block profile) must keep
  >= 0.9x the untraced throughput (best-of-N walls); a preempt+steal
  cluster run twice must export byte-identical Chrome-trace JSON whose
  event counts reconcile exactly with the fleet telemetry; the block
  profile must rank fib's straggler blocks by masked-lane waste.
  → ``BENCH_trace.json`` + ``TRACE_preempt.json``
* ``superblock`` — superblock dispatch amortization (static and
  profile-guided region selection) plus pc-bucketed re-batching of
  preempted stragglers on resume.  The profile-guided superblock engine
  must reach >= 1.5x fused throughput at strictly less than one host
  dispatch per executed block; the pc-aligned resume refill must drain
  preempted cohorts >= 1.3x faster than naive FIFO refill.
  → ``BENCH_superblock.json``
* ``deadline`` — deadline-carrying requests all at one priority, so
  priority preemption cannot help; ``DeadlinePreemptPolicy`` must lift
  deadline-mode SLO attainment >= 2x over the priority-only engine.  A
  wall-clock :class:`AsyncServer` run records its arrival schedule, which
  replayed twice must export Chrome traces byte-identical to the live
  run's.  → ``BENCH_deadline.json`` + ``TRACE_deadline.json``
* ``recover`` — durable serving: the preempt workload with a resident
  snapshot cap at 1/4 of the preempted backlog (overflow spills to a
  store and rehydrates on resume), then the same run journaled, killed
  mid-flight, and replayed with :func:`repro.serve.recover`.  The cap
  must never be exceeded, spilling must hold >= 0.8x no-spill
  throughput, and the recovered run must be bit-identical (outputs,
  finish ticks, step counts).  → ``BENCH_recover.json``

Run: ``python benchmarks/bench_serve.py
[serve|cluster|steal|preempt|trace|superblock|deadline|recover] [--quick]
[--out FILE] ...``
(the legacy ``--cluster``/``--steal``/``--preempt`` flags are accepted as
aliases for the subcommands).
"""

import argparse
import json
import os
import sys
import time

import numpy as np

_HERE = os.path.dirname(os.path.abspath(__file__))
sys.path.insert(0, os.path.join(os.path.dirname(_HERE), "src"))
sys.path.insert(0, _HERE)

from repro import autobatch  # noqa: E402
from repro.bench.report import format_table  # noqa: E402
from repro.serve import RoutingPolicy  # noqa: E402
from common import fib  # noqa: E402


@autobatch
def mix(x):
    return (x * 1103515245 + 12345) % 2147483647


@autobatch
def walk(n, x):
    # A branch-free loop *cycle*: the body is three calls, so control flow
    # crosses PushJump/Return block boundaries every iteration but never
    # forks on data.  Lanes seeded at the same pc with the same n stay in
    # pc-lockstep forever — the workload that makes resumed-straggler
    # re-batching measurable (fib's recursion gives same-pc lanes divergent
    # stacks, and data-dependent branches split even aligned cohorts).
    while n > 0:
        x = mix(x + n)
        x = mix(x * 2 + 1)
        x = mix(x + 17)
        n = n - 1
    return x


# -- shared trace generation ---------------------------------------------------


def poisson_arrivals(n_requests: int, rate: float, seed: int) -> np.ndarray:
    """Arrival ticks of an open-loop Poisson process (rate = requests/tick)."""
    rng = np.random.RandomState(seed)
    gaps = rng.exponential(scale=1.0 / rate, size=n_requests)
    return np.floor(np.cumsum(gaps)).astype(np.int64)


def skewed_sizes(n_requests: int, seed: int) -> np.ndarray:
    """Request sizes with a heavy tail, so lanes finish at very different times."""
    rng = np.random.RandomState(seed)
    small = rng.randint(3, 8, size=n_requests)
    large = rng.randint(12, 17, size=n_requests)
    return np.where(rng.rand(n_requests) < 0.25, large, small).astype(np.int64)


def fib_trace(n_requests: int, seed: int):
    """One skewed fib workload: (sizes, per-request tuples, static reference).

    Every scenario below drives the identical trace through different
    serving configurations and compares against the same ``run_pc`` batch,
    so "bit-identical outputs" is one shared check, not four copies.
    """
    sizes = skewed_sizes(n_requests, seed=seed)
    requests = [(np.int64(n),) for n in sizes]
    expected = fib.run_pc(sizes)
    return sizes, requests, expected


def check_outputs(results, expected, label: str) -> None:
    """Bit-identical check against the static run_pc reference batch."""
    if not np.array_equal(np.stack(results), expected):
        raise AssertionError(f"{label}: results diverge from static run_pc")


def write_result(result: dict, args, default_name: str) -> str:
    out = args.out or os.path.join(os.curdir, default_name)
    with open(out, "w") as f:
        json.dump(result, f, indent=2, sort_keys=True)
    print(f"wrote {out}")
    return out


def positive(value, what):
    if value <= 0:
        raise SystemExit(f"{what} must be positive")
    return value


# -- serve: continuous vs drain, eager vs fused -------------------------------


def run_engine(refill: str, executor: str, requests, arrivals, num_lanes: int):
    """Drive one engine through the arrival schedule; returns engine + results."""
    engine = fib.serve(num_lanes=num_lanes, refill=refill, executor=executor)
    handles = []
    i = 0
    wall_start = time.perf_counter()
    while i < len(requests) or engine.pool.busy_count() or len(engine.queue):
        while i < len(requests) and arrivals[i] <= engine.now:
            handles.append(engine.submit(*requests[i]))
            i += 1
        engine.tick()
    wall = time.perf_counter() - wall_start
    return engine, [h.result() for h in handles], wall


def run_serve(args) -> None:
    n_requests = positive(
        args.requests if args.requests is not None else (40 if args.quick else 200),
        "--requests",
    )
    num_lanes = positive(
        args.lanes if args.lanes is not None else (4 if args.quick else 16),
        "--lanes",
    )
    rate = positive(
        args.rate if args.rate is not None else (0.08 if args.quick else 0.05),
        "--rate",
    )

    sizes, requests, expected = fib_trace(n_requests, seed=args.seed)
    arrivals = poisson_arrivals(n_requests, rate=rate, seed=args.seed + 1)

    print(f"workload: {n_requests} fib requests (sizes {sizes.min()}..{sizes.max()}), "
          f"Poisson rate {rate}/tick, {num_lanes} lanes\n")

    variants = [
        ("continuous", "eager"),
        ("continuous", "fused"),
        ("drain", "eager"),
    ]
    rows, metrics = [], {}
    for refill, executor in variants:
        engine, results, wall = run_engine(
            refill, executor, requests, arrivals, num_lanes
        )
        check_outputs(results, expected, f"{refill}/{executor}")
        t = engine.telemetry
        metrics[(refill, executor)] = {
            "refill": refill,
            "executor": executor,
            "lane_utilization": t.lane_utilization(),
            "ticks": int(t.ticks),
            "mean_queue_wait": t.mean_queue_wait(),
            "max_queue_wait": int(t.max_queue_wait()),
            "time_to_first_result": t.first_result_tick,
            "throughput_requests_per_tick": t.throughput(),
            "prim_utilization": t.instrumentation.utilization(),
            "machine_steps": int(t.instrumentation.steps),
            "kernel_calls": int(t.instrumentation.kernel_calls),
            "dispatches": int(engine.dispatch_count()),
            "wall_seconds": wall,
        }
        m = metrics[(refill, executor)]
        rows.append([
            refill,
            executor,
            f"{m['lane_utilization']:.3f}",
            f"{m['ticks']:,}",
            f"{m['mean_queue_wait']:.0f}",
            f"{m['time_to_first_result']}",
            f"{m['throughput_requests_per_tick']:.4f}",
            f"{m['dispatches']:,}",
            f"{m['wall_seconds']:.3f}",
        ])

    print(format_table(
        ["policy", "executor", "lane util", "ticks", "mean wait",
         "ttfr", "req/tick", "dispatches", "wall s"],
        rows,
    ))

    cont_eager = metrics[("continuous", "eager")]
    cont_fused = metrics[("continuous", "fused")]
    drain = metrics[("drain", "eager")]

    gain = (cont_eager["lane_utilization"] / drain["lane_utilization"]
            if drain["lane_utilization"] else float("inf"))
    dispatch_ratio = cont_fused["dispatches"] / cont_eager["dispatches"]
    print(f"\ncontinuous/drain lane-utilization ratio: {gain:.2f}x")
    print(f"fused/eager dispatch ratio (continuous): {dispatch_ratio:.3f} "
          f"({cont_fused['dispatches']:,} vs {cont_eager['dispatches']:,})")

    result = {
        "benchmark": "bench_serve",
        "config": {"requests": n_requests, "lanes": num_lanes, "rate": rate,
                   "seed": args.seed, "quick": bool(args.quick)},
        "engines": list(metrics.values()),
        "continuous_over_drain_lane_utilization": gain,
        "fused_over_eager_dispatch_ratio": dispatch_ratio,
    }
    write_result(result, args, "BENCH_serve.json")

    assert cont_eager["lane_utilization"] > drain["lane_utilization"], (
        "continuous batching failed to beat drain-then-refill on lane utilization"
    )
    assert cont_fused["ticks"] == cont_eager["ticks"], (
        "executors diverged on the logical clock (throughput not equal)"
    )
    assert dispatch_ratio <= 1 / 3, (
        f"fused engine needed {dispatch_ratio:.2f} of eager's dispatches; "
        "expected <= 1/3"
    )
    print("OK: continuous batching sustains higher lane utilization; "
          "fused execution needs <= 1/3 of the dispatches at equal throughput")


# -- cluster: shard scaling ----------------------------------------------------


def run_cluster_scaling(args) -> None:
    """Shard-scaling sweep: 1 -> 2 -> 4 engines at equal lane width."""
    n_requests = positive(
        args.requests if args.requests is not None else (80 if args.quick else 240),
        "--requests",
    )
    num_lanes = positive(
        args.lanes if args.lanes is not None else (4 if args.quick else 8),
        "--lanes",
    )
    shard_counts = (1, 2, 4)

    sizes, requests, expected = fib_trace(n_requests, seed=args.seed)

    print(f"workload: {n_requests} fib requests (sizes {sizes.min()}..{sizes.max()}), "
          f"closed load, {num_lanes} lanes per shard, policy={args.policy}, "
          f"executor=fused\n")

    # One shared plan serves the whole sweep; per-cluster bind counts are
    # deltas against it (a fleet of N machines must add exactly N binds).
    shared_plan = fib.execution_plan(executor="fused")
    rows, metrics = [], {}
    for shards in shard_counts:
        binds_before = shared_plan.stats.bind_count
        cluster = fib.serve_cluster(
            shards, num_lanes=num_lanes, executor="fused",
            policy=args.policy, seed=args.seed,
        )
        assert cluster.plan is shared_plan
        wall_start = time.perf_counter()
        results = cluster.map(requests)
        wall = time.perf_counter() - wall_start
        check_outputs(results, expected, f"{shards}-shard cluster")
        t = cluster.telemetry
        metrics[shards] = {
            "shards": shards,
            "lanes_per_shard": num_lanes,
            "policy": args.policy,
            "ticks": int(t.ticks),
            "fleet_utilization": t.fleet_utilization(),
            "throughput_requests_per_tick": t.aggregate_throughput(),
            "mean_queue_wait": t.mean_queue_wait(),
            "completion_skew": t.completion_skew(),
            "spillovers": int(t.spillovers),
            "dispatches": int(cluster.dispatch_count()),
            "fused_compile_count": int(cluster.plan.executor.compile_count),
            "plan_bind_count": int(cluster.plan.stats.bind_count - binds_before),
            "wall_seconds": wall,
        }
        m = metrics[shards]
        rows.append([
            f"{shards}",
            f"{m['ticks']:,}",
            f"{m['fleet_utilization']:.3f}",
            f"{m['throughput_requests_per_tick']:.4f}",
            f"{m['completion_skew']:.3f}",
            f"{m['dispatches']:,}",
            f"{m['fused_compile_count']}",
            f"{m['wall_seconds']:.3f}",
        ])

    print(format_table(
        ["shards", "ticks", "fleet util", "req/tick", "skew",
         "dispatches", "compiles", "wall s"],
        rows,
    ))

    base = metrics[1]["throughput_requests_per_tick"]
    scaling = {
        shards: (metrics[shards]["throughput_requests_per_tick"] / base
                 if base else float("inf"))
        for shards in shard_counts
    }
    print("\naggregate-throughput scaling vs single engine: "
          + "  ".join(f"{s}x-shard={scaling[s]:.2f}x" for s in shard_counts))

    result = {
        "benchmark": "bench_serve_cluster",
        "config": {"requests": n_requests, "lanes_per_shard": num_lanes,
                   "policy": args.policy, "seed": args.seed,
                   "quick": bool(args.quick)},
        "shards": [metrics[s] for s in shard_counts],
        "throughput_scaling": {str(s): scaling[s] for s in shard_counts},
    }
    write_result(result, args, "BENCH_cluster.json")

    assert scaling[4] >= 2.5, (
        f"4-shard aggregate throughput is {scaling[4]:.2f}x the single-engine "
        "baseline; expected >= 2.5x at equal lane width"
    )
    for shards in shard_counts:
        assert metrics[shards]["fused_compile_count"] == 1, (
            f"{shards}-shard cluster shows "
            f"{metrics[shards]['fused_compile_count']} fused compiles; "
            "code-cache sharing should compile exactly once"
        )
        assert metrics[shards]["plan_bind_count"] == shards, (
            f"{shards}-shard cluster bound the plan "
            f"{metrics[shards]['plan_bind_count']} times; expected one "
            "binding per shard"
        )
    print("OK: outputs bit-identical at every shard count; 4 shards sustain "
          f"{scaling[4]:.2f}x single-engine throughput with one fused compile")


# -- steal: adversarial-skew rebalancing ---------------------------------------


class PinnedPolicy(RoutingPolicy):
    """Route every request to shard 0 (spill order 0,1,2,...): the
    worst-case skew a static router can produce."""

    name = "pinned"

    def preference(self, cluster):
        return list(range(len(cluster.engines)))


def run_steal_rebalance(args) -> None:
    """Adversarial skew: all traffic to shard 0; stealing must rebalance."""
    from repro.serve import AutoscalePolicy

    n_requests = positive(
        args.requests if args.requests is not None else (80 if args.quick else 240),
        "--requests",
    )
    num_lanes = positive(
        args.lanes if args.lanes is not None else (4 if args.quick else 8),
        "--lanes",
    )
    num_shards = 4

    sizes, requests, expected = fib_trace(n_requests, seed=args.seed)

    print(f"workload: {n_requests} fib requests (sizes {sizes.min()}..{sizes.max()}), "
          f"ALL routed to shard 0 of {num_shards}, {num_lanes} lanes per shard, "
          f"executor=fused\n")

    def drive(cluster):
        """Submit the whole burst, tick to idle, record the completion curve."""
        handles = [cluster.submit(*r) for r in requests]
        curve = []
        wall_start = time.perf_counter()
        while cluster.busy():
            cluster.tick()
            curve.append(int(cluster.telemetry.completed))
        wall = time.perf_counter() - wall_start
        check_outputs([h.result() for h in handles], expected, "steal scenario")
        return curve, wall

    variants = [
        ("no_steal", dict(policy=PinnedPolicy())),
        ("steal", dict(policy=PinnedPolicy(), steal=True)),
    ]
    rows, metrics, curves = [], {}, {}
    for label, options in variants:
        cluster = fib.serve_cluster(
            num_shards, num_lanes=num_lanes, executor="fused", **options
        )
        curve, wall = drive(cluster)
        t = cluster.telemetry
        metrics[label] = {
            "variant": label,
            "shards": num_shards,
            "lanes_per_shard": num_lanes,
            "ticks": int(t.ticks),
            "fleet_utilization": t.fleet_utilization(),
            "throughput_requests_per_tick": t.aggregate_throughput(),
            "completion_skew": t.completion_skew(),
            "steals": int(t.steals),
            "steal_ticks": int(t.steal_ticks),
            "fused_compile_count": int(cluster.plan.executor.compile_count),
            "wall_seconds": wall,
        }
        curves[label] = curve

    # The elastic variant starts at one shard and grows under the backlog;
    # the same skewed burst, but the fleet follows the load.
    autoscale = AutoscalePolicy(max_engines=num_shards, grow_patience=1,
                                shrink_patience=8)
    elastic = fib.serve_cluster(
        1, num_lanes=num_lanes, executor="fused",
        steal=True, autoscale=autoscale,
    )
    curve, wall = drive(elastic)
    t = elastic.telemetry
    metrics["elastic"] = {
        "variant": "elastic",
        "shards_initial": 1,
        "shards_max": num_shards,
        "lanes_per_shard": num_lanes,
        "ticks": int(t.ticks),
        "fleet_utilization": t.fleet_utilization(),
        "throughput_requests_per_tick": t.aggregate_throughput(),
        "completion_skew": t.completion_skew(),
        "steals": int(t.steals),
        "grow_events": int(t.grow_events),
        "shrink_events": int(t.shrink_events),
        "shards_retired": int(t.shards_retired),
        "fused_compile_count": int(elastic.plan.executor.compile_count),
        "wall_seconds": wall,
    }
    curves["elastic"] = curve

    for label in ("no_steal", "steal", "elastic"):
        m = metrics[label]
        rows.append([
            label,
            f"{m['ticks']:,}",
            f"{m['fleet_utilization']:.3f}",
            f"{m['throughput_requests_per_tick']:.4f}",
            f"{m['steals']:,}",
            f"{m.get('grow_events', 0)}",
            f"{m['fused_compile_count']}",
            f"{m['wall_seconds']:.3f}",
        ])
    print(format_table(
        ["variant", "ticks", "fleet util", "req/tick", "steals", "grows",
         "compiles", "wall s"],
        rows,
    ))

    base = metrics["no_steal"]["throughput_requests_per_tick"]
    steal_gain = (metrics["steal"]["throughput_requests_per_tick"] / base
                  if base else float("inf"))
    elastic_gain = (metrics["elastic"]["throughput_requests_per_tick"] / base
                    if base else float("inf"))
    print(f"\nsteal/no-steal throughput under total skew: {steal_gain:.2f}x "
          f"(elastic from one shard: {elastic_gain:.2f}x)")

    # Downsample curves so the JSON stays small at full scale.
    def thin(curve, points=200):
        if len(curve) <= points:
            return curve
        step = len(curve) / points
        return [curve[min(len(curve) - 1, int(i * step))] for i in range(points)] + [curve[-1]]

    result = {
        "benchmark": "bench_serve_steal",
        "config": {"requests": n_requests, "shards": num_shards,
                   "lanes_per_shard": num_lanes, "seed": args.seed,
                   "quick": bool(args.quick)},
        "variants": [metrics[k] for k in ("no_steal", "steal", "elastic")],
        "steal_over_no_steal_throughput": steal_gain,
        "elastic_over_no_steal_throughput": elastic_gain,
        "completion_curves": {k: thin(v) for k, v in curves.items()},
    }
    write_result(result, args, "BENCH_steal.json")

    assert steal_gain >= 1.8, (
        f"work stealing sustained only {steal_gain:.2f}x the no-steal "
        "throughput under total skew; expected >= 1.8x"
    )
    for label in ("no_steal", "steal", "elastic"):
        assert metrics[label]["fused_compile_count"] == 1, (
            f"{label}: {metrics[label]['fused_compile_count']} fused "
            "compiles; the shared plan should compile exactly once "
            "(including across autoscale grow events)"
        )
    assert metrics["elastic"]["grow_events"] >= 1, (
        "the elastic cluster never grew under a sustained backlog"
    )
    print(f"OK: stealing sustains {steal_gain:.2f}x no-steal throughput with "
          "bit-identical outputs; one fused compile across "
          f"{metrics['elastic']['grow_events']} autoscale grow events")


# -- preempt: SLO isolation via lane checkpoint/resume -------------------------


def run_preempt(args) -> None:
    """High-priority burst into straggler-saturated lanes.

    Every lane is filled with a long-running low-priority straggler, then a
    burst of short high-priority requests arrives.  Without preemption the
    burst waits out a whole straggler; with it, straggler lanes are
    checkpointed and evicted, the burst runs immediately, and the
    stragglers *resume* from their snapshots.  Asserted: high-priority
    time-to-first-result improves >= 2x, outputs stay bit-identical across
    both variants (and to the static reference), and stragglers spend
    exactly as many active machine steps as an undisturbed run (resume, not
    restart).  A final preempt+steal cluster variant shows a preempted-lane
    snapshot migrating to — and resuming on — another shard.
    """
    from repro.serve import PreemptPolicy, RoutingPolicy

    num_lanes = positive(
        args.lanes if args.lanes is not None else (4 if args.quick else 8),
        "--lanes",
    )
    n_burst = positive(
        args.requests if args.requests is not None else (8 if args.quick else 24),
        "--requests",
    )
    straggler_size = 14 if args.quick else 16
    warmup_ticks = 3  # stragglers seated and visibly running before the burst

    rng = np.random.RandomState(args.seed)
    straggler_sizes = np.full(num_lanes, straggler_size, dtype=np.int64)
    burst_sizes = rng.randint(3, 8, size=n_burst).astype(np.int64)
    all_sizes = np.concatenate([straggler_sizes, burst_sizes])
    expected = fib.run_pc(all_sizes)

    print(f"workload: {num_lanes} stragglers (fib {straggler_size}, priority 0) "
          f"saturating {num_lanes} lanes, then a burst of {n_burst} "
          f"high-priority requests (fib {burst_sizes.min()}..{burst_sizes.max()}, "
          f"priority 5) at tick {warmup_ticks}\n")

    def drive(preempt):
        engine = fib.serve(num_lanes=num_lanes, executor="fused",
                           preempt=preempt)
        stragglers = [engine.submit(np.int64(n)) for n in straggler_sizes]
        for _ in range(warmup_ticks):
            engine.tick()
        burst_tick = engine.now
        burst = [engine.submit(np.int64(n), priority=5) for n in burst_sizes]
        wall_start = time.perf_counter()
        engine.run_until_idle()
        wall = time.perf_counter() - wall_start
        handles = stragglers + burst
        check_outputs([h.result() for h in handles], expected,
                      "preempt" if preempt else "no_preempt")
        hp_ttfr = min(h.finish_tick for h in burst) - burst_tick
        hp_makespan = max(h.finish_tick for h in burst) - burst_tick
        return engine, hp_ttfr, hp_makespan, wall

    rows, metrics, telemetries = [], {}, {}
    for label, preempt in (("no_preempt", None), ("preempt", PreemptPolicy())):
        engine, hp_ttfr, hp_makespan, wall = drive(preempt)
        t = engine.telemetry
        telemetries[label] = t
        metrics[label] = {
            "variant": label,
            "lanes": num_lanes,
            "ticks": int(t.ticks),
            "hp_time_to_first_result": int(hp_ttfr),
            "hp_makespan": int(hp_makespan),
            "preemptions": int(t.preemptions),
            "resumes": int(t.resumes),
            "mean_resume_wait": t.mean_resume_wait(),
            "lane_utilization": t.lane_utilization(),
            "wall_seconds": wall,
        }
        m = metrics[label]
        rows.append([
            label,
            f"{m['ticks']:,}",
            f"{m['hp_time_to_first_result']:,}",
            f"{m['hp_makespan']:,}",
            f"{m['preemptions']}",
            f"{m['resumes']}",
            f"{m['mean_resume_wait']:.0f}",
            f"{m['wall_seconds']:.3f}",
        ])

    print(format_table(
        ["variant", "ticks", "hp ttfr", "hp makespan", "evictions",
         "resumes", "resume wait", "wall s"],
        rows,
    ))

    ttfr_gain = (
        metrics["no_preempt"]["hp_time_to_first_result"]
        / metrics["preempt"]["hp_time_to_first_result"]
        if metrics["preempt"]["hp_time_to_first_result"]
        else float("inf")
    )
    # Per-priority SLO attainment at one shared target: the preempting
    # engine's worst high-priority latency.  Preemption attains 100% of it
    # by construction; the no-preempt engine shows what the burst suffered.
    slo_target = int(max(telemetries["preempt"].latencies(priority=5)))
    for label in metrics:
        metrics[label]["hp_slo_attainment"] = telemetries[label].slo_attainment(
            slo_target, priority=5
        )
    print(f"\nhigh-priority time-to-first-result improvement: {ttfr_gain:.2f}x")
    print(f"high-priority SLO attainment at {slo_target} ticks: "
          f"no_preempt={metrics['no_preempt']['hp_slo_attainment']:.2f} "
          f"preempt={metrics['preempt']['hp_slo_attainment']:.2f}")

    # Resume-not-restart: a preempted straggler spends exactly the active
    # machine steps an undisturbed straggler does.
    solo = fib.serve(num_lanes=1, executor="fused")
    ref = solo.submit(np.int64(straggler_size))
    solo.run_until_idle()
    engine = fib.serve(num_lanes=num_lanes, executor="fused",
                       preempt=PreemptPolicy())
    stragglers = [engine.submit(np.int64(n)) for n in straggler_sizes]
    for _ in range(warmup_ticks):
        engine.tick()
    for n in burst_sizes:
        engine.submit(np.int64(n), priority=5)
    engine.run_until_idle()
    resumed_steps = [h.steps_used for h in stragglers if h.preemptions]
    assert resumed_steps, "preemption never evicted a straggler"
    assert all(s == ref.steps_used for s in resumed_steps), (
        f"a preempted straggler used {resumed_steps} active steps vs "
        f"{ref.steps_used} undisturbed: it restarted instead of resuming"
    )

    # Cross-shard migration: shard 0 saturated with stragglers, shard 1
    # busy on a short native; the burst preempts shard 0, and stealing
    # must carry at least one snapshot onto shard 1 to resume there.
    cluster = fib.serve_cluster(
        2, num_lanes=num_lanes, executor="fused",
        policy=PinnedPolicy(), steal=True, preempt=True,
    )
    cluster_stragglers = [
        cluster.submit(np.int64(straggler_size)) for _ in range(num_lanes)
    ]
    for _ in range(num_lanes):
        cluster.engines[1].submit(np.int64(4))  # short natives, soon idle
    for _ in range(warmup_ticks):
        cluster.tick()
    cluster_burst = [
        cluster.submit(np.int64(12), priority=5) for _ in range(num_lanes)
    ]
    cluster.run_until_idle()
    ct = cluster.telemetry
    for h in cluster_stragglers + cluster_burst:
        assert h.state == "done"
    fib_ref = {int(n): int(v) for n, v in zip(
        range(17), fib.run_pc(np.arange(17, dtype=np.int64)))}
    assert all(int(h.result()) == fib_ref[straggler_size]
               for h in cluster_stragglers)
    assert all(int(h.result()) == fib_ref[12] for h in cluster_burst)
    print(f"cluster variant: {ct.preemptions} evictions, "
          f"{ct.preempted_migrations} preempted-lane snapshots migrated "
          f"across shards, {ct.resumes} resumes")

    result = {
        "benchmark": "bench_serve_preempt",
        "config": {"lanes": num_lanes, "burst": n_burst,
                   "straggler_size": int(straggler_size),
                   "seed": args.seed, "quick": bool(args.quick)},
        "variants": [metrics["no_preempt"], metrics["preempt"]],
        "hp_ttfr_improvement": ttfr_gain,
        "hp_slo_target_ticks": slo_target,
        "straggler_steps_undisturbed": int(ref.steps_used),
        "cluster": {
            "preemptions": int(ct.preemptions),
            "preempted_migrations": int(ct.preempted_migrations),
            "resumes": int(ct.resumes),
            "steals": int(ct.steals),
        },
    }
    write_result(result, args, "BENCH_preempt.json")

    assert ttfr_gain >= 2.0, (
        f"preemption improved high-priority time-to-first-result only "
        f"{ttfr_gain:.2f}x; expected >= 2x on a straggler-saturated machine"
    )
    assert metrics["preempt"]["preemptions"] >= 1
    assert metrics["preempt"]["preemptions"] == metrics["preempt"]["resumes"], (
        "every evicted straggler must resume exactly as many times"
    )
    assert ct.preempted_migrations >= 1, (
        "the preempt+steal cluster never migrated a preempted-lane snapshot"
    )
    print(f"OK: preemption cuts high-priority time-to-first-result "
          f"{ttfr_gain:.2f}x with bit-identical outputs; stragglers resume "
          "(not restart), including on another shard")


# -- trace: observability overhead + deterministic export ----------------------


def run_trace(args) -> None:
    """Tracing overhead and determinism on the preempt workload.

    Three claims, all asserted:

    * **cheap** — full tracing (events + metrics + block profile) keeps at
      least 0.9x the untraced throughput on the straggler/burst preemption
      scenario, comparing best-of-N wall times (after an untimed warmup
      pass of each variant) so one scheduler hiccup can't fail the run;
    * **deterministic** — a preempt+steal cluster driven twice through the
      identical schedule exports byte-identical Chrome-trace JSON, and the
      event counts reconcile one-for-one with the fleet telemetry while
      every per-request timeline validates (submit → ... → one terminal);
    * **actionable** — the merged block profile ranks fib's blocks by
      masked-lane waste, worst straggler first, as input for superblock
      fusion.
    """
    from repro.observe import (
        Trace, validate_chrome_trace, validate_timeline,
    )
    from repro.serve import PreemptPolicy

    num_lanes = positive(
        args.lanes if args.lanes is not None else (4 if args.quick else 8),
        "--lanes",
    )
    n_burst = positive(
        args.requests if args.requests is not None else (8 if args.quick else 24),
        "--requests",
    )
    straggler_size = 14 if args.quick else 16
    warmup_ticks = 3
    repeats = 5 if args.quick else 7

    rng = np.random.RandomState(args.seed)
    straggler_sizes = np.full(num_lanes, straggler_size, dtype=np.int64)
    burst_sizes = rng.randint(3, 8, size=n_burst).astype(np.int64)
    all_sizes = np.concatenate([straggler_sizes, burst_sizes])
    expected = fib.run_pc(all_sizes)

    print(f"workload: {num_lanes} stragglers (fib {straggler_size}) + "
          f"{n_burst} high-priority bursts, preemption on, "
          f"best of {repeats} walls per variant\n")

    def drive(trace):
        engine = fib.serve(num_lanes=num_lanes, executor="fused",
                           preempt=PreemptPolicy(), trace=trace)
        wall_start = time.perf_counter()
        stragglers = [engine.submit(np.int64(n)) for n in straggler_sizes]
        for _ in range(warmup_ticks):
            engine.tick()
        burst = [engine.submit(np.int64(n), priority=5)
                 for n in burst_sizes]
        engine.run_until_idle()
        wall = time.perf_counter() - wall_start
        handles = stragglers + burst
        check_outputs([h.result() for h in handles],
                      expected, "traced" if trace else "untraced")
        return engine, handles, wall

    # One untimed pass of each variant first: the initial drive pays
    # one-off costs (plan compile-cache fill, allocator growth) that
    # would otherwise land on whichever variant happens to go first.
    drive(None)
    drive(True)

    walls = {"untraced": [], "traced": []}
    traced_engine = traced_handles = None
    for _ in range(repeats):
        # Interleave variants so drift (thermal, allocator) hits both.
        _, _, wall = drive(None)
        walls["untraced"].append(wall)
        traced_engine, traced_handles, wall = drive(True)
        walls["traced"].append(wall)
    best = {k: min(v) for k, v in walls.items()}
    n_requests = num_lanes + n_burst
    throughput = {k: n_requests / w for k, w in best.items()}
    ratio = throughput["traced"] / throughput["untraced"]

    # The traced run is *observable*: counts reconcile with telemetry and
    # every per-request timeline validates.
    t = traced_engine.telemetry
    tracer = traced_engine.trace.tracer
    assert tracer.count("submit") == t.submitted
    assert tracer.count("complete") == t.completed
    assert tracer.count("preempt") == t.preemptions
    assert tracer.count("resume") == t.resumes
    assert t.preemptions >= 1, "the workload never provoked an eviction"
    for h in traced_handles:
        assert validate_timeline(h.trace()) == "complete"

    # Straggler-block ranking: fib's blocks by masked-lane waste.
    profile = traced_engine.trace.block_profile()
    stragglers_ranked = profile.stragglers()
    assert len(stragglers_ranked) > 0 and profile.total_slots > 0
    wastes = [r.waste for r in stragglers_ranked]
    assert wastes == sorted(wastes, reverse=True)
    print("block profile (top stragglers by masked-lane waste):")
    print("  " + profile.summary(limit=5).replace("\n", "\n  "))

    # Determinism under rebalancing: a preempt+steal cluster, driven
    # twice through the identical schedule, exports identical bytes.
    def cluster_run(path):
        trace = Trace()
        cluster = fib.serve_cluster(
            2, num_lanes=num_lanes, executor="fused",
            policy=PinnedPolicy(), steal=True, preempt=True, trace=trace,
        )
        handles = [cluster.submit(np.int64(straggler_size))
                   for _ in range(num_lanes)]
        for _ in range(num_lanes):
            handles.append(cluster.engines[1].submit(np.int64(4)))
        for _ in range(warmup_ticks):
            cluster.tick()
        handles += [cluster.submit(np.int64(12), priority=5)
                    for _ in range(num_lanes)]
        cluster.run_until_idle()
        trace.export_chrome_trace(path)
        return cluster, handles, trace

    out_dir = os.path.dirname(os.path.abspath(
        args.out or os.path.join(os.curdir, "BENCH_trace.json")))
    trace_path = os.path.join(out_dir, "TRACE_preempt.json")
    second_path = trace_path + ".second"
    cluster, chandles, ctrace = cluster_run(trace_path)
    cluster_run(second_path)
    with open(trace_path, "rb") as f:
        first_bytes = f.read()
    with open(second_path, "rb") as f:
        identical = f.read() == first_bytes
    os.remove(second_path)
    assert identical, (
        "two identical preempt+steal cluster runs exported different "
        "Chrome traces; tracing must be deterministic on the logical clock"
    )
    n_chrome_events = validate_chrome_trace(trace_path)

    ct = cluster.telemetry
    ctracer = ctrace.tracer
    for kind, counter in [
        ("submit", ct.submitted), ("inject", ct.injected),
        ("complete", ct.completed), ("fail", ct.failed),
        ("preempt", ct.preemptions), ("resume", ct.resumes),
        ("steal", ct.steals), ("migrate", ct.preempted_migrations),
        ("drain", ct.drain_migrations),
    ]:
        assert ctracer.count(kind) == counter, (
            f"cluster trace records {ctracer.count(kind)} {kind} events "
            f"vs {counter} in telemetry"
        )
    for h in chandles:
        validate_timeline(h.trace())
    print(f"\ncluster trace: {len(ctracer)} events "
          f"({n_chrome_events} Chrome events), byte-identical across runs, "
          f"counts reconcile with telemetry "
          f"(preemptions={ct.preemptions} steals={ct.steals} "
          f"migrations={ct.preempted_migrations})")

    print(format_table(
        ["variant", "best wall s", "req/s", "ratio"],
        [
            ["untraced", f"{best['untraced']:.3f}",
             f"{throughput['untraced']:.1f}", "1.000"],
            ["traced", f"{best['traced']:.3f}",
             f"{throughput['traced']:.1f}", f"{ratio:.3f}"],
        ],
    ))

    result = {
        "benchmark": "bench_serve_trace",
        "config": {"lanes": num_lanes, "burst": n_burst,
                   "straggler_size": int(straggler_size),
                   "repeats": repeats, "seed": args.seed,
                   "quick": bool(args.quick)},
        "walls": walls,
        "best_wall_seconds": best,
        "traced_over_untraced_throughput": ratio,
        "event_counts": ctracer.counts(),
        "chrome_events": int(n_chrome_events),
        "trace_file": trace_path,
        "straggler_blocks": [r.as_dict() for r in stragglers_ranked[:5]],
        "cluster": {
            "preemptions": int(ct.preemptions),
            "steals": int(ct.steals),
            "preempted_migrations": int(ct.preempted_migrations),
        },
    }
    write_result(result, args, "BENCH_trace.json")

    assert ratio >= 0.9, (
        f"full tracing kept only {ratio:.3f}x the untraced throughput; "
        "observability must cost < 10%"
    )
    print(f"OK: tracing keeps {ratio:.3f}x untraced throughput; exports are "
          "byte-identical and reconcile with telemetry; straggler blocks "
          "ranked by masked-lane waste")


# -- superblock: profile-guided fusion + resumed-straggler re-batching --------


def run_superblock(args) -> None:
    """Superblock dispatch amortization and pc-bucketed resume refill.

    Part A — *fewer dispatches, same answers*: the skewed fib trace under
    closed load, fused vs superblock vs a profile-seeded superblock (regions
    re-selected from a warm-up run's block profile).  The profiled engine
    must reach >= 1.5x the fused engine's throughput (ticks are the logical
    clock: one dispatch each, so the tick ratio *is* the throughput ratio)
    while paying strictly less than one host dispatch per executed block.

    Part B — *aligned resume refill*: six preempted cohorts of ``walk``
    stragglers, each checkpointed at a distinct pc, are requeued interleaved
    into a fresh engine.  A naive FIFO refill seats a mixed wave (one member
    of each cohort) and the machine grinds through 6 separated fronts;
    ``resume_batching=True`` seats whole pc-aligned cohorts back-to-back and
    must finish >= 1.3x faster.  Both refills must reproduce the static
    ``run_pc`` answers bit-identically.
    """
    from repro.backend.fusion import SuperblockExecutor
    from repro.serve import PreemptPolicy

    n_requests = positive(
        args.requests if args.requests is not None else (40 if args.quick else 200),
        "--requests",
    )
    num_lanes = positive(
        args.lanes if args.lanes is not None else (4 if args.quick else 16),
        "--lanes",
    )

    # ---- part A: dispatch amortization on the shared fib trace ----
    sizes, requests, expected = fib_trace(n_requests, seed=args.seed)
    arrivals = np.zeros(n_requests, dtype=np.int64)  # closed load
    print(f"part A: {n_requests} fib requests (sizes {sizes.min()}.."
          f"{sizes.max()}), closed load, {num_lanes} lanes")

    def drive(executor, label, trace=None):
        engine = fib.serve(num_lanes=num_lanes, executor=executor, trace=trace)
        handles = []
        i = 0
        wall_start = time.perf_counter()
        while i < len(requests) or engine.busy():
            while i < len(requests) and arrivals[i] <= engine.now:
                handles.append(engine.submit(*requests[i]))
                i += 1
            engine.tick()
        wall = time.perf_counter() - wall_start
        check_outputs([h.result() for h in handles], expected, label)
        return engine, wall

    warm, _ = drive("superblock", "profile warm-up", trace="profile")
    profile = warm.trace.block_profile()
    profiled_ex = SuperblockExecutor(profile=profile)
    regions = profiled_ex.regions_for(fib.stack_program())

    rows, part_a = [], {}
    for key, executor in [("fused", "fused"),
                          ("superblock", "superblock"),
                          ("superblock+profile", profiled_ex)]:
        engine, wall = drive(executor, key)
        instr = engine.vm.instr
        part_a[key] = {
            "executor": key,
            "ticks": int(engine.telemetry.ticks),
            "host_dispatches": int(instr.host_dispatches),
            "block_steps": int(instr.steps),
            "dispatches_per_block_step":
                instr.host_dispatches / max(instr.steps, 1),
            "wall_seconds": wall,
        }
        m = part_a[key]
        rows.append([key, f"{m['ticks']:,}", f"{m['host_dispatches']:,}",
                     f"{m['block_steps']:,}",
                     f"{m['dispatches_per_block_step']:.3f}",
                     f"{m['wall_seconds']:.3f}"])
    print(format_table(
        ["executor", "ticks", "dispatches", "block steps", "disp/step",
         "wall s"], rows))

    speedup_static = part_a["fused"]["ticks"] / part_a["superblock"]["ticks"]
    speedup_profiled = (part_a["fused"]["ticks"]
                        / part_a["superblock+profile"]["ticks"])
    amortization = part_a["superblock+profile"]["dispatches_per_block_step"]
    print(f"\nsuperblock/fused throughput: static {speedup_static:.2f}x, "
          f"profile-guided {speedup_profiled:.2f}x "
          f"(mean region length {regions.mean_length():.2f}); "
          f"profiled engine pays {amortization:.3f} dispatches per block\n")

    # ---- part B: pc-bucketed resume refill of preempted stragglers ----
    lanes_b = 8  # pc phase structure below is probed for this lane count
    # walk's loop cycle revisits mix's entry block three times per
    # iteration, so the eviction-tick phase (period 8) yields exactly six
    # distinct checkpoint pcs; these offsets before completion hit each
    # one once (asserted below — misalignment would void the experiment).
    evict_offsets = (17, 18, 19, 21, 23, 24)
    base_n = 20 if args.quick else 40

    def full_ticks(n):
        engine = walk.serve(num_lanes=lanes_b, executor="fused",
                            max_stack_depth=16)
        for i in range(lanes_b):
            engine.submit(np.int64(n), np.int64(1000 + i))
        engine.run_until_idle()
        return engine.telemetry.ticks

    def donor_round(r, n, evict_tick):
        """A cohort of near-done stragglers evicted ``offset`` ticks early."""
        engine = walk.serve(num_lanes=lanes_b, executor="fused",
                            max_stack_depth=16,
                            preempt=PreemptPolicy(min_age=0))
        for i in range(lanes_b):
            engine.submit(np.int64(n), np.int64(1000 + 100 * r + i))
        for _ in range(evict_tick):
            engine.tick()
        for _ in range(lanes_b):  # burst that evicts every straggler lane
            engine.submit(np.int64(1), np.int64(5), priority=5)
        engine.tick()
        evicted = []
        while len(engine.queue):
            handle = engine.queue.pop()
            if handle.snapshot is not None:
                evicted.append(handle)
        return evicted

    def build_rounds():
        groups = []
        for r, offset in enumerate(evict_offsets):
            n = base_n + 2 * r
            groups.append(donor_round(r, n, full_ticks(n) - offset))
        return groups

    def refill(groups, rebatch):
        order = []  # interleaved: a naive FIFO wave seats a mixed batch
        for i in range(lanes_b):
            for g in groups:
                order.append(g[i])
        engine = walk.serve(num_lanes=lanes_b, executor="fused",
                            max_stack_depth=16, resume_batching=rebatch,
                            resume_defer_limit=lanes_b)
        engine.requeue(order)
        engine.run_until_idle()
        ns = np.array([h.request.inputs[0] for h in order])
        xs = np.array([h.request.inputs[1] for h in order])
        check_outputs([h.result() for h in order], walk.run_pc(ns, xs),
                      "rebatched refill" if rebatch else "naive refill")
        return engine

    naive_groups, rebatch_groups = build_rounds(), build_rounds()
    cohort_pcs = [sorted({int(h.snapshot.pc) for h in g})
                  for g in naive_groups]
    print(f"part B: {len(evict_offsets)} preempted walk cohorts x "
          f"{lanes_b} lanes, checkpoint pcs "
          f"{[p[0] if len(p) == 1 else p for p in cohort_pcs]}")
    assert all(len(p) == 1 for p in cohort_pcs) and (
        len({p[0] for p in cohort_pcs}) == len(evict_offsets)
    ), "eviction offsets failed to land each cohort on its own distinct pc"

    naive_engine = refill(naive_groups, rebatch=False)
    rebatch_engine = refill(rebatch_groups, rebatch=True)
    ticks_naive = int(naive_engine.telemetry.ticks)
    ticks_rebatch = int(rebatch_engine.telemetry.ticks)
    resume_speedup = ticks_naive / ticks_rebatch
    rebatches = int(rebatch_engine.telemetry.resume_rebatches)
    print(f"naive refill {ticks_naive} ticks, pc-bucketed refill "
          f"{ticks_rebatch} ticks: {resume_speedup:.2f}x "
          f"({rebatches} queue-jumps)\n")

    result = {
        "benchmark": "bench_superblock",
        "config": {"requests": n_requests, "lanes": num_lanes,
                   "seed": args.seed, "quick": bool(args.quick),
                   "resume_lanes": lanes_b, "resume_base_n": base_n,
                   "evict_offsets": list(evict_offsets)},
        "engines": list(part_a.values()),
        "mean_region_length_profiled": regions.mean_length(),
        "superblock_over_fused_throughput": speedup_static,
        "profiled_superblock_over_fused_throughput": speedup_profiled,
        "profiled_dispatches_per_block_step": amortization,
        "resume_cohort_pcs": [p[0] for p in cohort_pcs],
        "resume_naive_ticks": ticks_naive,
        "resume_rebatched_ticks": ticks_rebatch,
        "resume_refill_speedup": resume_speedup,
        "resume_rebatches": rebatches,
    }
    write_result(result, args, "BENCH_superblock.json")

    assert speedup_profiled >= 1.5, (
        f"profile-guided superblock reached only {speedup_profiled:.2f}x "
        "fused throughput; expected >= 1.5x"
    )
    assert amortization < 1.0, (
        f"superblock paid {amortization:.3f} host dispatches per executed "
        "block; amortization requires strictly < 1"
    )
    assert resume_speedup >= 1.3, (
        f"pc-bucketed resume refill reached only {resume_speedup:.2f}x the "
        "naive refill; expected >= 1.3x"
    )
    assert rebatches >= 1, "resume_batching never exercised a queue-jump"
    print(f"OK: profile-guided superblocks sustain {speedup_profiled:.2f}x "
          f"fused throughput at {amortization:.3f} dispatches per block; "
          f"pc-bucketed resume refill drains preempted cohorts "
          f"{resume_speedup:.2f}x faster, all outputs bit-identical")


# -- deadline: deadline-aware eviction + wall-clock async front door ----------


def run_deadline(args) -> None:
    """Deadline SLOs on a straggler-saturated machine, all at ONE priority.

    Every request carries ``deadline_ticks`` and the same priority, so
    priority preemption (which needs a strictly higher-priority waiter)
    can never evict: the tight-deadline burst waits out the stragglers and
    blows its SLO.  ``DeadlinePreemptPolicy`` ranks by slack instead — the
    loose-deadline stragglers are checkpointed, the burst seats
    immediately, and deadline-mode SLO attainment must come out >= 2x the
    priority-only run, with bit-identical outputs.  A second section
    drives the same shape of workload through the wall-clock async front
    door (:class:`AsyncServer`), records the arrival schedule, and replays
    it twice synchronously: both replays and the live run must export
    byte-identical Chrome traces — wall-clock jitter only decides which
    logical tick an arrival lands on, and from there everything is
    deterministic.
    """
    import asyncio

    from repro.observe import Trace, validate_timeline
    from repro.serve import (
        AsyncServer, DeadlinePreemptPolicy, PreemptPolicy, replay_arrivals,
    )

    num_lanes = positive(
        args.lanes if args.lanes is not None else (4 if args.quick else 8),
        "--lanes",
    )
    n_burst = positive(
        args.requests if args.requests is not None else (8 if args.quick else 24),
        "--requests",
    )
    straggler_size = 14 if args.quick else 16
    burst_deadline = 400 if args.quick else 800
    straggler_deadline = 200000  # loose: attainable even after eviction
    warmup_ticks = 3

    rng = np.random.RandomState(args.seed)
    straggler_sizes = np.full(num_lanes, straggler_size, dtype=np.int64)
    burst_sizes = rng.randint(3, 8, size=n_burst).astype(np.int64)
    all_sizes = np.concatenate([straggler_sizes, burst_sizes])
    expected = fib.run_pc(all_sizes)

    print(f"workload: {num_lanes} stragglers (fib {straggler_size}, deadline "
          f"{straggler_deadline}) saturating {num_lanes} lanes, then a burst "
          f"of {n_burst} requests (fib {burst_sizes.min()}.."
          f"{burst_sizes.max()}, deadline {burst_deadline}) at tick "
          f"{warmup_ticks} — every request priority 0\n")

    def drive(preempt, label):
        engine = fib.serve(num_lanes=num_lanes, executor="fused",
                           preempt=preempt)
        stragglers = [
            engine.submit(np.int64(n), deadline_ticks=straggler_deadline)
            for n in straggler_sizes
        ]
        for _ in range(warmup_ticks):
            engine.tick()
        burst_tick = engine.now
        burst = [engine.submit(np.int64(n), deadline_ticks=burst_deadline)
                 for n in burst_sizes]
        wall_start = time.perf_counter()
        engine.run_until_idle()
        wall = time.perf_counter() - wall_start
        check_outputs([h.result() for h in stragglers + burst],
                      expected, label)
        latencies = [h.finish_tick - burst_tick for h in burst]
        return engine, min(latencies), max(latencies), wall

    rows, metrics = [], {}
    for label, preempt in (("priority_only", PreemptPolicy()),
                           ("deadline", DeadlinePreemptPolicy())):
        engine, ttfr, makespan, wall = drive(preempt, label)
        t = engine.telemetry
        metrics[label] = {
            "variant": label,
            "lanes": num_lanes,
            "ticks": int(t.ticks),
            "burst_ttfr": int(ttfr),
            "burst_makespan": int(makespan),
            "preemptions": int(t.preemptions),
            "resumes": int(t.resumes),
            "deadline_misses": int(t.deadline_misses),
            "deadline_attainment": t.slo_attainment("deadline"),
            "wall_seconds": wall,
        }
        m = metrics[label]
        rows.append([
            label,
            f"{m['ticks']:,}",
            f"{m['burst_ttfr']:,}",
            f"{m['burst_makespan']:,}",
            f"{m['preemptions']}",
            f"{m['deadline_misses']}",
            f"{m['deadline_attainment']:.3f}",
            f"{m['wall_seconds']:.3f}",
        ])

    print(format_table(
        ["variant", "ticks", "burst ttfr", "burst makespan", "evictions",
         "misses", "attainment", "wall s"],
        rows,
    ))

    pa = metrics["priority_only"]["deadline_attainment"]
    da = metrics["deadline"]["deadline_attainment"]
    attain_gain = da / pa if pa else float("inf")
    print(f"\ndeadline SLO attainment improvement: {attain_gain:.2f}x "
          f"({pa:.3f} -> {da:.3f})")

    # Wall-clock async front door: a live AsyncServer run records the
    # arrival schedule its wall-clock jitter produced; replaying that
    # schedule synchronously — twice — must export the identical bytes.
    tick_interval = 0.0005
    async_straggler = max(straggler_size - 2, 10)
    async_burst = burst_sizes[: min(n_burst, 6)]
    async_expected = fib.run_pc(np.concatenate([
        np.full(num_lanes, async_straggler, dtype=np.int64), async_burst]))

    def traced_engine():
        trace = Trace()
        engine = fib.serve(num_lanes=num_lanes, executor="fused",
                           preempt=DeadlinePreemptPolicy(), trace=trace)
        return engine, trace

    async def live_run():
        engine, trace = traced_engine()
        async with AsyncServer(engine, tick_interval=tick_interval) as srv:
            handles = [
                await srv.submit(np.int64(async_straggler),
                                 deadline_ticks=straggler_deadline)
                for _ in range(num_lanes)
            ]
            while engine.now < warmup_ticks:
                await asyncio.sleep(tick_interval)
            handles += [
                await srv.submit(np.int64(n), deadline_ticks=burst_deadline)
                for n in async_burst
            ]
            results = [await h for h in handles]
            arrivals = list(srv.arrivals)
        return engine, trace, arrivals, results

    wall_start = time.perf_counter()
    engine, live_trace, arrivals, live_results = asyncio.run(live_run())
    live_wall = time.perf_counter() - wall_start
    check_outputs(live_results, async_expected, "async_live")

    out_dir = os.path.dirname(os.path.abspath(
        args.out or os.path.join(os.curdir, "BENCH_deadline.json")))
    trace_path = os.path.join(out_dir, "TRACE_deadline.json")
    live_trace.export_chrome_trace(trace_path)
    with open(trace_path, "rb") as f:
        live_bytes = f.read()

    replay_bytes = []
    for _ in range(2):
        r_engine, r_trace = traced_engine()
        r_handles = replay_arrivals(r_engine, arrivals)
        check_outputs([h.result() for h in r_handles],
                      async_expected, "replay")
        for h in r_handles:
            validate_timeline(h.trace())
        replay_path = trace_path + ".replay"
        r_trace.export_chrome_trace(replay_path)
        with open(replay_path, "rb") as f:
            replay_bytes.append(f.read())
        os.remove(replay_path)

    assert replay_bytes[0] == replay_bytes[1], (
        "two replays of the identical arrival schedule exported different "
        "Chrome traces; replay must be deterministic on the logical clock"
    )
    assert replay_bytes[0] == live_bytes, (
        "replaying the recorded arrival schedule diverged from the live "
        "wall-clock run; the logical clock must stay the sole source of "
        "scheduling truth"
    )
    assert live_trace.tracer.count("arrive") == len(arrivals)
    print(f"\nasync front door: {len(arrivals)} wall-clock arrivals landed "
          f"on ticks {[a.tick for a in arrivals]} in {live_wall:.2f}s; the "
          "recorded schedule replays byte-identically (live == replay x2)")

    result = {
        "benchmark": "bench_serve_deadline",
        "config": {"lanes": num_lanes, "burst": n_burst,
                   "straggler_size": int(straggler_size),
                   "burst_deadline_ticks": int(burst_deadline),
                   "straggler_deadline_ticks": int(straggler_deadline),
                   "tick_interval_s": tick_interval,
                   "seed": args.seed, "quick": bool(args.quick)},
        "variants": [metrics["priority_only"], metrics["deadline"]],
        "deadline_attainment_improvement": attain_gain,
        "async": {
            "arrival_ticks": [int(a.tick) for a in arrivals],
            "live_wall_seconds": live_wall,
            "replay_byte_identical": True,
            "trace_file": trace_path,
        },
    }
    write_result(result, args, "BENCH_deadline.json")

    assert metrics["priority_only"]["preemptions"] == 0, (
        "priority-only preemption evicted at equal priority; the baseline "
        "must be unable to help this workload"
    )
    assert metrics["deadline"]["preemptions"] >= 1
    assert metrics["deadline"]["preemptions"] == metrics["deadline"]["resumes"], (
        "every evicted straggler must resume exactly as many times"
    )
    assert da > 0 and da >= 2 * pa, (
        f"deadline-aware eviction attained {da:.3f} vs {pa:.3f} "
        "priority-only; expected >= 2x on a straggler-saturated machine"
    )
    print(f"OK: deadline-aware eviction lifts deadline SLO attainment "
          f"{attain_gain:.2f}x with bit-identical outputs; wall-clock "
          "arrivals replay byte-identically on the logical clock")


# -- recover: snapshot spilling + journaled crash recovery ---------------------


def run_recover(args) -> None:
    """Durable serving: spilling under a resident cap, journaled recovery.

    The preempt workload (straggler-saturated lanes, then a high-priority
    burst that evicts every straggler at once) builds a preempted-snapshot
    backlog of ``num_lanes`` — 4x the resident cap of ``num_lanes // 4``.
    Asserted: (a) a run journaled, killed mid-flight, and replayed with
    :func:`repro.serve.recover` completes bit-identically to the
    uninterrupted run (same outputs, finish ticks, and active step counts);
    (b) the resident snapshot count never exceeds the cap on any tick while
    the preempted backlog holds >= 4x the cap; (c) the spilling engine
    sustains >= 0.8x the no-spill engine's wall-clock throughput
    (best-of-N walls).
    """
    import tempfile

    from repro.serve import Journal, MemorySpillStore, PreemptPolicy, recover

    num_lanes = positive(
        args.lanes if args.lanes is not None else (4 if args.quick else 8),
        "--lanes",
    )
    n_burst = positive(
        args.requests if args.requests is not None else (8 if args.quick else 24),
        "--requests",
    )
    straggler_size = 12 if args.quick else 14
    warmup_ticks = 3
    cap = max(1, num_lanes // 4)
    best_of = 2 if args.quick else 3

    rng = np.random.RandomState(args.seed)
    straggler_sizes = np.full(num_lanes, straggler_size, dtype=np.int64)
    burst_sizes = rng.randint(3, 8, size=n_burst).astype(np.int64)
    all_sizes = np.concatenate([straggler_sizes, burst_sizes])
    expected = fib.run_pc(all_sizes)

    print(f"workload: {num_lanes} stragglers (fib {straggler_size}) then "
          f"{n_burst} high-priority requests; resident snapshot cap {cap} "
          f"vs a preempted backlog of {num_lanes} ({num_lanes // cap}x)\n")

    def drive(spill, journal=None, crash_after=None):
        """Run the workload; returns (engine, handles, wall, backlog stats)."""
        options = {}
        if spill:
            options["max_resident_snapshots"] = cap
            options["spill_store"] = MemorySpillStore()
        engine = fib.serve(num_lanes=num_lanes, executor="fused",
                           preempt=PreemptPolicy(), journal=journal,
                           checkpoint_interval=8 if journal else None,
                           **options)
        handles = [engine.submit(np.int64(n)) for n in straggler_sizes]
        for _ in range(warmup_ticks):
            engine.tick()
        crash_tick = engine.now + (crash_after or 0)
        handles += [engine.submit(np.int64(n), priority=5) for n in burst_sizes]
        max_backlog = 0
        backlog_at_4x = 0
        cap_violations = 0
        wall_start = time.perf_counter()
        while engine.pool.busy_count() or len(engine.queue):
            engine.tick()
            backlog = engine.queue.snapshot_count()
            resident = engine.queue.resident_snapshots()
            max_backlog = max(max_backlog, backlog)
            if backlog >= 4 * cap:
                backlog_at_4x += 1
                if resident > cap:
                    cap_violations += 1
            if crash_after is not None and engine.now >= crash_tick:
                return engine, handles, None, max_backlog, backlog_at_4x, 0
        wall = time.perf_counter() - wall_start
        return engine, handles, wall, max_backlog, backlog_at_4x, cap_violations

    # -- (b) + (c): spill-on vs spill-off, best-of-N walls ---------------------
    metrics, rows = {}, []
    for label, spill in (("no_spill", False), ("spill", True)):
        walls = []
        for _ in range(best_of):
            engine, handles, wall, max_backlog, at_4x, violations = drive(spill)
            check_outputs([h.result() for h in handles], expected, label)
            walls.append(wall)
        t = engine.telemetry
        wall = min(walls)
        metrics[label] = {
            "variant": label,
            "lanes": num_lanes,
            "resident_cap": cap if spill else None,
            "ticks": int(t.ticks),
            "spills": int(t.spills),
            "rehydrations": int(t.rehydrations),
            "resident_peak": int(t.resident_peak),
            "max_preempted_backlog": int(max_backlog),
            "ticks_with_backlog_4x_cap": int(at_4x),
            "cap_violations": int(violations),
            "wall_seconds": wall,
            "throughput_rps": (num_lanes + n_burst) / wall,
        }
        m = metrics[label]
        rows.append([
            label, f"{m['ticks']:,}", f"{m['spills']}", f"{m['rehydrations']}",
            f"{m['resident_peak']}", f"{m['max_preempted_backlog']}",
            f"{m['wall_seconds']:.3f}",
        ])

    print(format_table(
        ["variant", "ticks", "spills", "rehydr", "res peak", "backlog",
         "wall s"],
        rows,
    ))

    spill_m, base_m = metrics["spill"], metrics["no_spill"]
    throughput_ratio = spill_m["throughput_rps"] / base_m["throughput_rps"]
    print(f"\nspilling throughput vs no-spill: {throughput_ratio:.2f}x")

    assert spill_m["ticks_with_backlog_4x_cap"] > 0, (
        "workload never built a preempted backlog >= 4x the resident cap; "
        "the cap assertion would be vacuous"
    )
    assert spill_m["cap_violations"] == 0, (
        f"resident snapshots exceeded the cap on "
        f"{spill_m['cap_violations']} ticks while the backlog held >= 4x cap"
    )
    assert spill_m["resident_peak"] <= cap
    assert spill_m["spills"] >= num_lanes - cap, (
        "evicting every straggler at once must spill the overflow"
    )
    assert spill_m["rehydrations"] == spill_m["spills"], (
        "every spilled snapshot must rehydrate on resume"
    )
    assert spill_m["ticks"] == base_m["ticks"], (
        "spilling must not change the logical schedule"
    )

    # -- (a) journaled crash recovery is bit-identical -------------------------
    fingerprint = lambda h: (  # noqa: E731
        int(np.asarray(h.result())), int(h.finish_tick), int(h.steps_used))
    baseline_engine, baseline, _, _, _, _ = drive(spill=True, journal=Journal())
    check_outputs([h.result() for h in baseline], expected, "journaled")
    reference = {h.request_id: fingerprint(h) for h in baseline}

    with tempfile.TemporaryDirectory() as tmp:
        journal_path = os.path.join(tmp, "journal.jsonl")
        crash_after = max(2, metrics["spill"]["ticks"] // 4)
        crashed_engine, crashed, _, _, _, _ = drive(
            spill=True, journal=Journal(journal_path), crash_after=crash_after)
        unfinished = [h for h in crashed if not h.done()]
        assert unfinished, "crash must leave work in flight"
        del crashed_engine  # the process is gone; only the journal survives

        run = recover(
            Journal.load(journal_path), fib, num_lanes, executor="fused",
            preempt=PreemptPolicy(), max_resident_snapshots=cap,
            spill_store=MemorySpillStore(),
        )
        recovered = {rid: fingerprint(h) for rid, h in run.handles.items()}

    assert recovered == reference, (
        "recovered run diverged from the uninterrupted run "
        "(outputs, finish ticks, or step counts differ)"
    )
    print(f"recovery: crashed at tick {crash_after} after the burst with "
          f"{len(unfinished)} requests in flight; replay finished all "
          f"{len(recovered)} bit-identically (outputs, finish ticks, steps)")

    result = {
        "benchmark": "bench_serve_recover",
        "config": {"lanes": num_lanes, "burst": n_burst,
                   "straggler_size": int(straggler_size),
                   "resident_cap": cap, "best_of": best_of,
                   "seed": args.seed, "quick": bool(args.quick)},
        "variants": [metrics["no_spill"], metrics["spill"]],
        "spill_throughput_ratio": throughput_ratio,
        "recovery": {
            "crash_after_ticks": int(crash_after),
            "unfinished_at_crash": len(unfinished),
            "requests_replayed": len(recovered),
            "bit_identical": True,
        },
    }
    write_result(result, args, "BENCH_recover.json")

    assert throughput_ratio >= 0.8, (
        f"spilling held only {throughput_ratio:.2f}x the no-spill "
        "throughput; expected >= 0.8x"
    )
    print(f"OK: resident snapshots stayed <= {cap} under a "
          f"{spill_m['max_preempted_backlog']}-deep preempted backlog at "
          f"{throughput_ratio:.2f}x no-spill throughput, and the journaled "
          "crash replayed bit-identically")


# -- CLI -----------------------------------------------------------------------

SCENARIOS = {
    "serve": run_serve,
    "cluster": run_cluster_scaling,
    "steal": run_steal_rebalance,
    "preempt": run_preempt,
    "trace": run_trace,
    "superblock": run_superblock,
    "deadline": run_deadline,
    "recover": run_recover,
}

#: Legacy flag spellings accepted as subcommand aliases.
LEGACY_FLAGS = {"--cluster": "cluster", "--steal": "steal",
                "--preempt": "preempt"}


def _common_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--quick", action="store_true",
                        help="small sweep for CI smoke runs")
    parser.add_argument("--lanes", type=int, default=None)
    parser.add_argument("--requests", type=int, default=None)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--out", default=None,
                        help="result file path (default ./BENCH_<scenario>.json)")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    sub = parser.add_subparsers(dest="scenario")

    p_serve = sub.add_parser(
        "serve", help="continuous vs drain, eager vs fused (default)")
    _common_flags(p_serve)
    p_serve.add_argument("--rate", type=float, default=None,
                         help="offered load in requests per machine tick")

    p_cluster = sub.add_parser(
        "cluster", help="multi-engine shard-scaling benchmark")
    _common_flags(p_cluster)
    p_cluster.add_argument(
        "--policy", default="least_loaded",
        choices=["round_robin", "least_loaded", "power_of_two"],
        help="cluster routing policy (default least_loaded)")

    p_steal = sub.add_parser(
        "steal", help="work-stealing rebalancing benchmark "
                      "(adversarially skewed arrivals)")
    _common_flags(p_steal)

    p_preempt = sub.add_parser(
        "preempt", help="priority preemption benchmark "
                        "(high-priority burst into straggler-saturated lanes)")
    _common_flags(p_preempt)

    p_trace = sub.add_parser(
        "trace", help="observability overhead + deterministic trace export "
                      "(traced vs untraced preempt workload)")
    _common_flags(p_trace)

    p_superblock = sub.add_parser(
        "superblock", help="profile-guided superblock fusion + pc-bucketed "
                           "resume refill of preempted stragglers")
    _common_flags(p_superblock)

    p_deadline = sub.add_parser(
        "deadline", help="deadline-aware eviction vs priority-only, plus "
                         "wall-clock async arrivals replayed byte-identically")
    _common_flags(p_deadline)

    p_recover = sub.add_parser(
        "recover", help="snapshot spilling under a resident cap + journaled "
                        "crash recovery replayed bit-identically")
    _common_flags(p_recover)

    return parser


def main(argv=None):
    argv = list(sys.argv[1:] if argv is None else argv)
    # Legacy spellings: `--cluster --quick` -> `cluster --quick`.
    for flag, scenario in LEGACY_FLAGS.items():
        if flag in argv:
            argv.remove(flag)
            argv.insert(0, scenario)
    if not argv or argv[0].startswith("-"):
        argv.insert(0, "serve")
    args = build_parser().parse_args(argv)
    SCENARIOS[args.scenario](args)


if __name__ == "__main__":
    main()
