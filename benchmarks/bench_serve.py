"""Serving benchmarks: continuous batching vs drain-then-refill, eager vs
fused block execution, and (``--cluster``) multi-engine shard scaling.

Requests (``fib`` calls with skewed sizes) arrive by a Poisson process on
the engine's logical clock — open-loop, so a slow server cannot throttle
its own offered load.  Every engine sees the *identical* arrival sequence
and runs on the same machine width; the rows differ only in

* the refill discipline: ``continuous`` (a retired lane is re-injected
  from the queue on the next tick — the ``repro.serve`` tentpole) vs
  ``drain`` (requests admitted only into a fully drained machine — the
  static ``run_pc``-style baseline), and
* the block executor: ``eager`` (one host dispatch per primitive/storage
  array op) vs ``fused`` (one generated call per basic block).

Reported per engine: steady-state lane utilization, makespan in ticks,
queue-wait distribution, time-to-first-result, throughput, plan-derived
dispatch count, and wall time.  Two inequalities are asserted, not just
printed: continuous batching must beat drain on lane utilization, and the
fused engine must need at most a third of the eager engine's dispatches at
equal (tick-clock) throughput.

Results are also written to a machine-readable ``BENCH_serve.json`` so the
perf trajectory is tracked across PRs.

``--cluster`` switches to the shard-scaling benchmark instead: the same
closed-load request set through 1, 2, and 4 engine shards of equal lane
width (``repro.serve.cluster``, fused executor, one shared execution
plan).  Outputs must stay bit-identical to the static batch at every shard
count, 4-shard aggregate throughput must reach >= 2.5x the single-engine
baseline, and the fused compile counter must show exactly one codegen for
the whole sweep (code-cache sharing).  Results go to ``BENCH_cluster.json``.

``--steal`` runs the rebalancing benchmark: an *adversarially skewed*
arrival trace (every request routed to shard 0 of 4) through the same
cluster with work stealing off and on, plus an elastic cluster that starts
at one shard and autoscales up.  Stealing must sustain >= 1.8x the
no-steal aggregate throughput with bit-identical outputs, and the fused
compile counter must stay at 1 across autoscale grow events.  Per-tick
completion curves and the summary go to ``BENCH_steal.json``.

Run: ``python benchmarks/bench_serve.py [--quick] [--cluster | --steal]
[--out FILE]``
"""

import argparse
import json
import os
import sys
import time

import numpy as np

_HERE = os.path.dirname(os.path.abspath(__file__))
sys.path.insert(0, os.path.join(os.path.dirname(_HERE), "src"))
sys.path.insert(0, _HERE)

from repro.bench.report import format_table  # noqa: E402
from common import fib  # noqa: E402


def poisson_arrivals(n_requests: int, rate: float, seed: int) -> np.ndarray:
    """Arrival ticks of an open-loop Poisson process (rate = requests/tick)."""
    rng = np.random.RandomState(seed)
    gaps = rng.exponential(scale=1.0 / rate, size=n_requests)
    return np.floor(np.cumsum(gaps)).astype(np.int64)


def skewed_sizes(n_requests: int, seed: int) -> np.ndarray:
    """Request sizes with a heavy tail, so lanes finish at very different times."""
    rng = np.random.RandomState(seed)
    small = rng.randint(3, 8, size=n_requests)
    large = rng.randint(12, 17, size=n_requests)
    return np.where(rng.rand(n_requests) < 0.25, large, small).astype(np.int64)


def run_engine(refill: str, executor: str, requests, arrivals, num_lanes: int):
    """Drive one engine through the arrival schedule; returns engine + results."""
    engine = fib.serve(num_lanes=num_lanes, refill=refill, executor=executor)
    handles = []
    i = 0
    wall_start = time.perf_counter()
    while i < len(requests) or engine.pool.busy_count() or len(engine.queue):
        while i < len(requests) and arrivals[i] <= engine.now:
            handles.append(engine.submit(*requests[i]))
            i += 1
        engine.tick()
    wall = time.perf_counter() - wall_start
    return engine, [h.result() for h in handles], wall


def run_cluster_scaling(args) -> None:
    """Shard-scaling sweep: 1 -> 2 -> 4 engines at equal lane width."""
    n_requests = args.requests if args.requests is not None else (80 if args.quick else 240)
    num_lanes = args.lanes if args.lanes is not None else (4 if args.quick else 8)
    if n_requests <= 0 or num_lanes <= 0:
        raise SystemExit("--requests and --lanes must be positive")
    shard_counts = (1, 2, 4)

    sizes = skewed_sizes(n_requests, seed=args.seed)
    requests = [(np.int64(n),) for n in sizes]
    expected = fib.run_pc(sizes)

    print(f"workload: {n_requests} fib requests (sizes {sizes.min()}..{sizes.max()}), "
          f"closed load, {num_lanes} lanes per shard, policy={args.policy}, "
          f"executor=fused\n")

    # One shared plan serves the whole sweep; per-cluster bind counts are
    # deltas against it (a fleet of N machines must add exactly N binds).
    shared_plan = fib.execution_plan(executor="fused")
    rows, metrics = [], {}
    for shards in shard_counts:
        binds_before = shared_plan.stats.bind_count
        cluster = fib.serve_cluster(
            shards, num_lanes=num_lanes, executor="fused",
            policy=args.policy, seed=args.seed,
        )
        assert cluster.plan is shared_plan
        wall_start = time.perf_counter()
        results = cluster.map(requests)
        wall = time.perf_counter() - wall_start
        if not np.array_equal(np.stack(results), expected):
            raise AssertionError(
                f"{shards}-shard cluster results diverge from static run_pc"
            )
        t = cluster.telemetry
        metrics[shards] = {
            "shards": shards,
            "lanes_per_shard": num_lanes,
            "policy": args.policy,
            "ticks": int(t.ticks),
            "fleet_utilization": t.fleet_utilization(),
            "throughput_requests_per_tick": t.aggregate_throughput(),
            "mean_queue_wait": t.mean_queue_wait(),
            "completion_skew": t.completion_skew(),
            "spillovers": int(t.spillovers),
            "dispatches": int(cluster.dispatch_count()),
            "fused_compile_count": int(cluster.plan.executor.compile_count),
            "plan_bind_count": int(cluster.plan.stats.bind_count - binds_before),
            "wall_seconds": wall,
        }
        m = metrics[shards]
        rows.append([
            f"{shards}",
            f"{m['ticks']:,}",
            f"{m['fleet_utilization']:.3f}",
            f"{m['throughput_requests_per_tick']:.4f}",
            f"{m['completion_skew']:.3f}",
            f"{m['dispatches']:,}",
            f"{m['fused_compile_count']}",
            f"{m['wall_seconds']:.3f}",
        ])

    print(format_table(
        ["shards", "ticks", "fleet util", "req/tick", "skew",
         "dispatches", "compiles", "wall s"],
        rows,
    ))

    base = metrics[1]["throughput_requests_per_tick"]
    scaling = {
        shards: (metrics[shards]["throughput_requests_per_tick"] / base
                 if base else float("inf"))
        for shards in shard_counts
    }
    print("\naggregate-throughput scaling vs single engine: "
          + "  ".join(f"{s}x-shard={scaling[s]:.2f}x" for s in shard_counts))

    result = {
        "benchmark": "bench_serve_cluster",
        "config": {"requests": n_requests, "lanes_per_shard": num_lanes,
                   "policy": args.policy, "seed": args.seed,
                   "quick": bool(args.quick)},
        "shards": [metrics[s] for s in shard_counts],
        "throughput_scaling": {str(s): scaling[s] for s in shard_counts},
    }
    out = args.out or os.path.join(os.curdir, "BENCH_cluster.json")
    with open(out, "w") as f:
        json.dump(result, f, indent=2, sort_keys=True)
    print(f"wrote {out}")

    assert scaling[4] >= 2.5, (
        f"4-shard aggregate throughput is {scaling[4]:.2f}x the single-engine "
        "baseline; expected >= 2.5x at equal lane width"
    )
    for shards in shard_counts:
        assert metrics[shards]["fused_compile_count"] == 1, (
            f"{shards}-shard cluster shows "
            f"{metrics[shards]['fused_compile_count']} fused compiles; "
            "code-cache sharing should compile exactly once"
        )
        assert metrics[shards]["plan_bind_count"] == shards, (
            f"{shards}-shard cluster bound the plan "
            f"{metrics[shards]['plan_bind_count']} times; expected one "
            "binding per shard"
        )
    print("OK: outputs bit-identical at every shard count; 4 shards sustain "
          f"{scaling[4]:.2f}x single-engine throughput with one fused compile")


def run_steal_rebalance(args) -> None:
    """Adversarial skew: all traffic to shard 0; stealing must rebalance."""
    from repro.serve import AutoscalePolicy, RoutingPolicy

    class PinnedPolicy(RoutingPolicy):
        """Route every request to shard 0 (spill order 0,1,2,...): the
        worst-case skew a static router can produce."""

        name = "pinned"

        def preference(self, cluster):
            return list(range(len(cluster.engines)))

    n_requests = args.requests if args.requests is not None else (80 if args.quick else 240)
    num_lanes = args.lanes if args.lanes is not None else (4 if args.quick else 8)
    if n_requests <= 0 or num_lanes <= 0:
        raise SystemExit("--requests and --lanes must be positive")
    num_shards = 4

    sizes = skewed_sizes(n_requests, seed=args.seed)
    requests = [(np.int64(n),) for n in sizes]
    expected = fib.run_pc(sizes)

    print(f"workload: {n_requests} fib requests (sizes {sizes.min()}..{sizes.max()}), "
          f"ALL routed to shard 0 of {num_shards}, {num_lanes} lanes per shard, "
          f"executor=fused\n")

    def drive(cluster):
        """Submit the whole burst, tick to idle, record the completion curve."""
        handles = [cluster.submit(*r) for r in requests]
        curve = []
        wall_start = time.perf_counter()
        while cluster.busy():
            cluster.tick()
            curve.append(int(cluster.telemetry.completed))
        wall = time.perf_counter() - wall_start
        results = np.stack([h.result() for h in handles])
        if not np.array_equal(results, expected):
            raise AssertionError("results diverge from static run_pc")
        return curve, wall

    variants = [
        ("no_steal", dict(policy=PinnedPolicy())),
        ("steal", dict(policy=PinnedPolicy(), steal=True)),
    ]
    rows, metrics, curves = [], {}, {}
    for label, options in variants:
        cluster = fib.serve_cluster(
            num_shards, num_lanes=num_lanes, executor="fused", **options
        )
        curve, wall = drive(cluster)
        t = cluster.telemetry
        metrics[label] = {
            "variant": label,
            "shards": num_shards,
            "lanes_per_shard": num_lanes,
            "ticks": int(t.ticks),
            "fleet_utilization": t.fleet_utilization(),
            "throughput_requests_per_tick": t.aggregate_throughput(),
            "completion_skew": t.completion_skew(),
            "steals": int(t.steals),
            "steal_ticks": int(t.steal_ticks),
            "fused_compile_count": int(cluster.plan.executor.compile_count),
            "wall_seconds": wall,
        }
        curves[label] = curve

    # The elastic variant starts at one shard and grows under the backlog;
    # the same skewed burst, but the fleet follows the load.
    autoscale = AutoscalePolicy(max_engines=num_shards, grow_patience=1,
                                shrink_patience=8)
    elastic = fib.serve_cluster(
        1, num_lanes=num_lanes, executor="fused",
        steal=True, autoscale=autoscale,
    )
    curve, wall = drive(elastic)
    t = elastic.telemetry
    metrics["elastic"] = {
        "variant": "elastic",
        "shards_initial": 1,
        "shards_max": num_shards,
        "lanes_per_shard": num_lanes,
        "ticks": int(t.ticks),
        "fleet_utilization": t.fleet_utilization(),
        "throughput_requests_per_tick": t.aggregate_throughput(),
        "completion_skew": t.completion_skew(),
        "steals": int(t.steals),
        "grow_events": int(t.grow_events),
        "shrink_events": int(t.shrink_events),
        "shards_retired": int(t.shards_retired),
        "fused_compile_count": int(elastic.plan.executor.compile_count),
        "wall_seconds": wall,
    }
    curves["elastic"] = curve

    for label in ("no_steal", "steal", "elastic"):
        m = metrics[label]
        rows.append([
            label,
            f"{m['ticks']:,}",
            f"{m['fleet_utilization']:.3f}",
            f"{m['throughput_requests_per_tick']:.4f}",
            f"{m['steals']:,}",
            f"{m.get('grow_events', 0)}",
            f"{m['fused_compile_count']}",
            f"{m['wall_seconds']:.3f}",
        ])
    print(format_table(
        ["variant", "ticks", "fleet util", "req/tick", "steals", "grows",
         "compiles", "wall s"],
        rows,
    ))

    base = metrics["no_steal"]["throughput_requests_per_tick"]
    steal_gain = (metrics["steal"]["throughput_requests_per_tick"] / base
                  if base else float("inf"))
    elastic_gain = (metrics["elastic"]["throughput_requests_per_tick"] / base
                    if base else float("inf"))
    print(f"\nsteal/no-steal throughput under total skew: {steal_gain:.2f}x "
          f"(elastic from one shard: {elastic_gain:.2f}x)")

    # Downsample curves so the JSON stays small at full scale.
    def thin(curve, points=200):
        if len(curve) <= points:
            return curve
        step = len(curve) / points
        return [curve[min(len(curve) - 1, int(i * step))] for i in range(points)] + [curve[-1]]

    result = {
        "benchmark": "bench_serve_steal",
        "config": {"requests": n_requests, "shards": num_shards,
                   "lanes_per_shard": num_lanes, "seed": args.seed,
                   "quick": bool(args.quick)},
        "variants": [metrics[k] for k in ("no_steal", "steal", "elastic")],
        "steal_over_no_steal_throughput": steal_gain,
        "elastic_over_no_steal_throughput": elastic_gain,
        "completion_curves": {k: thin(v) for k, v in curves.items()},
    }
    out = args.out or os.path.join(os.curdir, "BENCH_steal.json")
    with open(out, "w") as f:
        json.dump(result, f, indent=2, sort_keys=True)
    print(f"wrote {out}")

    assert steal_gain >= 1.8, (
        f"work stealing sustained only {steal_gain:.2f}x the no-steal "
        "throughput under total skew; expected >= 1.8x"
    )
    for label in ("no_steal", "steal", "elastic"):
        assert metrics[label]["fused_compile_count"] == 1, (
            f"{label}: {metrics[label]['fused_compile_count']} fused "
            "compiles; the shared plan should compile exactly once "
            "(including across autoscale grow events)"
        )
    assert metrics["elastic"]["grow_events"] >= 1, (
        "the elastic cluster never grew under a sustained backlog"
    )
    print(f"OK: stealing sustains {steal_gain:.2f}x no-steal throughput with "
          "bit-identical outputs; one fused compile across "
          f"{metrics['elastic']['grow_events']} autoscale grow events")


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="small sweep for CI smoke runs")
    parser.add_argument("--cluster", action="store_true",
                        help="run the multi-engine shard-scaling benchmark")
    parser.add_argument("--steal", action="store_true",
                        help="run the work-stealing rebalancing benchmark "
                             "(adversarially skewed arrivals)")
    parser.add_argument("--policy", default=None,
                        choices=["round_robin", "least_loaded", "power_of_two"],
                        help="cluster routing policy (--cluster only; "
                             "default least_loaded)")
    parser.add_argument("--lanes", type=int, default=None)
    parser.add_argument("--requests", type=int, default=None)
    parser.add_argument("--rate", type=float, default=None,
                        help="offered load in requests per machine tick")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--out", default=None,
                        help="result file path (default ./BENCH_serve.json; "
                             "./BENCH_cluster.json with --cluster, "
                             "./BENCH_steal.json with --steal)")
    args = parser.parse_args()

    if args.cluster and args.steal:
        parser.error("--cluster and --steal are separate benchmarks")
    if args.steal:
        if args.rate is not None:
            parser.error(
                "--rate is open-loop only; the --steal scenario is closed-load"
            )
        if args.policy is not None:
            parser.error(
                "--steal pins every arrival to shard 0; --policy does not apply"
            )
        run_steal_rebalance(args)
        return
    if args.cluster:
        if args.rate is not None:
            parser.error(
                "--rate is open-loop only; the --cluster sweep is closed-load"
            )
        if args.policy is None:
            args.policy = "least_loaded"
        run_cluster_scaling(args)
        return
    if args.policy is not None:
        parser.error("--policy only applies to the --cluster sweep")

    n_requests = args.requests if args.requests is not None else (40 if args.quick else 200)
    num_lanes = args.lanes if args.lanes is not None else (4 if args.quick else 16)
    rate = args.rate if args.rate is not None else (0.08 if args.quick else 0.05)
    if n_requests <= 0 or num_lanes <= 0 or rate <= 0:
        parser.error("--requests, --lanes, and --rate must all be positive")

    sizes = skewed_sizes(n_requests, seed=args.seed)
    arrivals = poisson_arrivals(n_requests, rate=rate, seed=args.seed + 1)
    requests = [(np.int64(n),) for n in sizes]

    print(f"workload: {n_requests} fib requests (sizes {sizes.min()}..{sizes.max()}), "
          f"Poisson rate {rate}/tick, {num_lanes} lanes\n")

    expected = fib.run_pc(sizes)
    variants = [
        ("continuous", "eager"),
        ("continuous", "fused"),
        ("drain", "eager"),
    ]
    rows, metrics = [], {}
    for refill, executor in variants:
        engine, results, wall = run_engine(
            refill, executor, requests, arrivals, num_lanes
        )
        if not np.array_equal(np.stack(results), expected):
            raise AssertionError(
                f"{refill}/{executor}: results diverge from static run_pc"
            )
        t = engine.telemetry
        metrics[(refill, executor)] = {
            "refill": refill,
            "executor": executor,
            "lane_utilization": t.lane_utilization(),
            "ticks": int(t.ticks),
            "mean_queue_wait": t.mean_queue_wait(),
            "max_queue_wait": int(t.max_queue_wait()),
            "time_to_first_result": t.first_result_tick,
            "throughput_requests_per_tick": t.throughput(),
            "prim_utilization": t.instrumentation.utilization(),
            "machine_steps": int(t.instrumentation.steps),
            "kernel_calls": int(t.instrumentation.kernel_calls),
            "dispatches": int(engine.dispatch_count()),
            "wall_seconds": wall,
        }
        m = metrics[(refill, executor)]
        rows.append([
            refill,
            executor,
            f"{m['lane_utilization']:.3f}",
            f"{m['ticks']:,}",
            f"{m['mean_queue_wait']:.0f}",
            f"{m['time_to_first_result']}",
            f"{m['throughput_requests_per_tick']:.4f}",
            f"{m['dispatches']:,}",
            f"{m['wall_seconds']:.3f}",
        ])

    print(format_table(
        ["policy", "executor", "lane util", "ticks", "mean wait",
         "ttfr", "req/tick", "dispatches", "wall s"],
        rows,
    ))

    cont_eager = metrics[("continuous", "eager")]
    cont_fused = metrics[("continuous", "fused")]
    drain = metrics[("drain", "eager")]

    gain = (cont_eager["lane_utilization"] / drain["lane_utilization"]
            if drain["lane_utilization"] else float("inf"))
    dispatch_ratio = cont_fused["dispatches"] / cont_eager["dispatches"]
    print(f"\ncontinuous/drain lane-utilization ratio: {gain:.2f}x")
    print(f"fused/eager dispatch ratio (continuous): {dispatch_ratio:.3f} "
          f"({cont_fused['dispatches']:,} vs {cont_eager['dispatches']:,})")

    result = {
        "benchmark": "bench_serve",
        "config": {"requests": n_requests, "lanes": num_lanes, "rate": rate,
                   "seed": args.seed, "quick": bool(args.quick)},
        "engines": list(metrics.values()),
        "continuous_over_drain_lane_utilization": gain,
        "fused_over_eager_dispatch_ratio": dispatch_ratio,
    }
    out = args.out or os.path.join(os.curdir, "BENCH_serve.json")
    with open(out, "w") as f:
        json.dump(result, f, indent=2, sort_keys=True)
    print(f"wrote {out}")

    assert cont_eager["lane_utilization"] > drain["lane_utilization"], (
        "continuous batching failed to beat drain-then-refill on lane utilization"
    )
    assert cont_fused["ticks"] == cont_eager["ticks"], (
        "executors diverged on the logical clock (throughput not equal)"
    )
    assert dispatch_ratio <= 1 / 3, (
        f"fused engine needed {dispatch_ratio:.2f} of eager's dispatches; "
        "expected <= 1/3"
    )
    print("OK: continuous batching sustains higher lane utilization; "
          "fused execution needs <= 1/3 of the dispatches at equal throughput")


if __name__ == "__main__":
    main()
