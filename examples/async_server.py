"""Wall-clock async serving: an asyncio front door over the logical clock.

The serving engine runs on a *logical* clock — one tick, one scheduled
block execution — which is what makes every run exactly replayable.  Real
clients, though, live on the wall clock and want ``await``.
``repro.serve.aio`` bridges the two:

1. :class:`AsyncServer` wraps any ``Engine``/``Cluster`` behind
   ``await server.submit(...)``; a driver task advances the machine at a
   configurable wall-clock pace (``tick_interval`` seconds per tick) while
   submissions land between ticks.  Awaiting a handle suspends the caller
   until the machine retires its lane.
2. Backpressure is an *await*, not an error: when admission is full,
   ``submit`` parks until a lane frees and a queue slot opens (FIFO).
3. Requests carry ``deadline_ticks``; ``DeadlinePreemptPolicy`` evicts the
   slack-richest running lanes when tighter-deadline work is waiting, and
   telemetry scores every completion against its own deadline.
4. The wall clock never touches scheduling truth: each arrival is stamped
   with the logical tick it landed on, and ``replay_arrivals`` re-drives
   the recorded schedule synchronously — producing bit-identical results.

Run: ``python examples/async_server.py``
"""

import asyncio

import numpy as np

from repro import autobatch


@autobatch
def collatz_steps(n):
    steps = 0
    while n > 1:
        if n % 2 == 0:
            n = n // 2
        else:
            n = 3 * n + 1
        steps = steps + 1
    return steps


async def serve_clients():
    from repro.serve import AsyncServer, DeadlinePreemptPolicy

    engine = collatz_steps.serve(
        num_lanes=4, executor="fused",
        preempt=DeadlinePreemptPolicy(), max_queue_depth=4,
    )

    # ~0.2 ms of wall time per logical tick: slow enough that arrivals
    # land on distinct ticks, fast enough to finish in a blink.
    async with AsyncServer(engine, tick_interval=0.0002) as server:
        # -- 1. await a single request --------------------------------------
        handle = await server.submit(np.int64(27))
        result = await handle
        print(f"collatz(27) = {int(result)} "
              f"(finished on logical tick {handle.handle.finish_tick})")

        # -- 2. async map: results stream back as lanes retire --------------
        sizes = [97, 6, 703, 10, 871, 2]
        print(f"\nasync map over n = {sizes} (completion order, not "
              "submission order):")
        async for result in server.map([(np.int64(n),) for n in sizes]):
            print(f"  -> {int(result):5d} steps")

        # -- 3. deadline SLOs + backpressure --------------------------------
        # Four long trajectories saturate the lanes with loose deadlines,
        # then tight-deadline requests arrive: the deadline policy
        # checkpoints the slack-richest lanes so the urgent work seats
        # immediately.  The extra submissions also overflow the queue —
        # submit() just awaits a slot instead of raising.
        long_handles = [
            await server.submit(np.int64(77031), deadline_ticks=100000)
            for _ in range(4)
        ]
        tight_handles = [
            await server.submit(np.int64(n), deadline_ticks=300)
            for n in (9, 25, 33, 17, 11, 49)
        ]
        for h in long_handles + tight_handles:
            await h
        t = engine.telemetry
        print(f"\nafter the deadline burst: {t.preemptions} evictions, "
              f"{t.resumes} resumes, deadline attainment "
              f"{t.slo_attainment('deadline'):.3f} "
              f"({t.deadline_misses} misses)")

        arrivals = list(server.arrivals)
    return engine, arrivals


def main():
    from repro.serve import replay_arrivals

    engine, arrivals = asyncio.run(serve_clients())
    print(f"\nthe run recorded {len(arrivals)} arrivals on logical ticks "
          f"{[a.tick for a in arrivals]}")

    # -- 4. replay: wall-clock jitter is gone, the schedule remains --------
    fresh = collatz_steps.serve(
        num_lanes=4, executor="fused",
        preempt="deadline", max_queue_depth=4,
    )
    handles = replay_arrivals(fresh, arrivals)
    live = [int(a.tick) for a in arrivals]
    print(f"replayed the schedule synchronously: {len(handles)} requests, "
          f"{fresh.telemetry.preemptions} evictions — same ticks {live}")
    expected = collatz_steps.run_pc(
        np.array([a.inputs[0] for a in arrivals], dtype=np.int64))
    replayed = np.stack([h.result() for h in handles])
    assert np.array_equal(replayed, expected)
    print("replayed outputs are bit-identical to the static run_pc batch")


if __name__ == "__main__":
    main()
