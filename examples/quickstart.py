"""Quickstart: autobatch a recursive function and run it four ways.

The paper's core promise: write the *single-example* program naturally —
with data-dependent branches, loops, and recursion — and let the system run
it on a whole batch of inputs in SIMD lock-step.

Run: ``python examples/quickstart.py``
"""

import numpy as np

from repro import autobatch, ops
from repro.ir.pretty import format_program, format_stack_program


@autobatch
def fib(n):
    """Recursive Fibonacci — the paper's running example (Figures 1 and 3)."""
    if n <= 1:
        return 1
    return fib(n - 2) + fib(n - 1)


@autobatch
def collatz_steps(n):
    """Data-dependent loop: wildly different trip counts per batch member."""
    steps = 0
    while n != 1:
        if n % 2 == 0:
            n = n // 2
        else:
            n = 3 * n + 1
        steps = steps + 1
    return steps


@autobatch
def smooth_recurse(x, depth):
    """Recursion mixing control flow with float primitives."""
    if depth <= 0:
        return ops.exp(-0.5 * x * x)
    return 0.5 * (smooth_recurse(x * 0.9, depth - 1) + smooth_recurse(x * 1.1, depth - 1))


def main():
    batch = np.array([3, 7, 4, 5, 10, 13])
    print("== fib on a batch ==")
    print("plain Python, one member at a time:", fib.run_reference(batch))
    print("Algorithm 1 (local static):       ", fib.run_local(batch))
    print("Algorithm 2 (program counter):    ", fib.run_pc(batch))
    print("Algorithm 2 + fused blocks (XLA analog):",
          fib.run_pc(batch, executor="fused"))

    print("\n== divergent loop: collatz ==")
    ns = np.array([6, 27, 97, 1, 703])
    print("inputs:    ", ns)
    print("step count:", collatz_steps.run_pc(ns))

    print("\n== float recursion with a primitive ==")
    xs = np.linspace(-2, 2, 5)
    depths = np.array([1, 2, 3, 2, 1])
    print("run_pc:", np.round(smooth_recurse.run_pc(xs, depths), 4))
    print("ref:   ", np.round(smooth_recurse.run_reference(xs, depths), 4))

    print("\n== what the compiler built (fib) ==")
    print("-- callable IR (Figure 2 dialect) --")
    print(format_program(fib.program))
    print("-- stack IR (Figure 4 dialect, optimized) --")
    print(format_stack_program(fib.stack_program()))


if __name__ == "__main__":
    main()
