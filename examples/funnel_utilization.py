"""Batching across recursion depths on a pathological target (Figure 6 story).

Neal's funnel makes NUTS choose wildly different trajectory lengths per
chain, which is the worst case for lock-step batching: under local static
autobatching, chains that finish a tree early idle while the longest chain
integrates.  Program-counter autobatching lets the gradient leaf batch
across subtrees, trajectories, and stack depths.

This example runs the same batch of chains under both machines and prints
the gradient-kernel utilization of each, plus how the gap grows with batch
size — Figure 6's experiment on a harder target.

Run: ``python examples/funnel_utilization.py``
"""

import numpy as np

from repro.bench.report import format_table
from repro.nuts import NutsKernel
from repro.targets import NealsFunnel


def main():
    target = NealsFunnel(dim=5, scale=2.0)
    kernel = NutsKernel(target)
    args = dict(step_size=0.1, n_trajectories=6, max_depth=7, seed=3)

    print("target: Neal's funnel (dim=5); 6 NUTS trajectories per chain\n")
    rows = []
    for z in (1, 4, 16, 64):
        q0 = target.initial_state(z, seed=4)
        cells = [z]
        for strategy in ("local", "pc"):
            result = kernel.run(q0, strategy=strategy, instrument=True, **args)
            counter = result.instrumentation.count(tag="gradient")
            cells.append(f"{counter.utilization():.3f}")
        local_u, pc_u = float(cells[1]), float(cells[2])
        cells.append(f"{pc_u / local_u:.2f}x")
        rows.append(cells)
    print(format_table(
        ["batch", "local-static util", "program-counter util", "PC recovery"],
        rows,
    ))

    print("\nPer-chain tree sizes vary a lot on the funnel:")
    q0 = target.initial_state(8, seed=5)
    result = kernel.run(q0, strategy="pc", **args)
    leaves = result.grad_evals / 5.0  # 5 gradients per leaf (4 leapfrog + 1)
    print("leaves per chain:", np.array2string(leaves.astype(int)))
    print("max/mean ratio:  ", f"{leaves.max() / leaves.mean():.2f}")
    print("\n(The bigger that ratio, the more a lock-step batch wastes, and")
    print(" the more batching across recursion depth recovers.)")


if __name__ == "__main__":
    main()
