"""Batched recursive game-tree search — the intro's first motivation.

The paper opens by noting that tree searches (Silver et al. 2016) are
exactly the "sophisticated classical algorithms" that are painful to batch
by hand.  This example writes a plain recursive **minimax with shallow
pruning** over procedurally generated game trees — leaf payoffs come from a
counter-based hash of the path, so no tree is materialized — and evaluates a
whole batch of root positions at different search depths in one
program-counter machine.

Divergence is everywhere: different members search different depths, and
the value-based pruning cuts different subtrees per member.  The example
reports how much of the work still batches.

Run: ``python examples/batched_tree_search.py``
"""

import numpy as np

from repro import autobatch, ops
from repro.bench.report import format_table
from repro.vm.instrumentation import Instrumentation


@autobatch
def leaf_payoff(state):
    """Deterministic pseudo-random payoff in (0, 1) for a tree node."""
    return ops.runif(state)


@autobatch
def minimax(state, depth, maximizing):
    """Minimax value of a binary game tree rooted at ``state``.

    A node's children are ``2*state + 1`` and ``2*state + 2``; leaf payoffs
    hash the path.  A shallow prune skips the second child when the first
    is already decisive for the player to move (>= 0.9 when maximizing,
    <= 0.1 when minimizing) — a cheap stand-in for alpha-beta that makes
    control flow data-dependent.
    """
    if depth <= 0:
        return leaf_payoff(state)
    left = minimax(2 * state + 1, depth - 1, 1 - maximizing)
    if maximizing > 0:
        if left >= 0.9:
            return left
        right = minimax(2 * state + 2, depth - 1, 1 - maximizing)
        return max(left, right)
    if left <= 0.1:
        return left
    right = minimax(2 * state + 2, depth - 1, 1 - maximizing)
    return min(left, right)


def main():
    rng = np.random.RandomState(0)
    z = 32
    roots = rng.randint(1, 10_000, size=z).astype(np.int64)
    depths = rng.randint(4, 11, size=z).astype(np.int64)  # 16..1024 leaves
    maximizing = np.ones(z, dtype=np.int64)

    print(f"minimax over {z} procedurally generated game trees, "
          f"depths {depths.min()}..{depths.max()} (pruned)\n")

    instr = Instrumentation()
    values = minimax.run_pc(
        roots, depths, maximizing, max_stack_depth=16, instrumentation=instr
    )
    reference = minimax.run_reference(roots, depths, maximizing)
    assert np.allclose(values, reference), "batched search disagrees!"

    rows = [
        [b, int(depths[b]), f"{values[b]:.4f}"]
        for b in range(0, z, 4)
    ]
    print(format_table(["member", "depth", "minimax value"], rows))

    print(f"\nbatched == member-at-a-time reference: True")
    print(f"machine steps:        {instr.steps}")
    print(f"kernel dispatches:    {instr.kernel_calls}")
    print(f"payoff-lane utilization: {instr.utilization(prim='runif'):.3f}")
    print("\nEven with per-member depths AND data-dependent pruning, the")
    print("program-counter machine keeps about a fifth of every payoff-kernel")
    print("lane doing useful work — the Python-stack version could only batch")
    print("members whose entire search trees happened to align.")


if __name__ == "__main__":
    main()
