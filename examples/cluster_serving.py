"""Sharded serving: one request stream across a fleet of batched machines.

A single serving engine is capped by its machine's SIMD width — at most
``num_lanes`` requests in flight.  ``repro.serve.cluster`` scales past one
machine: N engine shards, each a lane-recycled program-counter machine,
behind one ``submit``/``map`` façade with pluggable request routing.

This walkthrough:

1. serves the same request trace through 1, 2, and 4 shards and shows the
   aggregate-throughput scaling (with bit-identical results throughout —
   lanes are independent under masked execution, so *where* a request runs
   never changes *what* it computes);
2. shows code-cache sharing: every shard binds the function's one fused
   ``ExecutionPlan``, so the expensive block codegen happens exactly once
   for the whole fleet (the compile counter proves it);
3. compares the three routing policies on a skewed workload;
4. demonstrates rebalancing: work stealing un-skews an adversarially
   pinned arrival trace, and an autoscaling fleet grows under the burst
   then drains-and-retires shards after it — still one fused compile.

Run: ``python examples/cluster_serving.py``
"""

import numpy as np

from repro import autobatch


@autobatch
def collatz_steps(n):
    steps = 0
    while n > 1:
        if n % 2 == 0:
            n = n // 2
        else:
            n = 3 * n + 1
        steps = steps + 1
    return steps


def main():
    rng = np.random.RandomState(11)
    sizes = rng.randint(5, 4000, size=48).astype(np.int64)
    requests = [(np.int64(n),) for n in sizes]
    expected = collatz_steps.run_pc(sizes)

    # -- 1. shard scaling ---------------------------------------------------
    print(f"serving {len(sizes)} collatz requests "
          f"(trajectory lengths {expected.min()}..{expected.max()} steps)\n")
    print("shard scaling (4 lanes per shard, fused executor, least-loaded):")
    base = None
    for shards in (1, 2, 4):
        cluster = collatz_steps.serve_cluster(
            shards, num_lanes=4, executor="fused", policy="least_loaded"
        )
        results = cluster.map(requests)
        assert np.array_equal(np.stack(results), expected), "results diverged"
        throughput = cluster.telemetry.aggregate_throughput()
        base = base or throughput
        print(f"  {shards} shard(s): {cluster.telemetry.ticks:6d} ticks, "
              f"{throughput:.4f} req/tick ({throughput / base:4.2f}x), "
              f"fleet utilization {cluster.telemetry.fleet_utilization():.3f}")

    # -- 2. code-cache sharing ---------------------------------------------
    plan = collatz_steps.execution_plan(executor="fused")
    print(f"\none shared execution plan: {plan.stats.bind_count} machine "
          f"bindings, {plan.executor.compile_count} fused compile(s)")
    assert plan.executor.compile_count == 1

    # -- 3. routing policies ------------------------------------------------
    print("\nrouting policies on the same trace (3 shards x 2 lanes, "
          "queue depth 4):")
    for policy in ("round_robin", "least_loaded", "power_of_two"):
        cluster = collatz_steps.serve_cluster(
            3, num_lanes=2, policy=policy, max_queue_depth=4, seed=0
        )
        results = cluster.map(requests)
        assert np.array_equal(np.stack(results), expected), policy
        t = cluster.telemetry
        print(f"  {policy:13s}: per-shard completed {t.completed_per_shard()}, "
              f"completion skew {t.completion_skew():.3f}, "
              f"spillovers {t.spillovers}, "
              f"mean wait {t.mean_queue_wait():.1f} ticks")
    print("\nevery policy returned the identical result set — routing only "
          "moves work, never changes it")

    # -- 4. rebalancing: work stealing + elasticity --------------------------
    from repro.serve import AutoscalePolicy, RoutingPolicy

    class Pinned(RoutingPolicy):
        """Adversarial skew: every request lands on shard 0."""

        name = "pinned"

        def preference(self, cluster):
            return list(range(len(cluster.engines)))

    print("\nadversarial skew (all requests to shard 0 of 4):")
    for label, options in (
        ("no steal", {}),
        ("steal", dict(steal=True)),
    ):
        cluster = collatz_steps.serve_cluster(
            4, num_lanes=2, executor="fused", policy=Pinned(), **options
        )
        results = cluster.map(requests)
        assert np.array_equal(np.stack(results), expected), label
        t = cluster.telemetry
        print(f"  {label:9s}: {t.ticks:6d} ticks, per-shard completed "
              f"{t.completed_per_shard()}, steals {t.steals}")
    print("stealing spread the pinned backlog across every shard — same "
          "bits, a fraction of the makespan")

    elastic = collatz_steps.serve_cluster(
        1, num_lanes=2, executor="fused", steal=True,
        autoscale=AutoscalePolicy(max_engines=4, grow_patience=1,
                                  shrink_patience=4),
    )
    results = elastic.map(requests)
    assert np.array_equal(np.stack(results), expected)
    while elastic.num_engines > 1:  # idle ticks let the fleet shrink back
        elastic.tick()
    t = elastic.telemetry
    print(f"\nelastic fleet: grew {t.grow_events}x under the burst, drained "
          f"and retired {t.shards_retired} shard(s) after it, "
          f"{elastic.plan.executor.compile_count} fused compile total")
    assert elastic.plan.executor.compile_count == 1


if __name__ == "__main__":
    main()
