"""Serving NUTS: stream logistic-regression chain requests through lanes.

The paper batches Z NUTS chains that all start together.  This example runs
the same compiled ``nuts_chain`` program behind the ``repro.serve`` engine
instead: chain requests *arrive over time* (a staggered stream, as a
production inference service would see), each is injected into whichever
machine lane last fell vacant, and its final state is returned through a
Future-like handle.  Mid-flight, the batch holds chains at different
trajectory counts, tree depths, and stack depths — Algorithm 2 doesn't
care, which is exactly why lane recycling is sound.

The example also replays two requests through a static ``run_pc`` batch to
show the served results are bit-identical (counter-based RNG makes every
chain's randomness schedule-invariant).

Run: ``python examples/serving_nuts.py``
"""

import numpy as np

from repro.frontend.primitives import make_counters
from repro.nuts.tree import make_nuts_functions
from repro.targets import BayesianLogisticRegression


def main():
    num_lanes, n_requests = 4, 12
    n_traj, max_depth, n_leapfrog, step_size = 3, 5, 4, 0.08

    target = BayesianLogisticRegression(n_data=400, n_features=6, seed=0)
    chain = make_nuts_functions(target).nuts_chain

    # Per-request inputs: one chain each, with its own start and RNG stream.
    rng = np.random.RandomState(7)
    q0 = 0.1 * rng.randn(n_requests, target.dim)
    ctrs = make_counters(seed=42, batch_size=n_requests)
    scalar = lambda v: np.float64(v)  # noqa: E731
    requests = [
        (q0[i], scalar(step_size), scalar(max_depth), scalar(n_leapfrog),
         scalar(n_traj), scalar(0.0), ctrs[i])
        for i in range(n_requests)
    ]

    def serve_stream(executor):
        """Drive the identical staggered stream through one engine."""
        engine = chain.serve(
            num_lanes=num_lanes,
            max_stack_depth=max_depth + 8,
            max_queue_depth=2 * n_requests,
            executor=executor,
        )
        # A staggered stream: a few requests up front, the rest trickling
        # in while earlier chains are mid-trajectory.
        handles = [engine.submit(*requests[i]) for i in range(num_lanes)]
        next_req = num_lanes
        while engine.tick() or next_req < n_requests:
            if next_req < n_requests and engine.now % 50 == 0:
                handles.append(engine.submit(*requests[next_req]))
                next_req += 1
        return engine, handles

    print(f"serving {n_requests} NUTS chain requests ({n_traj} trajectories each) "
          f"through {num_lanes} lanes on "
          f"logistic regression ({target.n_data} x {target.dim})\n")

    engine, handles = serve_stream("eager")
    finals = np.stack([h.result()[0] for h in handles])
    grads = np.array([float(h.result()[1]) for h in handles])
    order = np.argsort([h.finish_tick for h in handles])
    print("request completions (engine logical clock):")
    for i in order:
        h = handles[i]
        print(f"  request {h.request_id:2d}: lane {h.lane}, "
              f"waited {h.queue_wait():4d} ticks, active {h.steps_used:5d} steps, "
              f"finished at tick {h.finish_tick}, "
              f"{grads[i]:4.0f} gradient evals")

    print("\n== engine telemetry ==")
    print(engine.telemetry.summary())

    # Differential check: replay two served requests as a static batch.
    probe = [handles[1], handles[num_lanes]]
    static = chain.run_pc(
        *[np.stack([np.asarray(h.request.inputs[j]) for h in probe])
          for j in range(7)],
        max_stack_depth=max_depth + 8,
    )
    served_q = np.stack([h.result()[0] for h in probe])
    assert np.array_equal(served_q, static[0]), "served chain diverged from static"
    print("\nserved results are bit-identical to a static run_pc batch")

    # Executor differential: the same stream under fused block execution
    # must land bit-identically, with a fraction of the host dispatches.
    fused_engine, fused_handles = serve_stream("fused")
    fused_finals = np.stack([h.result()[0] for h in fused_handles])
    assert np.array_equal(fused_finals, finals), (
        "fused serving diverged from eager serving"
    )
    print(f"fused serving is bit-identical to eager; dispatches "
          f"{fused_engine.dispatch_count():,} (fused) vs "
          f"{engine.dispatch_count():,} (eager)")
    print(f"posterior-mean accuracy over served chains: "
          f"{target.accuracy(finals.mean(axis=0)):.3f}")


if __name__ == "__main__":
    main()
