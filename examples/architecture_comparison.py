"""Every autobatching architecture from the paper, on one program.

Section 5 surveys the design space: local static autobatching (Algorithm 1,
also Matchbox/JAX-vmap/pfor style), program-counter autobatching
(Algorithm 2, the contribution), and dynamic batching (Neubig et al.).
This repository implements all of them over the same primitive registry —
so here they all run the same recursive Fibonacci batch and we compare what
each one's runtime actually did.

Run: ``python examples/architecture_comparison.py``
"""

import time

import numpy as np

from repro import autobatch
from repro.bench.report import format_table
from repro.dynbatch import DynamicBatcher, LazyContext
from repro.matchbox import MaskedBatch, cond, matchbox_call
from repro.matchbox.masked import as_masked
from repro.vm.instrumentation import Instrumentation


@autobatch
def fib(n):
    if n <= 1:
        return 1
    return fib(n - 2) + fib(n - 1)


def mb_fib(n: MaskedBatch):
    def base(n):
        return (as_masked(1, n.batch_size).with_mask(n.mask),)

    def recurse(n):
        (left,) = matchbox_call(mb_fib, n - 2)
        (right,) = matchbox_call(mb_fib, n - 1)
        return (left + right,)

    return cond(n <= 1, base, recurse, (n,))


def main():
    batch = np.random.RandomState(0).randint(5, 17, size=24).astype(np.int64)
    expected = fib.run_reference(batch)
    rows = []

    def timed(label, fn, kernel_calls=None, note=""):
        start = time.perf_counter()
        out = fn()
        seconds = time.perf_counter() - start
        np.testing.assert_array_equal(np.asarray(out), expected)
        rows.append([label, f"{seconds*1e3:.1f}",
                     kernel_calls() if callable(kernel_calls) else (kernel_calls or "-"),
                     note])

    timed("plain Python (per member)", lambda: fib.run_reference(batch),
          note="the semantics; no batching")

    instr = Instrumentation()
    timed("local static (Alg 1)",
          lambda: fib.run_local(batch, instrumentation=instr),
          kernel_calls=lambda: instr.kernel_calls,
          note="masking; recursion on the Python stack")

    instr_h = Instrumentation()
    timed("hybrid (Alg 1 + fused blocks)",
          lambda: fib.run_local(batch, fuse_blocks=True, instrumentation=instr_h),
          note="eager control, one dispatch per straight-line run")

    instr2 = Instrumentation()
    timed("program counter (Alg 2)",
          lambda: fib.run_pc(batch, instrumentation=instr2, max_stack_depth=32),
          kernel_calls=lambda: instr2.kernel_calls,
          note="flat machine; batches across stack depths")

    instr3 = Instrumentation()
    timed("program counter, fused (XLA analog)",
          lambda: fib.run_pc(batch, executor="fused", instrumentation=instr3,
                             max_stack_depth=32),
          kernel_calls=lambda: instr3.kernel_calls,
          note="one dispatch per block")
    rows[-1][-1] = (f"one dispatch per block "
                    f"({fib.execution_plan('fused').dispatch_count(instr3):,} total)")

    def run_matchbox():
        (out,) = mb_fib(MaskedBatch(batch))
        return out.data

    timed("Matchbox style (§5)", run_matchbox,
          note="masked-array type; queue on the Python stack")

    batcher = DynamicBatcher()
    ctx = LazyContext(batcher)

    def run_dynamic():
        def lazy_fib(n):
            if n <= 1:
                return ctx.constant(1)
            return lazy_fib(n - 2) + lazy_fib(n - 1)

        return [int(lazy_fib(int(n)).value()) for n in batch]

    timed("dynamic batching (§5)", run_dynamic,
          kernel_calls=lambda: batcher.kernel_calls,
          note="opportunistic")
    rows[-1][-1] = f"opportunistic; {batcher.batching_factor():.0f} nodes/kernel"

    print(f"fib on a batch of {len(batch)} (values {batch.min()}..{batch.max()}); "
          "all architectures agree bitwise\n")
    print(format_table(["architecture", "ms", "kernel calls", "notes"], rows))


if __name__ == "__main__":
    main()
