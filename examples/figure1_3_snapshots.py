"""Regenerate the runtime-state snapshots of the paper's Figures 1 and 3.

* **Figure 1** (local static autobatching, batch ``[3, 7, 4, 5]``): the
  recursion lives on the host Python stack, so the snapshot is a stack of
  interpreter activations, each with its own per-member program counter,
  active mask, and variable storage.  Logical threads in different
  activations cannot batch together.

* **Figure 3** (program-counter autobatching, batch ``[6, 7, 8, 9]``): the
  whole state is arrays — per-variable stacks with per-member stack
  pointers, plus a program counter with a stack of its own.  Threads at
  different stack depths batch whenever they wait at the same block.

Run: ``python examples/figure1_3_snapshots.py``
"""

import numpy as np

from repro import autobatch
from repro.vm.local_static import LocalStaticInterpreter
from repro.vm.program_counter import ProgramCounterVM


@autobatch
def fib(n):
    if n <= 1:
        return 1
    return fib(n - 2) + fib(n - 1)


def render_grid(title, columns, rows):
    """rows: list of (label, [cell per member]); '' for absent cells."""
    width = max(6, *(len(str(c)) for row in rows for c in row[1]))
    label_w = max(len(r[0]) for r in rows)
    lines = [title]
    header = " " * label_w + " | " + " ".join(str(c).rjust(width) for c in columns)
    lines.append(header)
    lines.append("-" * len(header))
    for label, cells in rows:
        lines.append(
            label.ljust(label_w)
            + " | "
            + " ".join(str(c).rjust(width) for c in cells)
        )
    return "\n".join(lines)


def figure1(snap_at_step: int = 12):
    """Snapshot the local-static machine mid-run, like Figure 1."""
    batch = np.array([3, 7, 4, 5])
    print(f"=== Figure 1: local static autobatching on fib({batch.tolist()}) ===\n")
    captured = []

    def on_step(interp, block_index, mask):
        interp.steps_seen = getattr(interp, "steps_seen", 0) + 1
        if interp.steps_seen == snap_at_step and not captured:
            frames = []
            for frame in interp.frames:
                env = frame["env"]
                values = {}
                for var in ("n", "__call4"):
                    st = env.get(var)
                    values[var] = (
                        st.array.copy() if st is not None and st.array is not None else None
                    )
                frames.append(
                    {
                        "pc": frame["pc"].copy(),
                        "active": frame["active"].copy(),
                        "vars": values,
                        "about_to_run": block_index,
                    }
                )
            captured.append(frames)

    interp = LocalStaticInterpreter(fib.program, on_step=on_step)
    result = interp.run([batch])
    frames = captured[0]
    members = list(range(len(batch)))
    print(f"snapshot at machine step {snap_at_step}; "
          f"{len(frames)} Python-stack activations deep\n")
    for depth, frame in enumerate(frames):
        rows = [
            ("active", ["*" if a else "." for a in frame["active"]]),
            ("pc (block)", list(frame["pc"])),
        ]
        for var, pretty in (("n", "n"), ("__call4", "left")):
            arr = frame["vars"][var]
            cells = list(arr) if arr is not None else ["-"] * len(batch)
            rows.append((pretty, cells))
        print(render_grid(f"-- Python stack frame {depth} --", members, rows))
        print()
    print("final fib:", result[0], "\n")


def figure3(n_steps: int = 40):
    """Snapshot the program-counter machine mid-run, like Figure 3."""
    batch = np.array([6, 7, 8, 9])
    print(f"=== Figure 3: program counter autobatching on fib({batch.tolist()}) ===\n")
    program = fib.stack_program(optimize=True)
    vm = ProgramCounterVM(program, batch_size=len(batch), max_stack_depth=16)
    vm.bind_inputs([batch])
    vm.scheduler.reset()
    for _ in range(n_steps):
        if not vm.step():
            break
    snap = vm.snapshot()
    members = list(range(len(batch)))

    print(f"snapshot after {n_steps} machine steps\n")
    rows = [("pc (top)", list(snap["program_counter"]))]
    print(render_grid("-- program counter --", members, rows))
    print()
    pc_frames = snap["pc_stack"]["frames"]
    depth = max(len(f) for f in pc_frames)
    rows = [
        (
            f"ret[{level}]",
            [f[level] if level < len(f) else "" for f in pc_frames],
        )
        for level in reversed(range(depth))
    ]
    rows.append(("sp", list(snap["pc_stack"]["stack_pointers"])))
    print(render_grid("-- pc return-address stack --", members, rows))
    print()
    for var, pretty in (("fib.n", "stack for n"), ("fib.__call4", "stack for left")):
        data = snap["variable_stacks"].get(var)
        if data is None:
            continue
        frames = data["frames"]
        depth = max(len(f) for f in frames)
        rows = [
            (
                f"[{level}]",
                [
                    (f[level] if level < len(f) else "")
                    for f in frames
                ],
            )
            for level in reversed(range(depth))
        ]
        rows.append(("sp", list(data["stack_pointers"])))
        print(render_grid(f"-- {pretty} (top-cached value at sp) --", members, rows))
        print()

    # Finish the run to show correctness is unaffected by pausing.
    while vm.step():
        pass
    print("final fib:", vm.outputs()[0])


if __name__ == "__main__":
    figure1()
    figure3()
