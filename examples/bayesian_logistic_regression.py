"""Section 4.1 end to end: batched NUTS on Bayesian logistic regression.

Builds the paper's synthetic problem (scaled down by default so the example
finishes in under a minute; pass ``--paper`` for the 10,000 x 100 original),
runs many chains in tandem under program-counter autobatching, and reports:

* posterior moments, R-hat and ESS across the batched chains,
* predictive accuracy of the posterior-mean weights vs the true weights,
* throughput of each execution strategy on this problem.

Run: ``python examples/bayesian_logistic_regression.py [--paper]``
"""

import argparse

import numpy as np

from repro.bench.report import format_table
from repro.nuts import NutsKernel, run_nuts
from repro.nuts.diagnostics import summarize
from repro.targets import BayesianLogisticRegression


def main():
    parser = argparse.ArgumentParser()
    parser.add_argument("--paper", action="store_true",
                        help="full 10,000 x 100 problem (slow)")
    args = parser.parse_args()

    if args.paper:
        target = BayesianLogisticRegression(n_data=10_000, n_features=100, seed=0)
        batch_size, n_traj, warmup, step = 32, 60, 20, 0.02
    else:
        target = BayesianLogisticRegression(n_data=800, n_features=8, seed=0)
        batch_size, n_traj, warmup, step = 24, 120, 40, 0.08

    print(f"target: logistic regression, {target.n_data} points x {target.dim} "
          f"regressors; {batch_size} chains x {n_traj} trajectories\n")

    kernel = NutsKernel(target)
    result = run_nuts(
        target, batch_size, n_traj, step,
        strategy="pc", seed=1, trace=True, max_depth=7, kernel=kernel,
    )
    chains = result.samples[warmup:]
    stats = summarize(chains)

    print("== posterior diagnostics (across batched chains) ==")
    print(f"max R-hat:              {stats['rhat'].max():.3f}")
    print(f"min ESS:                {stats['ess'].min():.0f}")
    posterior_mean = stats["mean"]
    err = np.linalg.norm(posterior_mean - target.true_weights) / np.linalg.norm(
        target.true_weights
    )
    print(f"||post.mean - w*|| / ||w*||: {err:.3f}")
    print(f"accuracy(posterior mean):    {target.accuracy(posterior_mean):.3f}")
    print(f"accuracy(true weights):      {target.accuracy(target.true_weights):.3f}")
    print(f"useful gradient evals:       {result.grad_evals:,.0f}")

    print("\n== strategy throughput on this problem ==")
    rows = []
    for strategy in ("pc_fused", "pc", "local", "hybrid", "reference", "stan"):
        r = run_nuts(
            target, batch_size, 2, step,
            strategy=strategy, seed=2, max_depth=6, kernel=kernel,
        )
        rows.append([strategy, f"{r.grad_evals:,.0f}", f"{r.wall_time:.3f}",
                     f"{r.gradients_per_second():,.0f}"])
    print(format_table(["strategy", "gradients", "seconds", "grads/sec"], rows))


if __name__ == "__main__":
    main()
