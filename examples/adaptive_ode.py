"""Batched adaptive ODE integration — the paper's "what else could we do?".

The introduction motivates autobatching with the classical algorithms people
struggle to batch by hand: tree searches, optimization routines, and
**ordinary differential equation solvers** (Chen et al. 2018).  An adaptive
step-size integrator is control-intensive in exactly the troublesome way:
each solution trajectory accepts/rejects steps and grows/shrinks its step
size depending on its own local error, so a batch of initial conditions
diverges immediately.

Here an adaptive RK2 (midpoint with step-doubling error control) is written
once, single-example, in the autobatchable subset — then run on a whole
batch of (y0, stiffness) pairs under program-counter autobatching, and
validated against scipy's reference integrator.

Run: ``python examples/adaptive_ode.py``
"""

import numpy as np
from scipy.integrate import solve_ivp

from repro import autobatch, ops
from repro.bench.report import format_table


@autobatch
def decay_rhs(t, y, k):
    """dy/dt = -k y + sin(t): linear decay with periodic forcing."""
    return 0.0 - k * y + ops.sin(t)


@autobatch
def rk2_step(t, y, k, h):
    """One midpoint step of size h."""
    f1 = decay_rhs(t, y, k)
    f2 = decay_rhs(t + 0.5 * h, y + 0.5 * h * f1, k)
    return y + h * f2


@autobatch
def integrate_adaptive(y0, k, t_end, tol):
    """Integrate to t_end with step-doubling error control.

    Returns the final value, the number of attempted steps, and the number
    of rejected steps — the latter two differ wildly across batch members.
    """
    t = 0.0
    y = y0
    h = 0.1
    attempts = 0.0
    rejects = 0.0
    while t < t_end:
        if t + h > t_end:
            h = t_end - t
        full = rk2_step(t, y, k, h)
        half = rk2_step(t, y, k, 0.5 * h)
        two_half = rk2_step(t + 0.5 * h, half, k, 0.5 * h)
        err = abs(two_half - full)
        attempts = attempts + 1.0
        if err <= tol:
            # Accept the more accurate two-half-steps value; grow the step.
            y = two_half
            t = t + h
            h = min(h * 1.5, 0.5)
        else:
            rejects = rejects + 1.0
            h = h * 0.5
    return y, attempts, rejects


def main():
    rng = np.random.RandomState(0)
    z = 12
    y0 = rng.uniform(0.5, 2.0, size=z)
    k = rng.uniform(0.1, 30.0, size=z)          # stiffness varies 300x
    t_end = np.full(z, 4.0)
    tol = np.full(z, 1e-6)

    print("Integrating dy/dt = -k*y + sin(t) to t=4, adaptive RK2, "
          f"{z} members, stiffness k in [{k.min():.2f}, {k.max():.2f}]\n")

    y_pc, attempts, rejects = integrate_adaptive.run_pc(
        y0, k, t_end, tol, max_stack_depth=16
    )
    y_ref, _, _ = integrate_adaptive.run_reference(y0, k, t_end, tol)

    rows = []
    for b in range(z):
        exact = solve_ivp(
            lambda t, y, kk=k[b]: -kk * y + np.sin(t),
            (0.0, 4.0), [y0[b]], rtol=1e-10, atol=1e-12,
        ).y[0, -1]
        rows.append([
            b, f"{k[b]:.2f}", int(attempts[b]), int(rejects[b]),
            f"{y_pc[b]:.6f}", f"{exact:.6f}", f"{abs(y_pc[b] - exact):.2e}",
        ])
    print(format_table(
        ["member", "k", "steps", "rejected", "autobatched", "scipy", "abs err"],
        rows,
    ))

    assert np.allclose(y_pc, y_ref), "strategies disagree!"
    print("\nbatched == member-at-a-time reference:", np.allclose(y_pc, y_ref))
    print(f"step counts range {int(attempts.min())}..{int(attempts.max())} — "
          "each member adapted independently, in one SIMD program.")


if __name__ == "__main__":
    main()
