"""Differentiable numpy operations.

Each op is built with :func:`~repro.autodiff.tape.defvjp`: a forward numpy
function plus one vector-Jacobian-product per argument.  The set covers what
the target densities need (linear algebra, elementwise transcendentals,
stable log-sigmoid / logsumexp) plus general conveniences.
"""

from __future__ import annotations

import numpy as np

from repro.autodiff.tape import defvjp

# -- arithmetic -----------------------------------------------------------------

add = defvjp(
    np.add,
    lambda r, x, y: lambda g: g,
    lambda r, x, y: lambda g: g,
)

sub = defvjp(
    np.subtract,
    lambda r, x, y: lambda g: g,
    lambda r, x, y: lambda g: -g,
)

mul = defvjp(
    np.multiply,
    lambda r, x, y: lambda g: g * y,
    lambda r, x, y: lambda g: g * x,
)

div = defvjp(
    np.true_divide,
    lambda r, x, y: lambda g: g / y,
    lambda r, x, y: lambda g: -g * x / (y * y),
)

neg = defvjp(np.negative, lambda r, x: lambda g: -g)

power = defvjp(
    np.power,
    lambda r, x, y: lambda g: g * y * np.power(x, y - 1),
    lambda r, x, y: lambda g: g * r * np.log(np.where(x > 0, x, 1.0)),
)

# -- elementwise transcendentals ----------------------------------------------

exp = defvjp(np.exp, lambda r, x: lambda g: g * r)
log = defvjp(np.log, lambda r, x: lambda g: g / x)
log1p = defvjp(np.log1p, lambda r, x: lambda g: g / (1.0 + x))
sqrt = defvjp(np.sqrt, lambda r, x: lambda g: 0.5 * g / r)
tanh = defvjp(np.tanh, lambda r, x: lambda g: g * (1.0 - r * r))
sin = defvjp(np.sin, lambda r, x: lambda g: g * np.cos(x))
cos = defvjp(np.cos, lambda r, x: lambda g: -g * np.sin(x))
abs_ = defvjp(np.abs, lambda r, x: lambda g: g * np.sign(x))


def _sigmoid_forward(x):
    out = np.empty_like(np.asarray(x, dtype=np.float64))
    pos = x >= 0
    out[pos] = 1.0 / (1.0 + np.exp(-x[pos]))
    ex = np.exp(x[~pos])
    out[~pos] = ex / (1.0 + ex)
    return out


sigmoid = defvjp(_sigmoid_forward, lambda r, x: lambda g: g * r * (1.0 - r))


def _log_sigmoid_forward(x):
    # log sigmoid(x) = -softplus(-x), computed stably.
    return -np.logaddexp(0.0, -x)


log_sigmoid = defvjp(
    _log_sigmoid_forward,
    lambda r, x: lambda g: g * _sigmoid_forward(-x),
)

# -- reductions / linear algebra -----------------------------------------------


def _sum_vjp(axis):
    def maker(r, x):
        def vjp(g):
            if axis is None:
                return np.broadcast_to(g, np.shape(x))
            g = np.expand_dims(g, axis)
            return np.broadcast_to(g, np.shape(x))

        return vjp

    return maker


def sum(x, axis=None):  # noqa: A001 - mirrors numpy naming
    op = defvjp(lambda v: np.sum(v, axis=axis), _sum_vjp(axis))
    return op(x)


def mean(x, axis=None):
    """Differentiable sum over ``axis`` (None = all elements)."""
    from repro.autodiff.tape import ensure_variable

    x = ensure_variable(x)
    count = x.value.size if axis is None else x.value.shape[axis]
    return div(sum(x, axis=axis), float(count))


matmul = defvjp(
    np.matmul,
    lambda r, x, y: lambda g: np.matmul(g, np.swapaxes(y, -1, -2) if np.ndim(y) > 1 else y[None, :]) if np.ndim(y) > 1 else np.multiply.outer(g, y),
    lambda r, x, y: lambda g: np.matmul(np.swapaxes(x, -1, -2), g) if np.ndim(x) > 1 else np.multiply.outer(x, g),
)


def dot_last(x, y):
    """Per-batch-member inner product over the last axis."""
    return sum(mul(x, y), axis=-1)


def logsumexp(x, axis=-1):
    """Numerically stable differentiable log-sum-exp over ``axis``."""
    def forward(v):
        m = np.max(v, axis=axis, keepdims=True)
        return (m + np.log(np.sum(np.exp(v - m), axis=axis, keepdims=True))).squeeze(axis)

    def maker(r, v):
        def vjp(g):
            r_expanded = np.expand_dims(r, axis)
            g_expanded = np.expand_dims(g, axis)
            return g_expanded * np.exp(v - r_expanded)

        return vjp

    return defvjp(forward, maker)(x)


def where(cond, a, b):
    """Differentiable select; the condition itself is non-differentiable."""
    cond = np.asarray(cond)
    op = defvjp(
        lambda av, bv: np.where(cond, av, bv),
        lambda r, av, bv: lambda g: np.where(cond, g, 0.0),
        lambda r, av, bv: lambda g: np.where(cond, 0.0, g),
    )
    return op(a, b)
