"""Gradient functionals on top of the tape: :func:`grad`,
:func:`value_and_grad`, and a finite-difference checker used by the tests and
by the targets' analytic-gradient cross-validation.

The objective convention matches what NUTS needs: ``f`` maps a state array of
shape ``(Z, d)`` (or ``(d,)``) to a per-batch-member scalar of shape ``(Z,)``
(or a scalar).  Because batch members are independent, seeding the backward
pass with ones computes every member's gradient in one sweep.
"""

from __future__ import annotations

from typing import Callable, Sequence, Tuple, Union

import numpy as np

from repro.autodiff.tape import Tape, Variable

Objective = Callable[..., Variable]


def value_and_grad(f: Objective, argnums: Union[int, Sequence[int]] = 0):
    """Return ``g(*args) -> (value, grads)`` differentiating ``f``.

    ``f`` must return a :class:`Variable` whose value is a scalar or a vector
    of independent per-batch-member scalars.  ``argnums`` selects which
    positional arguments to differentiate with respect to; a single int yields
    a single gradient array, a sequence yields a tuple of arrays.
    """
    single = isinstance(argnums, int)
    indices: Tuple[int, ...] = (argnums,) if single else tuple(argnums)

    def wrapped(*args):
        variables = list(args)
        for i in indices:
            variables[i] = Variable(args[i])
        with Tape() as tape:
            out = f(*variables)
        if not isinstance(out, Variable):
            raise TypeError(
                "objective must return a Variable (did the function avoid "
                f"all differentiable ops?), got {type(out).__name__}"
            )
        grads = tape.gradient(out, [variables[i] for i in indices])
        if single:
            return out.value, grads[0]
        return out.value, tuple(grads)

    return wrapped


def grad(f: Objective, argnums: Union[int, Sequence[int]] = 0):
    """Return ``g(*args) -> grads``, discarding the value.  See
    :func:`value_and_grad` for conventions."""
    vag = value_and_grad(f, argnums=argnums)

    def wrapped(*args):
        return vag(*args)[1]

    return wrapped


def check_grad(
    f: Objective,
    x: np.ndarray,
    *extra_args,
    eps: float = 1e-6,
    rtol: float = 1e-4,
    atol: float = 1e-6,
) -> float:
    """Compare ``grad(f)`` against central finite differences at ``x``.

    Returns the maximum absolute deviation and raises ``AssertionError`` if
    it exceeds ``atol + rtol * |fd|`` anywhere.  The objective is summed to a
    scalar first so the check is well defined for batched objectives.
    """
    x = np.asarray(x, dtype=np.float64)

    def scalar_f(v, *rest):
        out = f(v, *rest)
        value = out.value if isinstance(out, Variable) else np.asarray(out)
        if value.ndim == 0:
            return out
        from repro.autodiff import ops

        return ops.sum(out)

    analytic = grad(scalar_f)(x, *extra_args)
    fd = np.zeros_like(x)
    flat = x.reshape(-1)
    fd_flat = fd.reshape(-1)
    for i in range(flat.size):
        bump = np.zeros_like(flat)
        bump[i] = eps
        hi = scalar_f(Variable((flat + bump).reshape(x.shape)), *extra_args)
        lo = scalar_f(Variable((flat - bump).reshape(x.shape)), *extra_args)
        hi_v = hi.value if isinstance(hi, Variable) else hi
        lo_v = lo.value if isinstance(lo, Variable) else lo
        fd_flat[i] = (np.asarray(hi_v) - np.asarray(lo_v)) / (2.0 * eps)
    deviation = np.abs(analytic - fd)
    bound = atol + rtol * np.abs(fd)
    if np.any(deviation > bound):
        worst = float(deviation.max())
        raise AssertionError(
            f"analytic gradient disagrees with finite differences: "
            f"max deviation {worst:.3e} exceeds tolerance"
        )
    return float(deviation.max())
