"""Tape-based reverse-mode automatic differentiation over numpy.

The paper's system gets gradients from TensorFlow; NUTS only needs the
gradient of the target log-density.  This substrate provides that capability
from scratch: a :class:`~repro.autodiff.tape.Variable` wrapper with operator
overloads, a gradient tape, and :func:`grad` / :func:`value_and_grad` for
scalar (or per-batch-member) objectives.

::

    from repro.autodiff import grad, ops as ad

    def log_prob(q):                      # q: (Z, d)
        return -0.5 * ad.sum(q * q, axis=-1)

    grad_log_prob = grad(log_prob)        # (Z, d) -> (Z, d)
"""

from repro.autodiff.tape import Tape, Variable
from repro.autodiff.grad import check_grad, grad, value_and_grad
from repro.autodiff import ops

__all__ = ["Tape", "Variable", "grad", "value_and_grad", "check_grad", "ops"]
