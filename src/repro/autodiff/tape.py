"""The gradient tape and the :class:`Variable` wrapper.

Reverse mode in ~150 lines: forward execution records, for every produced
variable, its parent variables and one vector-Jacobian-product (VJP) closure
per parent; the backward pass walks the records in reverse, accumulating
cotangents.  Broadcasting is handled by summing cotangents back down to each
parent's shape (:func:`unbroadcast`).
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np


def unbroadcast(grad: np.ndarray, shape: Tuple[int, ...]) -> np.ndarray:
    """Sum ``grad`` down to ``shape``, undoing numpy broadcasting."""
    grad = np.asarray(grad)
    # Sum away leading axes numpy added.
    while grad.ndim > len(shape):
        grad = grad.sum(axis=0)
    # Sum over axes that were broadcast from size 1.
    for axis, size in enumerate(shape):
        if size == 1 and grad.shape[axis] != 1:
            grad = grad.sum(axis=axis, keepdims=True)
    return grad.reshape(shape)


class Node:
    __slots__ = ("output_id", "parents", "vjps")

    def __init__(self, output_id: int, parents: Tuple["Variable", ...], vjps):
        self.output_id = output_id
        self.parents = parents
        self.vjps = vjps


class Tape:
    """Records operations while active; replayable backward."""

    _active: List["Tape"] = []

    def __init__(self) -> None:
        self.nodes: List[Node] = []

    def __enter__(self) -> "Tape":
        Tape._active.append(self)
        return self

    def __exit__(self, *exc) -> None:
        Tape._active.pop()

    @classmethod
    def current(cls) -> Optional["Tape"]:
        """The innermost active tape, or None outside any tape."""
        return cls._active[-1] if cls._active else None

    def record(self, output: "Variable", parents, vjps) -> None:
        """Record one op: its output id, parents, and per-parent VJPs."""
        self.nodes.append(Node(id(output), tuple(parents), tuple(vjps)))

    def gradient(
        self,
        output: "Variable",
        sources: Sequence["Variable"],
        seed: Optional[np.ndarray] = None,
    ) -> List[np.ndarray]:
        """Cotangents of ``sources`` for one backward pass from ``output``."""
        cotangents: Dict[int, np.ndarray] = {}
        if seed is None:
            seed = np.ones_like(np.asarray(output.value, dtype=np.float64))
        cotangents[id(output)] = np.asarray(seed, dtype=np.float64)
        for node in reversed(self.nodes):
            out_ct = cotangents.pop(node.output_id, None)
            if out_ct is None:
                continue
            for parent, vjp in zip(node.parents, node.vjps):
                if vjp is None:
                    continue
                contrib = unbroadcast(vjp(out_ct), np.shape(parent.value))
                pid = id(parent)
                if pid in cotangents:
                    cotangents[pid] = cotangents[pid] + contrib
                else:
                    cotangents[pid] = contrib
        return [
            cotangents.get(id(s), np.zeros_like(np.asarray(s.value, dtype=np.float64)))
            for s in sources
        ]


class Variable:
    """A numpy value participating in tape recording via operator overloads."""

    __slots__ = ("value",)
    __array_priority__ = 100  # our reflected ops beat ndarray's

    def __init__(self, value) -> None:
        self.value = np.asarray(value, dtype=np.float64)

    @property
    def shape(self):
        return self.value.shape

    @property
    def ndim(self):
        return self.value.ndim

    def __repr__(self) -> str:
        return f"Variable({self.value!r})"

    # Operator overloads delegate to repro.autodiff.ops (imported lazily to
    # avoid a module cycle).

    def _ops(self):
        from repro.autodiff import ops

        return ops

    def __add__(self, other):
        return self._ops().add(self, other)

    __radd__ = __add__

    def __mul__(self, other):
        return self._ops().mul(self, other)

    __rmul__ = __mul__

    def __sub__(self, other):
        return self._ops().sub(self, other)

    def __rsub__(self, other):
        return self._ops().sub(other, self)

    def __truediv__(self, other):
        return self._ops().div(self, other)

    def __rtruediv__(self, other):
        return self._ops().div(other, self)

    def __neg__(self):
        return self._ops().neg(self)

    def __pow__(self, exponent):
        return self._ops().power(self, exponent)

    def __matmul__(self, other):
        return self._ops().matmul(self, other)

    def __rmatmul__(self, other):
        return self._ops().matmul(other, self)

    def sum(self, axis=None):
        """Tape-aware sum (see :func:`repro.autodiff.ops.sum`)."""
        return self._ops().sum(self, axis=axis)


def ensure_variable(x) -> Variable:
    """Wrap ``x`` in a :class:`Variable` unless it already is one."""
    return x if isinstance(x, Variable) else Variable(x)


def defvjp(forward: Callable[..., np.ndarray], *vjp_makers) -> Callable[..., Variable]:
    """Build a differentiable op from a forward fn and per-argument VJP makers.

    Each ``vjp_maker(result, *arg_values)`` returns ``vjp(cotangent)`` for
    its positional argument, or is ``None`` for non-differentiable arguments.
    """

    def op(*args) -> Variable:
        variables = [ensure_variable(a) for a in args]
        values = [v.value for v in variables]
        result = Variable(forward(*values))
        tape = Tape.current()
        if tape is not None:
            vjps = [
                maker(result.value, *values) if maker is not None else None
                for maker in vjp_makers
            ]
            tape.record(result, variables, vjps)
        return result

    return op
