"""Experiment harness regenerating every figure of the paper's evaluation.

* :mod:`repro.bench.figure5` — NUTS throughput (gradient evaluations per
  second) versus batch size on Bayesian logistic regression, for every
  execution strategy plus the two baselines; also extracts the Section 4.1
  crossover claims.
* :mod:`repro.bench.figure6` — batch gradient utilization versus batch size
  on the correlated Gaussian, local-static versus program-counter.
* :mod:`repro.bench.ablations` — the paper's two "significant free choices"
  (masking vs gather-scatter; block-selection heuristic) and the Section 3
  lowering optimizations, measured head-to-head.
* :mod:`repro.bench.timing` / :mod:`repro.bench.report` — shared best-of-k
  timing and table/series rendering.

Each figure module is runnable: ``python -m repro.bench.figure5``.
"""

from repro.bench.timing import best_of, timed
from repro.bench.report import format_series, format_table

__all__ = ["best_of", "timed", "format_table", "format_series"]
