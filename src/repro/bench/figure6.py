"""Figure 6: batch gradient utilization on the correlated Gaussian.

**Utilization** is the fraction of gradient-kernel lanes that computed
useful work: ``active / slots`` summed over every execution of a
``"gradient"``-tagged primitive (see
:class:`~repro.vm.instrumentation.Instrumentation`).  It is 1.0 at batch
size 1 and decays as batch members choose different tree sizes.

The experiment contrasts the paper's two synchronization regimes across a
multi-trajectory chain (10 trajectories, as in Section 4.2):

* **local static** — recursion lives on the Python stack, so gradients can
  only batch between members at identical call paths; members that finish a
  subtree/trajectory early stall.  The paper reads the asymptote of this
  line as "the longest trajectory NUTS chooses tends to be about four times
  longer than the average" (utilization → ~0.25).
* **program counter** — one flat machine; the gradient leaf is a single
  block shared by every call site and stack depth, so members in different
  trajectories (or different subtrees) batch together.

Run as ``python -m repro.bench.figure6``.
"""

from __future__ import annotations

import argparse
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.bench.report import format_series, format_table
from repro.nuts.kernel import NutsKernel
from repro.targets.gaussian import CorrelatedGaussian


@dataclass(frozen=True)
class Figure6Config:
    dim: int = 100
    rho: float = 0.9
    min_scale: float = 0.1
    max_scale: float = 1.0
    batch_sizes: Tuple[int, ...] = (1, 2, 3, 5, 10, 30, 100)
    n_trajectories: int = 10
    step_size: float = 0.05
    max_depth: int = 7
    n_leapfrog: int = 4
    seed: int = 0

    @classmethod
    def smoke(cls) -> "Figure6Config":
        return cls(
            dim=8,
            batch_sizes=(1, 2, 4, 8),
            n_trajectories=3,
            max_depth=4,
            step_size=0.1,
        )


@dataclass
class Figure6Point:
    batch_size: int
    strategy: str
    utilization: float          #: useful gradient lanes / executed lanes
    grad_evals: float           #: useful gradients (in-program count)
    gradient_kernel_calls: int  #: how many gradient kernels were dispatched


@dataclass
class Figure6Result:
    config: Figure6Config
    points: List[Figure6Point]

    def series(self) -> Tuple[List[int], Dict[str, List[Optional[float]]]]:
        """(batch sizes, {strategy: utilization column})."""
        xs = sorted({p.batch_size for p in self.points})
        out: Dict[str, List[Optional[float]]] = {}
        for strategy in ("local", "pc"):
            column = []
            for x in xs:
                match = [
                    p for p in self.points
                    if p.strategy == strategy and p.batch_size == x
                ]
                column.append(match[0].utilization if match else None)
            out[strategy] = column
        return xs, out

    def recovery_factor(self, batch_size: int) -> Optional[float]:
        """PC utilization / local utilization at one batch size."""
        local = [p for p in self.points if p.strategy == "local" and p.batch_size == batch_size]
        pc = [p for p in self.points if p.strategy == "pc" and p.batch_size == batch_size]
        if not local or not pc or local[0].utilization == 0:
            return None
        return pc[0].utilization / local[0].utilization

    def render(self) -> str:
        """The full markdown report: table, chart, recovery factors."""
        headers = ["batch", "strategy", "utilization", "useful grads", "gradient kernels"]
        rows = [
            [p.batch_size, p.strategy, p.utilization, p.grad_evals, p.gradient_kernel_calls]
            for p in sorted(self.points, key=lambda p: (p.batch_size, p.strategy))
        ]
        xs, series = self.series()
        recovery = [
            f"* batch {x}: PC recovers {self.recovery_factor(x):.2f}x of local-static utilization"
            for x in xs
            if self.recovery_factor(x) is not None
        ]
        chart = format_series(
            xs,
            {k: v for k, v in series.items()},
            x_label="batch",
            y_label="utilization",
            log_y=False,
        )
        return (
            "## Figure 6 sweep\n\n"
            + format_table(headers, rows)
            + "\n\n### Utilization vs batch size\n\n```\n"
            + chart
            + "\n```\n\n### PC-over-local recovery\n\n"
            + "\n".join(recovery)
        )


def run_figure6(config: Figure6Config = Figure6Config()) -> Figure6Result:
    """Execute the utilization sweep and collect every cell."""
    target = CorrelatedGaussian(
        dim=config.dim,
        rho=config.rho,
        min_scale=config.min_scale,
        max_scale=config.max_scale,
    )
    kernel = NutsKernel(target)
    points: List[Figure6Point] = []
    for z in config.batch_sizes:
        q0 = target.initial_state(z, seed=config.seed)
        for strategy in ("local", "pc"):
            result = kernel.run(
                q0,
                step_size=config.step_size,
                n_trajectories=config.n_trajectories,
                max_depth=config.max_depth,
                n_leapfrog=config.n_leapfrog,
                seed=config.seed,
                strategy=strategy,
                instrument=True,
            )
            counter = result.instrumentation.count(tag="gradient")
            points.append(
                Figure6Point(
                    batch_size=z,
                    strategy=strategy,
                    utilization=counter.utilization(),
                    grad_evals=result.total_grad_evals,
                    gradient_kernel_calls=counter.executions,
                )
            )
    return Figure6Result(config=config, points=points)


def main(argv: Optional[Sequence[str]] = None) -> None:
    """CLI entry point for the Figure 6 sweep."""
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true", help="tiny smoke-test sizes")
    args = parser.parse_args(argv)
    config = Figure6Config.smoke() if args.smoke else Figure6Config()
    result = run_figure6(config)
    print(result.render())


if __name__ == "__main__":
    main()
