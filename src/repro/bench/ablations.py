"""Ablations for the paper's design choices (Sections 2 and 3).

The paper names two "significant free choices" in the runtimes and five
lowering optimizations; this harness measures each head-to-head:

* **A. masking vs gather-scatter** (free choice 1) — same program, same
  schedule; masking executes ``Z`` lanes per kernel and wastes the inactive
  ones, gather-scatter executes only active lanes but pays gather/scatter
  data movement.
* **B. block-selection heuristic** (free choice 2) — ``earliest`` (the
  Algorithm 1/2 default), ``most_active``, ``round_robin``; all are correct,
  they differ in step count and batching quality.
* **C. lowering optimizations** (Section 3's optimizations 2, 3, and 5,
  swept individually via :class:`~repro.lowering.pipeline.LoweringOptions`
  plus the all-on/all-off extremes) — measured through stack traffic
  (pushes/pops and per-lane stack movement) and machine steps.

Run as ``python -m repro.bench.ablations``.
"""

from __future__ import annotations

import argparse
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

from repro.bench.report import format_table
from repro.bench.timing import best_of
from repro.lowering.pipeline import LoweringOptions
from repro.nuts.kernel import NutsKernel
from repro.targets.gaussian import CorrelatedGaussian
from repro.vm.instrumentation import Instrumentation


@dataclass(frozen=True)
class AblationConfig:
    batch_size: int = 32
    fib_inputs: Sequence[int] = tuple(range(6, 16))
    dim: int = 10
    n_trajectories: int = 2
    step_size: float = 0.1
    max_depth: int = 5
    repeats: int = 3
    seed: int = 0

    @classmethod
    def smoke(cls) -> "AblationConfig":
        return cls(batch_size=6, fib_inputs=(4, 5, 6), dim=4, n_trajectories=1,
                   max_depth=3, repeats=1)


@dataclass
class AblationRow:
    workload: str
    variant: str
    seconds: float
    steps: int
    kernel_calls: int
    utilization: float
    push_lanes: int
    pop_lanes: int
    stacked_writes: int
    register_writes: int


from repro import autobatch


@autobatch
def _fib(n):
    if n <= 1:
        return 1
    return _fib(n - 2) + _fib(n - 1)


def _fib_workload(config: AblationConfig):
    rng = np.random.RandomState(config.seed)
    inputs = rng.choice(config.fib_inputs, size=config.batch_size)
    return _fib, (np.asarray(inputs, dtype=np.int64),)


@autobatch
def _chain_calls(n):
    # Adjacent recursive calls: the save/restore between them is the
    # Pop;Push pair that optimization 5 cancels (fib's single-expression
    # recursion never produces one, so it cannot exercise that toggle).
    if n <= 0:
        return 1
    a = n - 1
    b = n - 2
    left = _chain_calls(a)
    right = _chain_calls(b)
    return left + right


def _calls_workload(config: AblationConfig):
    rng = np.random.RandomState(config.seed)
    inputs = rng.choice(config.fib_inputs, size=config.batch_size)
    return _chain_calls, (np.asarray(inputs, dtype=np.int64),)


def _nuts_workload(config: AblationConfig):
    target = CorrelatedGaussian(dim=config.dim, rho=0.5)
    kernel = NutsKernel(target)
    q0 = target.initial_state(config.batch_size, seed=config.seed)
    z = config.batch_size
    inputs = (
        q0,
        np.full(z, config.step_size),
        np.full(z, float(config.max_depth)),
        np.full(z, 4.0),
        np.full(z, float(config.n_trajectories)),
        np.zeros(z),
        kernel.initial_rng(z, config.seed),
    )
    return kernel.functions.nuts_chain, inputs


def _run_variant(
    workload_name: str,
    variant_name: str,
    run: Callable[[Optional[Instrumentation]], object],
    repeats: int,
) -> AblationRow:
    instr = Instrumentation()
    run(instr)  # instrumented run for the counters
    timing = best_of(lambda: run(None), k=repeats, warmup=1, budget_seconds=15.0)
    return AblationRow(
        workload=workload_name,
        variant=variant_name,
        seconds=timing.best_seconds,
        steps=instr.steps,
        kernel_calls=instr.kernel_calls,
        utilization=instr.utilization(),
        push_lanes=instr.push_lanes,
        pop_lanes=instr.pop_lanes,
        stacked_writes=instr.stacked_writes,
        register_writes=instr.register_writes,
    )


def ablation_masking(config: AblationConfig = AblationConfig()) -> List[AblationRow]:
    """Masking vs gather-scatter, on both machines."""
    rows: List[AblationRow] = []
    for workload_name, (program, inputs) in (
        ("fib", _fib_workload(config)),
        ("nuts", _nuts_workload(config)),
    ):
        for machine in ("local", "pc"):
            for mode in ("mask", "gather"):
                def run(instr, machine=machine, mode=mode):
                    kwargs = dict(mode=mode, instrumentation=instr)
                    if machine == "local":
                        return program.run_local(*inputs, **kwargs)
                    return program.run_pc(*inputs, max_stack_depth=32, **kwargs)

                rows.append(
                    _run_variant(
                        workload_name, f"{machine}/{mode}", run, config.repeats
                    )
                )
    return rows


def ablation_scheduler(config: AblationConfig = AblationConfig()) -> List[AblationRow]:
    """Block-selection heuristics on the PC machine."""
    rows: List[AblationRow] = []
    for workload_name, (program, inputs) in (
        ("fib", _fib_workload(config)),
        ("nuts", _nuts_workload(config)),
    ):
        for scheduler in ("earliest", "most_active", "round_robin"):
            def run(instr, scheduler=scheduler):
                return program.run_pc(
                    *inputs,
                    scheduler=scheduler,
                    max_stack_depth=32,
                    instrumentation=instr,
                )

            rows.append(
                _run_variant(workload_name, scheduler, run, config.repeats)
            )
    return rows


#: Ablation C variants: ``optimize=`` values passed straight through the
#: public ``run_pc`` API (per-optimization toggles are LoweringOptions
#: instances — each gets its own cached lowering and execution plan).
OPTIMIZATION_VARIANTS: List = [
    ("optimized", True),
    ("no_temp_opt", LoweringOptions(temp_opt=False)),
    ("no_register_opt", LoweringOptions(register_opt=False)),
    ("no_pop_push_opt", LoweringOptions(pop_push_opt=False)),
    ("unoptimized", False),
]


def ablation_optimizations(config: AblationConfig = AblationConfig()) -> List[AblationRow]:
    """Lowering optimizations swept individually (stack traffic is the
    headline): all-on, each of optimizations 2/3/5 disabled alone, all-off."""
    rows: List[AblationRow] = []
    for workload_name, (program, inputs) in (
        ("fib", _fib_workload(config)),
        ("calls", _calls_workload(config)),
        ("nuts", _nuts_workload(config)),
    ):
        for variant, optimize in OPTIMIZATION_VARIANTS:
            def run(instr, optimize=optimize):
                return program.run_pc(
                    *inputs,
                    optimize=optimize,
                    max_stack_depth=64,
                    instrumentation=instr,
                )

            rows.append(
                _run_variant(workload_name, variant, run, config.repeats)
            )
    return rows


def render(rows: List[AblationRow], title: str) -> str:
    """Markdown table for one ablation's rows."""
    headers = ["workload", "variant", "best s", "steps", "kernel calls",
               "utilization", "push lanes", "pop lanes", "stacked writes",
               "register writes"]
    table = format_table(
        headers,
        [
            [r.workload, r.variant, r.seconds, r.steps, r.kernel_calls,
             r.utilization, r.push_lanes, r.pop_lanes, r.stacked_writes,
             r.register_writes]
            for r in rows
        ],
    )
    return f"## {title}\n\n{table}"


def main(argv: Optional[Sequence[str]] = None) -> None:
    """CLI entry point: run and print all three ablations."""
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true")
    args = parser.parse_args(argv)
    config = AblationConfig.smoke() if args.smoke else AblationConfig()
    print(render(ablation_masking(config), "Ablation A: masking vs gather-scatter"))
    print()
    print(render(ablation_scheduler(config), "Ablation B: block-selection heuristic"))
    print()
    print(render(ablation_optimizations(config), "Ablation C: lowering optimizations"))


if __name__ == "__main__":
    main()
