"""Figure 5: NUTS throughput versus batch size on Bayesian logistic regression.

For every batch size and every strategy the harness measures **gradient
evaluations per second** (the paper's y-axis; gradients counted in-program,
"excluding waste due to synchronization"), two ways:

* **measured** — real wall-clock, best of ``repeats`` warm runs, exactly the
  paper's protocol (Section 4.1);
* **simulated** — the deterministic device cost model of
  :mod:`repro.backend.device` applied to the run's instrumentation, which
  reproduces the *shape* of the paper's CPU and GPU panels bit-for-bit
  regardless of host machine noise.

Strategy-to-paper mapping:

====================  =====================================================
``pc_fused``          "Program counter autobatching, compiled entirely with
                      XLA" (fused basic blocks; sim accounting ``fused``)
``pc``                the same machine with per-op dispatch (sim ``eager``)
``local``             "Local static autobatching, executed entirely with
                      TensorFlow Eager" (sim ``eager``)
``hybrid``            "control in Eager, basic blocks compiled with XLA":
                      the local machine with fused per-block dispatches
                      (sim: local instrumentation, ``hybrid`` accounting)
``reference``         "the same program executed directly in Eager mode
                      without autobatching (one member at a time)"
``stan``              serial iterative NUTS (see baselines.stan_like)
====================  =====================================================

Run as ``python -m repro.bench.figure5`` (add ``--paper`` for the full-size
problem; the default is laptop-scale and finishes in a couple of minutes).
"""

from __future__ import annotations

import argparse
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.backend.device import CPU_DEVICE, GPU_DEVICE, DeviceModel
from repro.baselines.stan_like import StanLikeSampler
from repro.bench.report import crossover, format_series, format_table
from repro.bench.timing import best_of
from repro.nuts.kernel import PC_STRATEGY_EXECUTORS, NutsKernel
from repro.targets.logistic import BayesianLogisticRegression
from repro.vm.instrumentation import Instrumentation

#: Every Figure 5 strategy, all executed for real wall-clock measurement.
#: The program-counter rows differ only in their block executor — selected
#: through :data:`~repro.nuts.kernel.PC_STRATEGY_EXECUTORS`, not separate
#: run functions — and their simulated dispatch costs come from the
#: matching :class:`~repro.vm.executors.ExecutionPlan`.
EXECUTED_STRATEGIES = ("pc_fused", "pc", "local", "hybrid", "reference", "stan")
ALL_STRATEGIES = EXECUTED_STRATEGIES


@dataclass(frozen=True)
class Figure5Config:
    """Problem and sweep sizes for the Figure 5 harness."""

    n_data: int = 1_000
    n_features: int = 20
    batch_sizes: Tuple[int, ...] = (1, 2, 4, 8, 16, 32, 64, 128)
    n_trajectories: int = 2
    step_size: float = 0.1
    max_depth: int = 6
    n_leapfrog: int = 4
    seed: int = 0
    repeats: int = 5
    warmup: int = 1
    budget_seconds: float = 20.0
    #: Per-strategy batch-size caps (slow serial strategies stop early).
    caps: Dict[str, int] = field(
        default_factory=lambda: {
            "reference": 128, "stan": 128, "local": 128, "hybrid": 128,
        }
    )
    stan_speed_ratio: float = 1.0

    @classmethod
    def paper_scale(cls) -> "Figure5Config":
        """The full problem of Section 4.1 (expect a long run)."""
        return cls(
            n_data=10_000,
            n_features=100,
            batch_sizes=(1, 4, 16, 64, 256, 1024, 4096),
            caps={"reference": 16, "stan": 16, "local": 256, "hybrid": 256},
            budget_seconds=120.0,
        )

    @classmethod
    def smoke(cls) -> "Figure5Config":
        """Tiny config for tests."""
        return cls(
            n_data=64,
            n_features=4,
            batch_sizes=(1, 4, 8),
            n_trajectories=1,
            max_depth=3,
            repeats=1,
            warmup=0,
            budget_seconds=5.0,
            caps={"reference": 8, "stan": 8, "local": 8, "hybrid": 8},
        )


@dataclass
class Figure5Point:
    """One (strategy, batch size) cell of the sweep."""

    strategy: str
    batch_size: int
    grad_evals: float
    best_seconds: Optional[float]          #: None for simulated-only strategies
    simulated_seconds: Dict[str, float]    #: device name -> estimated seconds

    def grads_per_second(self) -> Optional[float]:
        """Measured throughput, or None when not executed."""
        if self.best_seconds is None or self.best_seconds <= 0:
            return None
        return self.grad_evals / self.best_seconds

    def simulated_grads_per_second(self, device: str) -> Optional[float]:
        """Device-model throughput for ``device`` ('cpu'/'gpu')."""
        seconds = self.simulated_seconds.get(device)
        if seconds is None or seconds <= 0:
            return None
        return self.grad_evals / seconds


@dataclass
class Figure5Result:
    config: Figure5Config
    points: List[Figure5Point]

    def series(
        self, metric: str = "measured", device: str = "gpu"
    ) -> Tuple[List[int], Dict[str, List[Optional[float]]]]:
        """(batch_sizes, {strategy: grads/sec by batch size})."""
        xs = sorted({p.batch_size for p in self.points})
        out: Dict[str, List[Optional[float]]] = {}
        for strategy in ALL_STRATEGIES:
            column: List[Optional[float]] = []
            for x in xs:
                match = [
                    p for p in self.points
                    if p.strategy == strategy and p.batch_size == x
                ]
                if not match:
                    column.append(None)
                elif metric == "measured":
                    column.append(match[0].grads_per_second())
                else:
                    column.append(match[0].simulated_grads_per_second(device))
            if any(v is not None for v in column):
                out[strategy] = column
        return xs, out

    def crossovers(self, metric: str = "measured", device: str = "gpu") -> Dict[str, Optional[float]]:
        """Batch size where each batched strategy overtakes the Stan line."""
        xs, series = self.series(metric, device)
        stan = series.get("stan")
        result: Dict[str, Optional[float]] = {}
        if stan is None:
            return result
        for name in ("pc_fused", "pc", "local", "hybrid"):
            if name in series:
                result[name] = crossover(xs, series[name], stan)
        return result

    def render(self) -> str:
        """The full markdown report: table, charts, crossovers."""
        sections = []
        headers = ["batch", "strategy", "grads", "measured s", "grads/s",
                   "sim cpu grads/s", "sim gpu grads/s"]
        rows = []
        for p in sorted(self.points, key=lambda p: (p.batch_size, p.strategy)):
            rows.append([
                p.batch_size,
                p.strategy,
                p.grad_evals,
                p.best_seconds if p.best_seconds is not None else "-",
                p.grads_per_second() or "-",
                p.simulated_grads_per_second("cpu") or "-",
                p.simulated_grads_per_second("gpu") or "-",
            ])
        sections.append("## Figure 5 sweep\n\n" + format_table(headers, rows))
        for metric, device, title in (
            ("measured", "", "measured wall-clock"),
            ("simulated", "cpu", "simulated CPU device"),
            ("simulated", "gpu", "simulated GPU device"),
        ):
            xs, series = self.series(metric, device)
            if series:
                sections.append(
                    f"### Gradients/sec vs batch size ({title})\n\n```\n"
                    + format_series(xs, series, x_label="batch", y_label="grads/s")
                    + "\n```"
                )
        for metric, device in (("measured", ""), ("simulated", "cpu")):
            cross = self.crossovers(metric, device)
            if cross:
                label = "measured" if metric == "measured" else f"simulated {device}"
                lines = [
                    f"* `{k}` overtakes the Stan-like baseline at batch ~{v:.0f}"
                    if v is not None
                    else f"* `{k}` never overtakes the Stan-like baseline in this sweep"
                    for k, v in cross.items()
                ]
                sections.append(f"### Crossovers vs Stan ({label})\n\n" + "\n".join(lines))
        return "\n\n".join(sections)


def _simulate(
    instr: Instrumentation,
    accounting,  # a legacy accounting string or an ExecutionPlan
    devices: Sequence[DeviceModel] = (CPU_DEVICE, GPU_DEVICE),
) -> Dict[str, float]:
    return {d.name: d.estimate(instr, strategy=accounting) for d in devices}


def run_figure5(config: Figure5Config = Figure5Config()) -> Figure5Result:
    """Execute the full Figure 5 sweep."""
    target = BayesianLogisticRegression(
        n_data=config.n_data, n_features=config.n_features, seed=config.seed
    )
    kernel = NutsKernel(target)
    stan = StanLikeSampler(
        target,
        config.step_size,
        max_depth=config.max_depth,
        n_leapfrog=config.n_leapfrog,
        speed_ratio=config.stan_speed_ratio,
    )
    points: List[Figure5Point] = []

    common = dict(
        step_size=config.step_size,
        n_trajectories=config.n_trajectories,
        max_depth=config.max_depth,
        n_leapfrog=config.n_leapfrog,
        seed=config.seed,
    )

    for z in config.batch_sizes:
        q0 = target.initial_state(z, seed=config.seed)

        # One instrumented (unmeasured) run per machine drives the simulator.
        instr_run = kernel.run(q0, strategy="pc", instrument=True, **common)
        instr_pc = instr_run.instrumentation
        local_capped = z <= config.caps.get("local", max(config.batch_sizes))
        instr_local = (
            kernel.run(q0, strategy="local", instrument=True, **common).instrumentation
            if local_capped
            else None
        )
        # The unbatched baseline is one member at a time: simulate by scaling
        # a batch-1 run (dispatch count and per-call work are per member).
        instr_single = kernel.run(
            q0[:1], strategy="local", instrument=True, **common
        ).instrumentation

        for strategy in EXECUTED_STRATEGIES:
            cap = config.caps.get(strategy)
            if cap is not None and z > cap:
                continue
            if strategy == "stan":
                timing = best_of(
                    lambda: stan.run(q0, config.n_trajectories, seed=config.seed),
                    k=config.repeats,
                    warmup=config.warmup,
                    budget_seconds=config.budget_seconds,
                )
                run = timing.value
                measured_grads = float(run.grad_evals)
                seconds = timing.best_seconds / config.stan_speed_ratio
                sim = {
                    d.name: measured_grads
                    / max(stan.calibrated_grads_per_second(run), 1e-12)
                    for d in (CPU_DEVICE, GPU_DEVICE)
                }
            else:
                timing = best_of(
                    lambda s=strategy: kernel.run(q0, strategy=s, **common),
                    k=config.repeats,
                    warmup=config.warmup,
                    budget_seconds=config.budget_seconds,
                )
                measured_grads = timing.value.total_grad_evals
                seconds = timing.best_seconds
                if strategy in PC_STRATEGY_EXECUTORS:
                    # Plan-derived dispatch accounting: the same machine run,
                    # costed by the executor that would launch its kernels.
                    sim = _simulate(instr_pc, kernel.plan(strategy))
                elif strategy == "local":
                    sim = _simulate(instr_local, "eager") if instr_local else {}
                elif strategy == "hybrid":
                    sim = _simulate(instr_local, "hybrid") if instr_local else {}
                else:  # reference: Z serial single-member eager runs
                    sim = {
                        name: z * sec
                        for name, sec in _simulate(instr_single, "eager").items()
                    }
            points.append(
                Figure5Point(
                    strategy=strategy,
                    batch_size=z,
                    grad_evals=measured_grads,
                    best_seconds=seconds,
                    simulated_seconds=sim,
                )
            )
    return Figure5Result(config=config, points=points)


def main(argv: Optional[Sequence[str]] = None) -> None:
    """CLI entry point for the Figure 5 sweep."""
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--paper", action="store_true", help="full Section 4.1 sizes")
    parser.add_argument("--smoke", action="store_true", help="tiny smoke-test sizes")
    args = parser.parse_args(argv)
    if args.paper:
        config = Figure5Config.paper_scale()
    elif args.smoke:
        config = Figure5Config.smoke()
    else:
        config = Figure5Config()
    result = run_figure5(config)
    print(result.render())


if __name__ == "__main__":
    main()
