"""Wall-clock measurement helpers matching the paper's protocol.

Section 4.1: "The measured time counts only a warm run, excluding
compilation, the one-time TensorFlow graph construction, etc. ... The
timings are best of five independent runs."  :func:`best_of` implements
exactly that: optional warmup executions (which also trigger our lazy
compilation), then the minimum over ``k`` timed repeats.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Optional, Tuple, TypeVar

T = TypeVar("T")


@dataclass(frozen=True)
class Timing:
    """One measurement: best/all wall times plus the last return value."""

    best_seconds: float
    all_seconds: Tuple[float, ...]
    value: object

    @property
    def mean_seconds(self) -> float:
        """Mean over the measured repeats."""
        return sum(self.all_seconds) / len(self.all_seconds)


def timed(fn: Callable[[], T]) -> Tuple[float, T]:
    """One timed call: (seconds, value)."""
    start = time.perf_counter()
    value = fn()
    return time.perf_counter() - start, value


def best_of(
    fn: Callable[[], T],
    k: int = 5,
    warmup: int = 1,
    budget_seconds: Optional[float] = None,
) -> Timing:
    """Best-of-``k`` timing after ``warmup`` unmeasured runs.

    ``budget_seconds`` caps total measurement time: once one repeat has
    completed, further repeats are skipped if the budget is exhausted (large
    batch sizes would otherwise make sweeps take hours; the minimum over
    fewer repeats is still an unbiased "best observed").
    """
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    for _ in range(warmup):
        fn()
    times = []
    value: object = None
    spent = 0.0
    for _ in range(k):
        seconds, value = timed(fn)
        times.append(seconds)
        spent += seconds
        if budget_seconds is not None and spent >= budget_seconds:
            break
    return Timing(best_seconds=min(times), all_seconds=tuple(times), value=value)
