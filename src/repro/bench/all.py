"""Run every experiment harness and archive the results.

``python -m repro.bench.all [--smoke]`` regenerates:

* ``results_figure5.md`` — the Figure 5 throughput sweep,
* ``results_figure6.md`` — the Figure 6 utilization sweep,
* ``results_ablations.md`` — ablations A (masking), B (scheduler),
  C (lowering optimizations).

These archived files are the measured side of EXPERIMENTS.md.
"""

from __future__ import annotations

import argparse
import pathlib
import time
from typing import Optional, Sequence


def main(argv: Optional[Sequence[str]] = None) -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true", help="tiny sizes")
    parser.add_argument(
        "--out-dir", default=".", help="directory for results_*.md files"
    )
    args = parser.parse_args(argv)
    out_dir = pathlib.Path(args.out_dir)
    out_dir.mkdir(parents=True, exist_ok=True)

    from repro.bench import ablations, figure5, figure6

    jobs = [
        (
            "results_figure5.md",
            lambda: figure5.run_figure5(
                figure5.Figure5Config.smoke() if args.smoke else figure5.Figure5Config()
            ).render(),
        ),
        (
            "results_figure6.md",
            lambda: figure6.run_figure6(
                figure6.Figure6Config.smoke() if args.smoke else figure6.Figure6Config()
            ).render(),
        ),
        (
            "results_ablations.md",
            lambda: "\n\n".join(
                ablations.render(fn(config), title)
                for fn, title, config in (
                    (ablations.ablation_masking,
                     "Ablation A: masking vs gather-scatter",
                     ablations.AblationConfig.smoke() if args.smoke else ablations.AblationConfig()),
                    (ablations.ablation_scheduler,
                     "Ablation B: block-selection heuristic",
                     ablations.AblationConfig.smoke() if args.smoke else ablations.AblationConfig()),
                    (ablations.ablation_optimizations,
                     "Ablation C: lowering optimizations",
                     ablations.AblationConfig.smoke() if args.smoke else ablations.AblationConfig()),
                )
            ),
        ),
    ]
    for filename, job in jobs:
        start = time.perf_counter()
        text = job()
        (out_dir / filename).write_text(text + "\n")
        print(f"wrote {filename} ({time.perf_counter() - start:.1f}s)")


if __name__ == "__main__":
    main()
