"""Plain-text rendering of benchmark results.

Everything the harness prints — and everything EXPERIMENTS.md records — goes
through these helpers, so the console output and the documented results stay
in the same format: GitHub-flavored markdown tables and simple log-scale
ASCII series charts (the offline stand-in for the paper's matplotlib
figures).
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence


def _fmt(value: object) -> str:
    if isinstance(value, float):
        if value == 0.0:
            return "0"
        magnitude = abs(value)
        if magnitude >= 1e5 or magnitude < 1e-3:
            return f"{value:.3g}"
        if magnitude >= 100:
            return f"{value:.0f}"
        return f"{value:.3g}"
    return str(value)


def format_table(headers: Sequence[str], rows: Sequence[Sequence[object]]) -> str:
    """A GitHub-flavored markdown table."""
    cells = [[_fmt(v) for v in row] for row in rows]
    widths = [
        max(len(h), *(len(r[i]) for r in cells)) if cells else len(h)
        for i, h in enumerate(headers)
    ]
    def line(parts):
        return "| " + " | ".join(p.ljust(w) for p, w in zip(parts, widths)) + " |"
    out = [line(list(headers)), line(["-" * w for w in widths])]
    out.extend(line(r) for r in cells)
    return "\n".join(out)


def format_series(
    x: Sequence[float],
    series: Dict[str, Sequence[Optional[float]]],
    x_label: str = "x",
    y_label: str = "y",
    width: int = 60,
    log_y: bool = True,
) -> str:
    """An ASCII chart: one row per x value, one bar-ish marker per series.

    Designed for the log-log sweeps of Figures 5 and 6: each series gets a
    marker letter placed at a position proportional to (log) y.
    """
    markers = "ABCDEFGHIJ"
    names = list(series)
    finite = [
        v
        for vs in series.values()
        for v in vs
        if v is not None and v > 0 and math.isfinite(v)
    ]
    if not finite:
        return "(no data)"
    lo, hi = min(finite), max(finite)
    if log_y:
        lo_t, hi_t = math.log10(lo), math.log10(hi)
    else:
        lo_t, hi_t = lo, hi
    span = max(hi_t - lo_t, 1e-12)

    def position(v: float) -> int:
        t = math.log10(v) if log_y else v
        return int(round((t - lo_t) / span * (width - 1)))

    legend = ", ".join(f"{markers[i]}={name}" for i, name in enumerate(names))
    lines = [f"{y_label} ({'log scale' if log_y else 'linear'}): {legend}"]
    x_width = max(len(_fmt(v)) for v in x) + 1
    for row_idx, xv in enumerate(x):
        canvas = [" "] * width
        for s_idx, name in enumerate(names):
            v = series[name][row_idx]
            if v is None or v <= 0 or not math.isfinite(v):
                continue
            pos = position(v)
            canvas[pos] = (
                markers[s_idx] if canvas[pos] == " " else "*"
            )  # overlap marker
        lines.append(f"{_fmt(xv).rjust(x_width)} |{''.join(canvas)}|")
    lines.append(f"{'':>{x_width}}  ({x_label} down, {y_label} across)")
    return "\n".join(lines)


def crossover(
    x: Sequence[float],
    line_a: Sequence[Optional[float]],
    line_b: Sequence[Optional[float]],
) -> Optional[float]:
    """First x where series A overtakes series B (linear interpolation).

    Used to extract the Section 4.1 claims ("matches Stan at a batch size of
    a few hundred — or just ten for XLA").  Returns None if A never catches B.
    """
    prev_gap = None
    prev_x = None
    for xi, a, b in zip(x, line_a, line_b):
        if a is None or b is None:
            continue
        gap = a - b
        if gap >= 0:
            if prev_gap is None or prev_gap >= 0:
                return float(xi)
            # Interpolate in log-x between the straddling points.
            frac = -prev_gap / (gap - prev_gap)
            return float(
                10 ** (math.log10(prev_x) + frac * (math.log10(xi) - math.log10(prev_x)))
            )
        prev_gap, prev_x = gap, xi
    return None
