"""The "Stan" line of Figure 5: an optimized, unbatched single-chain sampler.

Stan is a long-optimized C++ NUTS implementation; what matters for the
paper's comparison is its *architecture*: one chain at a time, no batching,
so total throughput is flat in the number of requested chains.  The closest
faithful analog buildable offline is our hand-derived iterative NUTS
(:class:`~repro.nuts.iterative.IterativeNuts`) run serially per chain — it
shares Stan's recursion-free inner loop and evaluates one gradient per
kernel invocation with no batching machinery in the way.

The paper scaled Stan's throughput against a calibration run on common
hardware; analogously, :meth:`StanLikeSampler.calibrated_grads_per_second`
lets benches scale this baseline by an externally supplied speed ratio
(default 1.0 = "as fast per-gradient as our numpy substrate").
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from repro.nuts.iterative import IterativeNuts
from repro.targets.base import Target


@dataclass
class StanLikeRun:
    positions: np.ndarray   #: final states, (Z, dim)
    grad_evals: int
    wall_time: float

    def gradients_per_second(self) -> float:
        return self.grad_evals / self.wall_time if self.wall_time > 0 else 0.0


class StanLikeSampler:
    """Serial multi-chain driver over the iterative single-chain NUTS."""

    def __init__(
        self,
        target: Target,
        step_size: float,
        max_depth: int = 6,
        n_leapfrog: int = 4,
        speed_ratio: float = 1.0,
    ):
        self.sampler = IterativeNuts(
            target, step_size, max_depth=max_depth, n_leapfrog=n_leapfrog
        )
        if speed_ratio <= 0:
            raise ValueError(f"speed_ratio must be positive, got {speed_ratio}")
        self.speed_ratio = float(speed_ratio)

    def run(self, q0: np.ndarray, n_trajectories: int, seed: int = 0) -> StanLikeRun:
        """Sample every chain serially; returns positions, counts, time."""
        start = time.perf_counter()
        finals, grads = self.sampler.sample_batch(q0, n_trajectories, seed=seed)
        wall = time.perf_counter() - start
        return StanLikeRun(positions=finals, grad_evals=grads, wall_time=wall)

    def calibrated_grads_per_second(self, run: StanLikeRun) -> float:
        """Throughput scaled by the external calibration ratio.

        Mirrors the paper's procedure of scaling the Stan measurement taken
        on different hardware against a common calibration run.
        """
        return run.gradients_per_second() * self.speed_ratio
