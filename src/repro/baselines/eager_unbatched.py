"""The "Eager mode without autobatching" line of Figure 5.

The paper's baseline runs *the same user program* directly in TensorFlow
Eager, perforce one batch member at a time: every primitive dispatches a
kernel over a single example, so throughput is flat in batch size and every
dispatch's overhead is amortized over just one lane.

Our analog executes the single-example Python NUTS (the exact function the
autobatching strategies compile) member by member via
:meth:`~repro.frontend.api.AutobatchFunction.run_reference`, with each
primitive called on unbatched values — one "kernel dispatch" per primitive
per member.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from repro.nuts.kernel import NutsKernel
from repro.targets.base import Target


@dataclass
class EagerUnbatchedRun:
    positions: np.ndarray   #: final states, (Z, dim)
    grad_evals: float
    wall_time: float

    def gradients_per_second(self) -> float:
        return self.grad_evals / self.wall_time if self.wall_time > 0 else 0.0


class EagerUnbatchedSampler:
    """Member-at-a-time execution of the autobatchable NUTS program."""

    def __init__(
        self,
        target: Target,
        step_size: float,
        max_depth: int = 6,
        n_leapfrog: int = 4,
        kernel: NutsKernel = None,
    ):
        self.kernel = kernel or NutsKernel(target)
        self.step_size = step_size
        self.max_depth = max_depth
        self.n_leapfrog = n_leapfrog

    def run(self, q0: np.ndarray, n_trajectories: int, seed: int = 0) -> EagerUnbatchedRun:
        """Run every member through plain Python, one at a time."""
        start = time.perf_counter()
        result = self.kernel.run(
            q0,
            step_size=self.step_size,
            n_trajectories=n_trajectories,
            max_depth=self.max_depth,
            n_leapfrog=self.n_leapfrog,
            seed=seed,
            strategy="reference",
        )
        wall = time.perf_counter() - start
        return EagerUnbatchedRun(
            positions=result.positions,
            grad_evals=result.total_grad_evals,
            wall_time=wall,
        )
