"""The two non-autobatched comparators of Figure 5.

* :mod:`repro.baselines.stan_like` — an optimized single-chain iterative
  NUTS loop standing in for Stan's custom C++ sampler.
* :mod:`repro.baselines.eager_unbatched` — the same autobatched program run
  one batch member at a time ("Eager mode without autobatching").
"""

from repro.baselines.stan_like import StanLikeSampler
from repro.baselines.eager_unbatched import EagerUnbatchedSampler

__all__ = ["StanLikeSampler", "EagerUnbatchedSampler"]
