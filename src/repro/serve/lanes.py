"""Lane bookkeeping for the serving engine.

The machine's batch dimension is a fixed pool of SIMD lanes; the pool
tracks which lane holds which in-flight request.  Vacant lanes are handed
out lowest-index-first so lane assignment — and therefore every masked
array operation downstream — is a deterministic function of the request
arrival order, which is what makes serving runs reproducible and
bit-comparable against static batches.
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from repro.serve.queue import ResultHandle


class LanePool:
    """Fixed pool of machine lanes with deterministic acquire order."""

    def __init__(self, num_lanes: int):
        if num_lanes <= 0:
            raise ValueError(f"num_lanes must be positive, got {num_lanes}")
        self.num_lanes = int(num_lanes)
        self._occupant: List[Optional[ResultHandle]] = [None] * self.num_lanes

    # -- queries ------------------------------------------------------------

    def free_count(self) -> int:
        return sum(1 for h in self._occupant if h is None)

    def busy_count(self) -> int:
        return self.num_lanes - self.free_count()

    def busy_lanes(self) -> np.ndarray:
        """Indices of occupied lanes, ascending."""
        return np.asarray(
            [i for i, h in enumerate(self._occupant) if h is not None],
            dtype=np.int64,
        )

    def occupant(self, lane: int) -> Optional[ResultHandle]:
        return self._occupant[lane]

    def occupants(self) -> Dict[int, ResultHandle]:
        """Mapping of lane -> in-flight handle."""
        return {
            i: h for i, h in enumerate(self._occupant) if h is not None
        }

    # -- transitions --------------------------------------------------------

    def acquire(self, handle: ResultHandle) -> int:
        """Seat ``handle`` in the lowest vacant lane; returns the lane."""
        for lane, occupant in enumerate(self._occupant):
            if occupant is None:
                self._occupant[lane] = handle
                return lane
        raise RuntimeError("no vacant lane; check free_count() before acquire()")

    def release(self, lane: int) -> ResultHandle:
        """Vacate ``lane``; returns the handle that occupied it."""
        handle = self._occupant[lane]
        if handle is None:
            raise RuntimeError(f"lane {lane} is already vacant")
        self._occupant[lane] = None
        return handle
