"""Multi-engine sharded serving: one façade over N lane-recycled machines.

One :class:`~repro.serve.engine.Engine` is bounded by its machine's SIMD
width — ``num_lanes`` requests in flight, one block execution per tick.
:class:`Cluster` scales past that by owning ``num_engines`` engine shards,
each with its own lane pool and logical machine, behind the same
``submit``/``map``/``run_until_idle`` surface.  A cluster tick ticks every
shard once (the shards' logical clocks stay in lock-step), so aggregate
throughput grows with the shard count while per-request trajectories stay
bit-identical to a single machine: lanes are independent under masked
execution, so *where* a request runs never changes *what* it computes.

Routing is pluggable (:class:`RoutingPolicy`): ``round_robin`` cycles
shards, ``least_loaded`` picks the shard with the fewest outstanding
requests (queue depth plus busy lanes — vacant lanes lower the score), and
``power_of_two`` samples two shards with a seeded RNG and takes the less
loaded (the classic load-balancing compromise: almost least-loaded balance
at O(1) cost).  Admission spills over: if the routed shard's queue is
full, the next shard in preference order takes the request, and only when
*every* shard's queue is full does ``submit`` raise
:class:`~repro.serve.queue.QueueFullError`.

The cluster also realizes the code-cache-sharing item from the roadmap:
the :class:`~repro.vm.executors.ExecutionPlan` is compiled **once** (or
taken from the function's plan cache) and bound to every shard's machine,
so N fused engines share one generated-code cache — the fused executor's
``compile_count`` stays at 1 no matter the fleet size, which the cluster
benchmark asserts.

Entry points: ``Cluster(fn, num_engines, num_lanes)`` directly, or
``fn.serve_cluster(num_engines, num_lanes)`` on any autobatched function.
"""

from __future__ import annotations

from typing import Any, Iterable, List, Optional, Sequence, Type, Union

import numpy as np

from repro.serve.engine import Engine, drive_until_idle, serve_all
from repro.serve.queue import QueueFullError, ResultHandle
from repro.serve.telemetry import ClusterTelemetry
from repro.vm.executors import ExecutionPlan


class RoutingPolicy:
    """Strategy choosing which shard admits each submitted request.

    :meth:`preference` returns shard indices in descending preference; the
    cluster seats the request on the first shard in that order with queue
    space (spillover), so a policy only has to rank, not to reject.
    Policies may hold state (cursors, RNGs) — one instance belongs to one
    cluster.
    """

    #: Name used in ``policy="..."`` selection.
    name: str = "abstract"

    def __init__(self, seed: int = 0):
        del seed  # deterministic policies ignore it

    def preference(self, cluster: "Cluster") -> Sequence[int]:
        """Shard indices, most preferred first; must cover every shard."""
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


class RoundRobinPolicy(RoutingPolicy):
    """Cycle through shards in index order, one submission per step."""

    name = "round_robin"

    def __init__(self, seed: int = 0):
        super().__init__(seed)
        self._next = 0

    def preference(self, cluster: "Cluster") -> Sequence[int]:
        n = len(cluster.engines)
        start = self._next % n
        self._next += 1
        return [(start + k) % n for k in range(n)]


class LeastLoadedPolicy(RoutingPolicy):
    """Prefer the shard with the fewest outstanding requests.

    Load is :meth:`Engine.load`: queue depth plus busy lanes, so a shard
    with vacant lanes beats an equally-queued full one.  Ties break on the
    lower shard index, keeping routing deterministic.
    """

    name = "least_loaded"

    def preference(self, cluster: "Cluster") -> Sequence[int]:
        return sorted(
            range(len(cluster.engines)),
            key=lambda i: (cluster.engines[i].load(), i),
        )


class PowerOfTwoPolicy(RoutingPolicy):
    """Sample two shards (seeded RNG), route to the less loaded one.

    The "power of two choices" scheme: nearly least-loaded balance while
    inspecting only two shards per request.  The RNG is seeded at
    construction, so a replayed submission sequence routes identically.
    """

    name = "power_of_two"

    def __init__(self, seed: int = 0):
        super().__init__(seed)
        self._rng = np.random.RandomState(seed)

    def preference(self, cluster: "Cluster") -> Sequence[int]:
        n = len(cluster.engines)
        if n == 1:
            return [0]
        i, j = (int(x) for x in self._rng.choice(n, size=2, replace=False))
        key = lambda k: (cluster.engines[k].load(), k)  # noqa: E731
        first, second = (i, j) if key(i) <= key(j) else (j, i)
        spill = [k for k in range(n) if k != first and k != second]
        return [first, second] + spill


#: Routing-policy factories by selection name.
ROUTING_POLICIES = {
    RoundRobinPolicy.name: RoundRobinPolicy,
    LeastLoadedPolicy.name: LeastLoadedPolicy,
    PowerOfTwoPolicy.name: PowerOfTwoPolicy,
}


def resolve_policy(
    spec: Union[str, RoutingPolicy, Type[RoutingPolicy], None],
    seed: int = 0,
) -> RoutingPolicy:
    """Turn a ``policy=`` argument into a :class:`RoutingPolicy` instance."""
    if spec is None:
        return RoundRobinPolicy(seed=seed)
    if isinstance(spec, RoutingPolicy):
        return spec
    if isinstance(spec, type) and issubclass(spec, RoutingPolicy):
        return spec(seed=seed)
    if not isinstance(spec, str):
        raise TypeError(
            f"policy must be a name or a RoutingPolicy, got {type(spec).__name__}"
        )
    try:
        factory = ROUTING_POLICIES[spec]
    except KeyError:
        raise ValueError(
            f"unknown routing policy {spec!r}; known: {sorted(ROUTING_POLICIES)}"
        )
    return factory(seed=seed)


class Cluster:
    """Serve streaming requests across a fleet of engine shards.

    Parameters
    ----------
    program:
        An :class:`~repro.frontend.api.AutobatchFunction`, a
        :class:`~repro.ir.instructions.StackProgram`, or a pre-compiled
        :class:`~repro.vm.executors.ExecutionPlan`.  Whatever the form,
        exactly one plan is compiled (or fetched from the function's plan
        cache) and shared by every shard's machine.
    num_engines:
        Number of engine shards, each with its own lane pool and queue.
    num_lanes:
        Machine width *per shard*; the fleet holds
        ``num_engines * num_lanes`` requests in flight at most.
    policy:
        Routing policy name (``"round_robin"``, ``"least_loaded"``,
        ``"power_of_two"``), instance, or class.
    seed:
        Seed for stochastic policies (``power_of_two``); deterministic
        policies ignore it.
    max_queue_depth:
        Per-shard queue bound.  ``submit`` spills an overflowing request
        to the next shard in preference order and raises
        :class:`QueueFullError` only when every shard is full.
    executor / optimize / engine options:
        As on :class:`~repro.serve.engine.Engine`; forwarded to every
        shard (they share the compiled plan, not per-machine state).
    """

    def __init__(
        self,
        program: Any,
        num_engines: int,
        num_lanes: int,
        *,
        policy: Union[str, RoutingPolicy, Type[RoutingPolicy], None] = "round_robin",
        seed: int = 0,
        registry: Optional[Any] = None,
        executor: Any = None,
        optimize: Any = True,
        max_queue_depth: Optional[int] = None,
        default_step_budget: Optional[int] = None,
        **engine_options: Any,
    ):
        if num_engines <= 0:
            raise ValueError(f"num_engines must be positive, got {num_engines}")
        if "instrumentation" in engine_options:
            # One shared counter across N machines would overcount N-fold
            # (and Cluster.dispatch_count would then sum it N times).
            raise ValueError(
                "instrumentation cannot be shared across shards; read the "
                "per-shard counters via cluster.engines[i].vm.instr instead"
            )
        if isinstance(program, ExecutionPlan):
            if executor is not None:
                raise ValueError(
                    "pass either an ExecutionPlan or executor=, not both"
                )
            plan = program
        else:
            # Compile once here; every shard binds this same plan (the
            # code-cache-sharing contract the compile counter verifies).
            plan = ExecutionPlan.compile(
                program, executor=executor, optimize=optimize
            )
        if registry is None:
            registry = getattr(program, "registry", None)
        self.plan = plan
        self.policy = resolve_policy(policy, seed=seed)
        self.engines: List[Engine] = [
            Engine(
                plan,
                num_lanes,
                registry=registry,
                max_queue_depth=max_queue_depth,
                default_step_budget=default_step_budget,
                **engine_options,
            )
            for _ in range(num_engines)
        ]
        self.telemetry = ClusterTelemetry(
            shards=[e.telemetry for e in self.engines]
        )
        self._tick = 0

    # -- introspection -------------------------------------------------------

    @property
    def num_engines(self) -> int:
        return len(self.engines)

    @property
    def num_lanes(self) -> int:
        """Lane count per shard (total capacity is num_engines times this)."""
        return self.engines[0].pool.num_lanes

    @property
    def now(self) -> int:
        """The cluster's logical clock (lock-step with every shard)."""
        return self._tick

    @property
    def executor(self) -> str:
        """Name of the block executor shared by every shard."""
        return self.plan.name

    def load(self) -> int:
        """Outstanding requests fleet-wide (queued plus in flight)."""
        return sum(e.load() for e in self.engines)

    def dispatch_count(self) -> int:
        """Host→device launches summed across every shard's machine."""
        return sum(e.dispatch_count() for e in self.engines)

    # -- submission ----------------------------------------------------------

    def submit(
        self,
        *inputs: Any,
        priority: int = 0,
        step_budget: Optional[int] = None,
    ) -> ResultHandle:
        """Route one request to a shard; returns its handle.

        The routing policy ranks the shards; the first with queue space
        admits the request (``handle.shard`` records which).  Raises
        :class:`QueueFullError` only when every shard's queue is full.
        """
        n_expected = len(self.engines[0].vm.program.inputs)
        if len(inputs) != n_expected:
            raise ValueError(
                f"program takes {n_expected} inputs, got {len(inputs)}"
            )
        order = list(self.policy.preference(self))
        for shard in order:
            engine = self.engines[shard]
            if engine.queue.full():
                continue
            handle = engine.submit(
                *inputs, priority=priority, step_budget=step_budget
            )
            handle.shard = shard
            if shard != order[0]:
                self.telemetry.spillovers += 1
            return handle
        self.telemetry.cluster_rejected += 1
        raise QueueFullError(
            f"every shard's queue is at max_depth="
            f"{self.engines[0].queue.max_depth}"
        )

    # -- the fleet loop ------------------------------------------------------

    def busy(self) -> bool:
        """True while any shard holds queued or in-flight work."""
        return any(e.busy() for e in self.engines)

    def admission_full(self) -> bool:
        """True while no shard can queue a new submission."""
        return all(e.queue.full() for e in self.engines)

    def tick(self) -> bool:
        """One cluster step: tick every shard once, in shard order.

        Idle shards still tick (advancing their logical clocks), so the
        fleet's clocks stay aligned and per-shard telemetry is comparable.
        Returns True while any shard holds work after the tick.
        """
        self._tick += 1
        pending = False
        for engine in self.engines:
            if engine.tick():
                pending = True
        return pending

    def run_until_idle(self, max_ticks: Optional[int] = None) -> int:
        """Tick until no shard has queued or in-flight work; returns ticks."""
        return drive_until_idle(self, max_ticks)

    # -- batch convenience ----------------------------------------------------

    def map(
        self,
        request_inputs: Iterable[Sequence[Any]],
        *,
        priority: int = 0,
        step_budget: Optional[int] = None,
    ) -> List[Any]:
        """Serve a whole collection of requests; results in request order.

        Applies backpressure instead of overflowing: while every shard's
        queue is full, the cluster ticks until a slot opens somewhere.
        """
        return serve_all(
            self, request_inputs, priority=priority, step_budget=step_budget
        )

    def __repr__(self) -> str:
        return (
            f"Cluster(engines={self.num_engines}, lanes={self.num_lanes}, "
            f"policy={self.policy.name!r}, executor={self.plan.name!r}, "
            f"load={self.load()}, tick={self._tick})"
        )
