"""Multi-engine sharded serving: one façade over N lane-recycled machines.

One :class:`~repro.serve.engine.Engine` is bounded by its machine's SIMD
width — ``num_lanes`` requests in flight, one block execution per tick.
:class:`Cluster` scales past that by owning ``num_engines`` engine shards,
each with its own lane pool and logical machine, behind the same
``submit``/``map``/``run_until_idle`` surface.  A cluster tick ticks every
shard once (the shards' logical clocks stay in lock-step), so aggregate
throughput grows with the shard count while per-request trajectories stay
bit-identical to a single machine: lanes are independent under masked
execution, so *where* a request runs never changes *what* it computes.

Routing is pluggable (:class:`RoutingPolicy`): ``round_robin`` cycles
shards, ``least_loaded`` picks the shard with the fewest outstanding
requests (queue depth plus busy lanes — vacant lanes lower the score), and
``power_of_two`` samples two shards with a seeded RNG and takes the less
loaded (the classic load-balancing compromise: almost least-loaded balance
at O(1) cost).  Admission spills over: if the routed shard's queue is
full, the next shard in preference order takes the request, and only when
*every* shard's queue is full does ``submit`` raise
:class:`~repro.serve.queue.QueueFullError`.

The cluster also realizes the code-cache-sharing item from the roadmap:
the :class:`~repro.vm.executors.ExecutionPlan` is compiled **once** (or
taken from the function's plan cache) and bound to every shard's machine,
so N fused engines share one generated-code cache — the fused executor's
``compile_count`` stays at 1 no matter the fleet size, which the cluster
benchmark asserts.

Routing alone cannot fix load *skew*: a mispredicted or adversarial
arrival pattern leaves one shard backlogged while neighbors idle, and a
fixed shard count cannot follow offered load.  Two rebalancing layers run
between cluster ticks:

* **cross-shard work stealing** (``steal=``): each tick, every shard with
  vacant lanes and an empty queue steals queued requests from the most
  backlogged shard, per a pluggable :class:`StealPolicy` (threshold +
  batch size).  Migration moves the :class:`~repro.serve.queue.ServeRequest`
  with its priority, arrival stamp, and step budget intact (so the
  ``(-priority, arrival)`` service order survives the move), updates
  ``handle.shard``, and is accounted in
  :class:`~repro.serve.telemetry.ClusterTelemetry` (``steals``/
  ``steal_ticks``).  Placement never changes results: lanes are
  independent under masked execution.
* **shard elasticity** (``autoscale=``): an :class:`AutoscalePolicy`
  grows the fleet under sustained queue pressure and shrinks it when the
  remaining work would fit on fewer shards.  New shards bind the *shared*
  :class:`~repro.vm.executors.ExecutionPlan` (the fused compile counter
  stays at 1 across grow events) and join the lock-step logical clock;
  shrunk shards drain — admission closes, their queue migrates to the
  survivors, in-flight lanes run to completion — and only then retire, so
  no handle is ever lost.

Entry points: ``Cluster(fn, num_engines, num_lanes)`` directly, or
``fn.serve_cluster(num_engines, num_lanes)`` on any autobatched function,
with ``steal=``/``autoscale=`` opting into rebalancing.
"""

from __future__ import annotations

import copy
import itertools
from typing import Any, Iterable, List, Optional, Sequence, Tuple, Type, Union

import numpy as np

from repro.observe import resolve_trace
from repro.serve.engine import (
    Engine,
    drive_until_idle,
    resolve_preempt_policy,
    serve_all,
)
from repro.serve.queue import QueueFullError, ResultHandle
from repro.serve.telemetry import ClusterTelemetry
from repro.vm.executors import ExecutionPlan


class RoutingPolicy:
    """Strategy choosing which shard admits each submitted request.

    :meth:`preference` returns shard indices in descending preference; the
    cluster seats the request on the first shard in that order with queue
    space (spillover), so a policy only has to rank, not to reject.
    Policies may hold state (cursors, RNGs) — one instance belongs to one
    cluster.
    """

    #: Name used in ``policy="..."`` selection.
    name: str = "abstract"

    def __init__(self, seed: int = 0):
        del seed  # deterministic policies ignore it

    def preference(self, cluster: "Cluster") -> Sequence[int]:
        """Shard indices, most preferred first; must cover every shard."""
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


class RoundRobinPolicy(RoutingPolicy):
    """Cycle through shards in index order, one submission per step."""

    name = "round_robin"

    def __init__(self, seed: int = 0):
        super().__init__(seed)
        self._next = 0

    def preference(self, cluster: "Cluster") -> Sequence[int]:
        n = len(cluster.engines)
        start = self._next % n
        self._next += 1
        return [(start + k) % n for k in range(n)]


class LeastLoadedPolicy(RoutingPolicy):
    """Prefer the shard with the fewest outstanding requests.

    Load is :meth:`Engine.load`: queue depth plus busy lanes, so a shard
    with vacant lanes beats an equally-queued full one.  Ties break on the
    lower shard index, keeping routing deterministic.
    """

    name = "least_loaded"

    def preference(self, cluster: "Cluster") -> Sequence[int]:
        return sorted(
            range(len(cluster.engines)),
            key=lambda i: (cluster.engines[i].load(), i),
        )


class PowerOfTwoPolicy(RoutingPolicy):
    """Sample two shards (seeded RNG), route to the less loaded one.

    The "power of two choices" scheme: nearly least-loaded balance while
    inspecting only two shards per request.  The RNG is seeded at
    construction, so a replayed submission sequence routes identically.
    """

    name = "power_of_two"

    def __init__(self, seed: int = 0):
        super().__init__(seed)
        self._rng = np.random.RandomState(seed)

    def preference(self, cluster: "Cluster") -> Sequence[int]:
        n = len(cluster.engines)
        if n == 1:
            return [0]
        i, j = (int(x) for x in self._rng.choice(n, size=2, replace=False))
        key = lambda k: (cluster.engines[k].load(), k)  # noqa: E731
        first, second = (i, j) if key(i) <= key(j) else (j, i)
        spill = [k for k in range(n) if k != first and k != second]
        return [first, second] + spill


#: Routing-policy factories by selection name.
ROUTING_POLICIES = {
    RoundRobinPolicy.name: RoundRobinPolicy,
    LeastLoadedPolicy.name: LeastLoadedPolicy,
    PowerOfTwoPolicy.name: PowerOfTwoPolicy,
}


class StealPolicy:
    """Threshold work stealing: idle-laned shards rob the most backlogged.

    Each cluster tick, :meth:`plan` proposes migrations as
    ``(victim, thief, count)`` triples over the *active* shards.  The
    default policy qualifies a shard as a thief when it has vacant lanes
    and an empty queue (so stealing never starves the thief's own
    natives), picks as its victim the shard with the deepest remaining
    queue, and moves work only when that queue holds at least
    ``threshold`` requests.  ``batch_size`` caps one thief's haul per tick
    (``None`` = the thief's vacant-lane count, i.e. exactly what it can
    seat next tick).

    Subclass and override :meth:`plan` for other disciplines; the cluster
    only needs the triples.  Stateless by default, so one instance may be
    shared — but like routing policies, one instance per cluster is the
    safe idiom.
    """

    #: Name used in ``steal="..."`` selection.
    name = "threshold"

    def __init__(
        self,
        threshold: int = 1,
        batch_size: Optional[int] = None,
        include_preempted: bool = True,
    ):
        if threshold < 1:
            raise ValueError(f"threshold must be >= 1, got {threshold}")
        if batch_size is not None and batch_size < 1:
            raise ValueError(f"batch_size must be >= 1, got {batch_size}")
        self.threshold = int(threshold)
        self.batch_size = batch_size
        #: whether thieves may take requests waiting with a preempted-lane
        #: snapshot (they resume mid-flight on the thief's machine — the
        #: snapshot is machine-independent); False restricts stealing to
        #: never-started requests.
        self.include_preempted = bool(include_preempted)

    def plan(self, cluster: "Cluster") -> List[Tuple[Engine, Engine, int]]:
        """Migrations ``(victim, thief, count)`` for this tick, in order."""
        engines = cluster.engines
        if len(engines) < 2:
            return []
        # Only count what a thief could actually take: with preempted
        # requests excluded, a backlog of pure snapshots must not keep
        # nominating its shard as a victim (every such steal would churn
        # the victim's queue and move nothing).
        if self.include_preempted:
            remaining = [len(e.queue) for e in engines]
        else:
            remaining = [
                len(e.queue) - e.queue.snapshot_count() for e in engines
            ]
        moves: List[Tuple[Engine, Engine, int]] = []
        for t, thief in enumerate(engines):
            free = thief.pool.free_count()
            if remaining[t] or not free:
                continue
            capacity = free if self.batch_size is None else min(
                free, self.batch_size
            )
            # Deepest remaining queue wins; ties break to the lower shard
            # index so planning is deterministic.
            v = max(
                (i for i in range(len(engines)) if i != t),
                key=lambda i: (remaining[i], -i),
            )
            if remaining[v] < self.threshold:
                continue
            count = min(capacity, remaining[v])
            remaining[v] -= count
            moves.append((engines[v], thief, count))
        return moves

    def __repr__(self) -> str:
        return (
            f"{type(self).__name__}(threshold={self.threshold}, "
            f"batch_size={self.batch_size}, "
            f"include_preempted={self.include_preempted})"
        )


#: Steal-policy factories by selection name.
STEAL_POLICIES = {StealPolicy.name: StealPolicy}


def resolve_steal_policy(spec: Any) -> Optional[StealPolicy]:
    """Turn a ``steal=`` argument into a :class:`StealPolicy` (or None = off)."""
    if spec is None or spec is False:
        return None
    if spec is True:
        return StealPolicy()
    if isinstance(spec, StealPolicy):
        return spec
    if isinstance(spec, type) and issubclass(spec, StealPolicy):
        return spec()
    if isinstance(spec, str):
        try:
            return STEAL_POLICIES[spec]()
        except KeyError:
            raise ValueError(
                f"unknown steal policy {spec!r}; known: {sorted(STEAL_POLICIES)}"
            )
    raise TypeError(
        f"steal must be a bool, name, or StealPolicy, got {type(spec).__name__}"
    )


class AutoscalePolicy:
    """Grow/shrink the shard fleet on sustained pressure vs. sustained slack.

    Called once per cluster tick (:meth:`decide`), before stealing and the
    shard ticks.  The default signals:

    * **grow** (+1) when the fleet-wide queue backlog exceeds the vacant
      lanes for ``grow_patience`` consecutive ticks — lanes cannot absorb
      the queue, so routing/stealing alone cannot help — and the fleet is
      below ``max_engines``;
    * **shrink** (-1) when all outstanding work (queued + in flight) would
      fit on one fewer shard for ``shrink_patience`` consecutive ticks and
      the fleet is above ``min_engines``;
    * **hold** (0) otherwise.  Patience counters reset whenever their
      condition breaks, so one-tick blips never resize the fleet.

    ``max_engines=None`` is resolved by the cluster to twice its initial
    shard count.
    """

    name = "pressure"

    def __init__(
        self,
        min_engines: int = 1,
        max_engines: Optional[int] = None,
        grow_patience: int = 2,
        shrink_patience: int = 8,
    ):
        if min_engines < 1:
            raise ValueError(f"min_engines must be >= 1, got {min_engines}")
        if max_engines is not None and max_engines < min_engines:
            raise ValueError(
                f"max_engines={max_engines} is below min_engines={min_engines}"
            )
        if grow_patience < 1 or shrink_patience < 1:
            raise ValueError("grow_patience and shrink_patience must be >= 1")
        self.min_engines = int(min_engines)
        self.max_engines = max_engines
        self.grow_patience = int(grow_patience)
        self.shrink_patience = int(shrink_patience)
        self._pressure_streak = 0
        self._slack_streak = 0

    def decide(self, cluster: "Cluster") -> int:
        """+1 to grow, -1 to start draining a shard, 0 to hold."""
        engines = cluster.engines
        n = len(engines)
        queued = sum(len(e.queue) for e in engines)
        busy = sum(e.pool.busy_count() for e in engines)
        free = n * cluster.num_lanes - busy
        unbounded = self.max_engines is None  # cluster resolution missed
        if queued > free and (unbounded or n < self.max_engines):
            self._pressure_streak += 1
            self._slack_streak = 0
            if self._pressure_streak >= self.grow_patience:
                self._pressure_streak = 0
                return 1
            return 0
        self._pressure_streak = 0
        if n > self.min_engines and queued + busy <= (n - 1) * cluster.num_lanes:
            self._slack_streak += 1
            if self._slack_streak >= self.shrink_patience:
                self._slack_streak = 0
                return -1
            return 0
        self._slack_streak = 0
        return 0

    def __repr__(self) -> str:
        return (
            f"{type(self).__name__}(min={self.min_engines}, "
            f"max={self.max_engines}, grow_patience={self.grow_patience}, "
            f"shrink_patience={self.shrink_patience})"
        )


def resolve_autoscale(spec: Any) -> Optional[AutoscalePolicy]:
    """Turn an ``autoscale=`` argument into an :class:`AutoscalePolicy`."""
    if spec is None or spec is False:
        return None
    if spec is True:
        return AutoscalePolicy()
    if isinstance(spec, AutoscalePolicy):
        return spec
    if isinstance(spec, type) and issubclass(spec, AutoscalePolicy):
        return spec()
    raise TypeError(
        f"autoscale must be a bool or an AutoscalePolicy, got "
        f"{type(spec).__name__}"
    )


def resolve_policy(
    spec: Union[str, RoutingPolicy, Type[RoutingPolicy], None],
    seed: int = 0,
) -> RoutingPolicy:
    """Turn a ``policy=`` argument into a :class:`RoutingPolicy` instance."""
    if spec is None:
        return RoundRobinPolicy(seed=seed)
    if isinstance(spec, RoutingPolicy):
        return spec
    if isinstance(spec, type) and issubclass(spec, RoutingPolicy):
        return spec(seed=seed)
    if not isinstance(spec, str):
        raise TypeError(
            f"policy must be a name or a RoutingPolicy, got {type(spec).__name__}"
        )
    try:
        factory = ROUTING_POLICIES[spec]
    except KeyError:
        raise ValueError(
            f"unknown routing policy {spec!r}; known: {sorted(ROUTING_POLICIES)}"
        )
    return factory(seed=seed)


class Cluster:
    """Serve streaming requests across a fleet of engine shards.

    Parameters
    ----------
    program:
        An :class:`~repro.frontend.api.AutobatchFunction`, a
        :class:`~repro.ir.instructions.StackProgram`, or a pre-compiled
        :class:`~repro.vm.executors.ExecutionPlan`.  Whatever the form,
        exactly one plan is compiled (or fetched from the function's plan
        cache) and shared by every shard's machine.
    num_engines:
        Number of engine shards, each with its own lane pool and queue.
    num_lanes:
        Machine width *per shard*; the fleet holds
        ``num_engines * num_lanes`` requests in flight at most.
    policy:
        Routing policy name (``"round_robin"``, ``"least_loaded"``,
        ``"power_of_two"``), instance, or class.
    seed:
        Seed for stochastic policies (``power_of_two``); deterministic
        policies ignore it.
    max_queue_depth:
        Per-shard queue bound.  ``submit`` spills an overflowing request
        to the next shard in preference order and raises
        :class:`QueueFullError` only when every shard is full.
    steal:
        Cross-shard work stealing between cluster ticks: ``True`` or a
        policy name for the default :class:`StealPolicy`, an instance for
        tuned ``threshold``/``batch_size``/``include_preempted``,
        ``None``/``False`` (default) for off.  Stolen requests carrying a
        preempted-lane snapshot resume mid-flight on the thief shard.
    preempt:
        Per-shard priority preemption: ``True`` for the default
        :class:`~repro.serve.engine.PreemptPolicy`, an instance for tuned
        thresholds, ``None``/``False`` (default) for off.  Each shard gets
        a private copy of the policy.  Combined with ``steal=``, a
        preempted request may be migrated to — and resumed on — another
        shard's vacant lane.
    autoscale:
        Shard elasticity: ``True`` for the default
        :class:`AutoscalePolicy`, an instance for tuned bounds/patience,
        ``None``/``False`` (default) for a fixed fleet.  Grown shards bind
        the shared plan (no recompilation); shrunk shards drain before
        retiring.
    trace:
        Fleet-wide observability (off by default): ``True``, a piece name
        (``"events"``/``"metrics"``/``"profile"``), or a
        :class:`~repro.observe.Trace` instance.  Unlike per-shard policies
        (which are copied per engine), the one resolved ``Trace`` is
        *shared* by every shard — grown shards included — so the fleet
        produces a single event stream, one metric recorder (per-shard
        gauges under ``shard<N>/``, fleet gauges under ``fleet/``), and a
        merged block profile.  Cross-shard events (``steal``, ``migrate``,
        ``drain``) and cluster-level rejections are recorded here.
    max_resident_snapshots / spill_store / journal / checkpoint_interval:
        Durability knobs, as on :class:`~repro.serve.engine.Engine` but
        fleet-scoped: the cap applies per shard while the resolved
        :class:`~repro.serve.durability.SpillStore` and the admission
        :class:`~repro.serve.durability.Journal` are *shared* by every
        shard (grown ones included) — spilled stubs rehydrate wherever
        stealing carries them, and one journal replays the whole fleet's
        schedule through :func:`~repro.serve.durability.recover`.
    executor / optimize / engine options:
        As on :class:`~repro.serve.engine.Engine`; forwarded to every
        shard (they share the compiled plan, not per-machine state).
    """

    def __init__(
        self,
        program: Any,
        num_engines: int,
        num_lanes: int,
        *,
        policy: Union[str, RoutingPolicy, Type[RoutingPolicy], None] = "round_robin",
        seed: int = 0,
        registry: Optional[Any] = None,
        executor: Any = None,
        optimize: Any = True,
        max_queue_depth: Optional[int] = None,
        default_step_budget: Optional[int] = None,
        steal: Any = None,
        autoscale: Any = None,
        preempt: Any = None,
        trace: Any = None,
        max_resident_snapshots: Optional[int] = None,
        spill_store: Any = None,
        journal: Any = None,
        checkpoint_interval: Optional[int] = None,
        **engine_options: Any,
    ):
        if num_engines <= 0:
            raise ValueError(f"num_engines must be positive, got {num_engines}")
        if "instrumentation" in engine_options:
            # One shared counter across N machines would overcount N-fold
            # (and Cluster.dispatch_count would then sum it N times).
            raise ValueError(
                "instrumentation cannot be shared across shards; read the "
                "per-shard counters via cluster.engines[i].vm.instr instead"
            )
        if isinstance(program, ExecutionPlan):
            if executor is not None:
                raise ValueError(
                    "pass either an ExecutionPlan or executor=, not both"
                )
            plan = program
        else:
            # Compile once here; every shard binds this same plan (the
            # code-cache-sharing contract the compile counter verifies).
            plan = ExecutionPlan.compile(
                program, executor=executor, optimize=optimize
            )
        if registry is None:
            registry = getattr(program, "registry", None)
        self.plan = plan
        self.policy = resolve_policy(policy, seed=seed)
        self.steal = resolve_steal_policy(steal)
        self.autoscale = resolve_autoscale(autoscale)
        self.preempt = resolve_preempt_policy(preempt)
        if self.autoscale is not None:
            # The cluster owns a private copy: it resolves the default cap
            # and drives the patience streaks, so a caller's policy
            # instance is never mutated or shared between clusters.
            self.autoscale = copy.copy(self.autoscale)
            if self.autoscale.max_engines is None:
                self.autoscale.max_engines = max(2 * num_engines, 2)
        self._num_lanes = int(num_lanes)
        #: One resolved Trace shared by every shard (see the docstring);
        #: engines pass instances through resolve_trace unchanged, so the
        #: fleet — grown shards included — records into this hub.
        self.trace = resolve_trace(trace)
        self._metric_bufs = None
        if spill_store is not None or max_resident_snapshots is not None:
            # One resolved store shared by every shard (grown ones
            # included): spilled-snapshot stubs carry their store, so a
            # stolen spilled entry rehydrates on the thief no matter where
            # it was serialized.
            from repro.serve.durability import resolve_spill_store

            spill_store = resolve_spill_store(spill_store)
        #: The fleet's shared admission journal (None = off).  The shards
        #: record into it directly; ids are fleet-unique and ticks are
        #: lock-step, so one journal replays the whole fleet's schedule.
        self.journal = journal
        self._engine_kwargs = dict(
            registry=registry,
            max_queue_depth=max_queue_depth,
            default_step_budget=default_step_budget,
            trace=self.trace,
            max_resident_snapshots=max_resident_snapshots,
            spill_store=spill_store,
            journal=journal,
            checkpoint_interval=checkpoint_interval,
            **engine_options,
        )
        self._tick = 0
        self._next_shard_id = 0
        #: One request-id counter for the whole fleet (grown shards
        #: included): ids are fleet-unique, so the shared tracer's
        #: per-request index never conflates two shards' requests.
        self._ids = itertools.count()
        self.telemetry = ClusterTelemetry()
        #: Shards being retired: closed to admission and routing, still
        #: ticking until their in-flight lanes complete.
        self.draining: List[Engine] = []
        self._retired_dispatches = 0
        self.engines: List[Engine] = [
            self._spawn_engine() for _ in range(num_engines)
        ]

    def _spawn_engine(self) -> Engine:
        """Build one shard bound to the shared plan and the cluster clock."""
        # Each shard owns a private deep copy of the preempt policy, so a
        # stateful custom policy (even one with mutable attributes) never
        # leaks decisions across shards.
        engine = Engine(
            self.plan,
            self._num_lanes,
            preempt=copy.deepcopy(self.preempt) if self.preempt else None,
            **self._engine_kwargs,
        )
        engine.shard_id = self._next_shard_id
        self._next_shard_id += 1
        engine._ids = self._ids
        # Join the fleet's lock-step logical clock mid-flight, so queue
        # waits and finish ticks stay comparable across grow events.
        engine._tick = self._tick
        self.telemetry.shards.append(engine.telemetry)
        return engine

    def set_journal(self, journal: Any) -> None:
        """Attach (or detach, with None) one admission journal fleet-wide."""
        self.journal = journal
        self._engine_kwargs["journal"] = journal
        for engine in self.engines + self.draining:
            engine.set_journal(journal)

    # -- introspection -------------------------------------------------------

    @property
    def num_engines(self) -> int:
        """Active (routable) shards; draining shards are not counted."""
        return len(self.engines)

    @property
    def num_lanes(self) -> int:
        """Lane count per shard (total capacity is num_engines times this)."""
        return self._num_lanes

    @property
    def now(self) -> int:
        """The cluster's logical clock (lock-step with every shard)."""
        return self._tick

    @property
    def executor(self) -> str:
        """Name of the block executor shared by every shard."""
        return self.plan.name

    def load(self) -> int:
        """Outstanding requests fleet-wide (queued plus in flight)."""
        return sum(e.load() for e in self.engines) + sum(
            e.load() for e in self.draining
        )

    def dispatch_count(self) -> int:
        """Host→device launches summed across every shard's machine.

        Includes draining shards and the final tallies of shards already
        retired by autoscale, so the count never moves backwards.
        """
        return (
            sum(e.dispatch_count() for e in self.engines)
            + sum(e.dispatch_count() for e in self.draining)
            + self._retired_dispatches
        )

    # -- observability -------------------------------------------------------

    def _emit(
        self,
        kind: str,
        handle: Optional[ResultHandle] = None,
        shard: Optional[int] = None,
        src: Optional[int] = None,
        priority: Optional[int] = None,
    ) -> None:
        """Record one cluster-level trace event (no-op untraced)."""
        if self.trace is None or self.trace.tracer is None:
            return
        if handle is not None and priority is None:
            priority = handle.request.priority
        self.trace.tracer.record(
            kind,
            self._tick,
            request_id=None if handle is None else handle.request_id,
            shard=shard,
            priority=priority,
            src=src,
        )

    def _sample_metrics(self) -> None:
        """Record this tick's fleet-wide gauges (metrics enabled only)."""
        bufs = self._metric_bufs
        if bufs is None:
            metrics = self.trace.metrics
            bufs = self._metric_bufs = tuple(
                metrics.series(name)
                for name in (
                    "fleet/queue_depth", "fleet/busy_lanes",
                    "fleet/active_shards",
                )
            )
        depth_buf, busy_buf, shards_buf = bufs
        tick = self._tick
        depth_buf.append(
            (tick, float(sum(len(e.queue) for e in self.engines)))
        )
        busy_buf.append(
            (
                tick,
                float(
                    sum(e.pool.busy_count() for e in self.engines)
                    + sum(e.pool.busy_count() for e in self.draining)
                ),
            )
        )
        shards_buf.append((tick, float(len(self.engines))))

    # -- submission ----------------------------------------------------------

    def submit(
        self,
        *inputs: Any,
        priority: int = 0,
        step_budget: Optional[int] = None,
        deadline_ticks: Optional[int] = None,
    ) -> ResultHandle:
        """Route one request to a shard; returns its handle.

        The routing policy ranks the shards; the first with queue space
        admits the request (``handle.shard`` records which).  Raises
        :class:`QueueFullError` only when every shard's queue is full —
        and in that case *before* consulting the routing policy, so a
        rejected submission leaves policy state (round-robin cursor,
        power-of-two RNG) untouched and a replayed trace with rejections
        routes identically to one without.
        """
        n_expected = len(self.engines[0].vm.program.inputs)
        if len(inputs) != n_expected:
            raise ValueError(
                f"program takes {n_expected} inputs, got {len(inputs)}"
            )
        if self.admission_full():
            self.telemetry.cluster_rejected += 1
            self._emit("reject", priority=priority)
            raise QueueFullError(
                f"every shard's queue is at max_depth="
                f"{self.engines[0].queue.max_depth}"
            )
        order = list(self.policy.preference(self))
        for shard in order:
            engine = self.engines[shard]
            if engine.queue.full():
                continue
            handle = engine.submit(
                *inputs,
                priority=priority,
                step_budget=step_budget,
                deadline_ticks=deadline_ticks,
            )
            handle.shard = engine.shard_id
            if shard != order[0]:
                self.telemetry.spillovers += 1
            return handle
        # Some shard had queue space (admission_full() was False), yet the
        # preference order never reached it: the policy broke its
        # must-cover-every-shard contract.
        raise RuntimeError(
            f"routing policy {self.policy.name!r} returned a preference "
            f"order covering {len(order)} of {len(self.engines)} shards; "
            "preference() must rank every shard"
        )

    # -- the fleet loop ------------------------------------------------------

    def busy(self) -> bool:
        """True while any shard (including draining) holds work."""
        return any(e.busy() for e in self.engines) or any(
            e.busy() for e in self.draining
        )

    def admission_full(self) -> bool:
        """True while no active shard can queue a new submission."""
        return all(e.queue.full() for e in self.engines)

    def progress_signature(self) -> Tuple[Tuple[int, ...], ...]:
        """Fleet fingerprint that changes iff some shard makes progress.

        The per-shard :meth:`Engine.progress_signature` tuples (draining
        shards included) plus the fleet shape, so growth, shrinkage, and
        drain-retirement all register as progress.  Like the shard version
        it excludes the logical clock, which advances unconditionally.
        """
        shape = (len(self.engines), len(self.draining))
        return (shape,) + tuple(
            e.progress_signature() for e in self.engines + self.draining
        )

    # -- rebalancing ---------------------------------------------------------

    def _steal_step(self) -> None:
        """Migrate queued work from backlogged shards to idle-laned ones.

        A stolen request waiting with a preempted-lane snapshot migrates
        snapshot and all: it resumes mid-flight on the thief's machine
        (both bind the same :class:`~repro.vm.executors.ExecutionPlan`, so
        the restore is bit-identical), counted separately in
        ``preempted_migrations``.
        """
        moved = migrated_snapshots = 0
        # Custom StealPolicy subclasses may predate the knob; default on.
        include_preempted = getattr(self.steal, "include_preempted", True)
        for victim, thief, count in self.steal.plan(self):
            handles = victim.export_queue(
                count, include_preempted=include_preempted
            )
            if not handles:
                continue
            thief.requeue(handles)
            for handle in handles:
                handle.shard = thief.shard_id
                self._emit(
                    "steal", handle, shard=thief.shard_id, src=victim.shard_id
                )
                if handle.snapshot is not None:
                    # The eviction checkpoint crossed shards: record the
                    # migration on top of the steal that carried it.
                    self._emit(
                        "migrate",
                        handle,
                        shard=thief.shard_id,
                        src=victim.shard_id,
                    )
            moved += len(handles)
            migrated_snapshots += sum(
                1 for h in handles if h.snapshot is not None
            )
        if moved:
            self.telemetry.steals += moved
            self.telemetry.steal_ticks += 1
            self.telemetry.preempted_migrations += migrated_snapshots

    def _autoscale_step(self) -> None:
        decision = self.autoscale.decide(self)
        cap = self.autoscale.max_engines
        if decision > 0 and (cap is None or len(self.engines) < cap):
            self._grow()
        elif decision < 0 and len(self.engines) > self.autoscale.min_engines:
            self._shrink()

    def _grow(self) -> None:
        """Add one shard bound to the shared plan (no recompilation)."""
        self.engines.append(self._spawn_engine())
        self.telemetry.grow_events += 1

    def _shrink(self) -> None:
        """Send the least-loaded shard into drain-retirement.

        The shard leaves the routing set immediately, its queued requests
        migrate to the surviving shards (preserving priority/arrival
        order), and its in-flight lanes keep running until it goes idle —
        no handle is lost or duplicated.
        """
        # Least loaded drains fastest; ties retire the youngest shard.
        victim = min(
            self.engines, key=lambda e: (e.load(), -(e.shard_id or 0))
        )
        self.engines.remove(victim)
        self.draining.append(victim)
        self.telemetry.shrink_events += 1
        orphans = victim.begin_drain()
        for handle in orphans:
            # Seat each orphan on the currently least-loaded survivor
            # (ties to the lower index), like a fresh spillover would.
            target = min(
                range(len(self.engines)),
                key=lambda i: (self.engines[i].load(), i),
            )
            self.engines[target].requeue([handle])
            handle.shard = self.engines[target].shard_id
            self._emit(
                "drain", handle, shard=handle.shard, src=victim.shard_id
            )
        self.telemetry.drain_migrations += len(orphans)

    def _retire_drained(self) -> None:
        for engine in [e for e in self.draining if not e.busy()]:
            self.draining.remove(engine)
            self._retired_dispatches += engine.dispatch_count()
            engine.telemetry.retired = True
            self.telemetry.shards_retired += 1

    # -- the tick ------------------------------------------------------------

    def tick(self) -> bool:
        """One cluster step: rebalance, then tick every shard in order.

        Between ticks the autoscale policy may grow the fleet or start
        draining a shard, and the steal policy may migrate queued requests
        onto idle lanes; then every shard (draining ones included) ticks
        once.  Idle shards still tick (advancing their logical clocks), so
        the fleet's clocks stay aligned and per-shard telemetry is
        comparable.  Returns True while any shard holds work after the
        tick.
        """
        if self.autoscale is not None:
            self._autoscale_step()
        if self.steal is not None:
            self._steal_step()
        if self.trace is not None and self.trace.metrics is not None:
            self._sample_metrics()
        self._tick += 1
        pending = False
        for engine in self.engines + self.draining:
            if engine.tick():
                pending = True
        self._retire_drained()
        return pending

    def run_until_idle(self, max_ticks: Optional[int] = None) -> int:
        """Tick until no shard has queued or in-flight work; returns ticks."""
        return drive_until_idle(self, max_ticks)

    # -- batch convenience ----------------------------------------------------

    def map(
        self,
        request_inputs: Iterable[Sequence[Any]],
        *,
        priority: int = 0,
        step_budget: Optional[int] = None,
        deadline_ticks: Optional[int] = None,
    ) -> List[Any]:
        """Serve a whole collection of requests; results in request order.

        Applies backpressure instead of overflowing: while every shard's
        queue is full, the cluster ticks until a slot opens somewhere.
        """
        return serve_all(
            self,
            request_inputs,
            priority=priority,
            step_budget=step_budget,
            deadline_ticks=deadline_ticks,
        )

    def __repr__(self) -> str:
        extras = ""
        if self.steal is not None:
            extras += f", steal={self.steal.name!r}"
        if self.autoscale is not None:
            extras += f", autoscale={self.autoscale.name!r}"
        if self.preempt is not None:
            extras += f", preempt={self.preempt.name!r}"
        if self.draining:
            extras += f", draining={len(self.draining)}"
        return (
            f"Cluster(engines={self.num_engines}, lanes={self.num_lanes}, "
            f"policy={self.policy.name!r}, executor={self.plan.name!r}, "
            f"load={self.load()}, tick={self._tick}{extras})"
        )
