"""Durable serving: snapshot spilling, admission journaling, crash recovery.

The serving stack (engine, cluster, async front door) runs entirely on a
logical clock and is deterministic in its admission sequence: given the
same submits at the same ticks, every tick's scheduling decision — and
therefore every output bit — is reproducible.  This module exploits that
twice:

* **Spilling** bounds the memory of a preempted backlog.  A
  :class:`~repro.vm.program_counter.LaneSnapshot` serializes to a
  versioned byte string (:mod:`repro.vm.snapshot_codec`), so an engine
  with ``max_resident_snapshots=N`` keeps at most N queued snapshots as
  live arrays and parks the overflow in a :class:`SpillStore` (in-memory
  or on-disk).  A spilled entry is represented in the queue by a
  :class:`SpilledSnapshot` stub that keeps the ``pc`` visible — resume
  re-batching, pc-cohort scheduling, and cross-shard stealing all keep
  working on spilled entries — and is transparently rehydrated (decoded
  through the full static admission checks) when its handle is popped to
  resume.

* **Journaling + recovery** make the fleet restartable.  A
  :class:`Journal` records every accepted submit (inputs, priority,
  budget, deadline, arrival tick) and periodic snapshot checkpoints of
  preempted lanes; :func:`recover` rebuilds a fresh engine or cluster and
  replays the admission schedule on the logical clock, which by the
  determinism argument completes all unfinished work *bit-identically* to
  the uninterrupted run.  The journal is an append-only JSONL file (or
  in-memory record list), so a crashed process recovers from whatever
  prefix reached disk — a torn final line is discarded, not fatal.

Wiring: ``Engine(..., max_resident_snapshots=, spill_store=, journal=,
checkpoint_interval=)``, the same keywords on ``Cluster`` (one store and
journal shared by every shard), and ``AsyncServer(..., journal=)``.
"""

from __future__ import annotations

import base64
import json
import os
from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from repro.vm.program_counter import LaneSnapshot
from repro.vm.snapshot_codec import SnapshotDecodeError

#: Ticks between journal checkpoint sweeps when a journal is attached and
#: no explicit ``checkpoint_interval`` was chosen.
DEFAULT_CHECKPOINT_INTERVAL = 64


# -- spill stores --------------------------------------------------------------


class SpillStore:
    """Keyed byte storage for serialized lane snapshots.

    The contract is deliberately tiny — :meth:`put`, :meth:`get`,
    :meth:`pop`, ``len()`` — so backends range from a dict to a directory
    to an object store.  Keys are caller-chosen strings (the engine uses
    ``"<request_id>-<preemptions>"``, fleet-unique and deterministic).
    """

    def put(self, key: str, data: bytes) -> None:
        raise NotImplementedError

    def get(self, key: str) -> bytes:
        """The stored bytes (``KeyError`` if absent); entry stays stored."""
        raise NotImplementedError

    def pop(self, key: str) -> bytes:
        """Remove and return the stored bytes (``KeyError`` if absent)."""
        raise NotImplementedError

    def __len__(self) -> int:
        raise NotImplementedError

    def __contains__(self, key: str) -> bool:
        try:
            self.get(key)
        except KeyError:
            return False
        return True


class MemorySpillStore(SpillStore):
    """In-process spill backend: bounded *array* memory, not total memory.

    Spilling to a dict still wins — serialized bytes are compact, and the
    resident cap bounds the number of live array sets — and it is the
    default store a ``max_resident_snapshots`` cap creates when none is
    given.
    """

    def __init__(self) -> None:
        self._data: Dict[str, bytes] = {}

    def put(self, key: str, data: bytes) -> None:
        self._data[key] = bytes(data)

    def get(self, key: str) -> bytes:
        return self._data[key]

    def pop(self, key: str) -> bytes:
        return self._data.pop(key)

    def __len__(self) -> int:
        return len(self._data)


class DiskSpillStore(SpillStore):
    """On-disk spill backend: one file per snapshot under ``directory``.

    Writes are atomic (temp file + ``os.replace``) so a crash mid-spill
    never leaves a torn entry; the codec's CRC catches anything else.
    """

    def __init__(self, directory: str) -> None:
        self.directory = str(directory)
        os.makedirs(self.directory, exist_ok=True)
        self._keys: Dict[str, str] = {}

    def _path(self, key: str) -> str:
        safe = "".join(c if (c.isalnum() or c in "._-") else "_" for c in key)
        return os.path.join(self.directory, f"snap-{safe}.bin")

    def put(self, key: str, data: bytes) -> None:
        path = self._path(key)
        tmp = path + ".tmp"
        with open(tmp, "wb") as f:
            f.write(data)
        os.replace(tmp, path)
        self._keys[key] = path

    def get(self, key: str) -> bytes:
        path = self._keys.get(key, self._path(key))
        try:
            with open(path, "rb") as f:
                return f.read()
        except FileNotFoundError:
            raise KeyError(key) from None

    def pop(self, key: str) -> bytes:
        data = self.get(key)
        path = self._keys.pop(key, self._path(key))
        try:
            os.unlink(path)
        except FileNotFoundError:
            pass
        return data

    def __len__(self) -> int:
        return len(self._keys)


def resolve_spill_store(spec: Any) -> SpillStore:
    """Normalize a spill-store spec: an instance, ``"memory"``/``None``
    for :class:`MemorySpillStore`, or a directory path for
    :class:`DiskSpillStore`."""
    if spec is None or spec == "memory":
        return MemorySpillStore()
    if isinstance(spec, SpillStore):
        return spec
    if isinstance(spec, (str, os.PathLike)):
        return DiskSpillStore(os.fspath(spec))
    raise TypeError(
        f"spill_store must be a SpillStore, 'memory', or a directory "
        f"path, got {type(spec).__name__}"
    )


class SpilledSnapshot:
    """Queue-resident stub for a snapshot whose arrays left process memory.

    Keeps the scheduling-visible surface of a live
    :class:`~repro.vm.program_counter.LaneSnapshot` — the ``pc`` (what
    resume re-batching and pc-cohort scheduling read) — plus the store
    key needed to get the arrays back.  ``spilled = True`` is the duck
    type the queue's residency accounting checks.

    The stub carries its own store reference, so a handle stolen onto
    another shard rehydrates from wherever it was spilled.
    """

    spilled = True

    __slots__ = ("pc", "key", "store")

    def __init__(self, pc: int, key: str, store: SpillStore):
        self.pc = int(pc)
        self.key = key
        self.store = store

    def load(
        self,
        program: Any,
        *,
        facts: Any = None,
        max_stack_depth: Optional[int] = None,
    ) -> LaneSnapshot:
        """Rehydrate: fetch, remove, and decode the spilled bytes.

        Decoding runs the full static admission
        (:func:`~repro.vm.snapshot_codec.decode_snapshot`); unreadable or
        corrupt entries raise
        :class:`~repro.vm.snapshot_codec.SnapshotDecodeError` — a
        ``ValueError`` the engine's resume path turns into a single failed
        handle, never a crashed tick loop.
        """
        try:
            data = self.store.pop(self.key)
        except KeyError as error:
            raise SnapshotDecodeError(
                f"spilled snapshot {self.key!r} is missing from its spill "
                "store; the entry was lost or already consumed"
            ) from error
        except OSError as error:
            raise SnapshotDecodeError(
                f"spilled snapshot {self.key!r} could not be read back: "
                f"{error}"
            ) from error
        return LaneSnapshot.from_bytes(
            data, program, facts=facts, max_stack_depth=max_stack_depth
        )

    def __repr__(self) -> str:
        return f"SpilledSnapshot(pc={self.pc}, key={self.key!r})"


# -- journal -------------------------------------------------------------------


def _encode_array(array: np.ndarray) -> Dict[str, Any]:
    array = np.asarray(array)
    return {
        "dtype": array.dtype.str,
        "shape": list(array.shape),
        "data": base64.b64encode(array.tobytes()).decode("ascii"),
    }


def _decode_array(record: Dict[str, Any]) -> np.ndarray:
    raw = base64.b64decode(record["data"])
    flat = np.frombuffer(raw, dtype=np.dtype(record["dtype"]))
    return flat.reshape(tuple(record["shape"])).copy()


class Journal:
    """Append-only admission journal: the durable record a fleet replays.

    Three record types, one JSON object per line when backed by a file:

    * ``submit`` — every accepted request: id, arrival tick, priority,
      step budget, deadline, and the input arrays (base64, bit-exact).
      Ticks are logical, so the schedule replays exactly (this also
      persists the arrival schedule the async front door records).
    * ``complete`` — a request finished (or failed), so recovery knows
      what is unfinished without re-deriving it.
    * ``checkpoint`` — periodic serialized snapshots of preempted lanes
      (the codec bytes, base64), for inspection and warm-start tooling;
      :func:`recover` itself replays from the submits alone, which is
      what makes its outputs bit-identical.

    In-memory records and the optional file never diverge: every record
    is appended to both, and records are stored JSON-ready so a journal
    loaded from disk behaves exactly like one that never left memory.
    """

    def __init__(self, path: Optional[Any] = None):
        self.path = None if path is None else os.fspath(path)
        self.entries: List[Dict[str, Any]] = []

    # -- recording (engine-side) --------------------------------------------

    def _append(self, entry: Dict[str, Any]) -> None:
        self.entries.append(entry)
        if self.path is not None:
            with open(self.path, "a", encoding="utf-8") as f:
                f.write(json.dumps(entry, sort_keys=True))
                f.write("\n")

    def record_submit(self, handle: Any) -> None:
        request = handle.request
        self._append({
            "type": "submit",
            "tick": int(request.submit_tick),
            "request_id": int(request.request_id),
            "priority": int(request.priority),
            "step_budget": (
                None if request.step_budget is None else int(request.step_budget)
            ),
            "deadline_ticks": (
                None
                if request.deadline_ticks is None
                else int(request.deadline_ticks)
            ),
            "inputs": [_encode_array(x) for x in request.inputs],
        })

    def record_complete(
        self, request_id: int, tick: int, failed: bool = False
    ) -> None:
        self._append({
            "type": "complete",
            "tick": int(tick),
            "request_id": int(request_id),
            "failed": bool(failed),
        })

    def record_checkpoint(
        self, request_id: int, tick: int, data: bytes, steps_used: int = 0
    ) -> None:
        self._append({
            "type": "checkpoint",
            "tick": int(tick),
            "request_id": int(request_id),
            "steps_used": int(steps_used),
            "snapshot": base64.b64encode(data).decode("ascii"),
        })

    # -- reading (recovery-side) --------------------------------------------

    def submissions(self) -> List[Dict[str, Any]]:
        """All ``submit`` records, in admission order."""
        return [e for e in self.entries if e["type"] == "submit"]

    def completed_ids(self) -> set:
        return {
            e["request_id"] for e in self.entries if e["type"] == "complete"
        }

    def unfinished(self) -> List[Dict[str, Any]]:
        """Submits with no matching ``complete`` — the crash's lost work."""
        done = self.completed_ids()
        return [e for e in self.submissions() if e["request_id"] not in done]

    def checkpoints(self) -> Dict[int, Tuple[int, bytes]]:
        """Latest checkpoint per request id: ``{id: (tick, bytes)}``."""
        latest: Dict[int, Tuple[int, bytes]] = {}
        for e in self.entries:
            if e["type"] == "checkpoint":
                latest[e["request_id"]] = (
                    e["tick"],
                    base64.b64decode(e["snapshot"]),
                )
        return latest

    def restore_checkpoints(
        self,
        program: Any,
        *,
        facts: Any = None,
        max_stack_depth: Optional[int] = None,
    ) -> Dict[int, LaneSnapshot]:
        """Decode the latest checkpoint of every *unfinished* request.

        Each snapshot goes through the codec's full static admission
        (integrity, fingerprint, depth vs the verified bound), so a
        corrupt or forged checkpoint raises a typed error here instead of
        poisoning a machine later.
        """
        done = self.completed_ids()
        return {
            rid: LaneSnapshot.from_bytes(
                data, program, facts=facts, max_stack_depth=max_stack_depth
            )
            for rid, (_, data) in sorted(self.checkpoints().items())
            if rid not in done
        }

    # -- persistence ---------------------------------------------------------

    def save(self, path: Any) -> None:
        """Write every record to ``path`` (and journal there from now on)."""
        self.path = os.fspath(path)
        with open(self.path, "w", encoding="utf-8") as f:
            for entry in self.entries:
                f.write(json.dumps(entry, sort_keys=True))
                f.write("\n")

    @classmethod
    def load(cls, path: Any) -> "Journal":
        """Read a journal file back, tolerating a torn final line.

        A crash can interrupt the append of the last record; that partial
        line is discarded (the record never durably happened).  A
        malformed line anywhere *else* means real corruption and raises.
        """
        journal = cls()
        journal.path = os.fspath(path)
        with open(journal.path, "r", encoding="utf-8") as f:
            lines = f.read().splitlines()
        for i, line in enumerate(lines):
            if not line.strip():
                continue
            try:
                journal.entries.append(json.loads(line))
            except ValueError as error:
                if i == len(lines) - 1:
                    break  # torn tail from the crash; drop it
                raise ValueError(
                    f"journal {journal.path!r} line {i + 1} is corrupt: "
                    f"{error}"
                ) from error
        return journal

    def __len__(self) -> int:
        return len(self.entries)

    def __repr__(self) -> str:
        return (
            f"Journal(path={self.path!r}, submits={len(self.submissions())}, "
            f"completes={len(self.completed_ids())})"
        )


# -- recovery ------------------------------------------------------------------


class RecoveredRun:
    """Outcome of :func:`recover`: the rebuilt server plus every replayed
    handle, keyed by *original* request id.

    Replay resubmits in recorded order through the fresh server's own id
    counter, so the new ids coincide with the originals — the mapping is
    the identity, but callers should still index through ``handles``
    rather than assume it.
    """

    def __init__(self, server: Any, handles: Dict[int, Any], journal: Journal):
        self.server = server
        self.handles = handles
        self.journal = journal

    def results(self) -> Dict[int, Any]:
        """Outputs of every replayed request that completed, by id."""
        return {
            rid: h.result() for rid, h in self.handles.items() if h.state == "done"
        }

    def failures(self) -> Dict[int, BaseException]:
        """Errors of every replayed request that failed, by id."""
        return {
            rid: h.exception()
            for rid, h in self.handles.items()
            if h.state == "failed"
        }

    def unfinished_ids(self) -> List[int]:
        """Ids the journal marked incomplete at the crash — the work
        recovery existed to finish."""
        return [e["request_id"] for e in self.journal.unfinished()]

    def __repr__(self) -> str:
        return (
            f"RecoveredRun(requests={len(self.handles)}, "
            f"recovered_unfinished={len(self.unfinished_ids())})"
        )


def recover(
    journal: Journal,
    program: Any = None,
    num_lanes: Optional[int] = None,
    *,
    num_engines: Optional[int] = None,
    server: Any = None,
    **options: Any,
) -> RecoveredRun:
    """Rebuild a server and replay ``journal``'s admission schedule.

    Builds a fresh :class:`~repro.serve.engine.Engine` (``program`` +
    ``num_lanes``) or :class:`~repro.serve.cluster.Cluster` (also
    ``num_engines=``) with the given options — pass the same serving
    configuration the crashed fleet ran, since the configuration is part
    of what determines the schedule — or replays into a caller-built
    ``server=``.  Every journaled submit is re-issued at its recorded
    logical tick, in recorded order, then the server runs to idle.

    The serving stack schedules purely from the logical clock and the
    admission sequence, so the replayed run — including all work the crash
    interrupted — is *bit-identical* to an uninterrupted run of the same
    schedule: same outputs, same per-request step counts, same scheduling
    telemetry.  This is replay-based recovery: journal checkpoints are
    validated and exposed (:meth:`Journal.restore_checkpoints`) but not
    consumed here, because replaying from admission is what makes the
    bit-identical guarantee unconditional.

    To journal the recovered run onward, pass a *fresh* ``journal=`` in
    ``options`` — never the one being replayed.
    """
    if server is None:
        if program is None or num_lanes is None:
            raise ValueError(
                "recover() needs either server= or (program, num_lanes)"
            )
        if options.get("journal") is journal:
            raise ValueError(
                "recover() cannot journal into the journal it is replaying; "
                "pass a fresh Journal to record the recovered run"
            )
        if num_engines is None:
            from repro.serve.engine import Engine

            server = Engine(program, num_lanes, **options)
        else:
            from repro.serve.cluster import Cluster

            server = Cluster(program, num_engines, num_lanes, **options)
    handles: Dict[int, Any] = {}
    for entry in list(journal.submissions()):
        tick = entry["tick"]
        if tick < server.now:
            raise ValueError(
                f"journal submit for request {entry['request_id']} at tick "
                f"{tick} is in the server's past (now={server.now}); replay "
                "needs a fresh server and a tick-ordered journal"
            )
        while server.now < tick:
            server.tick()
        handle = server.submit(
            *[_decode_array(x) for x in entry["inputs"]],
            priority=entry["priority"],
            step_budget=entry["step_budget"],
            deadline_ticks=entry["deadline_ticks"],
        )
        handles[entry["request_id"]] = handle
    server.run_until_idle()
    return RecoveredRun(server=server, handles=handles, journal=journal)
