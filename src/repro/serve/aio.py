"""Asyncio front door for the serving engine: wall-clock in, logical ticks in charge.

Everything below :class:`AsyncServer` is the same deterministic machinery
as before — :class:`~repro.serve.engine.Engine` or
:class:`~repro.serve.cluster.Cluster` advancing a *logical* clock, one
tick per engine step.  This module adds the process boundary ROADMAP item
1 asks for: callers ``await server.submit(...)`` from arbitrary
coroutines, handles become awaitable, ``map`` becomes an async iterator
yielding results as they complete, and a wall-clock driver paces the tick
loop at ``tick_interval`` seconds per tick.

The one design rule is that **the logical clock stays the sole source of
scheduling truth**.  Wall time only decides *when* the driver runs the
next tick; every scheduling decision — admission order, preemption,
deadlines, telemetry — happens on the tick counter exactly as in the
synchronous engine.  The front door records each submission as an
:class:`Arrival` stamped with the logical tick it landed on, and
:func:`replay_arrivals` re-feeds that schedule to a fresh synchronous
server: the replay routes, preempts, and completes identically, so traces
are byte-identical and outputs bit-identical to the live async run — no
matter how wall-clock jitter interleaved the original submissions between
ticks.

Backpressure is cooperative instead of exceptional: when every queue is
full, ``submit`` parks the caller on a FIFO of slot waiters and the driver
admits them as capacity opens, rather than raising
:class:`~repro.serve.queue.QueueFullError` at the caller.  The error
remains for the genuinely wedged case: if :data:`~repro.serve.engine.NO_PROGRESS_LIMIT`
consecutive ticks leave the server's progress signature unchanged while
waiters are parked, they are failed rather than hung forever.
"""

from __future__ import annotations

import asyncio
from collections import deque
from dataclasses import dataclass
from typing import (
    Any,
    AsyncIterator,
    Deque,
    Dict,
    Iterable,
    List,
    Optional,
    Sequence,
    Tuple,
)

from repro.serve.engine import NO_PROGRESS_LIMIT
from repro.serve.queue import QueueFullError, ResultHandle


@dataclass(frozen=True)
class Arrival:
    """One front-door submission, stamped with the logical tick it landed on.

    The complete replay record: feeding a sequence of these to
    :func:`replay_arrivals` reproduces the live run's submission schedule
    on the logical clock, independent of the wall-clock jitter that
    originally produced it.
    """

    tick: int
    inputs: Tuple[Any, ...]
    priority: int = 0
    step_budget: Optional[int] = None
    deadline_ticks: Optional[int] = None


def _emit_arrive(server: Any, handle: ResultHandle) -> None:
    """Record the front-door ``arrive`` event (no-op untraced).

    Shared by the live async path and :func:`replay_arrivals`, so a
    replayed run's event stream is byte-identical to the original's.
    """
    trace = getattr(server, "trace", None)
    if trace is None or trace.tracer is None:
        return
    trace.tracer.record(
        "arrive",
        server.now,
        request_id=handle.request_id,
        shard=handle.shard,
        priority=handle.request.priority,
    )


def replay_arrivals(server: Any, arrivals: Iterable[Arrival]) -> List[ResultHandle]:
    """Re-feed a recorded arrival schedule to a synchronous server.

    Ticks the server up to each arrival's logical tick, submits with the
    recorded priority/budget/deadline, then drains.  Because the engine is
    a pure function of the submission sequence on the logical clock, the
    replay's outputs are bit-identical and its trace byte-identical to the
    live :class:`AsyncServer` run that recorded the schedule.  Returns the
    handles in arrival order (all resolved).
    """
    handles: List[ResultHandle] = []
    for arrival in arrivals:
        if arrival.tick < server.now:
            raise ValueError(
                f"arrival at tick {arrival.tick} is in the past "
                f"(server is at {server.now}); arrivals must be tick-ordered"
            )
        while server.now < arrival.tick:
            server.tick()
        handle = server.submit(
            *arrival.inputs,
            priority=arrival.priority,
            step_budget=arrival.step_budget,
            deadline_ticks=arrival.deadline_ticks,
        )
        _emit_arrive(server, handle)
        handles.append(handle)
    server.run_until_idle()
    return handles


class AsyncResultHandle:
    """Awaitable view of one request: ``await handle`` yields the result.

    Wraps the engine's synchronous :class:`~repro.serve.queue.ResultHandle`
    (exposed as ``.handle``); the driver sets the completion event when the
    underlying request reaches a terminal state.  Awaiting re-raises the
    request's error on failure — but only when awaited, so an unobserved
    failure never spams the event loop's exception logger.
    """

    def __init__(self, handle: ResultHandle):
        self.handle = handle
        self._event = asyncio.Event()
        self._failure: Optional[BaseException] = None

    @property
    def request_id(self) -> int:
        return self.handle.request_id

    def done(self) -> bool:
        """True once the request has a result or an error."""
        return self._event.is_set()

    async def wait(self) -> "AsyncResultHandle":
        """Block until terminal; returns self (does not raise on failure)."""
        await self._event.wait()
        return self

    def result(self) -> Any:
        """The resolved outputs (raises the request's error if it failed).

        If the driver crashed before this request resolved, raises
        ``RuntimeError`` chained to the crash, so the engine's original
        exception reaches the awaiter instead of a silent hang.
        """
        if self._failure is not None:
            raise RuntimeError(
                "server driver crashed before this request resolved"
            ) from self._failure
        return self.handle.result()

    def __await__(self):
        yield from self._event.wait().__await__()
        return self.result()

    def __repr__(self) -> str:
        return f"AsyncResultHandle({self.handle!r})"


@dataclass
class _PendingSubmit:
    """A submission parked on the slot-waiter FIFO until admission opens."""

    future: "asyncio.Future[AsyncResultHandle]"
    inputs: Tuple[Any, ...]
    priority: int
    step_budget: Optional[int]
    deadline_ticks: Optional[int] = None


class AsyncServer:
    """Asyncio submission layer over an :class:`~repro.serve.engine.Engine`
    or :class:`~repro.serve.cluster.Cluster`.

    One driver task owns the tick loop; callers interact only through
    coroutines, so no lock is needed — everything runs on one event loop.

    Parameters
    ----------
    server:
        The engine or cluster to drive.  The async layer never touches its
        scheduling: ticks, admission, preemption, and telemetry all happen
        on the logical clock exactly as in synchronous use.
    tick_interval:
        Wall-clock seconds per logical tick.  ``0.0`` (default) runs the
        loop as fast as the event loop allows (still yielding between
        ticks, so submissions interleave).  Positive values pace ticks on
        an accumulating deadline — steady long-run rate, no drift — that
        resets whenever the loop falls behind or goes idle, so an idle gap
        never causes a catch-up burst.
    journal:
        An admission :class:`~repro.serve.durability.Journal` attached to
        the underlying server: every accepted front-door submission is
        recorded with its logical arrival tick (the durable form of the
        in-memory ``arrivals`` schedule), so a crashed wall-clock run is
        replayable bit-identically via
        :func:`~repro.serve.durability.recover` — wall-clock pacing only
        decides *when* ticks happen, never what they do.

    Usage::

        async with AsyncServer(engine, tick_interval=0.001) as server:
            handle = await server.submit(x, deadline_ticks=40)
            result = await handle
            async for result in server.map(batch):
                ...

    ``server.arrivals`` after a run is the recorded submission schedule:
    pass it to :func:`replay_arrivals` for a deterministic re-run.
    """

    def __init__(
        self, server: Any, tick_interval: float = 0.0, journal: Any = None
    ):
        if tick_interval < 0:
            raise ValueError(
                f"tick_interval must be >= 0 seconds, got {tick_interval}"
            )
        self.server = server
        self.tick_interval = float(tick_interval)
        if journal is not None:
            server.set_journal(journal)
        #: Every front-door submission in order, stamped with its logical
        #: tick — the replayable arrival schedule.
        self.arrivals: List[Arrival] = []
        self._waiting: Deque[_PendingSubmit] = deque()
        self._pending: Dict[int, AsyncResultHandle] = {}
        self._wake = asyncio.Event()
        self._closed = False
        self._crash: Optional[BaseException] = None
        self._driver: Optional["asyncio.Task[None]"] = None

    # -- lifecycle -----------------------------------------------------------

    def _ensure_started(self) -> None:
        if self._crash is not None:
            raise RuntimeError(
                "AsyncServer driver crashed and cannot be restarted"
            ) from self._crash
        if self._driver is None or self._driver.done():
            self._driver = asyncio.get_running_loop().create_task(self._run())

    async def __aenter__(self) -> "AsyncServer":
        self._ensure_started()
        return self

    async def __aexit__(self, *exc_info: Any) -> None:
        await self.aclose()

    async def aclose(self) -> None:
        """Stop accepting submissions, drain in-flight work, stop the driver."""
        self._closed = True
        self._wake.set()
        if self._driver is not None:
            await self._driver
            self._driver = None

    async def drain(self) -> None:
        """Wait until every accepted submission has reached a terminal state."""
        while self._waiting or self._pending:
            pending = [h.wait() for h in self._pending.values()]
            if pending:
                await asyncio.gather(*pending)
            else:
                # Waiters are parked but nothing is pending yet: let the
                # driver admit them before checking again.
                await asyncio.sleep(0)

    # -- submission ----------------------------------------------------------

    @property
    def queue_depth(self) -> int:
        """Parked slot waiters (front-door backpressure depth)."""
        return len(self._waiting)

    def _submit_now(
        self,
        inputs: Tuple[Any, ...],
        priority: int,
        step_budget: Optional[int],
        deadline_ticks: Optional[int],
    ) -> AsyncResultHandle:
        handle = self.server.submit(
            *inputs,
            priority=priority,
            step_budget=step_budget,
            deadline_ticks=deadline_ticks,
        )
        _emit_arrive(self.server, handle)
        self.arrivals.append(
            Arrival(
                tick=self.server.now,
                inputs=inputs,
                priority=priority,
                step_budget=step_budget,
                deadline_ticks=deadline_ticks,
            )
        )
        wrapped = AsyncResultHandle(handle)
        self._pending[handle.request_id] = wrapped
        self._wake.set()
        return wrapped

    async def submit(
        self,
        *inputs: Any,
        priority: int = 0,
        step_budget: Optional[int] = None,
        deadline_ticks: Optional[int] = None,
    ) -> AsyncResultHandle:
        """Submit one request; awaits a queue slot instead of overflowing.

        Resolves to an awaitable :class:`AsyncResultHandle` once the
        request is admitted — immediately when the queue has space, after
        backpressure when it is full.  Slot waiters are served FIFO, so
        submission order is preserved under pressure.  Raises
        :class:`~repro.serve.queue.QueueFullError` only if the server
        wedges (no progress for :data:`~repro.serve.engine.NO_PROGRESS_LIMIT`
        ticks while full), and ``RuntimeError`` after :meth:`aclose` or
        after the driver crashed on an engine exception (chained as the
        cause; parked and pending awaiters receive the same crash).
        """
        if self._closed:
            raise RuntimeError("AsyncServer is closed and accepts no new requests")
        self._ensure_started()
        if not self._waiting and not self.server.admission_full():
            return self._submit_now(
                tuple(inputs), priority, step_budget, deadline_ticks
            )
        future: "asyncio.Future[AsyncResultHandle]" = (
            asyncio.get_running_loop().create_future()
        )
        self._waiting.append(
            _PendingSubmit(
                future, tuple(inputs), priority, step_budget, deadline_ticks
            )
        )
        self._wake.set()
        return await future

    async def map(
        self,
        request_inputs: Iterable[Sequence[Any]],
        *,
        priority: int = 0,
        step_budget: Optional[int] = None,
        deadline_ticks: Optional[int] = None,
    ) -> AsyncIterator[Any]:
        """Serve a collection of requests, yielding results as they complete.

        Unlike the synchronous ``map`` (results in request order after a
        full drain), this is an async iterator in *completion* order:
        early finishers are consumed while stragglers still run.  Ties on
        the same tick break by request id, so the yield order is as
        deterministic as the engine itself.
        """
        handles = []
        for inputs in request_inputs:
            handles.append(
                await self.submit(
                    *inputs,
                    priority=priority,
                    step_budget=step_budget,
                    deadline_ticks=deadline_ticks,
                )
            )
        waiters = {
            asyncio.ensure_future(h.wait()): h for h in handles
        }
        while waiters:
            done, _ = await asyncio.wait(
                waiters.keys(), return_when=asyncio.FIRST_COMPLETED
            )
            finished = sorted(
                (waiters.pop(task) for task in done),
                key=lambda h: (h.handle.finish_tick, h.request_id),
            )
            for handle in finished:
                yield handle.result()

    # -- the wall-clock driver ----------------------------------------------

    def _admit_waiters(self) -> None:
        while self._waiting and not self.server.admission_full():
            entry = self._waiting.popleft()
            if entry.future.cancelled():
                continue
            entry.future.set_result(
                self._submit_now(
                    entry.inputs,
                    entry.priority,
                    entry.step_budget,
                    entry.deadline_ticks,
                )
            )

    def _deliver_completions(self) -> None:
        if not self._pending:
            return
        delivered = [
            rid for rid, h in self._pending.items() if h.handle.done()
        ]
        for rid in delivered:
            self._pending.pop(rid)._event.set()

    def _fail_waiters(self, error: BaseException) -> None:
        while self._waiting:
            entry = self._waiting.popleft()
            if not entry.future.cancelled():
                entry.future.set_exception(error)

    def _crashed(self, error: BaseException) -> None:
        """The engine raised mid-tick and the driver is dead.

        Every parked submitter and pending awaiter would otherwise hang
        forever on events only the driver sets — fail them all with the
        crash instead, and poison future submits (``_ensure_started``
        refuses to restart over a crashed engine of unknown state).
        """
        self._crash = error
        self._fail_waiters(error)
        for wrapped in self._pending.values():
            wrapped._failure = error
            wrapped._event.set()
        self._pending.clear()

    async def _run(self) -> None:
        try:
            await self._drive_ticks()
        except Exception as error:
            self._crashed(error)

    async def _drive_ticks(self) -> None:
        loop = asyncio.get_running_loop()
        signature = getattr(self.server, "progress_signature", None)
        deadline = loop.time()
        stalled = 0
        before = None if signature is None else signature()
        while True:
            self._admit_waiters()
            if not self.server.busy() and not self._waiting:
                if self._closed:
                    break
                # Idle: park until a submission arrives, then restart the
                # pacing deadline so the gap causes no catch-up burst.
                self._wake.clear()
                if not self.server.busy() and not self._waiting:
                    await self._wake.wait()
                deadline = loop.time()
                continue
            self.server.tick()
            self._deliver_completions()
            if self._waiting and signature is not None:
                # Same wedge detection as the synchronous backpressure
                # loop: parked waiters must not hang on a fleet that can
                # never admit (e.g. every shard draining).
                after = signature()
                if after == before:
                    stalled += 1
                    if stalled >= NO_PROGRESS_LIMIT:
                        stalled = 0
                        self._fail_waiters(
                            QueueFullError(
                                f"admission is full and {NO_PROGRESS_LIMIT} "
                                "consecutive ticks made no progress; the "
                                "server can never admit the parked waiters"
                            )
                        )
                else:
                    stalled = 0
                before = after
            else:
                stalled = 0
                before = None if signature is None else signature()
            if self.tick_interval > 0:
                deadline += self.tick_interval
                delay = deadline - loop.time()
                if delay > 0:
                    await asyncio.sleep(delay)
                else:
                    # Behind schedule: run flat out but carry no debt.
                    deadline = loop.time()
                    await asyncio.sleep(0)
            else:
                # Stay cooperative so submitters interleave with ticks.
                await asyncio.sleep(0)

    def __repr__(self) -> str:
        return (
            f"AsyncServer({self.server!r}, tick_interval={self.tick_interval}, "
            f"pending={len(self._pending)}, waiting={len(self._waiting)}, "
            f"closed={self._closed})"
        )
