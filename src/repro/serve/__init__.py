"""Continuous-batching serving on top of program-counter autobatching.

Why this exists
---------------
The paper's Algorithm 2 turns a batch of logically independent program
executions (e.g. NUTS chains) into one SIMD machine with a per-lane program
counter: every step executes one basic block under a mask, and members that
diverge simply wait at different blocks.  But the machine as published is
*static*: you bind Z inputs, run until **every** program counter reaches the
exit index, and only then read the outputs.  Near the end of a run the
batch is mostly stragglers — lane utilization decays toward 1/Z, the same
pathology Figure 6 measures for primitive-level batch utilization.

Lane recycling
--------------
The key observation is that a halted lane is *inert*: once member ``b``'s
program counter sits at ``exit_index``, no masked block execution touches
lane ``b`` again, so its registers, per-variable stacks, and return-address
stack can be reset and rebound to a brand-new logical thread without
perturbing in-flight neighbors.  (All primitives are per-lane elementwise
over the batch dimension — the property Algorithm 2 already relies on — so
a lane's trajectory is bit-identical whether its neighbors are the original
cohort or recycled strangers.)

:class:`Engine` exploits this with three VM-level hooks added to
:class:`~repro.vm.program_counter.ProgramCounterVM`:

* ``retire_lanes(idx)`` — gather the outputs of halted lanes,
* ``reset_lanes(idx)`` — restore those lanes to Algorithm 2's initial
  state (pc at the entry block, pc-stack bottomed at the exit index,
  storage zeroed),
* ``inject_lanes(idx, inputs)`` — scatter a new request's inputs in.

The serving loop per tick: admit queued requests into vacant lanes, execute
one scheduler-selected block (Algorithm 2's inner loop, unchanged), retire
any member that reached the exit, and deliver its outputs through the
caller's :class:`~repro.serve.queue.ResultHandle`.  Under sustained
traffic the machine never drains: the batch is a rolling population of
requests at different program points and stack depths — exactly the
heterogeneity Algorithm 2 was built to batch.

Preemption (lane checkpoint/resume)
-----------------------------------
Explicit state cuts the other way too: because a lane's *entire* logical
thread is its column slices (pc, return-address frames, per-variable
stacks), a mid-flight lane is **checkpointable**.
``ProgramCounterVM.snapshot_lane`` captures those slices as a
machine-independent :class:`~repro.vm.program_counter.LaneSnapshot`;
``restore_lane`` reinstalls them into any vacant lane of any machine bound
to the same program, and the thread resumes bit-identically.  ``preempt=``
(a :class:`~repro.serve.engine.PreemptPolicy`) uses this to honor priority
SLOs: a straggler lane is evicted — snapshotted, halted, re-queued with
its snapshot and original arrival stamp — so a higher-priority arrival
seats immediately, and the straggler *resumes* (same step budget, no
recompute) when a lane frees.  In a cluster, work stealing migrates
snapshot-carrying requests to idle shards, so a preempted lane can resume
on a different machine entirely.

Multi-engine sharding
---------------------
One engine is bounded by its machine's SIMD width.
:class:`~repro.serve.cluster.Cluster` scales past it: N engine shards —
each its own lane pool and logical machine — behind the same
``submit``/``map``/``run_until_idle`` surface, with pluggable routing
(round-robin, least-loaded, power-of-two-choices), spillover admission
(reject only when *every* shard's queue is full), and a
:class:`~repro.serve.telemetry.ClusterTelemetry` fleet rollup.  All shards
bind one shared :class:`~repro.vm.executors.ExecutionPlan`, so fused code
is generated once for the whole fleet (code-cache sharing).  The cluster
also *rebalances*: ``steal=`` turns on cross-shard work stealing (an
idle-laned shard takes queued requests from the most backlogged one each
tick, priority/arrival/step-budget metadata intact), and ``autoscale=``
adds shard elasticity (grow under sustained queue pressure, drain-then-
retire under sustained slack — new shards bind the same plan, so the
fused compile count stays at 1).

Durable serving
---------------
Snapshots are also *serializable*
(:meth:`~repro.vm.program_counter.LaneSnapshot.to_bytes`, a versioned
integrity-checked wire format), which :mod:`repro.serve.durability` turns
into a production story: ``max_resident_snapshots=`` caps the array memory
of a preempted backlog by spilling overflow snapshots into a
:class:`~repro.serve.durability.SpillStore` (in-memory or on-disk) and
rehydrating them — through the verifier's full static admission — at
resume; ``journal=`` records every accepted submit and periodic snapshot
checkpoints into an append-only :class:`~repro.serve.durability.Journal`;
and :func:`~repro.serve.durability.recover` replays a crashed fleet's
journal on the logical clock, completing all unfinished work bit-identically
to an uninterrupted run.

Module map
----------
* :mod:`repro.serve.engine` — :class:`Engine`: the tick loop, admission
  control (bounded queue, per-request step budgets), and the
  ``refill="drain"`` baseline discipline for benchmarking.
* :mod:`repro.serve.cluster` — :class:`Cluster`: N engine shards, routing
  policies, spillover admission, one shared execution plan.
* :mod:`repro.serve.queue` — :class:`ServeRequest`, :class:`ResultHandle`,
  the bounded priority :class:`RequestQueue`, and the serving errors.
* :mod:`repro.serve.durability` — :class:`SpillStore` backends,
  :class:`Journal`, :func:`recover`: snapshot spilling under a resident
  cap, admission journaling, and bit-identical crash recovery.
* :mod:`repro.serve.lanes` — :class:`LanePool`: deterministic
  lane-to-request assignment.
* :mod:`repro.serve.telemetry` — :class:`ServeTelemetry` (per engine) and
  :class:`ClusterTelemetry` (fleet rollup): lane utilization, queue wait,
  time-to-first-result, throughput, latency percentiles, and shard skew
  on the logical clock.
* :mod:`repro.observe` (sibling package) — opt-in ``trace=`` deep
  observability: per-request event timelines (``handle.trace()``, Chrome
  trace export), windowed per-tick metric series, and per-block
  execution profiles, all deterministic on the logical clock.

Entry points: ``Engine(fn, num_lanes)`` / ``fn.serve(num_lanes)`` for one
machine, ``Cluster(fn, num_engines, num_lanes)`` /
``fn.serve_cluster(num_engines, num_lanes)`` for a fleet.
"""

from repro.serve.aio import (
    Arrival,
    AsyncResultHandle,
    AsyncServer,
    replay_arrivals,
)
from repro.serve.cluster import (
    AutoscalePolicy,
    Cluster,
    LeastLoadedPolicy,
    PowerOfTwoPolicy,
    ROUTING_POLICIES,
    RoundRobinPolicy,
    RoutingPolicy,
    STEAL_POLICIES,
    StealPolicy,
    resolve_autoscale,
    resolve_policy,
    resolve_steal_policy,
)
from repro.serve.durability import (
    DiskSpillStore,
    Journal,
    MemorySpillStore,
    RecoveredRun,
    SpillStore,
    SpilledSnapshot,
    recover,
    resolve_spill_store,
)
from repro.serve.engine import (
    DeadlinePreemptPolicy,
    Engine,
    NO_PROGRESS_LIMIT,
    PREEMPT_POLICIES,
    PreemptPolicy,
    REFILL_POLICIES,
    resolve_preempt_policy,
)
from repro.serve.lanes import LanePool
from repro.serve.queue import (
    QueueFullError,
    RequestQueue,
    ResultHandle,
    ServeRequest,
    StepBudgetExceeded,
)
from repro.serve.telemetry import ClusterTelemetry, ServeTelemetry

__all__ = [
    "Arrival",
    "AsyncResultHandle",
    "AsyncServer",
    "AutoscalePolicy",
    "Cluster",
    "ClusterTelemetry",
    "DeadlinePreemptPolicy",
    "DiskSpillStore",
    "Engine",
    "Journal",
    "MemorySpillStore",
    "RecoveredRun",
    "SpillStore",
    "SpilledSnapshot",
    "recover",
    "resolve_spill_store",
    "NO_PROGRESS_LIMIT",
    "PREEMPT_POLICIES",
    "PreemptPolicy",
    "STEAL_POLICIES",
    "StealPolicy",
    "resolve_autoscale",
    "resolve_preempt_policy",
    "resolve_steal_policy",
    "LeastLoadedPolicy",
    "PowerOfTwoPolicy",
    "REFILL_POLICIES",
    "ROUTING_POLICIES",
    "RoundRobinPolicy",
    "RoutingPolicy",
    "LanePool",
    "QueueFullError",
    "RequestQueue",
    "ResultHandle",
    "ServeRequest",
    "StepBudgetExceeded",
    "ServeTelemetry",
    "replay_arrivals",
    "resolve_policy",
]
