"""The continuous-batching serving engine.

:class:`Engine` owns one :class:`~repro.vm.program_counter.ProgramCounterVM`
whose batch dimension is treated as a fixed pool of lanes.  Requests are
admitted from a bounded priority queue into vacant lanes *mid-flight*: when
a lane's member reaches the exit program counter it is retired (outputs
delivered through its :class:`~repro.serve.queue.ResultHandle`) and a queued
request is injected into the vacated lane on the very next tick, while the
other lanes keep stepping.  The machine never drains unless traffic stops.

The engine is synchronous and deterministic: one call to :meth:`tick` is
one engine step (one machine block execution, or an idle step), and all
scheduling — lane assignment, queue order, step budgets — is a pure
function of the submission sequence.  ``refill="drain"`` degrades the same
machinery to the static drain-then-refill discipline (admit only into an
empty machine), which is the baseline the serving benchmark compares
against.
"""

from __future__ import annotations

import copy
import itertools
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple, Type

import numpy as np

from repro.frontend.registry import PrimitiveRegistry
from repro.ir.instructions import StackProgram
from repro.observe import resolve_trace
from repro.serve.lanes import LanePool
from repro.vm.executors import ExecutionPlan
from repro.serve.queue import (
    QueueFullError,
    RequestQueue,
    ResultHandle,
    ServeRequest,
    StepBudgetExceeded,
    split_request_inputs,
)
from repro.serve.telemetry import ServeTelemetry
from repro.vm.instrumentation import Instrumentation
from repro.vm.program_counter import ProgramCounterVM
from repro.vm.stack import StackOverflowError

#: Lane refill disciplines.
REFILL_POLICIES = ("continuous", "drain")


class PreemptPolicy:
    """Priority preemption with a straggler-age threshold.

    Each engine tick, before admission, :meth:`plan` proposes running lanes
    to *evict* so queued higher-priority work can seat immediately instead
    of waiting out a straggler.  An evicted lane is checkpointed
    (:meth:`~repro.vm.program_counter.ProgramCounterVM.snapshot_lane`) and
    its request re-queued *with the snapshot*, so it resumes — not restarts
    — when a lane frees up again (possibly on another shard, if the cluster
    steals it).

    A running request is evictable for a queued one when

    * ``queued.priority - running.priority >= priority_delta`` — the delta
      is at least 1, so preemption can never ping-pong between equals and
      every eviction strictly raises the priority running in that lane; and
    * the running member has held its lane for at least ``min_age`` ticks —
      which also *bounds* the wait: a higher-priority arrival is delayed by
      at most ``min_age`` ticks of any straggler's residency, no matter how
      long the straggler would run.

    ``max_per_tick`` caps evictions per tick (None = one per eligible
    queued request).  The policy is a pure function of the engine's state,
    so preemption decisions replay deterministically for a replayed trace.
    Subclass and override :meth:`plan` for other disciplines.
    """

    #: Name used in ``preempt="..."`` selection.
    name = "priority"

    def __init__(
        self,
        priority_delta: int = 1,
        min_age: int = 0,
        max_per_tick: Optional[int] = None,
    ):
        if priority_delta < 1:
            raise ValueError(
                f"priority_delta must be >= 1, got {priority_delta} "
                "(equal priorities must never preempt each other)"
            )
        if min_age < 0:
            raise ValueError(f"min_age must be >= 0, got {min_age}")
        if max_per_tick is not None and max_per_tick < 1:
            raise ValueError(f"max_per_tick must be >= 1, got {max_per_tick}")
        self.priority_delta = int(priority_delta)
        self.min_age = int(min_age)
        self.max_per_tick = max_per_tick

    def plan(self, engine: "Engine") -> List[int]:
        """Lanes to evict this tick, in eviction order.

        Pairs the queue's service order (highest priority, then oldest)
        with the running lanes weakest-first: lowest priority, then longest
        in its lane (the straggler), then lowest lane index — a
        deterministic total order.  Stops at the first pair whose priority
        gap is below the delta (later waiters only have lower priority).
        """
        if engine.pool.free_count() or not len(engine.queue):
            return []
        now = engine.now
        evictable = [
            h
            for h in engine.pool.occupants().values()
            if h.lane_age(now) >= self.min_age
        ]
        evictable.sort(
            key=lambda h: (h.request.priority, -h.lane_age(now), h.lane)
        )
        lanes: List[int] = []
        waiting = engine.queue.waiting(limit=len(evictable))
        for waiter, victim in zip(waiting, evictable):
            if self.max_per_tick is not None and len(lanes) >= self.max_per_tick:
                break
            if (
                waiter.request.priority - victim.request.priority
                < self.priority_delta
            ):
                break
            lanes.append(victim.lane)
        return lanes

    def __repr__(self) -> str:
        return (
            f"{type(self).__name__}(priority_delta={self.priority_delta}, "
            f"min_age={self.min_age}, max_per_tick={self.max_per_tick})"
        )


class DeadlinePreemptPolicy(PreemptPolicy):
    """Deadline-aware eviction: urgent waiters take the slackest lanes.

    Where :class:`PreemptPolicy` pairs queued work with victims by
    *priority*, this policy pairs by *slack* — ticks of headroom before a
    request's absolute deadline (``submit_tick + deadline_ticks``;
    requests without a deadline have infinite slack).  Each tick, the
    queued deadline-carrying requests are ranked most-urgent-first
    (least slack), the running lanes most-evictable-first (most slack),
    and a lane is evicted when its occupant holds at least
    ``slack_delta`` more ticks of slack than the waiter — so eviction
    always trades a lane from a request that can afford to wait to one
    that cannot, even *within* one priority level.

    No ping-pong: every eviction strictly decreases the seated slack by
    at least ``slack_delta`` (and both slacks decay at the same rate, so
    the relation is time-invariant) — the evicted request can never turn
    around and evict its evictor.  Requests without deadlines never
    trigger an eviction and are the first victims.  ``min_age`` and
    ``max_per_tick`` behave as on the base policy; ``priority_delta``
    gates nothing here (slack is the signal), but queue service order
    still seats higher priorities first, so a deadline can expedite a
    request within its priority class, not across classes.
    """

    #: Name used in ``preempt="..."`` selection.
    name = "deadline"

    def __init__(
        self,
        slack_delta: int = 1,
        min_age: int = 0,
        max_per_tick: Optional[int] = None,
    ):
        super().__init__(
            priority_delta=1, min_age=min_age, max_per_tick=max_per_tick
        )
        if slack_delta < 1:
            raise ValueError(
                f"slack_delta must be >= 1, got {slack_delta} "
                "(zero-gap eviction would ping-pong between equal slacks)"
            )
        self.slack_delta = int(slack_delta)

    def plan(self, engine: "Engine") -> List[int]:
        """Lanes to evict this tick: slackest victims for urgent waiters."""
        if engine.pool.free_count() or not len(engine.queue):
            return []
        now = engine.now
        evictable = [
            h
            for h in engine.pool.occupants().values()
            if h.lane_age(now) >= self.min_age
        ]
        # Most slack first; ties fall back to the base policy's weakest-
        # first order (lowest priority, longest resident, lowest lane).
        evictable.sort(
            key=lambda h: (
                -h.slack(now), h.request.priority, -h.lane_age(now), h.lane
            )
        )
        # Least slack first among the waiters; arrival stamps break ties
        # deterministically.  Deadline-less waiters (infinite slack) sort
        # last and can never satisfy the slack gap, so the zip below
        # stops before reaching them.
        waiting = sorted(
            engine.queue.waiting(),
            key=lambda h: (h.slack(now), -h.request.priority, h.arrival),
        )
        lanes: List[int] = []
        for waiter, victim in zip(waiting, evictable):
            if self.max_per_tick is not None and len(lanes) >= self.max_per_tick:
                break
            # Compare on the >= side: a deadline-less waiter against a
            # deadline-less victim gives inf - inf = nan, which must read
            # as "no gap" — `nan < delta` is False and would fall through
            # to an eviction that ping-pongs every tick.
            if not victim.slack(now) - waiter.slack(now) >= self.slack_delta:
                break
            lanes.append(victim.lane)
        return lanes

    def __repr__(self) -> str:
        return (
            f"{type(self).__name__}(slack_delta={self.slack_delta}, "
            f"min_age={self.min_age}, max_per_tick={self.max_per_tick})"
        )


#: Preempt-policy factories by selection name.
PREEMPT_POLICIES: Dict[str, Type[PreemptPolicy]] = {
    PreemptPolicy.name: PreemptPolicy,
    DeadlinePreemptPolicy.name: DeadlinePreemptPolicy,
}


def resolve_preempt_policy(spec: Any) -> Optional[PreemptPolicy]:
    """Turn a ``preempt=`` argument into a :class:`PreemptPolicy` (or None = off)."""
    if spec is None or spec is False:
        return None
    if spec is True:
        return PreemptPolicy()
    if isinstance(spec, PreemptPolicy):
        return spec
    if isinstance(spec, type) and issubclass(spec, PreemptPolicy):
        return spec()
    if isinstance(spec, str):
        try:
            return PREEMPT_POLICIES[spec]()
        except KeyError:
            raise ValueError(
                f"unknown preempt policy {spec!r}; "
                f"known: {sorted(PREEMPT_POLICIES)}"
            )
    raise TypeError(
        f"preempt must be a bool, name, or PreemptPolicy, "
        f"got {type(spec).__name__}"
    )


def drive_until_idle(server: Any, max_ticks: Optional[int] = None) -> int:
    """Tick ``server`` until it holds no queued or in-flight work.

    Shared driver for :class:`Engine` and
    :class:`~repro.serve.cluster.Cluster` (anything with ``busy``/``tick``/
    ``now``).  Returns the ticks run; raises ``RuntimeError`` if work
    remains after ``max_ticks``.
    """
    start = server.now
    while server.busy():
        # Budget check *before* the tick: a busy server with max_ticks=0
        # must raise without running a step, and an exact budget (work
        # finishing on tick N with max_ticks=N) must not.
        if max_ticks is not None and server.now - start >= max_ticks:
            raise RuntimeError(
                f"{type(server).__name__.lower()} still busy after "
                f"max_ticks={max_ticks}"
            )
        server.tick()
    return server.now - start


#: Consecutive full-admission ticks with an unchanged progress signature
#: that :func:`serve_all` tolerates before declaring the server wedged.
#: Large enough to outlast transient plateaus (autoscale patience counters,
#: steal cooldowns) that resolve themselves without any counter moving.
NO_PROGRESS_LIMIT = 64


def serve_all(
    server: Any,
    request_inputs: Iterable[Sequence[Any]],
    priority: int = 0,
    step_budget: Optional[int] = None,
    deadline_ticks: Optional[int] = None,
) -> List[Any]:
    """Submit every request with backpressure, drain, return results in order.

    The shared body of ``Engine.map`` and ``Cluster.map``: while admission
    is full everywhere (``server.admission_full()``), tick instead of
    overflowing; raise :class:`QueueFullError` if the server goes idle
    without ever being able to admit, or if :data:`NO_PROGRESS_LIMIT`
    consecutive ticks leave the server's :meth:`progress_signature`
    unchanged — a wedged fleet (e.g. every shard draining for retirement
    with nowhere to re-seat its queue) would otherwise spin here forever,
    since the logical clock always advances even when nothing else does.
    """
    signature = getattr(server, "progress_signature", None)
    handles = []
    for inputs in request_inputs:
        stalled = 0
        before = None if signature is None else signature()
        while server.admission_full():
            if not server.tick():
                raise QueueFullError(
                    f"the queue is full but the "
                    f"{type(server).__name__.lower()} is idle; "
                    "max_queue_depth is too small to ever admit"
                )
            if signature is None:
                continue
            after = signature()
            if after == before:
                stalled += 1
                if stalled >= NO_PROGRESS_LIMIT:
                    raise QueueFullError(
                        f"admission is full but {stalled} consecutive ticks "
                        f"made no progress; the "
                        f"{type(server).__name__.lower()} can never admit "
                        "(is every shard draining for retirement?)"
                    )
            else:
                stalled = 0
                before = after
        handles.append(
            server.submit(
                *inputs,
                priority=priority,
                step_budget=step_budget,
                deadline_ticks=deadline_ticks,
            )
        )
    server.run_until_idle()
    return [h.result() for h in handles]


class Engine:
    """Serve streaming requests through one lane-recycled batched machine.

    Parameters
    ----------
    program:
        An :class:`~repro.frontend.api.AutobatchFunction` (lowered lazily)
        or an already-lowered :class:`~repro.ir.instructions.StackProgram`.
    num_lanes:
        Width of the machine's batch dimension — the maximum number of
        requests in flight at once.
    max_queue_depth:
        Admission control: submissions beyond this many queued requests
        raise :class:`QueueFullError` (``None`` = unbounded).
    default_step_budget:
        Per-request cap on machine steps in which the request's member is
        active; exhausted requests fail with :class:`StepBudgetExceeded`
        and their lane is recycled.  Overridable per ``submit``.
    refill:
        ``"continuous"`` (inject into vacated lanes mid-flight) or
        ``"drain"`` (admit only into a fully drained machine — the static
        baseline).
    preempt:
        Priority preemption: ``True`` for the default
        :class:`PreemptPolicy`, an instance for tuned
        ``priority_delta``/``min_age``/``max_per_tick``, ``None``/``False``
        (default) for off.  Each tick, eligible straggler lanes are
        checkpointed and evicted so queued higher-priority requests seat
        immediately; the evicted request re-queues with its
        :class:`~repro.vm.program_counter.LaneSnapshot` and *resumes* when
        a lane frees (keeping its step budget and arrival order).
        Requires ``refill="continuous"``.
    resume_batching:
        Off by default.  When on, lane refill prefers *groups* of
        preempted requests parked at the same program counter: if the
        queue head carries a snapshot, admission seats the largest
        same-``(priority, pc)`` cohort (ties to the lowest pc) instead of
        strict service order, so resumed stragglers re-converge into
        shared masked steps — undoing the divergence preemption scattered
        them into.  Only reorders *within* one priority level and only
        among snapshot-carrying handles; a passed-over head is seated
        unconditionally after ``resume_defer_limit`` deferrals, so the
        reordering is bounded and deterministic.
    trace:
        Observability (off by default, zero overhead when off): ``True``
        for a full :class:`~repro.observe.Trace` (per-request event
        timelines, per-tick metrics, per-block profiling),
        ``"events"``/``"metrics"``/``"profile"`` for one piece, or a
        :class:`~repro.observe.Trace` instance to share one recorder
        across engines.  Everything is stamped with the logical clock,
        so traces from identical runs are byte-identical.
    executor:
        Block-executor choice for the machine: ``"eager"`` (per-op
        dispatch), ``"fused"`` (each block one pre-compiled callable —
        same results, a fraction of the dispatches), or ``"superblock"``
        (hot block *runs* fused into one callable each — same results
        again, below one dispatch per executed block; pass a
        :class:`~repro.backend.fusion.SuperblockExecutor` instance to
        seed regions from a :class:`~repro.observe.BlockProfile`).  Lane
        recycling is executor-agnostic: the retire/reset/inject hooks go
        through the machine's :class:`~repro.vm.executors.ExecutionPlan`.
    verify:
        Statically verify the program once at plan compile (the default;
        see :mod:`repro.analysis.stackcheck`) — stack-effect safety, depth
        bounds, region-table consistency — with zero steady-state cost:
        the proven facts are cached on the plan, and when
        ``max_stack_depth`` is not given the machine's stacks pre-size
        from the proven bound instead of the depth-32 guess.
    max_resident_snapshots:
        Cap on queued preempted-lane snapshots held as live arrays.
        Overflow is serialized (:meth:`LaneSnapshot.to_bytes`) into
        ``spill_store`` and rehydrated — through the full static admission
        checks — when popped to resume, so a deep preempted backlog costs
        bounded array memory while resume re-batching and cross-shard
        stealing keep working on spilled entries.  ``None`` (default)
        never spills.
    spill_store:
        Where spilled snapshot bytes live: a
        :class:`~repro.serve.durability.SpillStore`, ``"memory"``, or a
        directory path for the on-disk backend.  Defaults to a fresh
        in-memory store when a cap is set.
    journal:
        An admission :class:`~repro.serve.durability.Journal`: every
        accepted submit (inputs, priority, budget, deadline, arrival
        tick) and every completion is recorded, plus periodic snapshot
        checkpoints of preempted lanes, so a crashed engine's work is
        recoverable bit-identically via
        :func:`~repro.serve.durability.recover`.
    checkpoint_interval:
        Ticks between journal checkpoint sweeps of the preempted backlog
        (default 64 when a journal is attached; 0 disables checkpoints
        while keeping the submit/complete log).
    """

    def __init__(
        self,
        program: Any,
        num_lanes: int,
        *,
        registry: Optional[PrimitiveRegistry] = None,
        mode: str = "mask",
        scheduler: Any = "earliest",
        max_stack_depth: Optional[int] = None,
        top_cache: bool = True,
        optimize: Any = True,
        executor: Any = None,
        verify: bool = True,
        max_queue_depth: Optional[int] = None,
        default_step_budget: Optional[int] = None,
        refill: str = "continuous",
        preempt: Any = None,
        resume_batching: bool = False,
        resume_defer_limit: int = 4,
        trace: Any = None,
        max_steps: int = 10 ** 12,
        instrumentation: Optional[Instrumentation] = None,
        max_resident_snapshots: Optional[int] = None,
        spill_store: Any = None,
        journal: Any = None,
        checkpoint_interval: Optional[int] = None,
    ):
        if refill not in REFILL_POLICIES:
            raise ValueError(
                f"refill must be one of {REFILL_POLICIES}, got {refill!r}"
            )
        preempt_policy = resolve_preempt_policy(preempt)
        if preempt_policy is not None and refill == "drain":
            raise ValueError(
                "preemption requires refill='continuous': a drained machine "
                "admits nothing until empty, so an evicted request could "
                "never resume ahead of the drain"
            )
        if isinstance(program, ExecutionPlan):
            if executor is not None:
                raise ValueError(
                    "pass either an ExecutionPlan or executor=, not both"
                )
            plan = program
        elif isinstance(program, StackProgram):
            plan = ExecutionPlan.compile(
                program, executor=executor, verify=verify
            )
        elif hasattr(program, "stack_program"):
            if registry is None:
                registry = getattr(program, "registry", None)
            plan = ExecutionPlan.compile(
                program, executor=executor, optimize=optimize, verify=verify
            )
        else:
            raise TypeError(
                "program must be an AutobatchFunction, a StackProgram, or "
                f"an ExecutionPlan, got {type(program).__name__}"
            )
        if resume_defer_limit < 1:
            raise ValueError(
                f"resume_defer_limit must be >= 1, got {resume_defer_limit}"
            )
        self.refill = refill
        self.default_step_budget = default_step_budget
        self.preempt = preempt_policy
        self.resume_batching = bool(resume_batching)
        self.resume_defer_limit = int(resume_defer_limit)
        #: The snapshot pc the current admission wave is seating (reset at
        #: every wave): keeps :meth:`_pop_next` drawing from one cohort
        #: until it runs dry instead of round-robining over ties.
        self._resume_sticky_pc: Optional[int] = None
        self.plan = plan
        self.vm = ProgramCounterVM(
            plan,
            batch_size=num_lanes,
            registry=registry,
            mode=mode,
            scheduler=scheduler,
            max_stack_depth=max_stack_depth,
            top_cache=top_cache,
            instrumentation=instrumentation,
            max_steps=max_steps,
        )
        # A fresh machine starts every member at the entry block; a fresh
        # *server* starts every lane vacant.
        self.vm.halt_lanes(np.arange(num_lanes, dtype=np.int64))
        self.vm.track_occupancy = True
        self.pool = LanePool(num_lanes)
        self.queue = RequestQueue(max_depth=max_queue_depth)
        self.telemetry = ServeTelemetry(
            num_lanes=num_lanes, instrumentation=self.vm.instr
        )
        self._tick = 0
        #: Request-id source.  Standalone engines number from 0; a cluster
        #: replaces this with one counter shared by every shard, so ids are
        #: fleet-unique and a shared tracer never merges two requests'
        #: timelines under one key.
        self._ids = itertools.count()
        #: Resolved observability hub (None = fully off; the hot paths pay
        #: one ``is None`` check).  A cluster passes one shared instance to
        #: every shard, so the fleet shares an event stream and recorder.
        self.trace = resolve_trace(trace)
        self._metric_bufs = None
        if self.trace is not None:
            if self.trace.profile:
                self.vm.instr.track_blocks = True
            self.trace.attach_engine(self)
        if max_resident_snapshots is not None and max_resident_snapshots < 0:
            raise ValueError(
                f"max_resident_snapshots must be >= 0, got "
                f"{max_resident_snapshots}"
            )
        if checkpoint_interval is not None and checkpoint_interval < 0:
            raise ValueError(
                f"checkpoint_interval must be >= 0, got {checkpoint_interval}"
            )
        #: Cap on queued preempted snapshots held as live arrays (None =
        #: unbounded).  Overflow is serialized into :attr:`spill_store` and
        #: transparently rehydrated at resume; see
        #: :mod:`repro.serve.durability`.
        self.max_resident_snapshots = (
            None if max_resident_snapshots is None else int(max_resident_snapshots)
        )
        if spill_store is not None or self.max_resident_snapshots is not None:
            from repro.serve.durability import resolve_spill_store

            self.spill_store = resolve_spill_store(spill_store)
        else:
            self.spill_store = None
        #: Admission :class:`~repro.serve.durability.Journal` (None = off):
        #: every accepted submit and every completion is recorded, plus
        #: periodic snapshot checkpoints of the preempted backlog.
        self.journal = journal
        #: Ticks between journal checkpoint sweeps; None picks the default
        #: when a journal is attached, 0 disables checkpointing.
        self.checkpoint_interval = (
            None if checkpoint_interval is None else int(checkpoint_interval)
        )
        #: Stable shard identity within a :class:`~repro.serve.cluster.Cluster`
        #: (None for a standalone engine); survives fleet grow/shrink, unlike
        #: a position in the cluster's active-engine list.
        self.shard_id: Optional[int] = None
        #: True once the engine is being retired: no new submissions, the
        #: in-flight lanes run to completion and the queue has been exported.
        self.draining = False

    # -- submission ----------------------------------------------------------

    @property
    def now(self) -> int:
        """The engine's logical clock (ticks elapsed)."""
        return self._tick

    @property
    def executor(self) -> str:
        """Name of the block executor running the machine's blocks."""
        return self.plan.name

    def dispatch_count(self) -> int:
        """Host→device launches so far under this engine's execution plan."""
        return self.plan.dispatch_count(self.vm.instr)

    def load(self) -> int:
        """Outstanding work: queued plus in-flight requests.

        The routing metric cluster policies balance on — a vacant lane
        lowers it, a deep queue raises it.
        """
        return len(self.queue) + self.pool.busy_count()

    # -- observability -------------------------------------------------------

    def _emit(
        self,
        kind: str,
        handle: Optional[ResultHandle] = None,
        lane: Optional[int] = None,
        src: Optional[int] = None,
    ) -> None:
        """Record one trace event at the current tick (no-op untraced)."""
        if self.trace is None or self.trace.tracer is None:
            return
        self.trace.tracer.record(
            kind,
            self._tick,
            request_id=None if handle is None else handle.request_id,
            shard=self.shard_id,
            lane=lane,
            priority=None if handle is None else handle.request.priority,
            src=src,
        )

    def _sample_metrics(self, busy: int) -> None:
        """Record this tick's gauges (only called when metrics are on).

        The four ring buffers are resolved once, on the first sample (by
        which point a cluster has assigned ``shard_id``, fixing the series
        prefix), so the per-tick cost is four tuple appends — cheap enough
        that metrics stay within the tracing overhead budget the ``trace``
        benchmark asserts.
        """
        bufs = self._metric_bufs
        if bufs is None:
            metrics = self.trace.metrics
            prefix = "" if self.shard_id is None else f"shard{self.shard_id}/"
            bufs = self._metric_bufs = tuple(
                metrics.series(prefix + name)
                for name in (
                    "queue_depth", "busy_lanes", "preempted_backlog",
                    "utilization",
                )
            )
        depth_buf, busy_buf, backlog_buf, util_buf = bufs
        tick = self._tick
        queue = self.queue
        depth_buf.append((tick, float(queue.depth())))
        busy_buf.append((tick, float(busy)))
        backlog_buf.append((tick, float(queue.snapshot_count())))
        util_buf.append((tick, busy / self.pool.num_lanes))

    def submit(
        self,
        *inputs: Any,
        priority: int = 0,
        step_budget: Optional[int] = None,
        deadline_ticks: Optional[int] = None,
    ) -> ResultHandle:
        """Enqueue one request; returns its handle.

        ``inputs`` are *per-example* (unbatched) values, one per program
        input.  Raises :class:`QueueFullError` at ``max_queue_depth``.
        ``deadline_ticks`` attaches a relative SLO deadline: the request
        should finish within that many ticks of now.  Queue service order
        becomes earliest-deadline-first within the request's priority
        level, :class:`DeadlinePreemptPolicy` may evict slack-rich lanes
        for it, and ``telemetry.slo_attainment("deadline")`` scores its
        completion against its own deadline.
        """
        if deadline_ticks is not None and deadline_ticks < 0:
            raise ValueError(
                f"deadline_ticks must be >= 0, got {deadline_ticks}"
            )
        n_expected = len(self.vm.program.inputs)
        if len(inputs) != n_expected:
            raise ValueError(
                f"program takes {n_expected} inputs, got {len(inputs)}"
            )
        if self.draining:
            raise RuntimeError(
                "engine is draining for retirement and accepts no new requests"
            )
        if self.queue.full():
            self.telemetry.rejected += 1
            if self.trace is not None and self.trace.tracer is not None:
                # No request id is ever assigned to a rejected submission.
                self.trace.tracer.record(
                    "reject", self._tick, shard=self.shard_id, priority=priority
                )
            raise QueueFullError(
                f"request queue is at max_depth={self.queue.max_depth}"
            )
        request = ServeRequest(
            request_id=next(self._ids),
            inputs=split_request_inputs(inputs),
            priority=priority,
            step_budget=(
                step_budget if step_budget is not None else self.default_step_budget
            ),
            submit_tick=self._tick,
            deadline_ticks=deadline_ticks,
        )
        handle = ResultHandle(request)
        if self.trace is not None and self.trace.tracer is not None:
            handle._tracer = self.trace.tracer
        self.queue.push(handle)
        self.telemetry.submitted += 1
        if self.journal is not None:
            # Only *accepted* submits are journaled (rejections raised
            # above), so replaying the journal reproduces the admission
            # sequence exactly.
            self.journal.record_submit(handle)
        self._emit("submit", handle)
        return handle

    # -- queue migration (cluster work stealing / shard retirement) ----------

    def export_queue(
        self,
        max_requests: Optional[int] = None,
        include_preempted: bool = True,
    ) -> List[ResultHandle]:
        """Remove up to ``max_requests`` queued handles for migration.

        Handles come out in the queue's service order (highest priority,
        then oldest arrival), so a stealing cluster moves exactly the work
        this shard would have run next.  In-flight lanes are untouched.
        Preempted requests waiting with a lane snapshot migrate too — the
        snapshot is machine-independent, so they resume on the destination
        shard — unless ``include_preempted=False``, which skips them (they
        stay queued here, order preserved by their arrival stamps).
        """
        exported: List[ResultHandle] = []
        skipped: List[ResultHandle] = []
        while len(self.queue) and (
            max_requests is None or len(exported) < max_requests
        ):
            handle = self.queue.pop()
            if handle.snapshot is not None and not include_preempted:
                skipped.append(handle)
                continue
            exported.append(handle)
        for handle in skipped:
            self.queue.requeue(handle)
        return exported

    def requeue(self, handles: Iterable[ResultHandle]) -> None:
        """Admit handles migrated from another shard's queue.

        Admission control already ran at original submission, so this
        bypasses ``max_queue_depth``; each handle keeps its priority,
        arrival stamp, and step budget (see
        :meth:`~repro.serve.queue.RequestQueue.requeue`).  The ``submitted``
        counter is *not* incremented — the request was counted where it
        first arrived.
        """
        for handle in handles:
            self.queue.requeue(handle)

    def begin_drain(self) -> List[ResultHandle]:
        """Start retiring this engine: close admission, export the queue.

        Returns the queued handles for the caller to re-seat elsewhere.
        In-flight lanes are left running — keep ticking the engine until
        :meth:`busy` goes False, then it can be dropped without losing any
        handle.
        """
        self.draining = True
        return self.export_queue()

    # -- the continuous-batching loop -----------------------------------------

    def _preempt_step(self) -> None:
        """Checkpoint-and-evict straggler lanes per the preempt policy.

        Each planned lane is snapshotted, halted, and vacated; its request
        re-enters the queue carrying the snapshot (original arrival stamp
        and priority intact, so it is first in line within its priority
        level to resume).  The admission pass that follows seats the
        waiting higher-priority work into the freed lanes on this same
        tick.
        """
        for lane in self.preempt.plan(self):
            lane = int(lane)
            handle = self.pool.occupant(lane)
            snapshot = self.vm.snapshot_lane(lane)
            self.vm.halt_lanes(np.asarray([lane], dtype=np.int64))
            self.pool.release(lane)
            handle._mark_preempted(self._tick, snapshot)
            # Admission control ran at original submission; re-queuing an
            # eviction must never reject, so it bypasses max_depth.
            self.queue.requeue(handle)
            self.telemetry.record_preempt()
            self._emit("preempt", handle, lane=lane)

    def _resume(self, handle: ResultHandle, lane: int) -> None:
        """Reinstall a preempted request's snapshot into a vacant lane.

        A failed restore (snapshot migrated onto a machine with a smaller
        ``max_stack_depth``, or a mismatched program) must fail *that
        handle* and vacate the lane — mirroring :meth:`_inject_one` — not
        leak a half-restored lane out of the pool.  The same discipline
        covers rehydration: a spilled snapshot whose bytes come back
        unreadable or corrupt (a ``SnapshotDecodeError``, i.e. a
        ``ValueError``) fails only this handle — the lane was never
        touched, so it is simply released — and the tick loop carries on.
        """
        wait = self._tick - handle.preempt_tick
        lane_idx = np.asarray([lane], dtype=np.int64)
        snapshot = handle.snapshot
        if getattr(snapshot, "spilled", False):
            try:
                snapshot = snapshot.load(
                    self.vm.program,
                    facts=getattr(self.plan, "facts", None),
                    max_stack_depth=self.vm.max_stack_depth,
                )
            except (ValueError, TypeError, StackOverflowError) as error:
                # Decode failed before any machine state was written: no
                # halt needed, just vacate the lane and fail the handle.
                self.pool.release(lane)
                handle.snapshot = None
                handle._fail(error, self._tick)
                self.telemetry.failed += 1
                self._journal_complete(handle, failed=True)
                self._emit("fail", handle, lane=lane)
                return
            handle.snapshot = snapshot
            self.telemetry.rehydrations += 1
        try:
            self.vm.restore_lane(lane, snapshot)
        except (ValueError, TypeError, StackOverflowError) as error:
            # The lane may be partially restored (a live pc over reset
            # storage); halt it back to inert before releasing.
            self.vm.halt_lanes(lane_idx)
            self.pool.release(lane)
            handle.snapshot = None
            handle._fail(error, self._tick)
            self.telemetry.failed += 1
            self._journal_complete(handle, failed=True)
            self._emit("fail", handle, lane=lane)
            return
        handle._mark_resumed(lane, self._tick)
        self.telemetry.record_resume(wait)
        self._emit("resume", handle, lane=lane)

    def _pop_next(self) -> ResultHandle:
        """The next handle to seat, honoring resume re-batching when on.

        Strict service order unless the queue head is a preempted request:
        then the largest same-priority snapshot cohort wins (ties to the
        lowest pc), because seating pc-aligned stragglers together lets
        every one of their resumed steps share one masked dispatch.  Within
        one admission wave the choice is *sticky*: once a cohort starts
        seating, later pops keep drawing from it until it is exhausted.
        A per-pop greedy maximum would round-robin across equal-sized
        cohorts (popping one member makes that cohort no longer the max),
        seating a perfectly mixed wave — the opposite of alignment.  The
        head is never deferred more than ``resume_defer_limit``
        consecutive times, and never in favor of lower-priority work — the
        reordering is bounded, intra-priority, and deterministic.
        """
        head = self.queue.peek()
        if head.snapshot is None:
            return self.queue.pop()
        priority = head.request.priority
        counts = self.queue.resume_pc_counts(priority)
        sticky = self._resume_sticky_pc
        if sticky is not None and counts.get(sticky, 0) > 0:
            pc = sticky
        else:
            pc = min(counts, key=lambda p: (-counts[p], p))
        if pc == head.snapshot.pc:
            self._resume_sticky_pc = pc
            return self.queue.pop()
        if head.resume_defers >= self.resume_defer_limit:
            self._resume_sticky_pc = head.snapshot.pc
            return self.queue.pop()
        picked = self.queue.pop_resume_at(priority, pc)
        if picked is None:  # no cohort member actually available
            return self.queue.pop()
        head.resume_defers += 1
        self.telemetry.resume_rebatches += 1
        self._resume_sticky_pc = pc
        return picked

    def _admit(self) -> None:
        """Move queued requests into vacant lanes, per the refill policy."""
        self._resume_sticky_pc = None
        if self.refill == "drain" and self.pool.busy_count() > 0:
            return
        seated: List[ResultHandle] = []
        while len(self.queue) and self.pool.free_count():
            handle = (
                self._pop_next() if self.resume_batching else self.queue.pop()
            )
            lane = self.pool.acquire(handle)
            if handle.snapshot is not None:
                # A preempted request resumes from its checkpoint instead
                # of re-injecting its inputs from scratch.
                self._resume(handle, lane)
                continue
            handle._mark_running(lane, self._tick)
            self.telemetry.record_inject(handle.queue_wait())
            self._emit("inject", handle, lane=lane)
            seated.append(handle)
        if not seated:
            return
        try:
            # One gathered injection for all newly seated lanes.
            idx = np.asarray([h.lane for h in seated], dtype=np.int64)
            inputs = [
                np.stack([h.request.inputs[j] for h in seated])
                for j in range(len(self.vm.program.inputs))
            ]
            self.vm.inject_lanes(idx, inputs)
        except (ValueError, TypeError):
            # Some request's inputs don't fit the program's storages (wrong
            # event shape, unstackable mix).  Re-inject one by one so the
            # culprit fails on its own handle and good neighbors still run.
            for handle in seated:
                self._inject_one(handle)

    def _inject_one(self, handle: ResultHandle) -> None:
        lane = np.asarray([handle.lane], dtype=np.int64)
        try:
            self.vm.inject_lanes(
                lane, [x[None] for x in handle.request.inputs]
            )
        except (ValueError, TypeError) as error:
            # The lane was reset but the inputs never landed; vacate it
            # rather than letting it run the program on zeroed storage.
            self.vm.halt_lanes(lane)
            self.pool.release(handle.lane)
            handle._fail(error, self._tick)
            self.telemetry.failed += 1
            self._journal_complete(handle, failed=True)
            self._emit("fail", handle, lane=int(lane[0]))

    def _retire_finished(self) -> None:
        """Deliver outputs of every busy lane whose member has halted."""
        busy = self.pool.busy_lanes()
        if busy.size == 0:
            return
        halted = self.vm.halted_mask()
        done = busy[halted[busy]]
        if done.size == 0:
            return
        outputs = self.vm.retire_lanes(done)
        single = len(outputs) == 1
        for j, lane in enumerate(done):
            handle = self.pool.release(int(lane))
            value = outputs[0][j] if single else tuple(o[j] for o in outputs)
            handle._resolve(value, self._tick)
            self._journal_complete(handle)
            deadline = handle.deadline_tick
            self.telemetry.record_completion(
                self._tick,
                priority=handle.request.priority,
                latency=self._tick - handle.request.submit_tick,
                deadline_ticks=handle.request.deadline_ticks,
            )
            if deadline is not None and self._tick > deadline:
                # A deadline miss is its own timeline marker, just before
                # the terminal event at the same tick.
                self._emit("deadline", handle, lane=int(lane))
            self._emit("complete", handle, lane=int(lane))

    def _enforce_budgets(self, stepped: np.ndarray) -> None:
        """Abort still-running requests that exhausted their step budget."""
        for lane in stepped:
            handle = self.pool.occupant(int(lane))
            if handle is None:  # retired in this very tick
                continue
            handle.steps_used += 1
            budget = handle.request.step_budget
            if budget is not None and handle.steps_used >= budget:
                self.vm.halt_lanes(np.asarray([lane], dtype=np.int64))
                self.pool.release(int(lane))
                handle._fail(
                    StepBudgetExceeded(
                        f"request {handle.request_id} exceeded its step "
                        f"budget of {budget} machine steps"
                    ),
                    self._tick,
                )
                self.telemetry.failed += 1
                self._journal_complete(handle, failed=True)
                self._emit("fail", handle, lane=int(lane))

    # -- durability (spilling + journaling; see repro.serve.durability) --------

    def _journal_complete(self, handle: ResultHandle, failed: bool = False) -> None:
        if self.journal is not None:
            self.journal.record_complete(
                handle.request_id, self._tick, failed=failed
            )

    def _spill_one(self, handle: ResultHandle) -> Any:
        """Serialize one queued snapshot into the spill store; returns the
        stub, or None when the snapshot cannot leave process memory (an
        executor stashed unserializable state — counted, never dropped)."""
        from repro.serve.durability import SpilledSnapshot

        try:
            data = handle.snapshot.to_bytes()
        except (TypeError, ValueError):
            # ExecutorStateError et al.: the snapshot stays resident (and
            # correct); losing device state silently is the one thing the
            # codec refuses to do.
            self.telemetry.spill_errors += 1
            return None
        # request_id is fleet-unique and preemptions counts this handle's
        # evictions, so the key is unique across shards sharing one store.
        key = f"{handle.request_id}-{handle.preemptions}"
        self.spill_store.put(key, data)
        self.telemetry.spills += 1
        self._emit("spill", handle)
        return SpilledSnapshot(
            pc=handle.snapshot.pc, key=key, store=self.spill_store
        )

    def _spill_step(self) -> None:
        """Enforce ``max_resident_snapshots`` over the queued backlog."""
        if self.max_resident_snapshots is None:
            return
        self.queue.spill_overflow(self.max_resident_snapshots, self._spill_one)
        resident = self.queue.resident_snapshots()
        if resident > self.telemetry.resident_peak:
            self.telemetry.resident_peak = resident

    def _checkpoint_step(self) -> None:
        """Journal the serialized snapshot of every queued preempted lane.

        Resident snapshots serialize here; spilled ones copy their
        already-serialized bytes out of the store.  A snapshot that cannot
        serialize is counted (``spill_errors``), never silently skipped.
        """
        for handle in self.queue.waiting():
            snapshot = handle.snapshot
            if snapshot is None:
                continue
            if getattr(snapshot, "spilled", False):
                try:
                    data = snapshot.store.get(snapshot.key)
                except KeyError:
                    continue
            else:
                try:
                    data = snapshot.to_bytes()
                except (TypeError, ValueError):
                    self.telemetry.spill_errors += 1
                    continue
            self.journal.record_checkpoint(
                handle.request_id, self._tick, data,
                steps_used=handle.steps_used,
            )

    def set_journal(self, journal: Any) -> None:
        """Attach (or detach, with None) an admission journal."""
        self.journal = journal

    def tick(self) -> bool:
        """One engine step: preempt, admit, step the machine, retire, enforce
        budgets.

        Returns True while the engine holds queued or in-flight work after
        the tick.  A tick with an empty machine still advances the logical
        clock (an *idle* tick), so open-loop drivers can model arrival gaps.
        """
        if self.preempt is not None:
            self._preempt_step()
        self._admit()
        # Spill after admission: resumes just drained the hot head of the
        # backlog, so the cap is enforced over what actually stays queued.
        self._spill_step()
        busy = self.pool.busy_count()
        self.telemetry.record_tick(busy)
        if self.trace is not None and self.trace.metrics is not None:
            self._sample_metrics(busy)
        self._tick += 1
        if busy:
            stepped = self.vm.step_lanes()
            self._retire_finished()
            if stepped is not None:
                self._enforce_budgets(stepped)
        if self.journal is not None:
            interval = self.checkpoint_interval
            if interval is None:
                from repro.serve.durability import DEFAULT_CHECKPOINT_INTERVAL

                interval = DEFAULT_CHECKPOINT_INTERVAL
            if interval and self._tick % interval == 0:
                self._checkpoint_step()
        return bool(self.pool.busy_count() or len(self.queue))

    def busy(self) -> bool:
        """True while the engine holds queued or in-flight work."""
        return bool(self.pool.busy_count() or len(self.queue))

    def admission_full(self) -> bool:
        """True while no new submission can be queued."""
        return self.queue.full()

    def progress_signature(self) -> Tuple[int, ...]:
        """A fingerprint that changes iff the engine is making progress.

        Deliberately excludes the logical clock (which advances every tick
        regardless): machine steps, completions, failures, preemptions,
        resumes, queue depth, and busy lanes.  Backpressure loops compare
        consecutive signatures to tell a busy fleet from a wedged one.
        """
        t = self.telemetry
        return (
            self.vm.instr.steps,
            t.completed,
            t.failed,
            t.preemptions,
            t.resumes,
            self.queue.depth(),
            self.pool.busy_count(),
        )

    def run_until_idle(self, max_ticks: Optional[int] = None) -> int:
        """Tick until no request is queued or in flight; returns ticks run."""
        return drive_until_idle(self, max_ticks)

    # -- batch convenience ----------------------------------------------------

    def map(
        self,
        request_inputs: Iterable[Sequence[Any]],
        *,
        priority: int = 0,
        step_budget: Optional[int] = None,
        deadline_ticks: Optional[int] = None,
    ) -> List[Any]:
        """Serve a whole collection of requests; results in request order.

        Applies backpressure instead of overflowing: when the queue is
        full, the engine ticks until a slot opens.  Each element of
        ``request_inputs`` is the tuple of per-example inputs for one
        request.
        """
        return serve_all(
            self,
            request_inputs,
            priority=priority,
            step_budget=step_budget,
            deadline_ticks=deadline_ticks,
        )

    def __repr__(self) -> str:
        return (
            f"Engine(lanes={self.pool.num_lanes}, busy={self.pool.busy_count()}, "
            f"queued={len(self.queue)}, tick={self._tick}, refill={self.refill!r}, "
            f"executor={self.plan.name!r})"
        )
