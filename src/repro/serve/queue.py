"""Request admission for the serving engine: handles, queue, and errors.

A :class:`ServeRequest` is one logical thread awaiting a lane: the
per-example (unbatched) input arrays plus its admission metadata.  The
caller holds a :class:`ResultHandle` — a deliberately minimal Future: the
engine loop is synchronous and single-threaded (the machine *is* the event
loop), so the handle needs states and accessors, not locks or callbacks.

:class:`RequestQueue` orders requests by ``(-priority, deadline, arrival)``
— a bounded priority queue that serves earliest-deadline-first *within* a
priority level (requests without a deadline sort as infinitely late, so the
order degrades to plain ``(-priority, arrival)`` FIFO when no request
carries one) — and rejects at ``max_depth`` so a traffic burst surfaces as
:class:`QueueFullError` at submission time instead of unbounded memory
growth inside the engine.  The EDF key is what keeps deadline preemption
from ping-ponging: a deadline-less straggler evicted for an urgent waiter
re-queues *behind* that waiter despite its older arrival stamp.

Requests can *migrate* between queues (cross-shard work stealing and
shard drain-retirement in :mod:`repro.serve.cluster`): the first ``push``
stamps the handle with an arrival key ``(submit_tick, request_id)`` that
stays with it for life, and :meth:`RequestQueue.requeue` re-admits a
migrated handle under that original key — so a stolen request keeps its
place in the ``(-priority, arrival)`` order relative to the destination
shard's natives instead of being demoted to the back of its priority
level.  The stamp's tie-break is the *fleet-unique* request id (a
cluster's shards share one id counter), never a per-queue counter: an
earlier stamp built on the source queue's ``_seq`` made same-tick
migrants tie-break on foreign counters, so two identical runs could
order a stolen request differently relative to the thief's natives —
the same colliding-local-counter bug class as the old per-engine
request ids.

Queued preempted handles may carry their lane snapshot *spilled* — a
serialized-bytes stub in a :class:`~repro.serve.durability.SpillStore`
instead of live arrays.  The queue tracks the resident (unspilled) count
incrementally and :meth:`spill_overflow` evicts from the *back* of
service order, so the snapshots about to resume stay resident.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np


class QueueFullError(RuntimeError):
    """A request was submitted while the queue was at ``max_depth``."""


class StepBudgetExceeded(RuntimeError):
    """A request's member ran more machine steps than its budget allows."""


class PENDING:
    """Sentinel for a handle with no result yet."""


#: Handle lifecycle states.
QUEUED = "queued"
RUNNING = "running"
PREEMPTED = "preempted"
DONE = "done"
FAILED = "failed"


@dataclass
class ServeRequest:
    """One admitted request: unbatched inputs plus scheduling metadata."""

    request_id: int
    inputs: Tuple[np.ndarray, ...]
    priority: int = 0
    step_budget: Optional[int] = None
    submit_tick: int = 0
    #: Relative SLO deadline in ticks: the request should finish within
    #: this many ticks of submission (``None`` = no deadline).  The
    #: absolute target is ``submit_tick + deadline_ticks`` — what
    #: deadline-aware preemption and the telemetry deadline mode read.
    deadline_ticks: Optional[int] = None


class ResultHandle:
    """Future-like view of one request's progress through the engine."""

    def __init__(self, request: ServeRequest):
        self.request = request
        self.state = QUEUED
        self._value: Any = PENDING
        self._error: Optional[BaseException] = None
        #: engine tick at which the request left the queue for a lane
        self.inject_tick: Optional[int] = None
        #: engine tick at which the request finished (or failed)
        self.finish_tick: Optional[int] = None
        #: lane the request occupied while running
        self.lane: Optional[int] = None
        #: engine shard the request currently sits on (None outside a
        #: :class:`~repro.serve.cluster.Cluster`); updated when the request
        #: is stolen or drained onto another shard
        self.shard: Optional[int] = None
        #: arrival key ``(submit_tick, request_id)`` stamped by the first
        #: queue push; migration preserves it so cross-queue ordering is
        #: stable (the id tie-break is fleet-unique, so the key means the
        #: same thing on every shard)
        self.arrival: Optional[Tuple[int, int]] = None
        #: machine steps in which this request's member was active (carried
        #: across preemptions — a resumed request keeps spending the same
        #: step budget, it is never granted a fresh one)
        self.steps_used: int = 0
        #: the evicted lane's :class:`~repro.vm.program_counter.LaneSnapshot`
        #: while the request waits (re-queued) to resume; None otherwise.
        #: The snapshot is machine-independent, so work stealing may carry
        #: it to another shard and resume there.
        self.snapshot: Any = None
        #: how many times this request's lane was preempted
        self.preemptions: int = 0
        #: consecutive admissions at which this (queue-head) handle was
        #: passed over by resume re-batching in favor of a larger same-pc
        #: cohort; bounds the deferral (see ``Engine(resume_batching=...)``)
        self.resume_defers: int = 0
        #: engine tick of the most recent eviction (None if never preempted)
        self.preempt_tick: Optional[int] = None
        #: engine tick of the most recent resume (None if never resumed)
        self.resume_tick: Optional[int] = None
        #: the :class:`~repro.observe.Tracer` recording this request's
        #: events (set at submission by a traced engine; None untraced)
        self._tracer: Any = None

    @property
    def request_id(self) -> int:
        return self.request.request_id

    def done(self) -> bool:
        """True once the request has a result or an error."""
        return self.state in (DONE, FAILED)

    def result(self) -> Any:
        """The program outputs (an array, or a tuple for multi-output).

        Raises the request's error if it failed, or ``RuntimeError`` if it
        is still queued or running (drive the engine first).
        """
        if self.state == FAILED:
            assert self._error is not None
            raise self._error
        if self._value is PENDING:
            raise RuntimeError(
                f"request {self.request_id} is still {self.state}; "
                "run the engine (e.g. engine.run_until_idle()) first"
            )
        return self._value

    def exception(self) -> Optional[BaseException]:
        """The error that failed this request, if any."""
        return self._error

    def trace(self) -> List[Any]:
        """This request's causal event timeline, in logical-tick order.

        The recorded :class:`~repro.observe.TraceEvent` sequence — submit,
        inject, every preemption/resume/migration, and the terminal
        complete or fail — when the serving engine was built with
        ``trace=`` enabled; an empty list otherwise.
        """
        if self._tracer is None:
            return []
        return self._tracer.events_for(self.request_id)

    def queue_wait(self) -> Optional[int]:
        """Ticks spent queued before reaching a lane (None while queued)."""
        if self.inject_tick is None:
            return None
        return self.inject_tick - self.request.submit_tick

    @property
    def deadline_tick(self) -> Optional[int]:
        """Absolute deadline on the logical clock (None without a deadline)."""
        deadline = self.request.deadline_ticks
        if deadline is None:
            return None
        return self.request.submit_tick + deadline

    def slack(self, now: int) -> float:
        """Ticks of headroom before this request's deadline (inf without one).

        Negative once the deadline has passed.  The eviction signal
        :class:`~repro.serve.engine.DeadlinePreemptPolicy` ranks on: a
        running request with lots of slack (or no deadline at all) is the
        cheapest lane to take from an urgent waiter.
        """
        deadline = self.deadline_tick
        if deadline is None:
            return float("inf")
        return float(deadline - now)

    def lane_age(self, now: int) -> int:
        """Ticks since the request was (last) seated in its current lane.

        The straggler-age signal preemption policies threshold on; only
        meaningful while the request is running.
        """
        seated = self.resume_tick if self.resume_tick is not None else self.inject_tick
        assert seated is not None, "lane_age on a never-seated handle"
        return now - seated

    # -- engine-side transitions (not part of the caller API) ---------------

    def _mark_running(self, lane: int, tick: int) -> None:
        self.state = RUNNING
        self.lane = lane
        self.inject_tick = tick

    def _mark_preempted(self, tick: int, snapshot: Any) -> None:
        self.state = PREEMPTED
        self.snapshot = snapshot
        self.preempt_tick = tick
        self.preemptions += 1
        self.lane = None

    def _mark_resumed(self, lane: int, tick: int) -> None:
        self.state = RUNNING
        self.lane = lane
        self.resume_tick = tick
        self.snapshot = None  # consumed by the machine's restore
        self.resume_defers = 0

    def _resolve(self, value: Any, tick: int) -> None:
        self.state = DONE
        self._value = value
        self.finish_tick = tick

    def _fail(self, error: BaseException, tick: int) -> None:
        self.state = FAILED
        self._error = error
        self.finish_tick = tick

    def __repr__(self) -> str:
        return f"ResultHandle(id={self.request_id}, state={self.state!r})"


@dataclass
class RequestQueue:
    """Bounded priority queue: higher priority first, then earliest
    deadline, then FIFO.

    Heap entries are ``(-priority, deadline, arrival, seq, handle)``:
    ``deadline`` is the absolute deadline tick (``inf`` for requests
    without one, so deadline-less traffic keeps its plain FIFO order),
    ``arrival`` the handle's first-push stamp (kept across migrations),
    ``seq`` a local tie-break so ordering stays total and deterministic
    even when two shards' arrival stamps collide.
    """

    max_depth: Optional[int] = None
    _heap: List[Tuple[int, float, Tuple[int, int], int, ResultHandle]] = field(
        default_factory=list
    )
    _seq: int = 0
    #: Running count of queued handles carrying a preempted-lane snapshot.
    #: Maintained on push/pop — valid because a handle's ``snapshot`` only
    #: mutates while it is *out* of every queue (``_mark_preempted`` runs
    #: before the requeue, ``_mark_resumed`` after the pop) — so
    #: ``snapshot_count`` is O(1) on the per-tick metrics path.
    _snapshots: int = 0
    #: Queued snapshot-carrying handles bucketed by ``(priority, pc)`` —
    #: the index resume re-batching groups on.  Maintained incrementally
    #: under the same invariant as ``_snapshots`` (a handle's snapshot and
    #: priority never mutate while it sits in a queue — spilling swaps the
    #: payload for a same-pc stub, never the pc), so reading the cohort
    #: sizes costs O(#distinct pcs), not a heap scan.
    _pc_buckets: Dict[Tuple[int, int], int] = field(default_factory=dict)
    #: Of ``_snapshots``, how many are *resident* (live arrays in process
    #: memory) rather than spilled stubs.  Maintained on push/pop plus the
    #: explicit swaps in :meth:`spill_overflow`; what a
    #: ``max_resident_snapshots`` cap bounds.
    _resident: int = 0

    def __len__(self) -> int:
        return len(self._heap)

    def depth(self) -> int:
        """Number of queued handles — the public face of ``len(queue)``.

        Metrics and policies should read this (and
        :meth:`snapshot_count`) instead of reaching into ``_heap``, so
        the heap representation can change without silently breaking
        consumers.
        """
        return len(self._heap)

    def full(self) -> bool:
        return self.max_depth is not None and len(self._heap) >= self.max_depth

    def push(self, handle: ResultHandle) -> None:
        if self.full():
            raise QueueFullError(
                f"request queue is at max_depth={self.max_depth}; "
                "drive the engine or raise the limit"
            )
        self._admit(handle)

    def requeue(self, handle: ResultHandle) -> None:
        """Re-admit a handle migrated from another shard's queue.

        Admission control already ran where the request was first
        submitted, so migration bypasses ``max_depth`` (a rebalance must
        never lose an admitted request); the handle's original arrival
        stamp keeps its ``(-priority, arrival)`` position relative to the
        destination queue's natives.
        """
        self._admit(handle)

    def _admit(self, handle: ResultHandle) -> None:
        if handle.arrival is None:
            # The tie-break must be fleet-unique (the request id — shards
            # of a cluster share one id counter), not this queue's _seq: a
            # per-queue counter means nothing on another shard, so same-tick
            # migrants would tie-break on foreign counters and two identical
            # runs could interleave a stolen request differently.
            handle.arrival = (handle.request.submit_tick, handle.request_id)
        deadline = handle.deadline_tick
        heapq.heappush(
            self._heap,
            (
                -handle.request.priority,
                float("inf") if deadline is None else float(deadline),
                handle.arrival,
                self._seq,
                handle,
            ),
        )
        self._seq += 1
        if handle.snapshot is not None:
            self._snapshots += 1
            if not getattr(handle.snapshot, "spilled", False):
                self._resident += 1
            key = (handle.request.priority, handle.snapshot.pc)
            self._pc_buckets[key] = self._pc_buckets.get(key, 0) + 1

    def _bucket_remove(self, handle: ResultHandle) -> None:
        self._snapshots -= 1
        if not getattr(handle.snapshot, "spilled", False):
            self._resident -= 1
        key = (handle.request.priority, handle.snapshot.pc)
        remaining = self._pc_buckets.get(key, 0) - 1
        if remaining <= 0:
            self._pc_buckets.pop(key, None)
        else:
            self._pc_buckets[key] = remaining

    def pop(self) -> ResultHandle:
        """The highest-priority (then most-urgent, then oldest) queued handle."""
        handle = heapq.heappop(self._heap)[-1]
        if handle.snapshot is not None:
            self._bucket_remove(handle)
        return handle

    def resume_pc_counts(self, priority: int) -> Dict[int, int]:
        """Sizes of the queued same-pc snapshot cohorts at one priority.

        Maps ``snapshot.pc -> count`` over the queued preempted handles of
        ``priority``; the resume re-batching scheduler picks the largest
        cohort (ties to the lowest pc) so resumed stragglers re-converge
        into shared masked steps.
        """
        return {
            pc: count
            for (pri, pc), count in self._pc_buckets.items()
            if pri == priority
        }

    def pop_resume_at(self, priority: int, pc: int) -> Optional[ResultHandle]:
        """Remove the first-in-service-order preempted handle parked at
        ``(priority, pc)``, or None when no such handle is queued.

        An O(Q) scan plus re-heapify — only taken on the resume
        re-batching path, where Q is bounded by the preempted backlog.
        """
        if self._pc_buckets.get((priority, pc), 0) == 0:
            return None
        best = None
        for i, entry in enumerate(self._heap):
            handle = entry[-1]
            if (
                handle.snapshot is not None
                and handle.request.priority == priority
                and handle.snapshot.pc == pc
                and (best is None or entry < self._heap[best])
            ):
                best = i
        if best is None:
            return None
        entry = self._heap[best]
        last = self._heap.pop()
        if best < len(self._heap):
            self._heap[best] = last
            heapq.heapify(self._heap)
        handle = entry[-1]
        self._bucket_remove(handle)
        return handle

    def peek(self) -> ResultHandle:
        return self._heap[0][-1]

    def waiting(self, limit: Optional[int] = None) -> List[ResultHandle]:
        """The first ``limit`` queued handles in service order (all when
        None), without removing any.

        What a :class:`~repro.serve.engine.PreemptPolicy` inspects to pair
        waiting high-priority work with evictable running lanes; it only
        ever needs the first lane-count entries, and ``nsmallest`` keeps
        that O(Q log k) under a deep backlog instead of a full sort.
        ``seq`` entries are unique per queue, so ordering never compares
        handles.
        """
        if limit is None:
            entries = sorted(self._heap)
        else:
            entries = heapq.nsmallest(limit, self._heap)
        return [entry[-1] for entry in entries]

    def snapshot_count(self) -> int:
        """Queued handles currently carrying a preempted-lane snapshot.

        Lets a :class:`~repro.serve.cluster.StealPolicy` with
        ``include_preempted=False`` size the *stealable* backlog, instead
        of repeatedly proposing steals that would only churn past
        unstealable entries.
        """
        return self._snapshots

    def resident_snapshots(self) -> int:
        """Queued snapshots held as live arrays (not spilled stubs).

        The memory-pressure observable a ``max_resident_snapshots`` cap
        bounds; O(1), maintained incrementally like :meth:`snapshot_count`.
        """
        return self._resident

    def spill_overflow(self, cap: int, spill: Any) -> int:
        """Spill resident snapshots beyond ``cap``, back of service order
        first.

        ``spill(handle)`` serializes ``handle.snapshot`` and returns a
        spilled stub (same ``pc``, ``spilled = True``) or None when the
        snapshot cannot leave process memory (the engine counts and
        reports that; the handle simply stays resident).  Victims are
        taken from the *back* of service order so the snapshots about to
        be popped for resume stay live — spilling trades serialization
        churn on the cold tail for bounded memory, not latency on the hot
        head.  Returns the number spilled.
        """
        excess = self._resident - cap
        if excess <= 0:
            return 0
        resident = sorted(
            entry
            for entry in self._heap
            if entry[-1].snapshot is not None
            and not getattr(entry[-1].snapshot, "spilled", False)
        )
        spilled = 0
        for entry in reversed(resident):
            if excess <= 0:
                break
            handle = entry[-1]
            stub = spill(handle)
            if stub is None:
                continue
            # Same pc and priority, so _pc_buckets and _snapshots are
            # untouched; only residency changes.
            handle.snapshot = stub
            self._resident -= 1
            excess -= 1
            spilled += 1
        return spilled


def split_request_inputs(inputs: Sequence[Any]) -> Tuple[np.ndarray, ...]:
    """Normalize one request's per-example inputs to numpy arrays."""
    return tuple(np.asarray(x) for x in inputs)
