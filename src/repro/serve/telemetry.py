"""Serving-level telemetry, layered over the machine's Instrumentation.

The engine advances a *logical clock*: one tick per engine step (one
machine block execution, or one idle step while the pool waits for
arrivals).  All latency metrics are in ticks, so serving runs are exactly
reproducible — a wall-clock mapping belongs to the benchmark harness, not
the engine.

Metrics:

* **lane utilization** — busy lane-slots / offered lane-slots per tick.
  The serving analog of the paper's Figure 6 batch utilization: a
  drain-then-refill front end lets this decay to ``1/Z`` as stragglers
  finish; lane recycling keeps it near 1 under load.
* **queue wait** — ticks between submission and lane injection.
* **time-to-first-result** — ticks until the first request retires.
* **throughput** — completed requests per tick.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.vm.instrumentation import Instrumentation


@dataclass
class ServeTelemetry:
    """Counters for one engine's lifetime."""

    num_lanes: int = 0
    ticks: int = 0                 # engine steps (machine steps + idle steps)
    idle_ticks: int = 0            # ticks where no lane held a live member
    lane_slots: int = 0            # num_lanes per tick
    busy_lane_slots: int = 0       # occupied lanes summed over ticks
    submitted: int = 0             # requests accepted into the queue
    rejected: int = 0              # requests refused at max_queue_depth
    injected: int = 0              # requests seated into a lane
    completed: int = 0             # requests retired with results
    failed: int = 0                # requests aborted (e.g. step budget)
    first_result_tick: Optional[int] = None
    queue_waits: List[int] = field(default_factory=list)
    #: the machine-level counters (primitive/batch utilization etc.)
    instrumentation: Optional[Instrumentation] = None

    # -- recording ----------------------------------------------------------

    def record_tick(self, busy_lanes: int) -> None:
        self.ticks += 1
        self.lane_slots += self.num_lanes
        self.busy_lane_slots += busy_lanes
        if busy_lanes == 0:
            self.idle_ticks += 1

    def record_inject(self, queue_wait: int) -> None:
        self.injected += 1
        self.queue_waits.append(queue_wait)

    def record_completion(self, tick: int) -> None:
        self.completed += 1
        if self.first_result_tick is None:
            self.first_result_tick = tick

    # -- derived ------------------------------------------------------------

    def lane_utilization(self) -> float:
        """Fraction of offered lane-slots that held an in-flight request."""
        return (
            self.busy_lane_slots / self.lane_slots if self.lane_slots else 0.0
        )

    def mean_queue_wait(self) -> float:
        """Average ticks requests spent queued before injection."""
        waits = self.queue_waits
        return sum(waits) / len(waits) if waits else 0.0

    def max_queue_wait(self) -> int:
        return max(self.queue_waits) if self.queue_waits else 0

    def throughput(self) -> float:
        """Completed requests per tick."""
        return self.completed / self.ticks if self.ticks else 0.0

    def summary(self) -> str:
        """Human-readable multi-line telemetry summary."""
        lines = [
            f"ticks={self.ticks} (idle={self.idle_ticks}) lanes={self.num_lanes} "
            f"lane_utilization={self.lane_utilization():.3f}",
            f"requests: submitted={self.submitted} rejected={self.rejected} "
            f"injected={self.injected} completed={self.completed} "
            f"failed={self.failed}",
            f"queue wait: mean={self.mean_queue_wait():.1f} "
            f"max={self.max_queue_wait()} ticks",
            f"time-to-first-result={self.first_result_tick} ticks, "
            f"throughput={self.throughput():.4f} requests/tick",
        ]
        if self.instrumentation is not None:
            lines.append(
                "machine: "
                f"batch_utilization={self.instrumentation.utilization():.3f} "
                f"kernel_calls={self.instrumentation.kernel_calls}"
            )
        return "\n".join(lines)
