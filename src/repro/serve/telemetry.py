"""Serving-level telemetry, layered over the machine's Instrumentation.

The engine advances a *logical clock*: one tick per engine step (one
machine block execution, or one idle step while the pool waits for
arrivals).  All latency metrics are in ticks, so serving runs are exactly
reproducible — a wall-clock mapping belongs to the benchmark harness, not
the engine.

Metrics:

* **lane utilization** — busy lane-slots / offered lane-slots per tick.
  The serving analog of the paper's Figure 6 batch utilization: a
  drain-then-refill front end lets this decay to ``1/Z`` as stragglers
  finish; lane recycling keeps it near 1 under load.
* **queue wait** — ticks between submission and lane injection.
* **time-to-first-result** — ticks until the first request retires.
* **throughput** — completed requests per tick.
* **latency percentiles** — nearest-rank p50/p90/p99 completion latency
  (:func:`repro.observe.nearest_rank`), overall and per priority level,
  the deterministic counterpart to ``slo_attainment``.

:class:`ClusterTelemetry` rolls per-shard :class:`ServeTelemetry` up into
fleet-level metrics — fleet utilization, aggregate throughput, per-shard
completion skew — for the multi-engine :class:`~repro.serve.cluster.Cluster`.
Every derived metric here returns 0.0 on an empty denominator (zero ticks,
zero completions, all-rejected traffic) rather than raising, so telemetry
is always safe to summarize mid-run or after a dead engine.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple, Union

from repro.observe.metrics import nearest_rank
from repro.vm.instrumentation import Instrumentation


def _priority_table(
    telemetry, slo_ticks: Optional[int] = None
) -> Dict[int, Dict[str, float]]:
    """Per-priority percentile (and optional SLO) rows, sorted by priority.

    Shared by :class:`ServeTelemetry` and :class:`ClusterTelemetry`: each
    priority level maps to its completion count, nearest-rank p50/p90/p99
    latencies, and max — plus ``slo_attainment`` when ``slo_ticks`` is
    given.
    """
    table: Dict[int, Dict[str, float]] = {}
    for priority in telemetry.priorities():
        lats = telemetry.latencies(priority)
        row: Dict[str, float] = {
            "count": len(lats),
            "p50": nearest_rank(lats, 50),
            "p90": nearest_rank(lats, 90),
            "p99": nearest_rank(lats, 99),
            "max": float(max(lats)) if lats else 0.0,
        }
        if slo_ticks is not None:
            row["slo_attainment"] = telemetry.slo_attainment(
                slo_ticks, priority
            )
        table[priority] = row
    return table


def _priority_lines(telemetry) -> List[str]:
    """Per-priority rollup lines for a summary (only when levels differ)."""
    priorities = telemetry.priorities()
    if len(priorities) < 2:
        return []
    return [
        f"  priority {p}: n={row['count']:.0f} p50={row['p50']:.0f} "
        f"p99={row['p99']:.0f} max={row['max']:.0f} ticks"
        for p, row in telemetry.priority_table().items()
    ]


@dataclass
class ServeTelemetry:
    """Counters for one engine's lifetime."""

    num_lanes: int = 0
    ticks: int = 0                 # engine steps (machine steps + idle steps)
    idle_ticks: int = 0            # ticks where no lane held a live member
    lane_slots: int = 0            # num_lanes per tick
    busy_lane_slots: int = 0       # occupied lanes summed over ticks
    submitted: int = 0             # requests accepted into the queue
    rejected: int = 0              # requests refused at max_queue_depth
    injected: int = 0              # requests seated into a lane
    completed: int = 0             # requests retired with results
    failed: int = 0                # requests aborted (e.g. step budget)
    first_result_tick: Optional[int] = None
    queue_waits: List[int] = field(default_factory=list)
    # -- preemption (lane checkpoint/resume) --
    preemptions: int = 0           # running lanes evicted with a snapshot
    resumes: int = 0               # preempted requests reinstalled in a lane
    resume_waits: List[int] = field(default_factory=list)  # evict→resume ticks
    #: resumes seated out of service order by resume re-batching — the
    #: engine preferred a same-pc cohort member over the queue head so the
    #: resumed stragglers re-converge into shared masked steps
    resume_rebatches: int = 0
    # -- durability (snapshot spilling; see repro.serve.durability) --
    spills: int = 0                #: queued snapshots serialized out of memory
    rehydrations: int = 0          #: spilled snapshots decoded back at resume
    #: snapshots that could not serialize (unserializable executor state);
    #: they stay resident — counted loudly, never dropped silently
    spill_errors: int = 0
    #: high-water mark of queued snapshots held as live arrays — what a
    #: ``max_resident_snapshots`` cap bounds (sampled each spill sweep)
    resident_peak: int = 0
    #: completion latency (finish - submit ticks) per priority level; the
    #: raw material for per-priority SLO attainment
    priority_latencies: Dict[int, List[int]] = field(default_factory=dict)
    #: ``(latency, deadline_ticks)`` per priority for completions that
    #: carried their own deadline — the raw material for the telemetry
    #: deadline mode (``slo_attainment("deadline")``)
    priority_deadlines: Dict[int, List[Tuple[int, int]]] = field(
        default_factory=dict
    )
    #: deadline-carrying completions that finished past their own deadline
    deadline_misses: int = 0
    #: set once the owning shard was drained and dropped by autoscale;
    #: its counters freeze, and the fleet skew metrics exclude it
    retired: bool = False
    #: the machine-level counters (primitive/batch utilization etc.)
    instrumentation: Optional[Instrumentation] = None

    # -- recording ----------------------------------------------------------

    def record_tick(self, busy_lanes: int) -> None:
        self.ticks += 1
        self.lane_slots += self.num_lanes
        self.busy_lane_slots += busy_lanes
        if busy_lanes == 0:
            self.idle_ticks += 1

    def record_inject(self, queue_wait: int) -> None:
        self.injected += 1
        self.queue_waits.append(queue_wait)

    def record_completion(
        self,
        tick: int,
        priority: Optional[int] = None,
        latency: Optional[int] = None,
        deadline_ticks: Optional[int] = None,
    ) -> None:
        self.completed += 1
        if self.first_result_tick is None:
            self.first_result_tick = tick
        if priority is not None and latency is not None:
            self.priority_latencies.setdefault(priority, []).append(latency)
            if deadline_ticks is not None:
                self.priority_deadlines.setdefault(priority, []).append(
                    (latency, deadline_ticks)
                )
                if latency > deadline_ticks:
                    self.deadline_misses += 1

    def record_preempt(self) -> None:
        self.preemptions += 1

    def record_resume(self, wait: int) -> None:
        self.resumes += 1
        self.resume_waits.append(wait)

    # -- derived ------------------------------------------------------------

    def lane_utilization(self) -> float:
        """Fraction of offered lane-slots that held an in-flight request."""
        return (
            self.busy_lane_slots / self.lane_slots if self.lane_slots else 0.0
        )

    def mean_queue_wait(self) -> float:
        """Average ticks requests spent queued before injection."""
        waits = self.queue_waits
        return sum(waits) / len(waits) if waits else 0.0

    def max_queue_wait(self) -> int:
        return max(self.queue_waits) if self.queue_waits else 0

    def throughput(self) -> float:
        """Completed requests per tick."""
        return self.completed / self.ticks if self.ticks else 0.0

    def mean_resume_wait(self) -> float:
        """Average ticks preempted requests waited before resuming."""
        waits = self.resume_waits
        return sum(waits) / len(waits) if waits else 0.0

    def latencies(self, priority: Optional[int] = None) -> List[int]:
        """Completion latencies (finish - submit), optionally one priority."""
        if priority is None:
            return [l for ls in self.priority_latencies.values() for l in ls]
        return list(self.priority_latencies.get(priority, []))

    def deadline_outcomes(
        self, priority: Optional[int] = None
    ) -> List[Tuple[int, int]]:
        """``(latency, deadline_ticks)`` pairs of deadline-carrying
        completions, optionally for one priority level."""
        if priority is None:
            return [p for ps in self.priority_deadlines.values() for p in ps]
        return list(self.priority_deadlines.get(priority, []))

    def slo_attainment(
        self,
        slo_ticks: Union[int, str],
        priority: Optional[int] = None,
    ) -> float:
        """Fraction of completed requests finishing within their SLO.

        With an integer ``slo_ticks``, one shared target: completions
        within ``slo_ticks`` of submission, fleet-wide or for one
        priority level.  With ``slo_ticks="deadline"`` (the deadline
        mode), each request is measured against its *own*
        ``deadline_ticks``, over the deadline-carrying completions only.
        0.0 with no qualifying completions (an empty class never claims
        perfect attainment)."""
        if slo_ticks == "deadline":
            pairs = self.deadline_outcomes(priority)
            if not pairs:
                return 0.0
            return sum(1 for lat, dl in pairs if lat <= dl) / len(pairs)
        lats = self.latencies(priority)
        if not lats:
            return 0.0
        return sum(1 for l in lats if l <= slo_ticks) / len(lats)

    def percentile(self, q: float, priority: Optional[int] = None) -> float:
        """Nearest-rank completion-latency percentile, in ticks.

        The deterministic counterpart to :meth:`slo_attainment`: where
        attainment answers "what fraction met the target?", this answers
        "what target would the q% slowest have met?" — over the same
        :meth:`latencies` values, optionally for one priority level.
        0.0 with no completions.
        """
        return nearest_rank(self.latencies(priority), q)

    def priorities(self) -> List[int]:
        """Priority levels with at least one completion, sorted."""
        return sorted(self.priority_latencies)

    def priority_table(
        self, slo_ticks: Optional[int] = None
    ) -> Dict[int, Dict[str, float]]:
        """Per-priority p50/p90/p99/max latency rows (plus SLO attainment
        when ``slo_ticks`` is given), keyed by priority level."""
        return _priority_table(self, slo_ticks)

    def summary(self) -> str:
        """Human-readable multi-line telemetry summary."""
        lines = [
            f"ticks={self.ticks} (idle={self.idle_ticks}) lanes={self.num_lanes} "
            f"lane_utilization={self.lane_utilization():.3f}",
            f"requests: submitted={self.submitted} rejected={self.rejected} "
            f"injected={self.injected} completed={self.completed} "
            f"failed={self.failed}",
            f"queue wait: mean={self.mean_queue_wait():.1f} "
            f"max={self.max_queue_wait()} ticks",
            f"time-to-first-result={self.first_result_tick} ticks, "
            f"throughput={self.throughput():.4f} requests/tick",
        ]
        if self.latencies():
            lines.append(
                f"latency: p50={self.percentile(50):.0f} "
                f"p99={self.percentile(99):.0f} ticks"
            )
            lines.extend(_priority_lines(self))
        if self.preemptions or self.resumes:
            lines.append(
                f"preemption: evictions={self.preemptions} "
                f"resumes={self.resumes} "
                f"(re-batched={self.resume_rebatches}) "
                f"mean_resume_wait={self.mean_resume_wait():.1f} ticks"
            )
        if self.spills or self.rehydrations or self.spill_errors:
            lines.append(
                f"spilling: spills={self.spills} "
                f"rehydrations={self.rehydrations} "
                f"errors={self.spill_errors} "
                f"resident_peak={self.resident_peak}"
            )
        if self.deadline_outcomes():
            lines.append(
                f"deadlines: carried={len(self.deadline_outcomes())} "
                f"misses={self.deadline_misses} "
                f"attainment={self.slo_attainment('deadline'):.3f}"
            )
        if self.instrumentation is not None:
            lines.append(
                "machine: "
                f"batch_utilization={self.instrumentation.utilization():.3f} "
                f"kernel_calls={self.instrumentation.kernel_calls}"
            )
        return "\n".join(lines)


@dataclass
class ClusterTelemetry:
    """Fleet-level rollup of per-shard :class:`ServeTelemetry`.

    Holds live references to the shard telemetries, so every aggregate is
    computed on demand from the shards' current counters; only events the
    shards cannot see are recorded here directly: the admission counters
    (``cluster_rejected`` — every shard's queue was full — and
    ``spillovers`` — the preferred shard was full but another accepted),
    the work-stealing counters (``steals``/``steal_ticks``), and the
    autoscale counters (``grow_events``/``shrink_events``/
    ``shards_retired``/``drain_migrations``).  ``rejected`` reports
    cluster-level plus shard-level rejections, so out-of-band submissions
    straight to a shard stay consistent with the summed ``submitted``.
    Retired shards' telemetries stay in ``shards``, so fleet totals never
    go backwards when the cluster shrinks.
    """

    shards: List[ServeTelemetry] = field(default_factory=list)
    cluster_rejected: int = 0  # refusals because every shard was full
    spillovers: int = 0        # admissions that overflowed their preferred shard
    # -- rebalancing (work stealing) --
    steals: int = 0            # queued requests migrated between shards
    steal_ticks: int = 0       # cluster ticks on which at least one steal ran
    #: stolen requests that carried a preempted-lane snapshot — evicted on
    #: one shard, resumed mid-flight on another
    preempted_migrations: int = 0
    # -- elasticity (autoscale) --
    grow_events: int = 0       # shards added under sustained queue pressure
    shrink_events: int = 0     # shards sent into drain-retirement
    shards_retired: int = 0    # drained shards actually dropped from the fleet
    drain_migrations: int = 0  # queued requests re-seated off a retiring shard

    # -- aggregate counters --------------------------------------------------

    @property
    def num_shards(self) -> int:
        return len(self.shards)

    @property
    def submitted(self) -> int:
        return sum(s.submitted for s in self.shards)

    @property
    def rejected(self) -> int:
        """Cluster-level (all shards full) plus per-shard rejections."""
        return self.cluster_rejected + sum(s.rejected for s in self.shards)

    @property
    def injected(self) -> int:
        return sum(s.injected for s in self.shards)

    @property
    def completed(self) -> int:
        return sum(s.completed for s in self.shards)

    @property
    def failed(self) -> int:
        return sum(s.failed for s in self.shards)

    @property
    def preemptions(self) -> int:
        return sum(s.preemptions for s in self.shards)

    @property
    def deadline_misses(self) -> int:
        return sum(s.deadline_misses for s in self.shards)

    @property
    def resumes(self) -> int:
        """Fleet-wide resumes; a migrated preemption is evicted on one
        shard and resumed on another, so only the fleet totals balance."""
        return sum(s.resumes for s in self.shards)

    @property
    def spills(self) -> int:
        return sum(s.spills for s in self.shards)

    @property
    def rehydrations(self) -> int:
        """Fleet-wide rehydrations; a spilled snapshot stolen across
        shards spills on one and rehydrates on another, so — like
        resumes — only the fleet totals balance."""
        return sum(s.rehydrations for s in self.shards)

    @property
    def spill_errors(self) -> int:
        return sum(s.spill_errors for s in self.shards)

    @property
    def resident_peak(self) -> int:
        """Worst single-shard resident-snapshot peak (the per-shard cap is
        what ``max_resident_snapshots`` bounds, so the fleet metric is the
        max, not a sum)."""
        return max((s.resident_peak for s in self.shards), default=0)

    @property
    def ticks(self) -> int:
        """Cluster logical clock: shards tick in lock-step, so the max."""
        return max((s.ticks for s in self.shards), default=0)

    # -- derived -------------------------------------------------------------

    def fleet_utilization(self) -> float:
        """Busy lane-slots / offered lane-slots, summed across shards."""
        slots = sum(s.lane_slots for s in self.shards)
        busy = sum(s.busy_lane_slots for s in self.shards)
        return busy / slots if slots else 0.0

    def aggregate_throughput(self) -> float:
        """Completed requests per cluster tick, across all shards."""
        ticks = self.ticks
        return self.completed / ticks if ticks else 0.0

    def mean_queue_wait(self) -> float:
        """Mean queued ticks across every shard's injected requests."""
        waits = [w for s in self.shards for w in s.queue_waits]
        return sum(waits) / len(waits) if waits else 0.0

    def max_queue_wait(self) -> int:
        return max((s.max_queue_wait() for s in self.shards), default=0)

    def latencies(self, priority: Optional[int] = None) -> List[int]:
        """Completion latencies across every shard, retired ones included
        (their completions happened and stay in the fleet's record)."""
        return [l for s in self.shards for l in s.latencies(priority)]

    def deadline_outcomes(
        self, priority: Optional[int] = None
    ) -> List[Tuple[int, int]]:
        """Deadline-carrying ``(latency, deadline_ticks)`` completions
        pooled across every shard (retired ones included)."""
        return [p for s in self.shards for p in s.deadline_outcomes(priority)]

    def slo_attainment(
        self,
        slo_ticks: Union[int, str],
        priority: Optional[int] = None,
    ) -> float:
        """Fleet-wide fraction of completions within ``slo_ticks`` of
        submission (optionally one priority level); 0.0 with none.
        ``slo_ticks="deadline"`` measures each deadline-carrying request
        against its own ``deadline_ticks``, like
        :meth:`ServeTelemetry.slo_attainment`."""
        if slo_ticks == "deadline":
            pairs = self.deadline_outcomes(priority)
            if not pairs:
                return 0.0
            return sum(1 for lat, dl in pairs if lat <= dl) / len(pairs)
        lats = self.latencies(priority)
        if not lats:
            return 0.0
        return sum(1 for l in lats if l <= slo_ticks) / len(lats)

    def percentile(self, q: float, priority: Optional[int] = None) -> float:
        """Nearest-rank completion-latency percentile across the fleet, in
        ticks (optionally one priority level); 0.0 with no completions.
        Same definition as :meth:`ServeTelemetry.percentile`, over the
        pooled :meth:`latencies` — a percentile of the union, not a mean
        of per-shard percentiles."""
        return nearest_rank(self.latencies(priority), q)

    def priorities(self) -> List[int]:
        """Priority levels with a completion on any shard, sorted."""
        return sorted({p for s in self.shards for p in s.priority_latencies})

    def priority_table(
        self, slo_ticks: Optional[int] = None
    ) -> Dict[int, Dict[str, float]]:
        """Per-priority p50/p90/p99/max rollup over the pooled fleet
        latencies (plus SLO attainment when ``slo_ticks`` is given)."""
        return _priority_table(self, slo_ticks)

    def mean_resume_wait(self) -> float:
        """Mean evict-to-resume wait across every shard's resumed requests."""
        waits = [w for s in self.shards for w in s.resume_waits]
        return sum(waits) / len(waits) if waits else 0.0

    def first_result_tick(self) -> Optional[int]:
        """Earliest completion tick across *every* shard ever in the fleet.

        Retired shards are **included**: their telemetries stay in
        ``shards`` after autoscale drops them, and a completion that
        happened on a since-retired shard is still the fleet's first
        result.  The min is meaningful across shards because they tick in
        lock-step — every shard's clock (grown shards included, which
        join at the cluster's current tick) reads the same logical time.
        None until any shard completes a request.
        """
        firsts = [
            s.first_result_tick
            for s in self.shards
            if s.first_result_tick is not None
        ]
        return min(firsts) if firsts else None

    def completed_per_shard(self) -> List[int]:
        return [s.completed for s in self.shards]

    def live_shards(self) -> List[ServeTelemetry]:
        """Shards still in the fleet (retired telemetries keep counting
        toward the totals above, but not toward the skew metrics)."""
        return [s for s in self.shards if not s.retired]

    def completion_skew(self) -> float:
        """Relative completion imbalance: (max - min) / mean across shards.

        0.0 for a perfectly balanced fleet (and for an idle or empty one);
        1.0 means the busiest shard completed one whole mean-share more
        than the idlest.  Computed over the live shards only — a shard
        retired by autoscale stopped accumulating and would otherwise
        depress the minimum forever; note a late-grown shard still counts
        from its birth, so elastic fleets naturally show some skew.
        """
        per_shard = [s.completed for s in self.live_shards()]
        if not per_shard:
            return 0.0
        mean = sum(per_shard) / len(per_shard)
        if not mean:
            return 0.0
        return (max(per_shard) - min(per_shard)) / mean

    def utilization_skew(self) -> float:
        """Max minus min lane utilization across the live shards."""
        utils = [s.lane_utilization() for s in self.live_shards()]
        return max(utils) - min(utils) if utils else 0.0

    def summary(self) -> str:
        """Human-readable multi-line fleet summary."""
        lines = [
            f"shards={self.num_shards} (retired={self.shards_retired}) "
            f"ticks={self.ticks} "
            f"fleet_utilization={self.fleet_utilization():.3f}",
            f"requests: submitted={self.submitted} rejected={self.rejected} "
            f"spillovers={self.spillovers} injected={self.injected} "
            f"completed={self.completed} failed={self.failed}",
            f"queue wait: mean={self.mean_queue_wait():.1f} "
            f"max={self.max_queue_wait()} ticks",
            f"throughput={self.aggregate_throughput():.4f} requests/tick, "
            f"completion skew={self.completion_skew():.3f}, "
            f"utilization skew={self.utilization_skew():.3f}",
            "per-shard completed: "
            + " ".join(str(c) for c in self.completed_per_shard()),
        ]
        if self.latencies():
            lines.append(
                f"latency: p50={self.percentile(50):.0f} "
                f"p99={self.percentile(99):.0f} ticks"
            )
            lines.extend(_priority_lines(self))
        if self.steals or self.steal_ticks:
            lines.append(
                f"rebalancing: steals={self.steals} over "
                f"{self.steal_ticks} ticks "
                f"(preempted-lane migrations={self.preempted_migrations})"
            )
        if self.preemptions or self.resumes:
            lines.append(
                f"preemption: evictions={self.preemptions} "
                f"resumes={self.resumes} "
                f"mean_resume_wait={self.mean_resume_wait():.1f} ticks"
            )
        if self.spills or self.rehydrations or self.spill_errors:
            lines.append(
                f"spilling: spills={self.spills} "
                f"rehydrations={self.rehydrations} "
                f"errors={self.spill_errors} "
                f"resident_peak={self.resident_peak}"
            )
        if self.deadline_outcomes():
            lines.append(
                f"deadlines: carried={len(self.deadline_outcomes())} "
                f"misses={self.deadline_misses} "
                f"attainment={self.slo_attainment('deadline'):.3f}"
            )
        if self.grow_events or self.shrink_events:
            lines.append(
                f"elasticity: grown={self.grow_events} shrunk="
                f"{self.shrink_events} retired={self.shards_retired} "
                f"drain_migrations={self.drain_migrations}"
            )
        return "\n".join(lines)
