"""Neal's funnel: a standard pathological MCMC target (extra workload).

``v ~ N(0, 3^2)`` and ``x_i | v ~ N(0, e^v)`` for ``i = 1..dim-1``.  The
state vector is ``q = [v, x_1, ..., x_{dim-1}]``.  The funnel's wildly
varying curvature makes NUTS pick very different trajectory lengths per
chain — a stress test for batch utilization, used by the examples and
ablation benches.
"""

from __future__ import annotations

import numpy as np

from repro.targets.base import Target


class NealsFunnel(Target):
    """Neal's funnel distribution on R^dim (dim >= 2)."""

    name = "funnel"

    def __init__(self, dim: int = 10, scale: float = 3.0):
        if dim < 2:
            raise ValueError(f"funnel needs dim >= 2, got {dim}")
        if scale <= 0:
            raise ValueError(f"scale must be positive, got {scale}")
        super().__init__(dim)
        self.scale = float(scale)

    def log_prob(self, q: np.ndarray) -> np.ndarray:
        q = np.asarray(q, dtype=np.float64)
        v = q[..., 0]
        x = q[..., 1:]
        k = self.dim - 1
        logp_v = -0.5 * v * v / self.scale**2
        logp_x = -0.5 * np.exp(-v) * np.sum(x * x, axis=-1) - 0.5 * k * v
        return logp_v + logp_x

    def grad_log_prob(self, q: np.ndarray) -> np.ndarray:
        q = np.asarray(q, dtype=np.float64)
        v = q[..., 0]
        x = q[..., 1:]
        k = self.dim - 1
        grad = np.empty_like(q)
        grad[..., 0] = (
            -v / self.scale**2 + 0.5 * np.exp(-v) * np.sum(x * x, axis=-1) - 0.5 * k
        )
        grad[..., 1:] = -np.exp(-v)[..., None] * x
        return grad

    def log_prob_ad(self, q):
        from repro.autodiff import ops as ad
        from repro.autodiff.tape import ensure_variable

        q = ensure_variable(q)
        # Split via masks (the AD substrate has no indexing op).
        pick_v = np.zeros(self.dim)
        pick_v[0] = 1.0
        pick_x = 1.0 - pick_v
        v = ad.sum(q * pick_v, axis=-1)
        sum_x2 = ad.sum(q * q * pick_x, axis=-1)
        k = self.dim - 1
        return (
            v * v * (-0.5 / self.scale**2)
            + ad.exp(ad.neg(v)) * sum_x2 * -0.5
            + v * (-0.5 * k)
        )

    def grad_flops_per_member(self) -> float:
        return 6.0 * self.dim

    def sample_exact(self, n: int, seed: int = 0) -> np.ndarray:
        rng = np.random.RandomState(seed)
        v = self.scale * rng.randn(n)
        x = np.exp(v / 2.0)[:, None] * rng.randn(n, self.dim - 1)
        return np.concatenate([v[:, None], x], axis=1)

    def initial_state(self, batch_size: int, seed: int = 0) -> np.ndarray:
        rng = np.random.RandomState(seed)
        q = 0.1 * rng.randn(batch_size, self.dim)
        return q
