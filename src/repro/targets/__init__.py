"""Model densities for the paper's experiments (Section 4) plus extras.

A :class:`~repro.targets.base.Target` bundles a batched log-density, its
batched gradient, and the machinery to expose both as autobatch primitives
(the gradient primitive carries the ``"gradient"`` instrumentation tag that
Figure 6's utilization metric is computed over).

* :class:`CorrelatedGaussian` — the 100-dimensional correlated Gaussian of
  Section 4.2.
* :class:`BayesianLogisticRegression` — the synthetic 10,000-point,
  100-regressor problem of Section 4.1.
* :class:`NealsFunnel`, :class:`Rosenbrock` — extra control-flow-stressing
  targets used by the examples and ablations.
"""

from repro.targets.base import Target, TargetPrimitives
from repro.targets.gaussian import CorrelatedGaussian
from repro.targets.logistic import BayesianLogisticRegression
from repro.targets.neals_funnel import NealsFunnel
from repro.targets.rosenbrock import Rosenbrock

__all__ = [
    "Target",
    "TargetPrimitives",
    "CorrelatedGaussian",
    "BayesianLogisticRegression",
    "NealsFunnel",
    "Rosenbrock",
]
