"""Bayesian logistic regression on synthetic data (Section 4.1).

The paper's problem: 10,000 data points, 100 regressors.  We synthesize the
dataset the obvious way — standard-normal features scaled by ``1/sqrt(d)``
so logits stay O(1), a standard-normal true weight vector, Bernoulli labels
— and put a standard-normal prior on the weights.  The posterior
log-density and its gradient are computed in numerically stable form
(``softplus`` via ``logaddexp``).
"""

from __future__ import annotations

import numpy as np

from repro.targets.base import Target


def _sigmoid(x: np.ndarray) -> np.ndarray:
    out = np.empty_like(x)
    pos = x >= 0
    out[pos] = 1.0 / (1.0 + np.exp(-x[pos]))
    ex = np.exp(x[~pos])
    out[~pos] = ex / (1.0 + ex)
    return out


class BayesianLogisticRegression(Target):
    """Posterior of logistic-regression weights on synthetic data.

    ``log p(q) = sum_n [ y_n * l_n - softplus(l_n) ] - ||q||^2 / (2 s^2)``
    with logits ``l = X q``.

    Parameters
    ----------
    n_data, n_features:
        Dataset size; the paper uses 10,000 x 100.
    prior_scale:
        Standard deviation ``s`` of the isotropic Gaussian prior.
    seed:
        Seed for the synthetic data generator.
    """

    name = "logistic"

    def __init__(
        self,
        n_data: int = 10_000,
        n_features: int = 100,
        prior_scale: float = 1.0,
        seed: int = 0,
    ):
        super().__init__(n_features)
        if n_data < 1:
            raise ValueError(f"n_data must be positive, got {n_data}")
        if prior_scale <= 0:
            raise ValueError(f"prior_scale must be positive, got {prior_scale}")
        self.n_data = int(n_data)
        self.prior_scale = float(prior_scale)
        rng = np.random.RandomState(seed)
        self.features = rng.randn(n_data, n_features) / np.sqrt(n_features)
        self.true_weights = rng.randn(n_features)
        probs = _sigmoid(self.features @ self.true_weights)
        self.labels = (rng.uniform(size=n_data) < probs).astype(np.float64)

    def log_prob(self, q: np.ndarray) -> np.ndarray:
        q = np.asarray(q, dtype=np.float64)
        logits = q @ self.features.T                      # (..., N)
        loglik = np.sum(
            self.labels * logits - np.logaddexp(0.0, logits), axis=-1
        )
        logprior = -0.5 * np.sum(q * q, axis=-1) / self.prior_scale**2
        return loglik + logprior

    def grad_log_prob(self, q: np.ndarray) -> np.ndarray:
        q = np.asarray(q, dtype=np.float64)
        logits = q @ self.features.T
        residual = self.labels - _sigmoid(logits)          # (..., N)
        return residual @ self.features - q / self.prior_scale**2

    def log_prob_ad(self, q):
        from repro.autodiff import ops as ad
        from repro.autodiff.tape import ensure_variable

        q = ensure_variable(q)
        logits = ad.matmul(q, self.features.T)
        # y*l - softplus(l) == y*log(sigmoid(l)) + (1-y)*log(sigmoid(-l)).
        loglik = ad.sum(
            ad.mul(self.labels, ad.log_sigmoid(logits))
            + ad.mul(1.0 - self.labels, ad.log_sigmoid(ad.neg(logits))),
            axis=-1,
        )
        logprior = ad.sum(q * q, axis=-1) * (-0.5 / self.prior_scale**2)
        return loglik + logprior

    def grad_flops_per_member(self) -> float:
        # Two N x d matrix products dominate.
        return 4.0 * self.n_data * self.dim

    def accuracy(self, q: np.ndarray) -> float:
        """Training accuracy of the weight vector ``q`` (diagnostics aid)."""
        q = np.asarray(q, dtype=np.float64)
        preds = (self.features @ q >= 0.0).astype(np.float64)
        return float(np.mean(preds == self.labels))
