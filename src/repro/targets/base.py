"""The target-density interface shared by every experiment workload.

A target is a probability density on R^d known up to a constant.  NUTS needs
two batched callables out of it: the log-density ``(Z, d) -> (Z,)`` and its
gradient ``(Z, d) -> (Z, d)``.  :meth:`Target.primitives` wraps both as
registered autobatch primitives so that NUTS programs written in the
autobatchable Python subset can call them like any other kernel; the
gradient primitive is tagged ``"gradient"`` — the class of primitives whose
batch utilization Figure 6 reports.

Subclasses implement the analytic ``log_prob`` / ``grad_log_prob`` pair and,
for cross-validation, ``log_prob_ad`` in terms of :mod:`repro.autodiff` ops;
the test suite checks the two gradients against each other and against
finite differences.
"""

from __future__ import annotations

import abc
import itertools
from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from repro.frontend.registry import Primitive, PrimitiveRegistry, default_registry

_instance_ids = itertools.count()


@dataclass(frozen=True)
class TargetPrimitives:
    """The two registered primitives of one target instance."""

    log_prob: Primitive
    grad_log_prob: Primitive


class Target(abc.ABC):
    """A differentiable unnormalized density on R^dim.

    All array methods accept either a single state of shape ``(dim,)`` or a
    batch of shape ``(Z, dim)`` and are vectorized over the leading axis.
    """

    #: Short, human-readable identifier (also used in primitive names).
    name: str = "target"

    def __init__(self, dim: int):
        if dim < 1:
            raise ValueError(f"dim must be positive, got {dim}")
        self.dim = int(dim)
        self._instance_id = next(_instance_ids)
        self._primitives: Optional[TargetPrimitives] = None

    # -- densities (subclass responsibilities) --------------------------------

    @abc.abstractmethod
    def log_prob(self, q: np.ndarray) -> np.ndarray:
        """Unnormalized log-density, batched over the leading axis."""

    @abc.abstractmethod
    def grad_log_prob(self, q: np.ndarray) -> np.ndarray:
        """Analytic gradient of :meth:`log_prob`, batched."""

    def log_prob_ad(self, q):
        """The same density written in :mod:`repro.autodiff` ops.

        Used only for cross-checking the analytic gradient; subclasses
        without a convenient AD form may leave the default, which signals
        "no AD form" to the tests.
        """
        raise NotImplementedError

    # -- conveniences ----------------------------------------------------------

    def log_prob_and_grad(self, q: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        return self.log_prob(q), self.grad_log_prob(q)

    def grad_log_prob_autodiff(self, q: np.ndarray) -> np.ndarray:
        """Gradient via the tape (reference implementation for tests)."""
        from repro.autodiff import grad

        return grad(self.log_prob_ad)(np.asarray(q, dtype=np.float64))

    def initial_state(self, batch_size: int, seed: int = 0) -> np.ndarray:
        """A batch of starting points: standard-normal draws, shape (Z, dim)."""
        rng = np.random.RandomState(seed)
        return rng.randn(batch_size, self.dim) * 0.1

    # -- cost accounting --------------------------------------------------------

    def grad_flops_per_member(self) -> float:
        """Abstract flop count of one member's gradient evaluation.

        Drives the deterministic device cost model; subclasses override with
        their dominant term (e.g. ``2 * n_data * dim`` for regression).
        """
        return float(self.dim)

    def logp_flops_per_member(self) -> float:
        return self.grad_flops_per_member() / 2.0

    # -- primitive registration -------------------------------------------------

    def primitives(
        self, registry: Optional[PrimitiveRegistry] = None
    ) -> TargetPrimitives:
        """Register (once) and return this instance's log-prob/grad primitives.

        The primitive's ``cost_weight`` is the per-*element* work so that
        ``weight * elements_per_lane`` recovers the per-member flop count
        used by the device model (gradient outputs have ``dim`` elements per
        lane, log-prob outputs have one).
        """
        if self._primitives is not None:
            return self._primitives
        registry = registry or default_registry
        prefix = f"{self.name}_{self._instance_id}"
        logp = Primitive(
            name=f"{prefix}__logp",
            fn=lambda q: self.log_prob(np.asarray(q, dtype=np.float64)),
            n_inputs=1,
            n_outputs=1,
            cost_weight=self.logp_flops_per_member(),
            tags=frozenset({"target", "logp"}),
        )
        grad = Primitive(
            name=f"{prefix}__grad",
            fn=lambda q: self.grad_log_prob(np.asarray(q, dtype=np.float64)),
            n_inputs=1,
            n_outputs=1,
            cost_weight=self.grad_flops_per_member() / self.dim,
            tags=frozenset({"target", "gradient"}),
        )
        registry.register(logp)
        registry.register(grad)
        self._primitives = TargetPrimitives(log_prob=logp, grad_log_prob=grad)
        return self._primitives

    def __repr__(self) -> str:
        return f"{type(self).__name__}(dim={self.dim})"
