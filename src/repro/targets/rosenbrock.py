"""A tempered Rosenbrock ("banana") density (extra workload).

``log p(x) = -(1/T) * sum_i [ b (x_{i+1} - x_i^2)^2 + (a - x_i)^2 ]``

The curved ridge forces long, winding NUTS trajectories whose length varies
strongly with position — useful for exercising divergent control flow in the
examples and scheduler ablations.
"""

from __future__ import annotations

import numpy as np

from repro.targets.base import Target


class Rosenbrock(Target):
    """Tempered Rosenbrock density on R^dim (dim >= 2)."""

    name = "rosenbrock"

    def __init__(self, dim: int = 2, a: float = 1.0, b: float = 100.0, temperature: float = 20.0):
        if dim < 2:
            raise ValueError(f"rosenbrock needs dim >= 2, got {dim}")
        if temperature <= 0:
            raise ValueError(f"temperature must be positive, got {temperature}")
        super().__init__(dim)
        self.a = float(a)
        self.b = float(b)
        self.temperature = float(temperature)

    def log_prob(self, q: np.ndarray) -> np.ndarray:
        q = np.asarray(q, dtype=np.float64)
        head = q[..., :-1]
        tail = q[..., 1:]
        # Extreme leapfrog proposals (|q| ~ 1e160+) overflow the squares;
        # that is a legitimate -inf log-density, not a warning-worthy
        # event, so compute under a controlled errstate and map any
        # inf-minus-inf NaN to the same rejection value.
        with np.errstate(over="ignore", invalid="ignore"):
            value = np.sum(
                self.b * (tail - head * head) ** 2 + (self.a - head) ** 2,
                axis=-1,
            )
            value = np.where(np.isnan(value), np.inf, value)
            return -value / self.temperature

    def grad_log_prob(self, q: np.ndarray) -> np.ndarray:
        q = np.asarray(q, dtype=np.float64)
        head = q[..., :-1]
        tail = q[..., 1:]
        with np.errstate(over="ignore", invalid="ignore"):
            resid = tail - head * head
            grad = np.zeros_like(q)
            # d/dx_i of the i-th term (as "head"): d(b r^2)/dhead = 2 b r (-2 head).
            grad[..., :-1] = 4.0 * self.b * resid * head + 2.0 * (self.a - head)
            # d/dx_{i+1} of the i-th term (as "tail"):
            grad[..., 1:] += -2.0 * self.b * resid
            return grad / self.temperature

    def log_prob_ad(self, q):
        from repro.autodiff import ops as ad
        from repro.autodiff.tape import ensure_variable

        q = ensure_variable(q)
        # head/tail via constant selection matrices (no slicing in the AD set).
        d = self.dim
        head_mat = np.eye(d)[:, : d - 1]
        tail_mat = np.eye(d)[:, 1:]
        head = ad.matmul(q, head_mat)
        tail = ad.matmul(q, tail_mat)
        resid = tail - head * head
        bias = self.a - 0.0
        value = ad.sum(
            resid * resid * self.b + (head * -1.0 + bias) * (head * -1.0 + bias),
            axis=-1,
        )
        return value * (-1.0 / self.temperature)

    def grad_flops_per_member(self) -> float:
        return 10.0 * self.dim

    def initial_state(self, batch_size: int, seed: int = 0) -> np.ndarray:
        rng = np.random.RandomState(seed)
        return self.a + 0.1 * rng.randn(batch_size, self.dim)
