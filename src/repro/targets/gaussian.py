"""The 100-dimensional correlated Gaussian of Section 4.2.

The paper says only "a 100-dimensional correlated Gaussian distribution";
we pick a concrete, documented instance: AR(1)-style correlation
``corr[i, j] = rho ** |i - j|`` with log-spaced marginal scales, which gives
an ill-conditioned covariance so NUTS chooses nontrivially varying
trajectory lengths — the property Figure 6's utilization experiment needs.
(DESIGN.md records this substitution.)
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.targets.base import Target


class CorrelatedGaussian(Target):
    """N(mu, Sigma) with AR(1) correlation and log-spaced scales.

    Parameters
    ----------
    dim:
        Dimensionality (the paper uses 100).
    rho:
        Lag-one correlation in (-1, 1).
    min_scale, max_scale:
        Marginal standard deviations are log-spaced across this range,
        controlling the condition number.
    mu:
        Mean vector; default zeros.
    """

    name = "gaussian"

    def __init__(
        self,
        dim: int = 100,
        rho: float = 0.9,
        min_scale: float = 0.1,
        max_scale: float = 1.0,
        mu: Optional[np.ndarray] = None,
    ):
        super().__init__(dim)
        if not -1.0 < rho < 1.0:
            raise ValueError(f"rho must be in (-1, 1), got {rho}")
        self.rho = float(rho)
        idx = np.arange(dim)
        corr = rho ** np.abs(idx[:, None] - idx[None, :])
        scales = np.geomspace(min_scale, max_scale, dim)
        self.covariance = corr * np.outer(scales, scales)
        self.mu = np.zeros(dim) if mu is None else np.asarray(mu, dtype=np.float64)
        if self.mu.shape != (dim,):
            raise ValueError(f"mu must have shape ({dim},), got {self.mu.shape}")
        self.chol = np.linalg.cholesky(self.covariance)
        self.precision = np.linalg.inv(self.covariance)
        # Symmetrize to keep the quadratic form exactly even under float error.
        self.precision = 0.5 * (self.precision + self.precision.T)

    def log_prob(self, q: np.ndarray) -> np.ndarray:
        q = np.asarray(q, dtype=np.float64)
        dq = q - self.mu
        return -0.5 * np.einsum("...i,ij,...j->...", dq, self.precision, dq)

    def grad_log_prob(self, q: np.ndarray) -> np.ndarray:
        q = np.asarray(q, dtype=np.float64)
        dq = q - self.mu
        return -dq @ self.precision

    def log_prob_ad(self, q):
        from repro.autodiff import ops as ad
        from repro.autodiff.tape import ensure_variable

        q = ensure_variable(q)
        dq = q - self.mu
        return -0.5 * ad.dot_last(dq, ad.matmul(dq, self.precision))

    def grad_flops_per_member(self) -> float:
        # Dominated by the dim x dim matrix-vector product.
        return 2.0 * self.dim * self.dim

    def sample_exact(self, n: int, seed: int = 0) -> np.ndarray:
        """Exact draws (for diagnostics baselines), shape (n, dim)."""
        rng = np.random.RandomState(seed)
        return self.mu + rng.randn(n, self.dim) @ self.chol.T

    def initial_state(self, batch_size: int, seed: int = 0) -> np.ndarray:
        rng = np.random.RandomState(seed)
        return self.mu + 0.1 * rng.randn(batch_size, self.dim)
