"""Control-flow combinators over :class:`MaskedBatch`.

Paper Section 5: "At if statements, Matchbox first executes the then arm
(if any batch members need it) and then the else.  The program counter of
Algorithm 1 is thus encoded in the queue (also maintained on the Python
stack) of mask-block pairs to be executed."  That is exactly what
:func:`cond` does; :func:`while_loop` keeps iterating under a shrinking
mask until no member's condition holds; :func:`matchbox_call` recurses
through the ambient Python stack, Matchbox's (and Algorithm 1's) recursion
story.

Arm callables receive *state* (a tuple of MaskedBatches restricted to the
arm's mask) and return an updated state tuple of the same arity.
"""

from __future__ import annotations

from typing import Callable, Sequence, Tuple

import numpy as np

from repro.matchbox.masked import MaskedBatch

State = Tuple[MaskedBatch, ...]


def _restrict(state: State, mask: np.ndarray) -> State:
    return tuple(v.with_mask(v.mask & mask) for v in state)


def _merge(base: State, updated: State) -> State:
    return tuple(b.merge(u) for b, u in zip(base, updated))


def cond(
    pred: MaskedBatch,
    then_fn: Callable[..., Sequence[MaskedBatch]],
    else_fn: Callable[..., Sequence[MaskedBatch]],
    state: Sequence[MaskedBatch],
) -> State:
    """Masked if/else: run both arms under complementary masks and merge.

    Each arm only executes if some member takes it ("if any batch members
    need it"), so fully convergent batches pay for one arm only.
    """
    state = tuple(state)
    pred_mask = np.asarray(pred.data, dtype=bool) & pred.mask
    then_mask = pred_mask
    else_mask = ~np.asarray(pred.data, dtype=bool) & pred.mask

    result = state
    if then_mask.any():
        updated = tuple(then_fn(*_restrict(state, then_mask)))
        if len(updated) != len(state):
            raise ValueError("then-arm changed the state arity")
        result = _merge(result, _restrict(updated, then_mask))
    if else_mask.any():
        updated = tuple(else_fn(*_restrict(state, else_mask)))
        if len(updated) != len(state):
            raise ValueError("else-arm changed the state arity")
        result = _merge(result, _restrict(updated, else_mask))
    return result


def while_loop(
    cond_fn: Callable[..., MaskedBatch],
    body_fn: Callable[..., Sequence[MaskedBatch]],
    state: Sequence[MaskedBatch],
    max_iterations: int = 10**9,
) -> State:
    """Masked while: iterate the body under the still-looping members' mask.

    Members whose condition goes false freeze; the loop ends when nobody's
    condition holds (or raises after ``max_iterations``, the starvation
    guard).
    """
    state = tuple(state)
    for _ in range(max_iterations):
        pred = cond_fn(*state)
        live = np.asarray(pred.data, dtype=bool) & pred.mask
        if not live.any():
            return state
        updated = tuple(body_fn(*_restrict(state, live)))
        if len(updated) != len(state):
            raise ValueError("loop body changed the state arity")
        state = _merge(state, _restrict(updated, live))
    raise RuntimeError(f"while_loop exceeded max_iterations={max_iterations}")


def matchbox_call(
    fn: Callable[..., Sequence[MaskedBatch]],
    *args: MaskedBatch,
) -> State:
    """Recursive call through the host Python — Algorithm 1's ``Call``.

    The callee sees the intersection of the arguments' active sets.
    Termination of recursive programs comes from :func:`cond` skipping arms
    nobody takes: a recursive call site inside an untaken arm is never
    reached, exactly as in Matchbox (and in plain Python).
    """
    joint = np.ones(args[0].batch_size, dtype=bool)
    for a in args:
        joint &= a.mask
    out = fn(*(a.with_mask(joint) for a in args))
    return tuple(out)
