"""The batched array type that carries its own mask.

Paper Section 5 on Matchbox: "accomplishes batching by defining a 'batched
array' type that carries the mask.  The batched array overloads all the
methods for a standard array with appropriate additional masking.  ...  In
our terms, the mask corresponds to the active set."

A :class:`MaskedBatch` pairs ``(Z, *event)`` data with a ``(Z,)`` boolean
mask.  Elementwise operations compute on all lanes (masking style — cheap,
at the price of junk-lane work, exactly the Algorithm 1 trade-off) and the
result's mask is the AND of the operands' masks.  Assignment-like *merges*
(:meth:`merge`) write only active lanes, which is how divergent branch
results recombine.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np


def _broadcast_mask(mask: np.ndarray, ndim: int) -> np.ndarray:
    return mask.reshape(mask.shape + (1,) * (ndim - 1))


class MaskedBatch:
    """A batch of per-member values plus the active-set mask."""

    __slots__ = ("data", "mask")
    __array_priority__ = 200

    def __init__(self, data, mask=None):
        self.data = np.asarray(data)
        if self.data.ndim == 0:
            raise ValueError("MaskedBatch needs a leading batch dimension")
        z = self.data.shape[0]
        self.mask = (
            np.ones(z, dtype=bool) if mask is None else np.asarray(mask, dtype=bool)
        )
        if self.mask.shape != (z,):
            raise ValueError(
                f"mask shape {self.mask.shape} does not match batch size {z}"
            )

    # -- construction helpers ---------------------------------------------------

    @property
    def batch_size(self) -> int:
        return self.data.shape[0]

    @property
    def event_shape(self) -> Tuple[int, ...]:
        return self.data.shape[1:]

    def like(self, data) -> "MaskedBatch":
        """A new batch with this batch's mask and the given data."""
        return MaskedBatch(data, self.mask)

    def _coerce(self, other) -> np.ndarray:
        if isinstance(other, MaskedBatch):
            return other.data
        return np.asarray(other)

    def _joint_mask(self, other) -> np.ndarray:
        if isinstance(other, MaskedBatch):
            return self.mask & other.mask
        return self.mask

    def _binop(self, other, fn) -> "MaskedBatch":
        with np.errstate(all="ignore"):
            return MaskedBatch(fn(self.data, self._coerce(other)), self._joint_mask(other))

    def _rbinop(self, other, fn) -> "MaskedBatch":
        with np.errstate(all="ignore"):
            return MaskedBatch(fn(self._coerce(other), self.data), self._joint_mask(other))

    # -- arithmetic ----------------------------------------------------------------

    def __add__(self, other):
        return self._binop(other, np.add)

    __radd__ = __add__

    def __sub__(self, other):
        return self._binop(other, np.subtract)

    def __rsub__(self, other):
        return self._rbinop(other, np.subtract)

    def __mul__(self, other):
        return self._binop(other, np.multiply)

    __rmul__ = __mul__

    def __truediv__(self, other):
        return self._binop(other, np.true_divide)

    def __rtruediv__(self, other):
        return self._rbinop(other, np.true_divide)

    def __floordiv__(self, other):
        return self._binop(other, np.floor_divide)

    def __rfloordiv__(self, other):
        return self._rbinop(other, np.floor_divide)

    def __mod__(self, other):
        return self._binop(other, np.mod)

    def __rmod__(self, other):
        return self._rbinop(other, np.mod)

    def __neg__(self):
        return self.like(-self.data)

    def __abs__(self):
        return self.like(np.abs(self.data))

    # -- comparisons (produce boolean MaskedBatches) ------------------------------

    def __lt__(self, other):
        return self._binop(other, np.less)

    def __le__(self, other):
        return self._binop(other, np.less_equal)

    def __gt__(self, other):
        return self._binop(other, np.greater)

    def __ge__(self, other):
        return self._binop(other, np.greater_equal)

    def __eq__(self, other):  # type: ignore[override]
        return self._binop(other, np.equal)

    def __ne__(self, other):  # type: ignore[override]
        return self._binop(other, np.not_equal)

    __hash__ = None  # mutable container semantics

    def logical_and(self, other):
        """Masked elementwise AND."""
        return self._binop(other, np.logical_and)

    def logical_or(self, other):
        """Masked elementwise OR."""
        return self._binop(other, np.logical_or)

    def logical_not(self):
        """Masked elementwise NOT."""
        return self.like(np.logical_not(self.data))

    # -- masking -------------------------------------------------------------------

    def with_mask(self, mask: np.ndarray) -> "MaskedBatch":
        """The same data under a replacement mask."""
        return MaskedBatch(self.data, np.asarray(mask, dtype=bool))

    def merge(self, other: "MaskedBatch") -> "MaskedBatch":
        """Overlay ``other``'s active lanes onto this batch.

        The divergence-recombination primitive: after running a branch arm
        under a sub-mask, its result merges back into the pre-branch value.
        """
        other_data = np.asarray(other.data)
        data = self.data
        if data.dtype != other_data.dtype:
            promoted = np.promote_types(data.dtype, other_data.dtype)
            data = data.astype(promoted)
            other_data = other_data.astype(promoted)
        out = data.copy()
        np.copyto(out, other_data, where=_broadcast_mask(other.mask, out.ndim))
        return MaskedBatch(out, self.mask | other.mask)

    def where_active(self) -> np.ndarray:
        """Indices of active members."""
        return np.flatnonzero(self.mask)

    def any_active(self) -> bool:
        """True if any member is active."""
        return bool(self.mask.any())

    # -- realization ------------------------------------------------------------------

    def unwrap(self) -> np.ndarray:
        """The underlying data; only meaningful where the mask is True."""
        return self.data

    def __repr__(self) -> str:
        return f"MaskedBatch({self.data!r}, mask={self.mask.astype(int)!r})"


def as_masked(value, batch_size: int) -> MaskedBatch:
    """Promote a scalar or array to a fully active MaskedBatch."""
    if isinstance(value, MaskedBatch):
        return value
    arr = np.asarray(value)
    if arr.ndim == 0:
        arr = np.broadcast_to(arr, (batch_size,)).copy()
    return MaskedBatch(arr)
