"""A Matchbox-style local static autobatcher (paper Section 5).

The related-work survey describes Matchbox (Bradbury & Fu 2018) precisely
enough to rebuild its architecture: a **batched array type that carries the
mask** (the active set), whose overloaded operations apply masked updates;
``if`` statements execute the then-arm and then the else-arm under
complementary masks; ``while`` loops run until no member's condition holds;
recursion rides the ambient Python stack.

Where Matchbox intercepts Python syntax with a lightweight AST transform,
this implementation exposes the underlying combinators directly
(:func:`cond` and :func:`while_loop`); the syntax transform in front of them
would be the same one :mod:`repro.frontend` already implements.  As the
paper observes, the mask-and-queue data structure is *equivalent* to
Algorithm 1's program counter — one vector of indices encodes the same
information as a list of (index, exclusive-mask) pairs — so this third
implementation style must agree exactly with both of our machines, and the
differential tests in ``tests/test_matchbox.py`` require it.
"""

from repro.matchbox.masked import MaskedBatch
from repro.matchbox.control import cond, while_loop, matchbox_call

__all__ = ["MaskedBatch", "cond", "while_loop", "matchbox_call"]
