"""Reproduction of "Automatically Batching Control-Intensive Programs for
Modern Accelerators" (Radul, Patton, Maclaurin, Hoffman, Saurous;
MLSys 2020; arXiv:1910.11141).

Public API
----------

* :func:`autobatch` — decorate a single-example Python function; run it on a
  whole batch with ``.run_local(...)`` (Algorithm 1, local static
  autobatching) or ``.run_pc(...)`` (Algorithm 2, program-counter
  autobatching).  The decorated function stays callable from plain Python.
* :func:`primitive` — register a batched numpy function as an opaque kernel.
* :mod:`repro.ops` — built-in primitives (arithmetic, reductions, RNG).
* :mod:`repro.nuts` — the No U-Turn Sampler written in the autobatchable
  subset, plus baselines and diagnostics.
* :mod:`repro.bench` — the harness regenerating the paper's Figures 5 and 6.
* :mod:`repro.serve` — a continuous-batching serving engine: streaming
  requests recycled through the program-counter machine's lanes
  (``fn.serve(num_lanes)`` on any autobatched function).
* :mod:`repro.observe` — deterministic observability for serving runs:
  per-request event traces (Chrome-trace exportable), windowed per-tick
  metrics, and per-block execution profiles (``trace=True`` on
  ``fn.serve``/``fn.serve_cluster``).
"""

from repro.frontend import (
    AutobatchFunction,
    Primitive,
    PrimitiveRegistry,
    autobatch,
    default_registry,
    primitive,
)
from repro.observe import Trace
from repro.serve import Engine, QueueFullError, StepBudgetExceeded
from repro.vm import BlockExecutor, ExecutionPlan, Instrumentation
from repro import ops

__version__ = "1.2.0"

__all__ = [
    "AutobatchFunction",
    "Primitive",
    "PrimitiveRegistry",
    "autobatch",
    "default_registry",
    "primitive",
    "Engine",
    "Trace",
    "QueueFullError",
    "StepBudgetExceeded",
    "BlockExecutor",
    "ExecutionPlan",
    "Instrumentation",
    "ops",
    "__version__",
]
