"""Source extraction and subset validation for autobatched Python functions."""

from __future__ import annotations

import ast
import inspect
import textwrap
from typing import Any, Callable, Dict


class FrontendError(ValueError):
    """Raised when a Python function falls outside the autobatchable subset."""


def get_function_ast(pyfunc: Callable[..., Any]) -> ast.FunctionDef:
    """Parse ``pyfunc``'s source into its ``FunctionDef`` node."""
    try:
        source = inspect.getsource(pyfunc)
    except (OSError, TypeError) as exc:
        raise FrontendError(
            f"cannot retrieve source for {pyfunc!r}; autobatching requires a "
            "plain def written in a source file"
        ) from exc
    source = textwrap.dedent(source)
    try:
        module = ast.parse(source)
    except SyntaxError as exc:  # pragma: no cover - getsource already parsed it
        raise FrontendError(f"could not re-parse source of {pyfunc!r}") from exc
    for node in module.body:
        if isinstance(node, ast.FunctionDef):
            return node
    raise FrontendError(f"no function definition found in source of {pyfunc!r}")


def check_signature(node: ast.FunctionDef) -> None:
    """Reject signature features the batching transformation cannot encode."""
    args = node.args
    problems = []
    if args.vararg is not None:
        problems.append("*args")
    if args.kwarg is not None:
        problems.append("**kwargs")
    if args.kwonlyargs:
        problems.append("keyword-only arguments")
    if args.defaults or args.kw_defaults:
        problems.append("default values")
    if getattr(args, "posonlyargs", None):
        problems.append("positional-only markers")
    if problems:
        raise FrontendError(
            f"function {node.name!r} uses unsupported signature features: "
            + ", ".join(problems)
        )


def function_namespace(pyfunc: Callable[..., Any]) -> Dict[str, Any]:
    """The name resolution environment of ``pyfunc``: globals plus closure."""
    namespace: Dict[str, Any] = dict(getattr(pyfunc, "__globals__", {}))
    closure = getattr(pyfunc, "__closure__", None)
    freevars = getattr(pyfunc.__code__, "co_freevars", ())
    if closure:
        for name, cell in zip(freevars, closure):
            try:
                namespace[name] = cell.cell_contents
            except ValueError:
                pass  # unfilled cell (e.g. self-reference during decoration)
    return namespace
