"""Lowering of the autobatchable Python subset to callable IR.

Supported statements: assignment (including tuple unpacking and augmented
assignment), ``if``/``elif``/``else``, ``while`` (with ``break`` /
``continue``), ``for _ in range(...)``, ``return``, ``pass``.

Supported expressions: names, numeric/bool constants, unary and binary
arithmetic, comparisons (including chains), ``and``/``or``/``not``
(elementwise, **non-short-circuit** — both sides are evaluated, as is
necessary under batching), conditional expressions ``a if c else b``
(lowered to a ``select``; both arms are evaluated), and calls to registered
primitives or other autobatched functions.

Everything the transformation cannot represent raises :class:`FrontendError`
with a pointer at the offending construct.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.frontend.parser import FrontendError, check_signature
from repro.frontend.registry import Primitive, PrimitiveRegistry
from repro.ir.builder import BlockHandle, FunctionBuilder
from repro.ir.instructions import Function

_BINOPS = {
    ast.Add: "add",
    ast.Sub: "sub",
    ast.Mult: "mul",
    ast.Div: "div",
    ast.FloorDiv: "floordiv",
    ast.Mod: "mod",
    ast.Pow: "pow",
}

_CMPOPS = {
    ast.Lt: "lt",
    ast.LtE: "le",
    ast.Gt: "gt",
    ast.GtE: "ge",
    ast.Eq: "eq",
    ast.NotEq: "ne",
}

_BOOLOPS = {ast.And: "logical_and", ast.Or: "logical_or"}

# Python builtins transparently mapped onto primitives.
_BUILTIN_PRIMS = {
    abs: "abs",
    float: "to_float",
    int: "to_int",
    bool: "to_bool",
    min: "minimum",
    max: "maximum",
}


@dataclass
class CompiledFunction:
    """Result of frontend compilation: the IR plus callee references."""

    ir: Function
    #: IR callee name -> the AutobatchFunction object it refers to.
    callees: Dict[str, Any] = field(default_factory=dict)


class _Lowerer:
    """Single-function AST -> callable-IR compiler."""

    def __init__(
        self,
        name: str,
        node: ast.FunctionDef,
        namespace: Dict[str, Any],
        registry: PrimitiveRegistry,
        self_object: Any,
    ):
        check_signature(node)
        self.node = node
        self.namespace = namespace
        self.registry = registry
        self.self_object = self_object
        self.params = tuple(a.arg for a in node.args.args)
        self.builder = FunctionBuilder(name, params=self.params)
        self.callees: Dict[str, Any] = {}
        self.n_returns: Optional[int] = None
        self._tmp = 0
        # Stack of (loop_head_label, loop_after_label) for break/continue.
        self._loops: List[Tuple[BlockHandle, BlockHandle]] = []
        self.current: Optional[BlockHandle] = None

    # -- helpers ------------------------------------------------------------

    def _err(self, node: ast.AST, msg: str) -> FrontendError:
        line = getattr(node, "lineno", "?")
        return FrontendError(f"{self.builder.name} (line {line}): {msg}")

    def fresh(self, hint: str = "t") -> str:
        """A unique temporary variable name."""
        self._tmp += 1
        return f"__{hint}{self._tmp}"

    def _require_block(self, node: ast.AST) -> BlockHandle:
        if self.current is None:
            raise self._err(node, "unreachable code after return/break/continue")
        return self.current

    def _resolve(self, node: ast.expr) -> Any:
        """Resolve a Name or dotted Attribute against the defining namespace."""
        if isinstance(node, ast.Name):
            if node.id in self.namespace:
                return self.namespace[node.id]
            if node.id == self.node.name and self.self_object is not None:
                return self.self_object
            import builtins

            if hasattr(builtins, node.id):
                return getattr(builtins, node.id)
            raise self._err(node, f"cannot resolve name {node.id!r}")
        if isinstance(node, ast.Attribute):
            base = self._resolve(node.value)
            try:
                return getattr(base, node.attr)
            except AttributeError:
                raise self._err(node, f"cannot resolve attribute {node.attr!r}")
        raise self._err(node, "callee must be a name or dotted attribute")

    # -- compilation entry point ----------------------------------------------

    def compile(self) -> CompiledFunction:
        """Compile the whole function body into its CFG."""
        self.current = self.builder.block("entry")
        self.compile_body(self.node.body)
        if self.current is not None:
            # The dangling block is fine iff it is unreachable (e.g. the
            # after-block of an if/elif/else in which every branch returns).
            label = self.current.label
            by_label = {b.label: b for b in self.builder._blocks}
            reachable = set()
            stack = ["entry"]
            while stack:
                cur = stack.pop()
                if cur in reachable:
                    continue
                reachable.add(cur)
                term = by_label[cur].terminator
                if term is not None:
                    stack.extend(t for t in term.targets() if isinstance(t, str))
            if label in reachable:
                raise self._err(
                    self.node,
                    "control may reach the end of the function without return",
                )
            self.builder._blocks = [
                b for b in self.builder._blocks if b.label != label
            ]
            self.current = None
        if self.n_returns is None:
            raise self._err(self.node, "function never returns a value")
        self.builder.outputs = tuple(f"__ret{i}" for i in range(self.n_returns))
        ir = self.builder.build()
        ir = _prune_unreachable(ir)
        return CompiledFunction(ir=ir, callees=self.callees)

    def compile_body(self, body: List[ast.stmt]) -> None:
        """Compile a statement list into the current block chain."""
        for stmt in body:
            self.compile_stmt(stmt)

    # -- statements ------------------------------------------------------------

    def compile_stmt(self, stmt: ast.stmt) -> None:
        """Compile one statement (dispatching on AST node type)."""
        if isinstance(stmt, ast.Expr) and isinstance(stmt.value, ast.Constant):
            return  # docstring / bare literal: no-op
        if isinstance(stmt, ast.Pass):
            self._require_block(stmt)
            return
        handler = getattr(self, f"_stmt_{type(stmt).__name__}", None)
        if handler is None:
            raise self._err(stmt, f"unsupported statement {type(stmt).__name__}")
        handler(stmt)

    def _assign_names(self, node: ast.stmt, targets: ast.expr) -> Tuple[str, ...]:
        if isinstance(targets, ast.Name):
            return (targets.id,)
        if isinstance(targets, ast.Tuple) and all(
            isinstance(e, ast.Name) for e in targets.elts
        ):
            return tuple(e.id for e in targets.elts)  # type: ignore[union-attr]
        raise self._err(node, "assignment targets must be names or tuples of names")

    def _stmt_Assign(self, stmt: ast.Assign) -> None:
        if len(stmt.targets) != 1:
            raise self._err(stmt, "chained assignment is not supported")
        names = self._assign_names(stmt, stmt.targets[0])
        self._compile_binding(stmt, names, stmt.value)

    def _stmt_AnnAssign(self, stmt: ast.AnnAssign) -> None:
        if stmt.value is None:
            raise self._err(stmt, "bare annotations are not supported")
        names = self._assign_names(stmt, stmt.target)
        self._compile_binding(stmt, names, stmt.value)

    def _stmt_AugAssign(self, stmt: ast.AugAssign) -> None:
        if not isinstance(stmt.target, ast.Name):
            raise self._err(stmt, "augmented assignment target must be a name")
        if type(stmt.op) not in _BINOPS:
            raise self._err(stmt, f"unsupported operator {type(stmt.op).__name__}")
        blk = self._require_block(stmt)
        rhs = self.compile_expr(stmt.value)
        blk.prim((stmt.target.id,), _BINOPS[type(stmt.op)], (stmt.target.id, rhs))

    def _compile_binding(
        self, stmt: ast.stmt, names: Tuple[str, ...], value: ast.expr
    ) -> None:
        blk = self._require_block(stmt)
        if len(names) == 1:
            src = self.compile_expr(value)
            blk.prim((names[0],), "id", (src,))
            return
        # Tuple target: multi-output call, or a tuple literal of expressions.
        if isinstance(value, ast.Call):
            self.compile_call(value, outputs=names)
            return
        if isinstance(value, ast.Tuple):
            if len(value.elts) != len(names):
                raise self._err(stmt, "tuple assignment arity mismatch")
            # Evaluate all sources into fresh temporaries before writing any
            # target, so `a, b = b, a` swaps correctly.
            srcs = []
            for e in value.elts:
                tmp = self.fresh("tup")
                blk.prim((tmp,), "id", (self.compile_expr(e),))
                srcs.append(tmp)
            for name, src in zip(names, srcs):
                blk.prim((name,), "id", (src,))
            return
        raise self._err(
            stmt, "tuple assignment requires a call or a tuple literal on the right"
        )

    def _stmt_Return(self, stmt: ast.Return) -> None:
        blk = self._require_block(stmt)
        if stmt.value is None:
            raise self._err(stmt, "functions must return a value")
        if isinstance(stmt.value, ast.Tuple):
            values = list(stmt.value.elts)
        else:
            values = [stmt.value]
        if self.n_returns is None:
            self.n_returns = len(values)
        elif self.n_returns != len(values):
            raise self._err(
                stmt,
                f"inconsistent return arity: expected {self.n_returns}, "
                f"got {len(values)}",
            )
        if len(values) == 1 and isinstance(values[0], ast.Call):
            # `return f(x)` may itself be a multi-output call result forwarded
            # whole; treat single-value calls uniformly through compile_expr.
            pass
        srcs = [self.compile_expr(v) for v in values]
        for i, src in enumerate(srcs):
            blk.prim((f"__ret{i}",), "id", (src,))
        blk.ret()
        self.current = None

    def _stmt_If(self, stmt: ast.If) -> None:
        blk = self._require_block(stmt)
        cond = self.compile_expr(stmt.test)
        then_blk = self.builder.block(self.builder.fresh_label("then"))
        else_blk = self.builder.block(self.builder.fresh_label("else")) if stmt.orelse else None
        after_blk = self.builder.block(self.builder.fresh_label("after"))
        blk.branch(cond, then_blk, else_blk if else_blk is not None else after_blk)

        self.current = then_blk
        self.compile_body(stmt.body)
        if self.current is not None:
            self.current.jump(after_blk)

        if else_blk is not None:
            self.current = else_blk
            self.compile_body(stmt.orelse)
            if self.current is not None:
                self.current.jump(after_blk)

        self.current = after_blk

    def _stmt_While(self, stmt: ast.While) -> None:
        if stmt.orelse:
            raise self._err(stmt, "while/else is not supported")
        blk = self._require_block(stmt)
        head = self.builder.block(self.builder.fresh_label("loop_head"))
        blk.jump(head)
        # The condition is (re)evaluated in the head block each iteration.
        self.current = head
        cond = self.compile_expr(stmt.test)
        cond_blk = self.current  # condition evaluation may not branch blocks,
        body = self.builder.block(self.builder.fresh_label("loop_body"))
        after = self.builder.block(self.builder.fresh_label("loop_after"))
        cond_blk.branch(cond, body, after)

        self._loops.append((head, after))
        self.current = body
        self.compile_body(stmt.body)
        if self.current is not None:
            self.current.jump(head)
        self._loops.pop()

        self.current = after

    def _stmt_For(self, stmt: ast.For) -> None:
        """``for i in range(...)`` desugared to a while loop."""
        if stmt.orelse:
            raise self._err(stmt, "for/else is not supported")
        if not isinstance(stmt.target, ast.Name):
            raise self._err(stmt, "for target must be a single name")
        it = stmt.iter
        if not (
            isinstance(it, ast.Call)
            and isinstance(it.func, ast.Name)
            and it.func.id == "range"
            and 1 <= len(it.args) <= 3
            and not it.keywords
        ):
            raise self._err(stmt, "only `for _ in range(...)` loops are supported")
        blk = self._require_block(stmt)
        var = stmt.target.id
        if len(it.args) == 1:
            start_src, stop_node, step_node = None, it.args[0], None
        else:
            start_src, stop_node = it.args[0], it.args[1]
            step_node = it.args[2] if len(it.args) == 3 else None

        if start_src is None:
            blk.const(var, 0)
        else:
            blk.prim((var,), "id", (self.compile_expr(start_src),))
        stop = self.fresh("stop")
        blk.prim((stop,), "id", (self.compile_expr(stop_node),))
        step = self.fresh("step")
        if step_node is None:
            blk.const(step, 1)
        else:
            blk.prim((step,), "id", (self.compile_expr(step_node),))

        head = self.builder.block(self.builder.fresh_label("for_head"))
        blk.jump(head)
        cond = self.fresh("forcond")
        head.prim((cond,), "lt", (var, stop))
        body = self.builder.block(self.builder.fresh_label("for_body"))
        after = self.builder.block(self.builder.fresh_label("for_after"))
        head.branch(cond, body, after)

        # `continue` must advance the induction variable, so it targets a
        # dedicated increment block rather than the head.
        incr = self.builder.block(self.builder.fresh_label("for_incr"))
        incr.prim((var,), "add", (var, step)).jump(head)

        self._loops.append((incr, after))
        self.current = body
        self.compile_body(stmt.body)
        if self.current is not None:
            self.current.jump(incr)
        self._loops.pop()

        self.current = after

    def _stmt_Break(self, stmt: ast.Break) -> None:
        blk = self._require_block(stmt)
        if not self._loops:
            raise self._err(stmt, "break outside loop")
        blk.jump(self._loops[-1][1])
        self.current = None

    def _stmt_Continue(self, stmt: ast.Continue) -> None:
        blk = self._require_block(stmt)
        if not self._loops:
            raise self._err(stmt, "continue outside loop")
        blk.jump(self._loops[-1][0])
        self.current = None

    # -- expressions -----------------------------------------------------------

    def compile_expr(self, node: ast.expr) -> str:
        """Compile an expression; returns the variable holding its value."""
        handler = getattr(self, f"_expr_{type(node).__name__}", None)
        if handler is None:
            raise self._err(node, f"unsupported expression {type(node).__name__}")
        return handler(node)

    def _expr_Name(self, node: ast.Name) -> str:
        return node.id

    def _expr_Constant(self, node: ast.Constant) -> str:
        if not isinstance(node.value, (bool, int, float)):
            raise self._err(node, f"unsupported constant {node.value!r}")
        blk = self._require_block(node)
        tmp = self.fresh("c")
        blk.const(tmp, node.value)
        return tmp

    def _expr_BinOp(self, node: ast.BinOp) -> str:
        if type(node.op) not in _BINOPS:
            raise self._err(node, f"unsupported operator {type(node.op).__name__}")
        lhs = self.compile_expr(node.left)
        rhs = self.compile_expr(node.right)
        blk = self._require_block(node)
        tmp = self.fresh()
        blk.prim((tmp,), _BINOPS[type(node.op)], (lhs, rhs))
        return tmp

    def _expr_UnaryOp(self, node: ast.UnaryOp) -> str:
        if isinstance(node.op, ast.UAdd):
            return self.compile_expr(node.operand)
        if isinstance(node.op, ast.USub):
            fn = "neg"
        elif isinstance(node.op, ast.Not):
            fn = "logical_not"
        else:
            raise self._err(node, f"unsupported operator {type(node.op).__name__}")
        src = self.compile_expr(node.operand)
        blk = self._require_block(node)
        tmp = self.fresh()
        blk.prim((tmp,), fn, (src,))
        return tmp

    def _expr_Compare(self, node: ast.Compare) -> str:
        operands = [self.compile_expr(node.left)]
        operands += [self.compile_expr(c) for c in node.comparators]
        blk = self._require_block(node)
        parts = []
        for op, lhs, rhs in zip(node.ops, operands, operands[1:]):
            if type(op) not in _CMPOPS:
                raise self._err(node, f"unsupported comparison {type(op).__name__}")
            tmp = self.fresh("cmp")
            blk.prim((tmp,), _CMPOPS[type(op)], (lhs, rhs))
            parts.append(tmp)
        result = parts[0]
        for part in parts[1:]:
            tmp = self.fresh("cmp")
            blk.prim((tmp,), "logical_and", (result, part))
            result = tmp
        return result

    def _expr_BoolOp(self, node: ast.BoolOp) -> str:
        # Elementwise, non-short-circuit: every operand is evaluated.  This
        # is the correct semantics under batching (different members may need
        # different operands) but differs from host Python for effectful
        # operands — which the subset does not have.
        fn = _BOOLOPS[type(node.op)]
        srcs = [self.compile_expr(v) for v in node.values]
        blk = self._require_block(node)
        result = srcs[0]
        for src in srcs[1:]:
            tmp = self.fresh("b")
            blk.prim((tmp,), fn, (result, src))
            result = tmp
        return result

    def _expr_IfExp(self, node: ast.IfExp) -> str:
        # Both arms are evaluated; select masks the result per member.
        cond = self.compile_expr(node.test)
        then = self.compile_expr(node.body)
        other = self.compile_expr(node.orelse)
        blk = self._require_block(node)
        tmp = self.fresh("sel")
        blk.prim((tmp,), "where", (cond, then, other))
        return tmp

    def _expr_Call(self, node: ast.Call) -> str:
        outputs = self.compile_call(node, outputs=(self.fresh("call"),))
        return outputs[0]

    # -- calls -------------------------------------------------------------

    def compile_call(self, node: ast.Call, outputs: Tuple[str, ...]) -> Tuple[str, ...]:
        """Compile a call to a primitive or autobatched function."""
        if node.keywords:
            raise self._err(node, "keyword arguments are not supported")
        target = self._resolve(node.func)
        try:
            builtin_name = _BUILTIN_PRIMS.get(target)
        except TypeError:  # unhashable resolution result
            builtin_name = None
        if builtin_name is not None:
            target = self.registry.get(builtin_name)
        args = tuple(self.compile_expr(a) for a in node.args)
        blk = self._require_block(node)

        if isinstance(target, Primitive):
            if target.name not in self.registry:
                # A primitive from a foreign registry: make it resolvable.
                self.registry.register(target)
            if len(args) != target.n_inputs:
                raise self._err(
                    node,
                    f"primitive {target.name!r} takes {target.n_inputs} "
                    f"arguments, got {len(args)}",
                )
            if len(outputs) != target.n_outputs:
                raise self._err(
                    node,
                    f"primitive {target.name!r} returns {target.n_outputs} "
                    f"values, bound to {len(outputs)} targets",
                )
            blk.prim(outputs, target.name, args)
            return outputs

        # Autobatched function (including self-recursion).  Import here to
        # avoid a cycle with api.py.
        from repro.frontend.api import AutobatchFunction

        if isinstance(target, AutobatchFunction):
            existing = self.callees.get(target.name)
            if existing is not None and existing is not target:
                raise self._err(
                    node,
                    f"two distinct autobatched functions share the name "
                    f"{target.name!r}; rename one of them",
                )
            self.callees[target.name] = target
            blk.call(outputs, target.name, args)
            return outputs

        raise self._err(
            node,
            f"call target {ast.dump(node.func)} resolves to {target!r}, which is "
            "neither a registered primitive nor an autobatched function; "
            "decorate it with @primitive or @autobatch",
        )


def _prune_unreachable(fn: Function) -> Function:
    """Drop blocks unreachable from the entry (e.g. after `while True`)."""
    reachable = set()
    stack = [fn.blocks[0].label]
    by_label = {b.label: b for b in fn.blocks}
    while stack:
        label = stack.pop()
        if label in reachable:
            continue
        reachable.add(label)
        term = by_label[label].terminator
        if term is not None:
            stack.extend(t for t in term.targets() if isinstance(t, str))
    fn.blocks = [b for b in fn.blocks if b.label in reachable]
    fn.reindex()
    return fn


def lower_function(
    name: str,
    node: ast.FunctionDef,
    namespace: Dict[str, Any],
    registry: PrimitiveRegistry,
    self_object: Any = None,
) -> CompiledFunction:
    """Compile one Python function AST to callable IR."""
    return _Lowerer(name, node, namespace, registry, self_object).compile()
