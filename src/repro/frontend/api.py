"""User-facing autobatching API.

::

    from repro import autobatch

    @autobatch
    def fib(n):
        if n <= 1:
            return 1
        return fib(n - 2) + fib(n - 1)

    fib.run_local(np.array([3, 7, 4, 5]))   # Algorithm 1
    fib.run_pc(np.array([6, 7, 8, 9]))      # Algorithm 2
    fib(10)                                  # plain single-example Python

Compilation is lazy (triggered by the first use of ``.ir`` or a run method)
so that recursive and mutually recursive references resolve against fully
populated module globals.
"""

from __future__ import annotations

import functools
from typing import Any, Callable, Dict, Optional, Tuple

import numpy as np

from repro.frontend.cfg_builder import CompiledFunction, lower_function
from repro.frontend.parser import function_namespace, get_function_ast
from repro.frontend.registry import PrimitiveRegistry, default_registry
from repro.ir.builder import ProgramBuilder
from repro.ir.instructions import Function, Program, StackProgram
from repro.ir.validate import validate_program
from repro.lowering.pipeline import LoweringOptions, normalize_lowering_options


class AutobatchFunction:
    """A Python function plus its compiled autobatchable forms."""

    def __init__(
        self,
        pyfunc: Callable[..., Any],
        registry: Optional[PrimitiveRegistry] = None,
        name: Optional[str] = None,
    ):
        self.pyfunc = pyfunc
        self.name = name or pyfunc.__name__
        self.registry = registry or default_registry
        self._compiled: Optional[CompiledFunction] = None
        self._program: Optional[Program] = None
        self._callee_objects: Dict[str, "AutobatchFunction"] = {}
        self._stack_programs: Dict[LoweringOptions, StackProgram] = {}
        self._execution_plans: Dict[Tuple, Any] = {}
        self._program_facts: Dict[LoweringOptions, Any] = {}
        functools.update_wrapper(self, pyfunc, updated=())

    # -- plain Python execution (the reference semantics) --------------------

    def __call__(self, *args: Any) -> Any:
        return self.pyfunc(*args)

    def run_reference(self, *inputs: np.ndarray) -> Any:
        """Run each batch member through plain Python, one at a time.

        This is the paper's "Eager mode without autobatching" baseline and
        the differential-testing oracle.
        """
        batch = [np.asarray(x) for x in inputs]
        if not batch:
            raise ValueError("at least one input is required")
        z = batch[0].shape[0]
        results = [self.pyfunc(*(x[b] for x in batch)) for b in range(z)]
        if results and isinstance(results[0], tuple):
            n = len(results[0])
            return tuple(np.stack([np.asarray(r[i]) for r in results]) for i in range(n))
        return np.stack([np.asarray(r) for r in results])

    # -- compilation ---------------------------------------------------------

    def _compile(self) -> CompiledFunction:
        if self._compiled is None:
            node = get_function_ast(self.pyfunc)
            namespace = function_namespace(self.pyfunc)
            self._compiled = lower_function(
                self.name, node, namespace, self.registry, self_object=self
            )
        return self._compiled

    @property
    def ir(self) -> Function:
        """This function's callable-IR control flow graph."""
        return self._compile().ir

    @property
    def program(self) -> Program:
        """The whole callable-IR program: this function plus its transitive callees."""
        if self._program is None:
            builder = ProgramBuilder(main=self.name)
            seen: Dict[str, AutobatchFunction] = {}
            frontier = [self]
            while frontier:
                fn = frontier.pop()
                if fn.name in seen:
                    if seen[fn.name] is not fn:
                        raise ValueError(
                            f"two distinct autobatched functions share the name "
                            f"{fn.name!r}; rename one of them"
                        )
                    continue
                seen[fn.name] = fn
                compiled = fn._compile()
                builder.add(compiled.ir)
                frontier.extend(compiled.callees.values())
            program = builder.build()
            validate_program(program)
            self._program = program
            self._callee_objects = seen
        return self._program

    def stack_program(self, optimize: Any = True) -> StackProgram:
        """The lowered stack-dialect program for the program-counter machine.

        ``optimize`` may be a bool (all lowering optimizations on/off) or a
        :class:`~repro.lowering.pipeline.LoweringOptions` instance for
        per-optimization toggles; each distinct configuration is lowered
        once and cached.
        """
        key = normalize_lowering_options(optimize)
        if key not in self._stack_programs:
            from repro.lowering.pipeline import lower_program

            self._stack_programs[key] = lower_program(self.program, optimize=key)
        return self._stack_programs[key]

    def program_facts(self, optimize: Any = True) -> Any:
        """Statically verified :class:`~repro.analysis.stackcheck.ProgramFacts`.

        The lowered program is verified once per lowering configuration —
        every executor's plan shares the same facts object — and the result
        (per-pc entry depths, the proven max stack depth or the ``unbounded``
        verdict for recursive programs) is what machines pre-size their
        stacks from.
        """
        key = normalize_lowering_options(optimize)
        if key not in self._program_facts:
            from repro.analysis.stackcheck import verify_stack_program

            self._program_facts[key] = verify_stack_program(
                self.stack_program(key), context=f"stack program of {self.name!r}"
            )
        return self._program_facts[key]

    def execution_plan(
        self, executor: Any = "eager", optimize: Any = True, verify: bool = True
    ) -> Any:
        """A cached :class:`~repro.vm.executors.ExecutionPlan` for this function.

        The plan pairs the lowered program with a block-executor choice
        (``"eager"`` per-op dispatch or ``"fused"`` one-call-per-block);
        one plan per (executor, lowering options) pair is compiled, then
        shared by every machine ``run_pc`` or ``serve`` creates.  With
        ``verify=True`` (the default) the plan carries the statically
        verified :meth:`program_facts`; ``verify=False`` skips the check
        (the plan is still cached, and a later verifying call upgrades it
        in place).
        """
        from repro.vm.executors import ExecutionPlan, resolve_executor

        opts = normalize_lowering_options(optimize)
        ex = resolve_executor(executor)
        if not (executor is None or isinstance(executor, str)):
            # A caller-supplied executor instance/class may carry its own
            # state or share a name with an unrelated class; only specs
            # resolved through the name registry go through the cache.
            plan = ExecutionPlan(
                program=self.stack_program(opts), executor=ex, options=opts
            )
        else:
            key = (ex.name, opts)
            if key not in self._execution_plans:
                self._execution_plans[key] = ExecutionPlan(
                    program=self.stack_program(opts), executor=ex, options=opts
                )
            plan = self._execution_plans[key]
        if verify and plan.facts is None:
            plan.verify(self.program_facts(opts))
        return plan

    # -- batched execution ----------------------------------------------------

    def run_local(self, *inputs: np.ndarray, **options: Any) -> Any:
        """Run under local static autobatching (paper Algorithm 1)."""
        from repro.vm.local_static import run_local_static

        registry = options.pop("registry", self.registry)
        return run_local_static(
            self.program, list(inputs), registry=registry, **options
        )

    def run_pc(self, *inputs: np.ndarray, **options: Any) -> Any:
        """Run under program-counter autobatching (paper Algorithm 2).

        ``executor="eager"`` (default) interprets blocks op-at-a-time;
        ``executor="fused"`` runs each block as one pre-compiled callable
        (bit-identical results, one dispatch per block).  ``optimize``
        accepts a bool or a :class:`~repro.lowering.pipeline.LoweringOptions`.
        """
        from repro.vm.program_counter import run_program_counter

        optimize = options.pop("optimize", True)
        executor = options.pop("executor", "eager")
        verify = options.pop("verify", True)
        registry = options.pop("registry", self.registry)
        return run_program_counter(
            self.execution_plan(executor=executor, optimize=optimize, verify=verify),
            list(inputs),
            registry=registry,
            **options,
        )

    # -- streaming execution ---------------------------------------------------

    def serve(self, num_lanes: int, **options: Any) -> Any:
        """A continuous-batching :class:`~repro.serve.engine.Engine`.

        The engine owns a ``num_lanes``-wide program-counter machine and
        admits streaming requests into vacated lanes mid-flight::

            engine = fib.serve(num_lanes=8, max_queue_depth=64,
                               preempt=True)  # priority preemption
            handle = engine.submit(np.int64(12), priority=5)
            engine.run_until_idle()
            handle.result()

        Options are forwarded to :class:`~repro.serve.engine.Engine`;
        ``executor="fused"`` serves through fused basic blocks (identical
        results, one host dispatch per block) and ``executor="superblock"``
        through profile-guided multi-block runs (identical results, below
        one dispatch per executed block), and ``preempt=`` (``True``
        or a tuned :class:`~repro.serve.engine.PreemptPolicy`) lets
        higher-priority arrivals checkpoint-and-evict straggler lanes —
        the evicted request *resumes* from its lane snapshot when a lane
        frees, it is never recomputed (``resume_batching=True`` re-aligns
        same-pc evictees at refill so they re-converge into shared masked
        steps).  ``trace=True`` (or a
        :class:`~repro.observe.Trace`) records per-request event
        timelines (``handle.trace()``), per-tick metrics, and a per-block
        execution profile — deterministic on the logical clock, and
        exportable with ``engine.trace.export_chrome_trace(path)``.
        """
        from repro.serve.engine import Engine

        options.setdefault("registry", self.registry)
        return Engine(self, num_lanes, **options)

    def serve_cluster(
        self, num_engines: int, num_lanes: int, **options: Any
    ) -> Any:
        """A sharded :class:`~repro.serve.cluster.Cluster` of serving engines.

        ``num_engines`` machines of width ``num_lanes`` each, behind one
        ``submit``/``map``/``run_until_idle`` façade with pluggable request
        routing, plus opt-in rebalancing::

            cluster = fib.serve_cluster(4, num_lanes=8, policy="least_loaded",
                                        executor="fused",
                                        steal=True,       # cross-shard work stealing
                                        autoscale=True)   # shard elasticity
            results = cluster.map([(np.int64(n),) for n in sizes])
            print(cluster.telemetry.summary())

        ``steal=`` rebalances queued requests from backlogged shards onto
        idle lanes each tick (a :class:`~repro.serve.cluster.StealPolicy`
        tunes threshold/batch size); ``autoscale=`` grows the fleet under
        sustained queue pressure and drains-then-retires shards under
        sustained slack (an :class:`~repro.serve.cluster.AutoscalePolicy`
        tunes bounds/patience).  Every shard — including ones added by
        autoscale — binds this function's *one* cached
        :class:`~repro.vm.executors.ExecutionPlan` (per executor/options),
        so fused block code is generated once for the whole fleet.
        ``trace=True`` shares one :class:`~repro.observe.Trace` across
        the fleet: a single event stream (steals and migrations
        included), per-shard and fleet-wide metric series, and a merged
        block profile.  Options are forwarded to
        :class:`~repro.serve.cluster.Cluster`.
        """
        from repro.serve.cluster import Cluster

        options.setdefault("registry", self.registry)
        return Cluster(self, num_engines, num_lanes, **options)

    def __repr__(self) -> str:
        return f"AutobatchFunction({self.name!r})"


def autobatch(
    fn: Optional[Callable[..., Any]] = None,
    *,
    registry: Optional[PrimitiveRegistry] = None,
    name: Optional[str] = None,
) -> Any:
    """Decorator marking a Python function for autobatching.

    The decorated object remains directly callable with single-example
    (unbatched) arguments, exactly like the original function.
    """

    def wrap(f: Callable[..., Any]) -> AutobatchFunction:
        return AutobatchFunction(f, registry=registry, name=name)

    if fn is not None:
        return wrap(fn)
    return wrap
