"""Built-in batched primitives.

Every primitive operates elementwise across the leading batch dimension; the
same functions also work on unbatched (single-example) values, which is what
makes plain-Python reference execution of autobatched programs possible.

Broadcasting convention
-----------------------
Within one batch member, operands may have different *event ranks* (e.g. a
per-member scalar step size multiplying a per-member position vector).  Numpy
broadcasting right-aligns shapes, which is wrong under a leading batch
dimension: ``(Z,) * (Z, d)`` fails.  All arithmetic and comparison primitives
therefore **right-pad the lower-rank operand with unit axes** before applying
the numpy op — the vmap-consistent rule.  This is exactly the shape juggling
a hand-batching programmer must otherwise do by hand, which is the paper's
motivation.

Randomness
----------
Random draws are *pure functions of an explicit counter* (splitmix64-style
counter-based RNG).  The program threads a per-member ``ctr`` variable
through its random choices, so the sequence of draws each batch member sees
is a function of its own state only — independent of the batching strategy,
the block schedule, and masking of inactive members.  All execution
strategies therefore produce bitwise-identical chains, which the test suite
relies on.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.frontend.registry import Primitive, default_registry

# ---------------------------------------------------------------------------
# Broadcasting helper
# ---------------------------------------------------------------------------


def _align(*args: np.ndarray) -> Tuple[np.ndarray, ...]:
    """Right-pad lower-rank operands with unit axes (batch-aware broadcast)."""
    arrays = [np.asarray(a) for a in args]
    ndim = max(a.ndim for a in arrays)
    return tuple(
        a.reshape(a.shape + (1,) * (ndim - a.ndim)) if a.ndim < ndim else a
        for a in arrays
    )


def _register(name, fn, n_inputs, n_outputs=1, cost_weight=1.0, tags=()):
    prim = Primitive(
        name=name,
        fn=fn,
        n_inputs=n_inputs,
        n_outputs=n_outputs,
        cost_weight=cost_weight,
        tags=frozenset(tags),
    )
    default_registry.register(prim)
    return prim


def _binary(name, np_fn, cost_weight=1.0):
    def fn(x, y, _np_fn=np_fn):
        x, y = _align(x, y)
        return _np_fn(x, y)

    fn.__name__ = name
    return _register(name, fn, n_inputs=2, cost_weight=cost_weight)


def _unary(name, np_fn, cost_weight=1.0):
    def fn(x, _np_fn=np_fn):
        return _np_fn(np.asarray(x))

    fn.__name__ = name
    return _register(name, fn, n_inputs=1, cost_weight=cost_weight)


# ---------------------------------------------------------------------------
# Arithmetic / comparison / logical
# ---------------------------------------------------------------------------

add = _binary("add", np.add)
sub = _binary("sub", np.subtract)
mul = _binary("mul", np.multiply)
div = _binary("div", np.true_divide)
floordiv = _binary("floordiv", np.floor_divide)
mod = _binary("mod", np.mod)
pow_ = _binary("pow", np.power, cost_weight=4.0)
minimum = _binary("minimum", np.minimum)
maximum = _binary("maximum", np.maximum)

lt = _binary("lt", np.less)
le = _binary("le", np.less_equal)
gt = _binary("gt", np.greater)
ge = _binary("ge", np.greater_equal)
eq = _binary("eq", np.equal)
ne = _binary("ne", np.not_equal)

logical_and = _binary("logical_and", np.logical_and)
logical_or = _binary("logical_or", np.logical_or)
logical_xor = _binary("logical_xor", np.logical_xor)

neg = _unary("neg", np.negative)
abs_ = _unary("abs", np.abs)
sign = _unary("sign", np.sign)
logical_not = _unary("logical_not", np.logical_not)

exp = _unary("exp", np.exp, cost_weight=8.0)
log = _unary("log", np.log, cost_weight=8.0)
log1p = _unary("log1p", np.log1p, cost_weight=8.0)
expm1 = _unary("expm1", np.expm1, cost_weight=8.0)
sqrt = _unary("sqrt", np.sqrt, cost_weight=4.0)
sin = _unary("sin", np.sin, cost_weight=8.0)
cos = _unary("cos", np.cos, cost_weight=8.0)
tan = _unary("tan", np.tan, cost_weight=8.0)
tanh = _unary("tanh", np.tanh, cost_weight=8.0)


def _sigmoid(x):
    x = np.asarray(x)
    out = np.empty_like(x, dtype=np.result_type(x, np.float64))
    pos = x >= 0
    out[pos] = 1.0 / (1.0 + np.exp(-x[pos]))
    ex = np.exp(x[~pos])
    out[~pos] = ex / (1.0 + ex)
    return out if out.shape else out[()]


sigmoid = _register("sigmoid", _sigmoid, n_inputs=1, cost_weight=10.0)

identity = _register("id", lambda x: np.asarray(x).copy(), n_inputs=1, cost_weight=0.0)
zeros_like = _register("zeros_like", lambda x: np.zeros_like(np.asarray(x)), n_inputs=1, cost_weight=0.0)
ones_like = _register("ones_like", lambda x: np.ones_like(np.asarray(x)), n_inputs=1, cost_weight=0.0)


def _select(c, a, b):
    c, a, b = _align(c, a, b)
    return np.where(c, a, b)


select = _register("select", _select, n_inputs=3)
# Alias used by the frontend for `a if c else b` expressions.
default_registry.register(
    Primitive(name="where", fn=_select, n_inputs=3, cost_weight=1.0)
)

to_float = _register("to_float", lambda x: np.asarray(x, dtype=np.float64), n_inputs=1, cost_weight=0.0)
to_int = _register("to_int", lambda x: np.asarray(np.floor(np.asarray(x, dtype=np.float64))).astype(np.int64) if np.asarray(x).dtype.kind == "f" else np.asarray(x, dtype=np.int64), n_inputs=1, cost_weight=0.0)
to_bool = _register("to_bool", lambda x: np.asarray(x, dtype=bool), n_inputs=1, cost_weight=0.0)

# ---------------------------------------------------------------------------
# Event (last-axis) reductions — valid only for event rank >= 1.
# ---------------------------------------------------------------------------


def _dot(x, y):
    x, y = _align(x, y)
    return np.sum(x * y, axis=-1)


dot = _register("dot", _dot, n_inputs=2, cost_weight=2.0)
sum_last = _register("sum_last", lambda x: np.sum(np.asarray(x), axis=-1), n_inputs=1)
max_last = _register("max_last", lambda x: np.max(np.asarray(x), axis=-1), n_inputs=1)
min_last = _register("min_last", lambda x: np.min(np.asarray(x), axis=-1), n_inputs=1)
norm_sq = _register("norm_sq", lambda x: np.sum(np.square(np.asarray(x)), axis=-1), n_inputs=1, cost_weight=2.0)

# ---------------------------------------------------------------------------
# Counter-based RNG (splitmix64)
# ---------------------------------------------------------------------------

_SM_GAMMA = np.uint64(0x9E3779B97F4A7C15)
_SM_M1 = np.uint64(0xBF58476D1CE4E5B9)
_SM_M2 = np.uint64(0x94D049BB133111EB)


def _splitmix64(x: np.ndarray) -> np.ndarray:
    """Finalizer of the splitmix64 generator: a bijective uint64 hash."""
    with np.errstate(over="ignore"):
        z = (np.asarray(x, dtype=np.uint64) + _SM_GAMMA).astype(np.uint64)
        z = (z ^ (z >> np.uint64(30))) * _SM_M1
        z = (z ^ (z >> np.uint64(27))) * _SM_M2
        return z ^ (z >> np.uint64(31))


def _to_unit(z: np.ndarray) -> np.ndarray:
    """uint64 -> float64 uniform in the open interval (0, 1)."""
    u = (z >> np.uint64(11)).astype(np.float64) * (2.0 ** -53)
    # Keep draws strictly inside (0, 1) so log(u) and log(1-u) are finite.
    return np.clip(u, 2.0 ** -53, 1.0 - 2.0 ** -53)


def _elem_counters(ctr: np.ndarray, template: np.ndarray) -> np.ndarray:
    """Derive one counter per element of ``template`` from per-member ``ctr``."""
    ctr = np.asarray(ctr, dtype=np.uint64)
    template = np.asarray(template)
    extra = template.shape[ctr.ndim:]
    n = int(np.prod(extra)) if extra else 1
    idx = np.arange(n, dtype=np.uint64).reshape(extra if extra else ())
    with np.errstate(over="ignore"):
        base = ctr.reshape(ctr.shape + (1,) * len(extra)) * _SM_GAMMA
        return (base + idx).astype(np.uint64)


def _runif(ctr):
    """One uniform (0,1) draw per member, shaped like ``ctr``."""
    return _to_unit(_splitmix64(np.asarray(ctr, dtype=np.uint64)))


def _runif_like(ctr, template):
    """Uniform (0,1) draws shaped like ``template``."""
    return _to_unit(_splitmix64(_elem_counters(ctr, template)))


def _rnorm_like(ctr, template):
    """Standard-normal draws shaped like ``template`` (Box-Muller)."""
    counters = _elem_counters(ctr, template)
    with np.errstate(over="ignore"):
        u1 = _to_unit(_splitmix64(counters))
        u2 = _to_unit(_splitmix64(counters ^ np.uint64(0xD6E8FEB86659FD93)))
    return np.sqrt(-2.0 * np.log(u1)) * np.cos(2.0 * np.pi * u2)


def _rng_next(ctr):
    """Advance a counter by one draw slot."""
    with np.errstate(over="ignore"):
        return (np.asarray(ctr, dtype=np.uint64) + np.uint64(1)).astype(np.uint64)


runif = _register("runif", _runif, n_inputs=1, tags=("rng",))
runif_like = _register("runif_like", _runif_like, n_inputs=2, tags=("rng",))
rnorm_like = _register("rnorm_like", _rnorm_like, n_inputs=2, tags=("rng",), cost_weight=20.0)
rng_next = _register("rng_next", _rng_next, n_inputs=1, cost_weight=0.0)


def make_counters(seed: int, batch_size: int) -> np.ndarray:
    """Initial, well-separated RNG counters for a batch of ``batch_size``.

    Member streams are spaced ``2**32`` apart so that up to ~4 billion draws
    per member never collide across members.
    """
    with np.errstate(over="ignore"):
        base = _splitmix64(np.asarray([seed], dtype=np.uint64))[0]
        return (
            base + np.arange(batch_size, dtype=np.uint64) * np.uint64(2 ** 32)
        ).astype(np.uint64)
