"""Batched-primitive registry.

A *primitive* is the unit of computation the autobatching machinery does not
look inside: a function over numpy arrays that operates elementwise across a
leading batch dimension (the standard kernel contract the paper relies on:
"kernels accept extra input dimensions and operate elementwise across
them").  The registry maps primitive names appearing in ``PrimOp``
instructions to their implementations, plus metadata used by the simulated
device (cost weights) and the instrumentation (tags such as ``"gradient"``
for Figure 6's utilization accounting).
"""

from __future__ import annotations

import functools
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, FrozenSet, Iterator, Optional, Tuple


@dataclass
class Primitive:
    """A named batched operation.

    ``fn`` takes ``n_inputs`` arrays, each with a leading batch dimension (or
    unbatched scalars, when called from plain Python for reference execution)
    and returns one array, or a tuple of ``n_outputs`` arrays.

    ``cost_weight`` is an abstract per-element flop count used by the
    deterministic cost-model device; ``tags`` lets instrumentation identify
    classes of primitives (e.g. the target-density gradient for Figure 6).
    """

    name: str
    fn: Callable[..., Any]
    n_inputs: int
    n_outputs: int = 1
    cost_weight: float = 1.0
    tags: FrozenSet[str] = field(default_factory=frozenset)

    def __post_init__(self) -> None:
        self.tags = frozenset(self.tags)

    def __call__(self, *args: Any) -> Any:
        """Run the primitive directly (usable from plain, unbatched Python)."""
        return self.fn(*args)

    def __repr__(self) -> str:
        return f"Primitive({self.name!r}, in={self.n_inputs}, out={self.n_outputs})"


class PrimitiveRegistry:
    """Mutable name -> :class:`Primitive` mapping, optionally layered.

    A registry may have a ``parent``; lookups fall through to it.  The global
    :data:`default_registry` holds the built-ins; user programs usually
    register their model-specific primitives (like a target density gradient)
    into a child registry or directly into the default one.
    """

    def __init__(self, parent: Optional["PrimitiveRegistry"] = None):
        self._prims: Dict[str, Primitive] = {}
        self._parent = parent

    def register(self, prim: Primitive, overwrite: bool = False) -> Primitive:
        """Register ``prim``; raises on duplicate names unless ``overwrite``."""
        if not overwrite and prim.name in self._prims:
            raise ValueError(f"primitive {prim.name!r} already registered")
        self._prims[prim.name] = prim
        return prim

    def get(self, name: str) -> Primitive:
        """Look up a primitive by name, consulting parent registries."""
        reg: Optional[PrimitiveRegistry] = self
        while reg is not None:
            if name in reg._prims:
                return reg._prims[name]
            reg = reg._parent
        raise KeyError(f"unknown primitive {name!r}")

    def __contains__(self, name: str) -> bool:
        try:
            self.get(name)
            return True
        except KeyError:
            return False

    def __iter__(self) -> Iterator[str]:
        seen = set()
        reg: Optional[PrimitiveRegistry] = self
        while reg is not None:
            for name in reg._prims:
                if name not in seen:
                    seen.add(name)
                    yield name
            reg = reg._parent

    def names(self) -> Tuple[str, ...]:
        """All registered primitive names, including inherited ones."""
        return tuple(self)

    def child(self) -> "PrimitiveRegistry":
        """A new registry layered on top of this one."""
        return PrimitiveRegistry(parent=self)


#: The process-global registry holding the built-in primitives.
default_registry = PrimitiveRegistry()


def primitive(
    name: Optional[str] = None,
    n_inputs: Optional[int] = None,
    n_outputs: int = 1,
    cost_weight: float = 1.0,
    tags: Tuple[str, ...] = (),
    registry: Optional[PrimitiveRegistry] = None,
) -> Callable[[Callable[..., Any]], Primitive]:
    """Decorator registering a batched numpy function as a primitive.

    ::

        @primitive(tags=("gradient",), cost_weight=200.0)
        def grad_log_prob(q):        # q: (Z, d) -> (Z, d)
            return -q @ precision

    The wrapped function must accept arrays with a leading batch dimension
    and treat batch members independently.  The returned object is the
    :class:`Primitive` itself, which remains directly callable, so decorated
    functions still work in plain single-example Python code.
    """

    def decorate(fn: Callable[..., Any]) -> Primitive:
        nin = n_inputs
        if nin is None:
            import inspect

            params = [
                p
                for p in inspect.signature(fn).parameters.values()
                if p.kind in (p.POSITIONAL_ONLY, p.POSITIONAL_OR_KEYWORD)
            ]
            nin = len(params)
        prim = Primitive(
            name=name or fn.__name__,
            fn=fn,
            n_inputs=nin,
            n_outputs=n_outputs,
            cost_weight=cost_weight,
            tags=frozenset(tags),
        )
        functools.update_wrapper(prim, fn, updated=())
        (registry or default_registry).register(prim)
        return prim

    return decorate
