"""The Python-embedded compiler frontend.

This is the analog of the paper's AutoGraph-based frontend: a user-invoked
AST transformation that converts a (restricted) Python function into the
callable control-flow-graph IR of Figure 2.  All of the user's actual
computations become ``Primitive`` operations; ``if``/``while``/``return`` and
function calls are encoded in ``Jump``/``Branch``/``Call``/``Return``.
"""

from repro.frontend.registry import Primitive, PrimitiveRegistry, default_registry, primitive
from repro.frontend.api import AutobatchFunction, autobatch
from repro.frontend import primitives as _primitives  # noqa: F401  (registers built-ins)

__all__ = [
    "Primitive",
    "PrimitiveRegistry",
    "default_registry",
    "primitive",
    "AutobatchFunction",
    "autobatch",
]
