"""Kernel-dispatch accounting.

A :class:`KernelLibrary` wraps a primitive registry so that every kernel
invocation is counted (and optionally charged simulated dispatch time).  The
benchmarks use it to report dispatch counts per strategy without touching the
VM hot paths: wrapping happens once, at registry construction.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.frontend.registry import Primitive, PrimitiveRegistry


@dataclass
class DispatchStats:
    calls: int = 0
    by_kernel: Dict[str, int] = field(default_factory=dict)

    def record(self, name: str) -> None:
        """Accumulate one dispatch of ``lanes`` lanes."""
        self.calls += 1
        self.by_kernel[name] = self.by_kernel.get(name, 0) + 1


class KernelLibrary:
    """A counting view over a primitive registry.

    ``library.registry`` is a child registry whose primitives report into
    ``library.stats`` on every call; pass it anywhere a registry is accepted.
    """

    def __init__(self, base: PrimitiveRegistry):
        self.base = base
        self.stats = DispatchStats()
        self.registry = PrimitiveRegistry()
        for name in base.names():
            prim = base.get(name)
            self.registry.register(self._counting(prim))

    def _counting(self, prim: Primitive) -> Primitive:
        stats = self.stats

        def fn(*args, _inner=prim.fn, _name=prim.name):
            stats.record(_name)
            return _inner(*args)

        return Primitive(
            name=prim.name,
            fn=fn,
            n_inputs=prim.n_inputs,
            n_outputs=prim.n_outputs,
            cost_weight=prim.cost_weight,
            tags=prim.tags,
        )

    def reset(self) -> None:
        """Zero all per-kernel dispatch statistics."""
        self.stats = DispatchStats()
        for name in self.registry.names():
            # Rebind the closure's stats object.
            prim = self.registry.get(name)
            base_prim = self.base.get(name)
            self.registry.register(self._counting(base_prim), overwrite=True)
