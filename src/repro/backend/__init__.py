"""Simulated accelerator substrate.

The paper's backends are TensorFlow Eager (per-kernel dispatch overhead) and
XLA (kernel fusion, low dispatch overhead).  This package reproduces the
*mechanisms* those backends contribute to Figure 5:

* :mod:`repro.backend.fusion` — compiles each basic block of a stack program
  into a single generated Python function ("fused kernel"), replacing the
  op-at-a-time interpreter loop.  One dispatch per block instead of one per
  primitive: the XLA analog.  :class:`SuperblockExecutor` goes below that
  floor, chaining blocks into multi-block runs with side exits.
* :mod:`repro.backend.regions` — the region-selection pass feeding the
  superblock executor: static fall-through chains, optionally extended
  through branches by a :class:`~repro.observe.BlockProfile`.
* :mod:`repro.backend.device` — deterministic cost models of a CPU-like and
  a GPU-like device (dispatch overhead, throughput, parallel width), used to
  produce reproducible simulated timings alongside real wall-clock ones.
* :mod:`repro.backend.kernels` — kernel-dispatch accounting shared by both.
"""

from repro.backend.device import CPU_DEVICE, GPU_DEVICE, DeviceModel
from repro.backend.fusion import (
    FusedBlockExecutor,
    FusionUnsupported,
    SuperblockExecutor,
    compile_block_executors,
    run_fused,
)
from repro.backend.kernels import KernelLibrary
from repro.backend.regions import RegionTable, select_regions

__all__ = [
    "CPU_DEVICE",
    "GPU_DEVICE",
    "DeviceModel",
    "FusedBlockExecutor",
    "FusionUnsupported",
    "SuperblockExecutor",
    "compile_block_executors",
    "run_fused",
    "KernelLibrary",
    "RegionTable",
    "select_regions",
]
