"""Deterministic device cost models.

Real wall-clock measurements of this reproduction depend on the host Python;
to make the *shape* of Figure 5 reproducible bit-for-bit, we also evaluate
every strategy under an analytic device model:

    time = (number of dispatches) * dispatch_overhead
         + sum over kernels of element_time * ceil(work / parallel_width)

where ``work`` is the kernel's abstract flop count (cost weight x elements x
batch lanes) taken from :class:`~repro.vm.instrumentation.Instrumentation`.
A CPU-like model has a small parallel width (vector units) and low dispatch
overhead; a GPU-like model has huge width and large per-launch overhead —
which is what makes batching pay off so dramatically there, and is the
mechanism behind Figure 5's GPU curves.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any

from repro.vm.instrumentation import Instrumentation


@dataclass(frozen=True)
class DeviceModel:
    """An analytic accelerator: overheads and throughput."""

    name: str
    dispatch_overhead: float        # seconds per eager kernel launch
    fused_dispatch_overhead: float  # seconds per fused-block launch
    element_time: float             # seconds per weighted element (width 1)
    parallel_width: int             # weighted elements processed concurrently

    def launch_overhead(self, accounting: str) -> float:
        """Seconds per host→device launch for a dispatch-accounting family."""
        if accounting == "fused":
            return self.fused_dispatch_overhead
        if accounting == "eager":
            return self.dispatch_overhead
        raise ValueError(f"unknown dispatch accounting {accounting!r}")

    def kernel_seconds(self, flops_per_call: float) -> float:
        """Compute time of one kernel call, excluding dispatch.

        The device executes up to ``parallel_width`` weighted elements per
        "wave" of duration ``element_time``; a call costs one wave per
        ceiling-division of its work by the width.
        """
        waves = max(1.0, math.ceil(flops_per_call / self.parallel_width))
        return self.element_time * waves

    def estimate(self, instr: Instrumentation, strategy: Any = "eager") -> float:
        """Simulated seconds for a run summarized by ``instr``.

        ``strategy`` chooses the dispatch accounting.  The preferred form
        is an :class:`~repro.vm.executors.ExecutionPlan` (or any object
        with ``device_dispatch_count(instr)`` and ``accounting``): the
        launch count then comes from the executor that actually ran the
        blocks instead of a hard-coded per-string formula.  (Kernel-level
        launches only, so strategies whose instrumentation lacks storage
        counters remain comparable in one figure; stack traffic is charged
        separately below.)  The legacy string forms remain:

        * ``"eager"`` — one dispatch per primitive execution (TF Eager);
        * ``"fused"`` — one dispatch per basic-block execution (XLA);
        * ``"hybrid"`` — fused blocks driven by an eager control loop: one
          fused dispatch per block plus one eager dispatch per block for the
          host-side control step.
        """
        compute = 0.0
        total_kernel_calls = 0
        for counter in instr.by_prim.values():
            if counter.executions == 0:
                continue
            flops_per_call = counter.flops / counter.executions
            compute += counter.executions * self.kernel_seconds(flops_per_call)
            total_kernel_calls += counter.executions

        if hasattr(strategy, "device_dispatch_count"):
            dispatch = strategy.device_dispatch_count(
                instr
            ) * self.launch_overhead(strategy.accounting)
        elif strategy == "eager":
            dispatch = total_kernel_calls * self.dispatch_overhead
        elif strategy == "fused":
            dispatch = instr.steps * self.fused_dispatch_overhead
        elif strategy == "hybrid":
            dispatch = instr.steps * (
                self.fused_dispatch_overhead + self.dispatch_overhead
            )
        else:
            raise ValueError(f"unknown strategy {strategy!r}")
        # Stack traffic: pushes/pops are scatters/gathers, charged as one
        # extra kernel each (they are part of the fused program under XLA,
        # but their memory traffic is real either way).
        stack_seconds = (instr.pushes + instr.pops) * self.element_time * 4
        return dispatch + compute + stack_seconds


#: A CPU-like device: cheap dispatch, narrow vector units.
CPU_DEVICE = DeviceModel(
    name="cpu",
    dispatch_overhead=4e-6,
    fused_dispatch_overhead=4e-7,
    element_time=2e-9,
    parallel_width=16,
)

#: A GPU-like device (Tesla-P100-flavored): expensive launches, massive width.
GPU_DEVICE = DeviceModel(
    name="gpu",
    dispatch_overhead=1.2e-5,
    fused_dispatch_overhead=2e-6,
    element_time=2e-10,
    parallel_width=1 << 16,
)
