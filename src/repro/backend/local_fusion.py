"""Block fusion for the local static machine — the paper's *hybrid* strategy.

Section 4 tests three autobatched forms; the third is "running the control
operations of local static autobatching in TensorFlow Eager, but compiling
the straight-line components (basic blocks) with XLA".  The paper notes
that "identifying the basic blocks to compile separately is a nontrivial
program transformation in its own right [which] fits conveniently into our
software framework" — and it fits conveniently here too: the callable IR
already delimits the basic blocks, so each block's primitive sequence can be
pre-compiled into a single Python closure (the XLA-fusion analog used by
:mod:`repro.backend.fusion` for the program-counter machine).

Blocks containing :class:`~repro.ir.instructions.CallOp` cannot fuse —
calls re-enter the interpreter (that *is* the eager control the hybrid
keeps) — so the compiler splits each block into a maximal fused prefix of
primitive/const ops, an optional interpreted call, and continues fusing
after it.  Masking mode only, as with the PC fusion (gather-scatter's
dynamic shapes defeat static compilation).
"""

from __future__ import annotations

import textwrap
from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

from repro.frontend.registry import PrimitiveRegistry
from repro.ir.instructions import Block, CallOp, ConstOp, Function, PrimOp


class _LocalBlockCompiler:
    """Compiles one function's blocks into fused segment executors."""

    def __init__(self, registry: PrimitiveRegistry, batch_size: int):
        self.registry = registry
        self.batch_size = batch_size
        self.namespace: Dict[str, object] = {"np": np}
        self._n = 0

    def _bind(self, prefix: str, obj: object) -> str:
        name = f"{prefix}{self._n}"
        self._n += 1
        self.namespace[name] = obj
        return name

    def compile_segment(self, ops: Sequence[object], label: str) -> Optional[Callable]:
        """Fuse a run of ConstOp/PrimOp into one closure, or None if empty.

        The closure signature is ``(storage, mask)`` where ``storage`` is
        the activation's variable-storage lookup function.
        """
        if not ops:
            return None
        lines: List[str] = []
        for op in ops:
            if isinstance(op, ConstOp):
                value = op.value
                if isinstance(value, bool):
                    arr = np.full(self.batch_size, value, dtype=bool)
                elif isinstance(value, int):
                    arr = np.full(self.batch_size, value, dtype=np.int64)
                else:
                    arr = np.full(self.batch_size, value, dtype=np.float64)
                const = self._bind("c", arr)
                lines.append(f"storage({op.output!r}).write(mask, {const})")
            elif isinstance(op, PrimOp):
                prim = self.registry.get(op.fn)
                k = self._bind("k", prim.fn)
                args = ", ".join(f"storage({v!r}).read()" for v in op.inputs)
                if len(op.outputs) == 1:
                    lines.append(
                        f"storage({op.outputs[0]!r}).write(mask, "
                        f"np.asarray({k}({args})))"
                    )
                else:
                    tmps = [f"_o{i}" for i in range(len(op.outputs))]
                    lines.append(f"{', '.join(tmps)} = {k}({args})")
                    for tmp, out in zip(tmps, op.outputs):
                        lines.append(
                            f"storage({out!r}).write(mask, np.asarray({tmp}))"
                        )
            else:  # pragma: no cover - guarded by the caller
                raise TypeError(f"cannot fuse {op!r}")
        body = textwrap.indent("\n".join(lines), "        ")
        name = f"_fused_{self._n}"
        source = (
            f"def {name}(storage, mask):\n"
            f"    with np.errstate(all='ignore'):\n{body}\n"
        )
        exec(compile(source, f"<local fused {label}>", "exec"), self.namespace)
        fn = self.namespace[name]
        fn.__fused_source__ = source  # type: ignore[attr-defined]
        return fn


def compile_local_executors(
    fn: Function, registry: PrimitiveRegistry, batch_size: int
) -> List[List[object]]:
    """Per-block execution plans for the hybrid strategy.

    Each block becomes a list of segments: fused closures interleaved with
    the ``CallOp`` objects that punctuate them (the interpreter handles the
    calls; everything between calls runs as one dispatch).
    """
    compiler = _LocalBlockCompiler(registry, batch_size)
    plans: List[List[object]] = []
    for block in fn.blocks:
        segments: List[object] = []
        pending: List[object] = []
        for op in block.ops:
            if isinstance(op, CallOp):
                fused = compiler.compile_segment(pending, block.label)
                if fused is not None:
                    segments.append(fused)
                pending = []
                segments.append(op)
            else:
                pending.append(op)
        fused = compiler.compile_segment(pending, block.label)
        if fused is not None:
            segments.append(fused)
        plans.append(segments)
    return plans
