"""Superblock region selection over the stack-dialect CFG.

A *superblock* is a run of basic blocks executed by one host dispatch:
the entry block runs for the lanes the scheduler selected, then control
falls through the run — each member block re-derives its own mask from
the program counters, so lanes that diverged simply fall out at a side
exit (their pcs already point elsewhere) and lanes that were *already*
parked at a later member get swept into the same dispatch.  Because the
machine's masked execution computes full-width and writes per lane under
the mask, a lane's results are independent of which other lanes share the
dispatch — which is why superblock outputs stay bit-identical to the
eager and fused executors no matter how regions are chosen.

This module only picks the runs; the codegen lives in
:mod:`repro.backend.fusion`.  Selection is seeded two ways:

* **statically** — follow unconditional fall-through edges (``Jump`` and
  the ``PushJump`` call edge).  ``Branch`` ends the run: without a
  profile there is no evidence either side dominates.
* **profile-guided** — with a :class:`~repro.observe.BlockProfile`
  (collected from a ``trace="profile"`` serving run), a branch extends
  the run into its *dominant* successor: the side whose block recorded
  strictly more active lanes, provided that block cleared the profile's
  ``min_slots`` floor (a block the profile barely saw is noise, not a
  hot path).

Every block fronts a run (its own suffix of some hot path), so a lane
resuming at an arbitrary pc — after preemption, snapshot migration, or a
side exit — still enters through a superblock rather than a degenerate
single block.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.ir.instructions import Branch, Jump, PushJump, StackProgram

#: Default cap on member blocks per superblock.  Long runs amortize more
#: dispatch overhead but each member adds a guard (one pc compare) that
#: every dispatch through the region pays even after flow dies out.
DEFAULT_MAX_LENGTH = 8


@dataclass(frozen=True)
class RegionTable:
    """The selected superblocks of one program, one run per entry block.

    ``chains[i]`` is the member-block run fronted by block ``i`` (always
    starting with ``i`` itself; a singleton when nothing follows it).
    ``next_block[i]`` is the continuation edge selection chose for ``i``,
    or None where the run must end (Return, or an unresolved branch).
    """

    chains: Tuple[Tuple[int, ...], ...]
    next_block: Tuple[Optional[int], ...]
    profiled: bool

    def chain(self, index: int) -> Tuple[int, ...]:
        return self.chains[index]

    def mean_length(self) -> float:
        """Average member count across all runs (1.0 = no fusion found)."""
        if not self.chains:
            return 0.0
        return sum(len(c) for c in self.chains) / len(self.chains)

    def to_json(self) -> Dict[str, object]:
        return {
            "profiled": self.profiled,
            "mean_length": round(self.mean_length(), 4),
            "chains": [list(c) for c in self.chains],
        }

    def __repr__(self) -> str:
        return (
            f"RegionTable(blocks={len(self.chains)}, "
            f"mean_length={self.mean_length():.2f}, profiled={self.profiled})"
        )


def _dominant_successor(
    term: Branch, profile, min_slots: int
) -> Optional[int]:
    """The branch target whose block strictly dominates the other's traffic."""
    true_row = profile.row(term.true_target)
    false_row = profile.row(term.false_target)
    true_active = 0 if true_row is None else true_row.active
    false_active = 0 if false_row is None else false_row.active
    if true_active == false_active:
        return None
    target, row = (
        (term.true_target, true_row)
        if true_active > false_active
        else (term.false_target, false_row)
    )
    if row is None or row.slots < min_slots:
        return None
    return target


def select_regions(
    program: StackProgram,
    profile=None,
    max_length: int = DEFAULT_MAX_LENGTH,
    min_slots: int = 0,
) -> RegionTable:
    """Pick the superblock run fronted by every block of ``program``.

    Continuation edges: ``Jump`` and ``PushJump`` (the call edge) always
    continue; ``Branch`` continues into its dominant successor when
    ``profile`` provides one (see module docstring); ``Return`` never
    continues (the return target is dynamic).  Runs stop at
    ``max_length`` members or when they would revisit a member (a loop
    re-enters through its own entry block's run instead).
    """
    if max_length < 1:
        raise ValueError(f"max_length must be >= 1, got {max_length}")
    n = len(program.blocks)
    next_block: List[Optional[int]] = []
    for block in program.blocks:
        term = block.terminator
        if isinstance(term, Jump):
            next_block.append(term.target)
        elif isinstance(term, PushJump):
            next_block.append(term.jump_target)
        elif isinstance(term, Branch) and profile is not None:
            next_block.append(_dominant_successor(term, profile, min_slots))
        else:
            next_block.append(None)
    # An edge to the exit (or out of range) never extends a run.
    next_block = [
        t if t is not None and 0 <= t < n else None for t in next_block
    ]
    chains = []
    for start in range(n):
        chain = [start]
        seen = {start}
        while len(chain) < max_length:
            nxt = next_block[chain[-1]]
            if nxt is None or nxt in seen:
                break
            chain.append(nxt)
            seen.add(nxt)
        chains.append(tuple(chain))
    return RegionTable(
        chains=tuple(chains),
        next_block=tuple(next_block),
        profiled=profile is not None,
    )
