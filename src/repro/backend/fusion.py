"""Basic-block fusion: compile each block to one generated Python function.

The interpreted program-counter machine dispatches every primitive through a
plan loop — the analog of TensorFlow Eager's per-kernel dispatch.  This
module plays the role of XLA: for each basic block it *generates source
code* executing the block's whole operation sequence as straight-line Python
with temporaries as local variables, storage handles and kernel functions
pre-bound in the closure, and the terminator inlined.  The machine then
makes one call per block execution instead of one per operation.

The same generated executors serve two strategies from the paper's Figure 5:

* ``pc_xla`` — the program-counter VM with every block fused;
* ``hybrid`` — local static autobatching driving fused straight-line blocks
  (see :mod:`repro.bench.figure5`), which the paper found fastest at very
  large batch sizes.
"""

from __future__ import annotations

import textwrap
from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

from repro.frontend.registry import PrimitiveRegistry, default_registry
from repro.ir.instructions import (
    Branch,
    ConstOp,
    Jump,
    PopOp,
    PrimOp,
    PushJump,
    PushOp,
    Return,
    StackProgram,
    VarKind,
)
from repro.vm.program_counter import ProgramCounterVM


class FusionUnsupported(ValueError):
    """Raised when a program/configuration cannot be fused."""


def _const_expr(value, batch_size: int) -> np.ndarray:
    if isinstance(value, bool):
        return np.full(batch_size, value, dtype=bool)
    if isinstance(value, int):
        return np.full(batch_size, value, dtype=np.int64)
    return np.full(batch_size, value, dtype=np.float64)


class _BlockCompiler:
    """Generates the fused executor source for one basic block."""

    def __init__(self, program: StackProgram, registry: PrimitiveRegistry, vm: ProgramCounterVM):
        self.program = program
        self.registry = registry
        self.vm = vm
        self.namespace: Dict[str, object] = {"np": np}
        self._mangle: Dict[str, str] = {}
        self._n = 0

    def _bind(self, prefix: str, obj: object) -> str:
        name = f"{prefix}{self._n}"
        self._n += 1
        self.namespace[name] = obj
        return name

    def _temp_local(self, var: str) -> str:
        if var not in self._mangle:
            self._mangle[var] = f"t{len(self._mangle)}"
        return self._mangle[var]

    def _read_expr(self, var: str) -> str:
        if self.program.kind(var) is VarKind.TEMP:
            return self._temp_local(var)
        storage_name = self._bind("s", self.vm.storage(var))
        return f"{storage_name}.read()"

    def compile(self, block_index: int) -> Callable:
        """Compile block ``block_index`` into one fused callable."""
        block = self.program.blocks[block_index]
        lines: List[str] = []

        for op in block.ops:
            if isinstance(op, ConstOp):
                const = self._bind("c", _const_expr(op.value, self.vm.batch_size))
                if self.program.kind(op.output) is VarKind.TEMP:
                    lines.append(f"{self._temp_local(op.output)} = {const}")
                else:
                    s = self._bind("s", self.vm.storage(op.output))
                    lines.append(f"{s}.write(mask, {const})")
            elif isinstance(op, PrimOp):
                prim = self.registry.get(op.fn)
                k = self._bind("k", prim.fn)
                args = ", ".join(self._read_expr(v) for v in op.inputs)
                if len(op.outputs) == 1:
                    out = op.outputs[0]
                    if self.program.kind(out) is VarKind.TEMP:
                        lines.append(f"{self._temp_local(out)} = {k}({args})")
                    else:
                        s = self._bind("s", self.vm.storage(out))
                        lines.append(f"{s}.write(mask, np.asarray({k}({args})))")
                else:
                    tmps = [f"o{block_index}_{i}" for i in range(len(op.outputs))]
                    lines.append(f"{', '.join(tmps)} = {k}({args})")
                    for tmp, out in zip(tmps, op.outputs):
                        if self.program.kind(out) is VarKind.TEMP:
                            lines.append(f"{self._temp_local(out)} = {tmp}")
                        else:
                            s = self._bind("s", self.vm.storage(out))
                            lines.append(f"{s}.write(mask, np.asarray({tmp}))")
            elif isinstance(op, PushOp):
                prim = self.registry.get(op.fn)
                k = self._bind("k", prim.fn)
                args = ", ".join(self._read_expr(v) for v in op.inputs)
                s = self._bind("s", self.vm.storage(op.output))
                lines.append(f"{s}.push(mask, np.asarray({k}({args})))")
            elif isinstance(op, PopOp):
                s = self._bind("s", self.vm.storage(op.var))
                lines.append(f"{s}.pop(mask)")
            else:
                raise FusionUnsupported(f"cannot fuse op {op!r}")

        term = block.terminator
        if isinstance(term, Jump):
            lines.append(f"vm.pcreg[mask] = {term.target}")
        elif isinstance(term, Branch):
            cond = self._read_expr(term.cond)
            lines.append(f"_c = np.asarray({cond}, dtype=bool)")
            lines.append(
                f"vm.pcreg[mask] = np.where(_c, {term.true_target}, "
                f"{term.false_target})[mask]"
            )
        elif isinstance(term, PushJump):
            ret = self._bind(
                "r",
                np.full(self.vm.batch_size, term.return_target, dtype=np.int64),
            )
            lines.append(f"vm.addr_stack.push(mask, {ret})")
            lines.append(f"vm.pcreg[mask] = {term.jump_target}")
        elif isinstance(term, Return):
            lines.append("_p = vm.addr_stack.pop(mask)")
            lines.append("vm.pcreg[mask] = _p[mask]")
        else:
            raise FusionUnsupported(f"cannot fuse terminator {term!r}")

        body = textwrap.indent("\n".join(lines) or "pass", "    ")
        source = f"def _fused_block_{block_index}(vm, mask, idx):\n{body}\n"
        exec(compile(source, f"<fused block {block_index}>", "exec"), self.namespace)
        fn = self.namespace[f"_fused_block_{block_index}"]
        fn.__fused_source__ = source  # type: ignore[attr-defined]
        return fn


def compile_block_executors(
    vm: ProgramCounterVM,
    registry: Optional[PrimitiveRegistry] = None,
) -> List[Callable]:
    """Compile fused executors for every block of ``vm``'s program.

    Only the masking execution mode is supported (the paper notes that the
    statically-indeterminate intermediate sizes of gather-scatter defeat
    XLA-style compilation, which is exactly the constraint here).
    """
    if vm.mode != "mask":
        raise FusionUnsupported(
            "block fusion requires masking mode (gather-scatter has "
            "statically indeterminate intermediate shapes)"
        )
    registry = registry or vm.registry
    return [
        _BlockCompiler(vm.program, registry, vm).compile(i)
        for i in range(len(vm.program.blocks))
    ]


def run_fused(
    program: StackProgram,
    inputs: Sequence[np.ndarray],
    registry: Optional[PrimitiveRegistry] = None,
    max_stack_depth: int = 32,
    scheduler="earliest",
    max_steps: int = 10 ** 9,
):
    """Run a stack program with every block fused (the ``pc_xla`` strategy)."""
    arrays = [np.asarray(x) for x in inputs]
    vm = ProgramCounterVM(
        program,
        batch_size=arrays[0].shape[0],
        registry=registry,
        mode="mask",
        scheduler=scheduler,
        max_stack_depth=max_stack_depth,
        max_steps=max_steps,
    )
    vm.block_executors = compile_block_executors(vm, registry)
    old = np.seterr(all="ignore")
    try:
        outputs = vm.run(arrays)
    finally:
        np.seterr(**old)
    return outputs[0] if len(outputs) == 1 else tuple(outputs)
