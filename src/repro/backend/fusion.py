"""Basic-block fusion: compile each block to one generated Python function.

The interpreted program-counter machine dispatches every primitive through a
plan loop — the analog of TensorFlow Eager's per-kernel dispatch.  This
module plays the role of XLA: for each basic block it *generates source
code* executing the block's whole operation sequence as straight-line Python
with temporaries as local variables, storage handles and kernel functions
pre-bound in the closure, and the terminator inlined.  The machine then
makes one call per block execution instead of one per operation.

Since the executor refactor this is just one implementation of the
:class:`~repro.vm.executors.BlockExecutor` protocol —
:class:`FusedBlockExecutor`, selected with ``executor="fused"`` on
``run_pc``, :class:`~repro.serve.engine.Engine`, or
:meth:`~repro.frontend.api.AutobatchFunction.execution_plan`.  There is no
separate fused driver loop: :func:`run_fused` survives only as a thin
wrapper that compiles an :class:`~repro.vm.executors.ExecutionPlan` and
hands it to the ordinary machine.

Generated blocks are *observationally identical* to interpretation: they
run their arithmetic under ``np.errstate(all="ignore")`` (masked-off lanes
must never raise spurious floating-point warnings) and record the same
:class:`~repro.vm.instrumentation.Instrumentation` counters the interpreter
does, so eager and fused runs produce bit-identical outputs **and** op
counts — the property the differential tests pin down.

That identity extends to lane checkpoint/resume (the serving engine's
preemption): generated namespaces capture *storage objects* — never the
arrays inside them — so
:meth:`~repro.vm.program_counter.ProgramCounterVM.restore_lane` (which
reallocates or promotes arrays *within* a storage via its lazy ``_ensure``
path) leaves every fused closure valid, and a snapshot taken under either
executor restores under either, bit-identically.  Anything added to the
bind spec must preserve this indirection.

The same generated executors serve two strategies from the paper's Figure 5:

* ``pc_fused`` — the program-counter VM with every block fused;
* ``hybrid`` — local static autobatching driving fused straight-line blocks
  (see :mod:`repro.bench.figure5`), which the paper found fastest at very
  large batch sizes.
"""

from __future__ import annotations

import textwrap
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.frontend.registry import PrimitiveRegistry
from repro.ir.instructions import (
    Branch,
    ConstOp,
    Jump,
    PopOp,
    PrimOp,
    PushJump,
    PushOp,
    Return,
    StackProgram,
    VarKind,
)
from repro.vm.executors import (
    BlockExecutor,
    ExecutionPlan,
    register_executor,
)
from repro.vm.instrumentation import Instrumentation, elements_per_lane
from repro.vm.local_static import _const_array


class FusionUnsupported(ValueError):
    """Raised when a program/configuration cannot be fused."""


#: Process-wide count of per-program fused codegen events, across every
#: executor instance.  Snapshot before/after building a machine fleet to
#: prove code-cache sharing: N same-plan machines must add exactly 1.
_TOTAL_FUSED_COMPILES = [0]


def total_fused_compiles() -> int:
    """How many programs have been fused (codegen + compile) process-wide."""
    return _TOTAL_FUSED_COMPILES[0]


class _CompiledBlock:
    """One block's generated source, compiled code object, and bind spec.

    Machine-independent: the expensive work (source generation plus
    ``compile()``) happens once per plan; :meth:`bind` only resolves the
    spec's names against one VM (storage handles, kernel functions,
    batch-width constants) and ``exec``s the pre-compiled code object into
    that namespace.
    """

    __slots__ = ("index", "source", "code", "spec")

    def __init__(self, index: int, source: str, spec: List[tuple]):
        self.index = index
        self.source = source
        self.code = compile(source, f"<fused block {index}>", "exec")
        self.spec = spec

    def bind(self, vm: Any, registry: PrimitiveRegistry) -> Callable:
        namespace: Dict[str, object] = {
            "np": np,
            "_el": elements_per_lane,
            "_sbp": _superblock_profile,
        }
        for name, kind, payload in self.spec:
            if kind == "storage":
                namespace[name] = vm.storage(payload)
            elif kind == "prim_fn":
                namespace[name] = registry.get(payload).fn
            elif kind == "prim":
                namespace[name] = registry.get(payload)
            elif kind == "const":
                namespace[name] = _const_array(payload, vm.batch_size)
            else:  # "ret": a PushJump return-target row
                namespace[name] = np.full(vm.batch_size, payload, dtype=np.int64)
        namespace["_z"] = vm.batch_size
        exec(self.code, namespace)
        fn = namespace[f"_fused_block_{self.index}"]
        fn.__fused_source__ = self.source  # type: ignore[attr-defined]
        return fn


def _superblock_profile(vm, index: int, idx: np.ndarray) -> None:
    """Per-member profiling for superblock bodies (mirrors ``step_lanes``).

    The machine loop only profiles the dispatch's *entry* block; superblock
    members executed in the same dispatch call this instead, so a profiled
    superblock run feeds :class:`~repro.observe.BlockProfile` the same
    per-block rows the single-block executors would.  Only called when
    ``vm.instr.track_blocks`` is armed.
    """
    live = int(np.count_nonzero(vm.pcreg < vm.exit_index))
    vm.instr.record_block(index, int(idx.size), live, vm.batch_size)
    hook = vm._bound.block_hook
    if hook is not None:
        hook(vm, index, idx)


class _BlockCompiler:
    """Generates the fused executor source for one basic block."""

    def __init__(self, program: StackProgram):
        self.program = program
        self.spec: List[tuple] = []
        self._mangle: Dict[str, str] = {}
        self._n = 0

    def _bind(self, prefix: str, kind: str, payload: object) -> str:
        name = f"{prefix}{self._n}"
        self._n += 1
        self.spec.append((name, kind, payload))
        return name

    def _temp_local(self, var: str) -> str:
        if var not in self._mangle:
            self._mangle[var] = f"t{len(self._mangle)}"
        return self._mangle[var]

    def _read_expr(self, var: str, lines: List[str]) -> str:
        """Expression reading ``var``, emitting the interpreter's read record."""
        kind = self.program.kind(var)
        if kind is VarKind.TEMP:
            return self._temp_local(var)
        if kind is VarKind.STACKED:
            lines.append("_i.stacked_reads += 1")
        storage_name = self._bind("s", "storage", var)
        return f"{storage_name}.read()"

    def _write_lines(self, var: str, expr: str, lines: List[str]) -> None:
        """Statements writing ``expr`` to ``var`` with the interpreter's
        storage-write record."""
        kind = self.program.kind(var)
        if kind is VarKind.TEMP:
            lines.append(f"{self._temp_local(var)} = {expr}")
            return
        if kind is VarKind.STACKED:
            lines.append("_i.stacked_writes += 1")
        else:
            lines.append("_i.register_writes += 1")
        s = self._bind("s", "storage", var)
        lines.append(f"{s}.write(mask, np.asarray({expr}))")

    def emit_block(self, block_index: int, lines: List[str]) -> None:
        """Append block ``block_index``'s body and terminator statements.

        Emitted statements are flat (no multi-line constructs), reading the
        conventional locals ``vm``/``mask``/``idx``/``_na``/``_i``/``_z`` —
        so a caller can splice several blocks into one function body
        (superblocks) by re-deriving ``mask``/``idx`` between members.
        """
        block = self.program.blocks[block_index]

        for j, op in enumerate(block.ops):
            if isinstance(op, ConstOp):
                const = self._bind("c", "const", op.value)
                self._write_lines(op.output, const, lines)
            elif isinstance(op, PrimOp):
                k = self._bind("k", "prim_fn", op.fn)
                p = self._bind("p", "prim", op.fn)
                args = ", ".join(self._read_expr(v, lines) for v in op.inputs)
                if len(op.outputs) == 1:
                    out = op.outputs[0]
                    if self.program.kind(out) is VarKind.TEMP:
                        first = self._temp_local(out)
                        lines.append(f"{first} = {k}({args})")
                    else:
                        first = f"v{block_index}_{j}"
                        lines.append(f"{first} = {k}({args})")
                        self._write_lines(out, first, lines)
                else:
                    tmps = [
                        f"o{block_index}_{j}_{i}" for i in range(len(op.outputs))
                    ]
                    lines.append(f"{', '.join(tmps)} = {k}({args})")
                    for tmp, out in zip(tmps, op.outputs):
                        self._write_lines(out, tmp, lines)
                    first = tmps[0]
                lines.append(
                    f"_i.record_prim({p}.name, {p}.tags, _na, _z, "
                    f"elements=_el({first}), weight={p}.cost_weight)"
                )
            elif isinstance(op, PushOp):
                k = self._bind("k", "prim_fn", op.fn)
                args = ", ".join(self._read_expr(v, lines) for v in op.inputs)
                s = self._bind("s", "storage", op.output)
                lines.append(f"{s}.push(mask, np.asarray({k}({args})))")
                lines.append("_i.record_push(_na)")
            elif isinstance(op, PopOp):
                s = self._bind("s", "storage", op.var)
                lines.append(f"{s}.pop(mask)")
                lines.append("_i.record_pop(_na)")
            else:
                raise FusionUnsupported(f"cannot fuse op {op!r}")

        term = block.terminator
        if isinstance(term, Jump):
            lines.append(f"vm.pcreg[mask] = {term.target}")
        elif isinstance(term, Branch):
            cond = self._read_expr(term.cond, lines)
            lines.append(f"_c = np.asarray({cond}, dtype=bool)")
            lines.append(
                f"vm.pcreg[mask] = np.where(_c, {term.true_target}, "
                f"{term.false_target})[mask]"
            )
        elif isinstance(term, PushJump):
            ret = self._bind("r", "ret", term.return_target)
            lines.append(f"vm.addr_stack.push(mask, {ret})")
            lines.append(f"vm.pcreg[mask] = {term.jump_target}")
        elif isinstance(term, Return):
            lines.append("_p = vm.addr_stack.pop(mask)")
            lines.append("vm.pcreg[mask] = _p[mask]")
        else:
            raise FusionUnsupported(f"cannot fuse terminator {term!r}")

    def _wrap(self, entry_index: int, lines: List[str]) -> _CompiledBlock:
        body = textwrap.indent("\n".join(lines) or "pass", "        ")
        source = (
            f"def _fused_block_{entry_index}(vm, mask, idx):\n"
            f"    _i = vm.instr\n"
            f"    _na = int(idx.size)\n"
            f"    with np.errstate(all='ignore'):\n"
            f"{body}\n"
        )
        return _CompiledBlock(entry_index, source, self.spec)

    def compile(self, block_index: int) -> _CompiledBlock:
        """Generate and compile block ``block_index``'s fused source."""
        lines: List[str] = []
        self.emit_block(block_index, lines)
        return self._wrap(block_index, lines)

    def compile_chain(self, chain: Sequence[int]) -> _CompiledBlock:
        """Generate one guarded multi-block function for a superblock run.

        The entry member executes exactly as a plain fused block.  Each
        later member re-derives its mask from the *current* program
        counters and runs under an ``if idx.size`` guard, so:

        * lanes that left the hot path have already fallen out — the side
          exit costs nothing beyond the pc compare;
        * lanes that were already parked at the member (other requests,
          resumed stragglers) are swept into the same dispatch, which is
          sound because masked execution makes each lane's results
          independent of its dispatch companions.

        Per-member instrumentation matches the machine loop: one
        ``record_step`` per member that ran, profiling via ``_sbp`` when
        armed, and the active-lane sets of every member concatenated into
        ``vm._stepped_override`` so serving step budgets charge the same
        per-block rate as the single-block executors.
        """
        start = chain[0]
        if len(chain) == 1:
            return self.compile(start)
        lines: List[str] = []
        self.emit_block(start, lines)
        lines.append("_stepped = [idx]")
        for member in chain[1:]:
            body: List[str] = []
            self.emit_block(member, body)
            lines.append(f"mask = np.equal(vm.pcreg, {member})")
            lines.append("idx = np.flatnonzero(mask)")
            lines.append("if idx.size:")
            inner = [
                "_na = int(idx.size)",
                "_i.record_step()",
                "_stepped.append(idx)",
                "if _i.track_blocks:",
                f"    _sbp(vm, {member}, idx)",
            ] + body
            lines.extend("    " + stmt for stmt in inner)
        lines.append("if len(_stepped) > 1:")
        lines.append("    vm._stepped_override = np.concatenate(_stepped)")
        return self._wrap(start, lines)


class FusedBlockExecutor(BlockExecutor):
    """Every block pre-compiled into one generated straight-line callable.

    One host dispatch per block execution instead of one per primitive —
    the XLA analog, and the executor behind Figure 5's ``pc_fused`` line
    and the serving engine's ``executor="fused"``.

    Only the masking execution mode is supported (the paper notes that the
    statically-indeterminate intermediate sizes of gather-scatter defeat
    XLA-style compilation, which is exactly the constraint here).
    """

    name = "fused"
    accounting = "fused"

    def __init__(self, registry: Optional[PrimitiveRegistry] = None):
        self.registry = registry
        # Source generation + compile() happen once per *program*; every
        # bind only re-resolves the spec's names against one VM.  The cache
        # is keyed per program (identity), so one executor instance can be
        # shared by many plans/machines — a whole serving cluster binds one
        # code cache — and alternating binds across programs never thrash.
        # The cache holds a strong reference to each program so an id() is
        # never reused while its entry is alive; entries live as long as
        # the executor, so a long-lived instance should serve a bounded
        # program population (plans already pin their programs anyway).
        self._compiled: Dict[int, Tuple[StackProgram, List[_CompiledBlock]]] = {}
        #: Per-program codegen events this instance has performed (the
        #: compile-once counter the cluster bench/tests assert on).
        self.compile_count = 0

    def _compiled_blocks(self, program: StackProgram) -> List[_CompiledBlock]:
        entry = self._compiled.get(id(program))
        if entry is None:
            blocks = [
                _BlockCompiler(program).compile(i)
                for i in range(len(program.blocks))
            ]
            self._compiled[id(program)] = (program, blocks)
            self.compile_count += 1
            _TOTAL_FUSED_COMPILES[0] += 1
            return blocks
        return entry[1]

    def bind(self, vm: Any) -> List[Callable]:
        if vm.mode != "mask":
            raise FusionUnsupported(
                "block fusion requires masking mode (gather-scatter has "
                "statically indeterminate intermediate shapes)"
            )
        registry = self.registry or vm.registry
        return [
            blk.bind(vm, registry) for blk in self._compiled_blocks(vm.program)
        ]

    def dispatch_count(self, instr: Instrumentation) -> int:
        """One host→device launch per basic-block execution."""
        return instr.steps

    def device_dispatch_count(self, instr: Instrumentation) -> int:
        """Identical: the fused block *is* the launch unit (XLA accounting)."""
        return instr.steps


register_executor(FusedBlockExecutor.name, FusedBlockExecutor)


class SuperblockExecutor(FusedBlockExecutor):
    """Hot block *runs* compiled into one guarded callable per entry block.

    Where the fused executor pays one host dispatch per basic block per
    machine step, this executor compiles every block's superblock run (see
    :func:`repro.backend.regions.select_regions`) into a single function:
    one dispatch executes the entry block and then falls through the run's
    members, each guarded by a fresh pc mask.  Lanes that diverge fall out
    at a side exit with their pcs already set by the member terminator that
    diverted them; lanes parked further down the run are swept in.  Every
    block fronts its own run, so arbitrary entry pcs (preemption resume,
    side exits, snapshot migration) never hit a slow path.

    Region selection is fixed at construction: ``profile=None`` seeds runs
    statically from fall-through edges, a
    :class:`~repro.observe.BlockProfile` additionally extends runs through
    branches into their dominant successors.  An executor never re-derives
    regions — feed a new profile to a *new* executor instance, which also
    yields a new :class:`~repro.vm.executors.ExecutionPlan` (instances
    bypass the :class:`~repro.frontend.api.AutobatchFunction` plan cache),
    so stale compiled regions are structurally impossible.

    Results are bit-identical to the eager and fused executors: masked
    execution makes each lane's values independent of its dispatch
    companions, so sweeping extra lanes through a member block changes
    *when* work happens, never what it computes.  Dispatch accounting uses
    :attr:`~repro.vm.instrumentation.Instrumentation.host_dispatches`
    (one per ``step_lanes`` call) rather than ``steps``; the gap between
    the two is the amortization superblocks buy.
    """

    name = "superblock"
    accounting = "fused"

    def __init__(
        self,
        profile: Any = None,
        max_length: Optional[int] = None,
        min_slots: int = 0,
        registry: Optional[PrimitiveRegistry] = None,
    ):
        from repro.backend.regions import DEFAULT_MAX_LENGTH

        super().__init__(registry)
        self.profile = profile
        self.max_length = (
            DEFAULT_MAX_LENGTH if max_length is None else int(max_length)
        )
        self.min_slots = int(min_slots)
        self._regions: Dict[int, Tuple[StackProgram, Any]] = {}

    def regions_for(self, program: StackProgram):
        """The :class:`~repro.backend.regions.RegionTable` for ``program``.

        Derived once per program from the executor's construction-time
        profile and cached; region-aware schedulers read it through the
        machine (see :class:`~repro.vm.scheduler.RegionScheduler`).
        """
        from repro.backend.regions import select_regions

        entry = self._regions.get(id(program))
        if entry is None:
            table = select_regions(
                program,
                profile=self.profile,
                max_length=self.max_length,
                min_slots=self.min_slots,
            )
            self._regions[id(program)] = (program, table)
            return table
        return entry[1]

    def _compiled_blocks(self, program: StackProgram) -> List[_CompiledBlock]:
        entry = self._compiled.get(id(program))
        if entry is None:
            table = self.regions_for(program)
            # A stale or hand-built table must not reach codegen: every run
            # edge has to exist in this program's CFG.  (Plan verification
            # additionally checks runs against the abstract interpreter's
            # reachability facts; this structural gate also covers plans
            # compiled with verify=False.)
            from repro.analysis.stackcheck.regions import verify_region_table

            verify_region_table(program, table)
            blocks = [
                _BlockCompiler(program).compile_chain(table.chain(i))
                for i in range(len(program.blocks))
            ]
            self._compiled[id(program)] = (program, blocks)
            self.compile_count += 1
            _TOTAL_FUSED_COMPILES[0] += 1
            return blocks
        return entry[1]

    def dispatch_count(self, instr: Instrumentation) -> int:
        """One host launch per machine dispatch — several blocks each."""
        return instr.host_dispatches

    def device_dispatch_count(self, instr: Instrumentation) -> int:
        """Identical: the whole superblock is the launch unit."""
        return instr.host_dispatches

    def __repr__(self) -> str:
        return (
            f"SuperblockExecutor(profiled={self.profile is not None}, "
            f"max_length={self.max_length}, min_slots={self.min_slots})"
        )


register_executor(SuperblockExecutor.name, SuperblockExecutor)


def compile_block_executors(
    vm: Any,
    registry: Optional[PrimitiveRegistry] = None,
) -> List[Callable]:
    """Compile fused executors for every block of ``vm``'s program.

    Legacy entry point kept for the ``vm.block_executors`` override API;
    new code selects ``executor="fused"`` and lets the plan bind itself.
    """
    return FusedBlockExecutor(registry).bind(vm)


def run_fused(
    program: StackProgram,
    inputs: Sequence[np.ndarray],
    registry: Optional[PrimitiveRegistry] = None,
    max_stack_depth: int = 32,
    scheduler="earliest",
    max_steps: int = 10 ** 9,
):
    """Run a stack program with every block fused (the ``pc_xla`` strategy).

    Thin wrapper over :class:`~repro.vm.executors.ExecutionPlan`: the fused
    machine *is* the ordinary program-counter machine with a fused plan —
    there is no separate driver loop.
    """
    from repro.vm.program_counter import run_program_counter

    plan = ExecutionPlan.compile(program, executor=FusedBlockExecutor(registry))
    return run_program_counter(
        plan,
        inputs,
        registry=registry,
        mode="mask",
        scheduler=scheduler,
        max_stack_depth=max_stack_depth,
        max_steps=max_steps,
    )
