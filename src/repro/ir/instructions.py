"""Instruction set of the two autobatching IR dialects.

Callable IR (paper Figure 2)::

    Program    P ::= [F]
    Function   F ::= input [x], body [B], output [y]
    Block      B ::= [op], t
    Operation op ::= Primitive [y] = f([x])   (PrimOp / ConstOp)
                   | Call      [y] = F([x])   (CallOp)
    Terminator t ::= Jump i | Branch x i j | Return

Stack IR (paper Figure 4)::

    Program    P ::= input [x], code [B], output [y]
    Block      B ::= [op], t
    Operation op ::= Push y = f([x]) | Pop x
                   | Update [y] = f([x])      (PrimOp in this dialect)
    Terminator t ::= Jump i | Branch x i j | PushJump i j | Return

The in-place ``Update`` the paper introduces via optimization 5 is what a
:class:`PrimOp` *means* in the stack dialect: write the top of each output
variable under the active mask.  :class:`PushOp` additionally advances the
stack pointer.  Targets are block labels (strings) in builder-produced
functions and are resolved to dense indices when a :class:`StackProgram` is
assembled.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.ir.types import TensorType

# ---------------------------------------------------------------------------
# Operations
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ConstOp:
    """Bind a literal constant: ``output = value`` (broadcast over the batch)."""

    output: str
    value: Any

    @property
    def outputs(self) -> Tuple[str, ...]:
        return (self.output,)

    @property
    def inputs(self) -> Tuple[str, ...]:
        return ()

    def __str__(self) -> str:
        return f"{self.output} = const {self.value!r}"


@dataclass(frozen=True)
class PrimOp:
    """Apply a batched primitive: ``outputs = fn(inputs)``.

    In the callable dialect this assigns fresh values; in the stack dialect it
    is an in-place *Update* of each output's stack top (under the mask of
    locally active batch members).
    """

    outputs: Tuple[str, ...]
    fn: str
    inputs: Tuple[str, ...]

    def __str__(self) -> str:
        outs = ", ".join(self.outputs)
        ins = ", ".join(self.inputs)
        return f"{outs} = {self.fn}({ins})"


@dataclass(frozen=True)
class CallOp:
    """Call another autobatched function (callable dialect only).

    Under local static autobatching (Algorithm 1) this recurses through the
    host Python; the lowering pipeline compiles it away into explicit stack
    manipulation for the program-counter machine.
    """

    outputs: Tuple[str, ...]
    func: str
    inputs: Tuple[str, ...]

    @property
    def fn(self) -> str:  # uniform access with PrimOp
        return self.func

    def __str__(self) -> str:
        outs = ", ".join(self.outputs)
        ins = ", ".join(self.inputs)
        return f"{outs} = call {self.func}({ins})"


@dataclass(frozen=True)
class PushOp:
    """Push ``fn(inputs)`` onto ``output``'s stack (stack dialect only).

    The caller-saves lowering only ever emits *push-dups*
    (``Push v = id(v)``), but the general form matches the paper's
    ``Push y = f(x)``.
    """

    output: str
    fn: str
    inputs: Tuple[str, ...]

    @property
    def outputs(self) -> Tuple[str, ...]:
        return (self.output,)

    def __str__(self) -> str:
        ins = ", ".join(self.inputs)
        return f"push {self.output} = {self.fn}({ins})"


@dataclass(frozen=True)
class PopOp:
    """Pop ``var``'s stack (stack dialect only)."""

    var: str

    @property
    def outputs(self) -> Tuple[str, ...]:
        return (self.var,)

    @property
    def inputs(self) -> Tuple[str, ...]:
        return ()

    def __str__(self) -> str:
        return f"pop {self.var}"


Operation = Any  # ConstOp | PrimOp | CallOp | PushOp | PopOp

# ---------------------------------------------------------------------------
# Terminators
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Jump:
    """Unconditional jump to a block."""

    target: Any  # str label (callable IR) or int index (stack IR)

    def targets(self) -> Tuple[Any, ...]:
        return (self.target,)

    def __str__(self) -> str:
        return f"jump {self.target}"


@dataclass(frozen=True)
class Branch:
    """Per-member conditional jump on a boolean scalar variable."""

    cond: str
    true_target: Any
    false_target: Any

    def targets(self) -> Tuple[Any, ...]:
        return (self.true_target, self.false_target)

    def __str__(self) -> str:
        return f"branch {self.cond} ? {self.true_target} : {self.false_target}"


@dataclass(frozen=True)
class PushJump:
    """Push a return address and jump into a function body (stack dialect).

    ``PushJump i j``: push ``i`` (the return target) onto the program-counter
    stack and set the top program counter to ``j`` (the callee entry).
    """

    return_target: Any
    jump_target: Any

    def targets(self) -> Tuple[Any, ...]:
        return (self.return_target, self.jump_target)

    def __str__(self) -> str:
        return f"pushjump ret={self.return_target} goto={self.jump_target}"


@dataclass(frozen=True)
class Return:
    """Exit the current function.

    Callable dialect: control returns to the calling ``CallOp`` (Algorithm 1
    inherits this from the host Python).  Stack dialect: pop the
    program-counter stack; the machine halts when the popped counter is the
    exit index ``I`` (one past the last block).
    """

    def targets(self) -> Tuple[Any, ...]:
        return ()

    def __str__(self) -> str:
        return "return"


Terminator = Any  # Jump | Branch | PushJump | Return

# ---------------------------------------------------------------------------
# Blocks / functions / programs
# ---------------------------------------------------------------------------


@dataclass
class Block:
    """A basic block: a straight-line operation list plus one terminator."""

    label: str
    ops: List[Operation] = field(default_factory=list)
    terminator: Optional[Terminator] = None

    def __str__(self) -> str:
        lines = [f"{self.label}:"]
        lines += [f"  {op}" for op in self.ops]
        lines.append(f"  {self.terminator}")
        return "\n".join(lines)


@dataclass
class Function:
    """A callable-IR function: parameters, a CFG, and named output variables.

    ``Return`` terminators carry no operands; the function's results are the
    current values of ``outputs`` at return time (the frontend emits
    assignments to these variables ahead of every ``Return``), matching the
    paper's ``output y`` convention.
    """

    name: str
    params: Tuple[str, ...]
    outputs: Tuple[str, ...]
    blocks: List[Block] = field(default_factory=list)
    # Optional static types (variable name -> TensorType); purely advisory.
    var_types: Dict[str, TensorType] = field(default_factory=dict)

    def __post_init__(self) -> None:
        self._index: Dict[str, int] = {}
        self.reindex()

    def reindex(self) -> None:
        """Rebuild the label -> block index map after structural edits."""
        self._index = {b.label: i for i, b in enumerate(self.blocks)}
        if len(self._index) != len(self.blocks):
            seen: Dict[str, int] = {}
            for b in self.blocks:
                seen[b.label] = seen.get(b.label, 0) + 1
            dups = [lbl for lbl, n in seen.items() if n > 1]
            raise ValueError(f"duplicate block labels in {self.name}: {dups}")

    @property
    def entry(self) -> Block:
        """The entry block (always index 0)."""
        return self.blocks[0]

    def block_index(self, label: str) -> int:
        """Index of the block labelled ``label``."""
        return self._index[label]

    def block(self, label: str) -> Block:
        """The block labelled ``label``."""
        return self.blocks[self._index[label]]

    def variables(self) -> Tuple[str, ...]:
        """All variable names mentioned anywhere in the function."""
        seen: Dict[str, None] = {}
        for p in self.params:
            seen.setdefault(p)
        for b in self.blocks:
            for op in b.ops:
                for v in getattr(op, "inputs", ()):  # type: ignore[attr-defined]
                    seen.setdefault(v)
                for v in getattr(op, "outputs", ()):  # type: ignore[attr-defined]
                    seen.setdefault(v)
            term = b.terminator
            if isinstance(term, Branch):
                seen.setdefault(term.cond)
        for o in self.outputs:
            seen.setdefault(o)
        return tuple(seen)


@dataclass
class Program:
    """A whole callable-IR program: a set of functions plus an entry point."""

    functions: Dict[str, Function]
    main: str

    @property
    def main_function(self) -> Function:
        """The program's entry function object."""
        return self.functions[self.main]

    def __iter__(self):
        return iter(self.functions.values())


# ---------------------------------------------------------------------------
# Stack programs
# ---------------------------------------------------------------------------


class VarKind(enum.Enum):
    """Storage class assigned to each variable by the analyses of Section 3.

    TEMP     — not live across any block boundary; exists only inside a basic
               block execution and bypasses the batching machinery entirely
               (paper optimization 2).
    REGISTER — live across blocks but never across a function call that could
               reuse it at a different stack depth; stored as a flat (Z, ...)
               array updated under a mask, with no stack (optimization 3).
    STACKED  — needs a full (D, Z, ...) stack plus stack pointers.
    """

    TEMP = "temp"
    REGISTER = "register"
    STACKED = "stacked"


@dataclass
class StackProgram:
    """A flat, merged program in the stack dialect (paper Figure 4).

    Block terminator targets are dense integer indices into ``blocks``; the
    *exit index* is ``len(blocks)``.  The program-counter stack of every
    batch member is initialized with the exit index at the bottom, so the
    main function's ``Return`` halts that member.
    """

    blocks: List[Block]
    inputs: Tuple[str, ...]
    outputs: Tuple[str, ...]
    var_kinds: Dict[str, VarKind] = field(default_factory=dict)
    var_types: Dict[str, TensorType] = field(default_factory=dict)
    # label -> index of each function's entry block, for diagnostics.
    function_entries: Dict[str, int] = field(default_factory=dict)
    # Name of the source function each block was lowered from.
    block_sources: List[str] = field(default_factory=list)

    @property
    def exit_index(self) -> int:
        """The pc value meaning 'this member has halted'."""
        return len(self.blocks)

    def kind(self, var: str) -> VarKind:
        """Storage class of variable ``name`` (TEMP/REGISTER/STACKED)."""
        return self.var_kinds.get(var, VarKind.STACKED)

    def stacked_vars(self) -> Tuple[str, ...]:
        """Names of variables backed by stacks."""
        return tuple(v for v, k in self.var_kinds.items() if k is VarKind.STACKED)

    def register_vars(self) -> Tuple[str, ...]:
        """Names of variables backed by masked registers."""
        return tuple(v for v, k in self.var_kinds.items() if k is VarKind.REGISTER)

    def variables(self) -> Tuple[str, ...]:
        """Every non-temporary variable name."""
        seen: Dict[str, None] = {}
        for v in self.inputs:
            seen.setdefault(v)
        for b in self.blocks:
            for op in b.ops:
                for v in getattr(op, "inputs", ()):  # type: ignore[attr-defined]
                    seen.setdefault(v)
                for v in getattr(op, "outputs", ()):  # type: ignore[attr-defined]
                    seen.setdefault(v)
            if isinstance(b.terminator, Branch):
                seen.setdefault(b.terminator.cond)
        for v in self.outputs:
            seen.setdefault(v)
        return tuple(seen)
