"""Intermediate representations for autobatching.

Two dialects, mirroring the paper's Figures 2 and 4:

* The **callable IR** (:class:`Function`, :class:`Program`): each function is
  its own control-flow graph; function calls are explicit :class:`CallOp`
  instructions.  This is the language of *local static autobatching*
  (Algorithm 1) and the input to the lowering pipeline.

* The **stack IR** (:class:`StackProgram`): all control-flow graphs are merged
  into one flat block list; calls are compiled into per-variable stack
  operations (:class:`PushOp` / :class:`PopOp`) and program-counter stack
  operations (:class:`PushJump` / :class:`Return`).  This is the language of
  *program-counter autobatching* (Algorithm 2).

Both dialects are n-ary (multiple inputs and outputs per operation); the
paper presents unary syntax "for succinctness" and notes that the n-ary
generalization is standard.
"""

from repro.ir.types import TensorType, scalar, vector
from repro.ir.instructions import (
    Block,
    Branch,
    CallOp,
    ConstOp,
    Function,
    Jump,
    PopOp,
    PrimOp,
    Program,
    PushJump,
    PushOp,
    Return,
    StackProgram,
    VarKind,
)
from repro.ir.builder import FunctionBuilder, ProgramBuilder
from repro.ir.validate import IRValidationError, validate_function, validate_program, validate_stack_program
from repro.ir.pretty import format_function, format_program, format_stack_program

__all__ = [
    "TensorType",
    "scalar",
    "vector",
    "Block",
    "Branch",
    "CallOp",
    "ConstOp",
    "Function",
    "Jump",
    "PopOp",
    "PrimOp",
    "Program",
    "PushJump",
    "PushOp",
    "Return",
    "StackProgram",
    "VarKind",
    "FunctionBuilder",
    "ProgramBuilder",
    "IRValidationError",
    "validate_function",
    "validate_program",
    "validate_stack_program",
    "format_function",
    "format_program",
    "format_stack_program",
]
