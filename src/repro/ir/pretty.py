"""Human-readable formatting (disassembly) of IR objects.

The formatters are used in error messages, the Figure 1 / Figure 3 runtime
snapshot demos, and by tests that assert on program structure.
"""

from __future__ import annotations

from typing import List

from repro.ir.instructions import Function, Program, StackProgram, VarKind


def format_function(fn: Function, indent: str = "") -> str:
    """Disassemble one callable-IR function to readable text."""
    header = (
        f"{indent}function {fn.name}({', '.join(fn.params)}) "
        f"-> ({', '.join(fn.outputs)})"
    )
    lines: List[str] = [header]
    for i, blk in enumerate(fn.blocks):
        lines.append(f"{indent}  [{i}] {blk.label}:")
        for op in blk.ops:
            lines.append(f"{indent}    {op}")
        lines.append(f"{indent}    {blk.terminator}")
    return "\n".join(lines)


def format_program(program: Program) -> str:
    """Disassemble a whole callable-IR program."""
    lines = [f"program (main = {program.main})"]
    for fn in program.functions.values():
        lines.append(format_function(fn, indent="  "))
    return "\n".join(lines)


_KIND_ABBREV = {
    VarKind.TEMP: "t",
    VarKind.REGISTER: "r",
    VarKind.STACKED: "s",
}


def format_stack_program(program: StackProgram) -> str:
    """Disassemble a stack-dialect program, with storage-class annotations."""
    lines = [
        f"stack program: inputs=({', '.join(program.inputs)}) "
        f"outputs=({', '.join(program.outputs)}) exit={program.exit_index}"
    ]
    if program.var_kinds:
        kinds = ", ".join(
            f"{v}:{_KIND_ABBREV[k]}" for v, k in sorted(program.var_kinds.items())
        )
        lines.append(f"  vars: {kinds}")
    entry_of = {idx: name for name, idx in program.function_entries.items()}
    for i, blk in enumerate(program.blocks):
        if i in entry_of:
            lines.append(f"  ; ---- {entry_of[i]} ----")
        lines.append(f"  [{i}] {blk.label}:")
        for op in blk.ops:
            lines.append(f"    {op}")
        lines.append(f"    {blk.terminator}")
    return "\n".join(lines)
