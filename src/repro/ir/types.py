"""Value types for autobatched programs.

Every program variable holds, for each batch member, a value of a fixed
*event shape* (possibly scalar).  This mirrors the paper's XLA setting, where
all intermediate array shapes must be statically resolvable: batched storage
for a variable of event shape ``s`` is an array of shape ``(Z, *s)`` (local
static autobatching) or ``(D, Z, *s)`` plus a ``(Z,)`` stack-pointer vector
(program-counter autobatching).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np


@dataclass(frozen=True)
class TensorType:
    """Static type of one batch member's value: dtype plus event shape.

    ``event_shape`` excludes the batch dimension; a scalar per member has
    ``event_shape == ()``.
    """

    dtype: str
    event_shape: Tuple[int, ...] = ()

    def __post_init__(self) -> None:
        # Normalize the dtype through numpy so "float" == "float64" etc.
        object.__setattr__(self, "dtype", np.dtype(self.dtype).name)
        object.__setattr__(self, "event_shape", tuple(int(d) for d in self.event_shape))

    @property
    def np_dtype(self) -> np.dtype:
        """The numpy dtype object for this tensor type."""
        return np.dtype(self.dtype)

    def batched_shape(self, batch_size: int) -> Tuple[int, ...]:
        """Shape of the batched storage for this type."""
        return (int(batch_size),) + self.event_shape

    def stacked_shape(self, depth: int, batch_size: int) -> Tuple[int, ...]:
        """Shape of stacked storage (program-counter machine)."""
        return (int(depth), int(batch_size)) + self.event_shape

    @classmethod
    def of_value(cls, value: np.ndarray, batch_size: int) -> "TensorType":
        """Infer the type of a batched value with leading dimension Z."""
        arr = np.asarray(value)
        if arr.ndim == 0 or arr.shape[0] != batch_size:
            raise ValueError(
                f"batched value must have leading batch dimension {batch_size}, "
                f"got shape {arr.shape}"
            )
        return cls(dtype=arr.dtype.name, event_shape=arr.shape[1:])

    def __str__(self) -> str:
        if self.event_shape:
            return f"{self.dtype}{list(self.event_shape)}"
        return self.dtype


def scalar(dtype: str = "float64") -> TensorType:
    """A per-member scalar type."""
    return TensorType(dtype=dtype, event_shape=())


def vector(n: int, dtype: str = "float64") -> TensorType:
    """A per-member length-``n`` vector type."""
    return TensorType(dtype=dtype, event_shape=(int(n),))
