"""Ergonomic construction of callable-IR functions and programs.

Used by the Python AST frontend, by the lowering pipeline, and directly by
tests that need hand-built CFGs::

    b = FunctionBuilder("abs_diff", params=("x", "y"), outputs=("out",))
    entry, big, small, done = b.blocks("entry", "big", "small", "done")
    entry.prim(("c",), "gt", ("x", "y")).branch("c", big, small)
    big.prim(("out",), "sub", ("x", "y")).jump(done)
    small.prim(("out",), "sub", ("y", "x")).jump(done)
    done.ret()
    fn = b.build()
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, Optional, Tuple

from repro.ir.instructions import (
    Block,
    Branch,
    CallOp,
    ConstOp,
    Function,
    Jump,
    PopOp,
    PrimOp,
    Program,
    PushJump,
    PushOp,
    Return,
)
from repro.ir.types import TensorType


class BlockHandle:
    """Mutable view of one block under construction; methods chain."""

    def __init__(self, builder: "FunctionBuilder", block: Block):
        self._builder = builder
        self._block = block

    @property
    def label(self) -> str:
        return self._block.label

    # -- operations -------------------------------------------------------

    def const(self, output: str, value: Any) -> "BlockHandle":
        """Append ``output = const value``."""
        self._block.ops.append(ConstOp(output=output, value=value))
        return self

    def prim(self, outputs: Iterable[str], fn: str, inputs: Iterable[str]) -> "BlockHandle":
        """Append a primitive operation ``outputs = fn(inputs)``."""
        self._block.ops.append(PrimOp(outputs=tuple(outputs), fn=fn, inputs=tuple(inputs)))
        return self

    def call(self, outputs: Iterable[str], func: str, inputs: Iterable[str]) -> "BlockHandle":
        """Append a function call ``outputs = func(inputs)``."""
        self._block.ops.append(CallOp(outputs=tuple(outputs), func=func, inputs=tuple(inputs)))
        return self

    def push(self, output: str, fn: str, inputs: Iterable[str]) -> "BlockHandle":
        """Append ``push output = fn(inputs)`` (stack dialect)."""
        self._block.ops.append(PushOp(output=output, fn=fn, inputs=tuple(inputs)))
        return self

    def push_dup(self, var: str) -> "BlockHandle":
        """Duplicate the top of ``var``'s stack (caller-saves save)."""
        self._block.ops.append(PushOp(output=var, fn="id", inputs=(var,)))
        return self

    def pop(self, var: str) -> "BlockHandle":
        """Append ``pop var`` (stack dialect)."""
        self._block.ops.append(PopOp(var=var))
        return self

    def op(self, operation: Any) -> "BlockHandle":
        """Append an already-constructed operation object."""
        self._block.ops.append(operation)
        return self

    # -- terminators --------------------------------------------------------

    def _terminate(self, terminator: Any) -> "BlockHandle":
        if self._block.terminator is not None:
            raise ValueError(f"block {self._block.label!r} already terminated")
        self._block.terminator = terminator
        return self

    @staticmethod
    def _target(t: Any) -> Any:
        return t.label if isinstance(t, BlockHandle) else t

    def jump(self, target: Any) -> "BlockHandle":
        """Terminate with an unconditional jump."""
        return self._terminate(Jump(target=self._target(target)))

    def branch(self, cond: str, true_target: Any, false_target: Any) -> "BlockHandle":
        """Terminate with a two-way conditional branch on ``cond``."""
        return self._terminate(
            Branch(
                cond=cond,
                true_target=self._target(true_target),
                false_target=self._target(false_target),
            )
        )

    def push_jump(self, return_target: Any, jump_target: Any) -> "BlockHandle":
        """Terminate with call-entry control flow (stack dialect)."""
        return self._terminate(
            PushJump(
                return_target=self._target(return_target),
                jump_target=self._target(jump_target),
            )
        )

    def ret(self) -> "BlockHandle":
        """Terminate with a return."""
        return self._terminate(Return())


class FunctionBuilder:
    """Builds one callable-IR :class:`Function` block by block.

    The first block created is the entry block.
    """

    def __init__(
        self,
        name: str,
        params: Tuple[str, ...] = (),
        outputs: Tuple[str, ...] = (),
        var_types: Optional[Dict[str, TensorType]] = None,
    ):
        self.name = name
        self.params = tuple(params)
        self.outputs = tuple(outputs)
        self.var_types = dict(var_types or {})
        self._blocks: list[Block] = []
        self._labels: set[str] = set()
        self._counter = 0

    def fresh_label(self, hint: str = "block") -> str:
        """A label guaranteed not to collide with existing blocks."""
        while True:
            label = f"{hint}_{self._counter}"
            self._counter += 1
            if label not in self._labels:
                return label

    def block(self, label: Optional[str] = None) -> BlockHandle:
        if label is None:
            label = self.fresh_label()
        if label in self._labels:
            raise ValueError(f"duplicate block label {label!r} in {self.name}")
        self._labels.add(label)
        blk = Block(label=label)
        self._blocks.append(blk)
        return BlockHandle(self, blk)

    def blocks(self, *labels: str) -> Tuple[BlockHandle, ...]:
        """Create several labelled blocks at once."""
        return tuple(self.block(lbl) for lbl in labels)

    def build(self) -> Function:
        for blk in self._blocks:
            if blk.terminator is None:
                raise ValueError(
                    f"block {blk.label!r} of {self.name!r} has no terminator"
                )
        return Function(
            name=self.name,
            params=self.params,
            outputs=self.outputs,
            blocks=list(self._blocks),
            var_types=dict(self.var_types),
        )


class ProgramBuilder:
    """Collects functions into a callable-IR :class:`Program`."""

    def __init__(self, main: Optional[str] = None):
        self._functions: Dict[str, Function] = {}
        self._main = main

    def add(self, function: Function) -> "ProgramBuilder":
        """Add a finished function to the program under construction."""
        if function.name in self._functions:
            raise ValueError(f"duplicate function {function.name!r}")
        self._functions[function.name] = function
        if self._main is None:
            self._main = function.name
        return self

    def build(self) -> Program:
        if self._main is None:
            raise ValueError("empty program")
        if self._main not in self._functions:
            raise ValueError(f"main function {self._main!r} not defined")
        return Program(functions=dict(self._functions), main=self._main)
