"""Well-formedness checks for both IR dialects.

Validation catches structural errors early (dangling jump targets, calls to
unknown functions, stack ops in the callable dialect and vice versa) so the
virtual machines can assume well-formed input.
"""

from __future__ import annotations

from typing import Set

from repro.ir.instructions import (
    Branch,
    CallOp,
    ConstOp,
    Function,
    Jump,
    PopOp,
    PrimOp,
    Program,
    PushJump,
    PushOp,
    Return,
    StackProgram,
)


class IRValidationError(ValueError):
    """Raised when an IR object is structurally malformed."""


def _fail(msg: str) -> None:
    raise IRValidationError(msg)


def validate_function(fn: Function) -> None:
    """Check one callable-IR function for structural well-formedness."""
    if not fn.blocks:
        _fail(f"function {fn.name!r} has no blocks")
    if len(set(fn.params)) != len(fn.params):
        _fail(f"function {fn.name!r} has duplicate parameters {fn.params}")
    if not fn.outputs:
        _fail(f"function {fn.name!r} declares no outputs")
    labels: Set[str] = {b.label for b in fn.blocks}
    if len(labels) != len(fn.blocks):
        _fail(f"function {fn.name!r} has duplicate block labels")
    saw_return = False
    for blk in fn.blocks:
        for op in blk.ops:
            if isinstance(op, (PushOp, PopOp)):
                _fail(
                    f"{fn.name}/{blk.label}: stack operation {op} is not valid "
                    "in the callable dialect (Figure 2)"
                )
            elif isinstance(op, (PrimOp, CallOp)):
                if not op.outputs:
                    _fail(f"{fn.name}/{blk.label}: {op} has no outputs")
                if len(set(op.outputs)) != len(op.outputs):
                    _fail(f"{fn.name}/{blk.label}: {op} has duplicate outputs")
            elif isinstance(op, ConstOp):
                pass
            else:
                _fail(f"{fn.name}/{blk.label}: unknown operation {op!r}")
        term = blk.terminator
        if term is None:
            _fail(f"{fn.name}/{blk.label}: missing terminator")
        elif isinstance(term, (Jump, Branch)):
            for target in term.targets():
                if target not in labels:
                    _fail(f"{fn.name}/{blk.label}: jump target {target!r} undefined")
        elif isinstance(term, Return):
            saw_return = True
        elif isinstance(term, PushJump):
            _fail(
                f"{fn.name}/{blk.label}: PushJump is not valid in the callable "
                "dialect (Figure 2)"
            )
        else:
            _fail(f"{fn.name}/{blk.label}: unknown terminator {term!r}")
    if not saw_return:
        _fail(f"function {fn.name!r} has no Return block")


def validate_program(program: Program) -> None:
    """Check a whole callable-IR program, including call targets and arity."""
    if program.main not in program.functions:
        _fail(f"main function {program.main!r} is not defined")
    for fn in program.functions.values():
        validate_function(fn)
        for blk in fn.blocks:
            for op in blk.ops:
                if isinstance(op, CallOp):
                    callee = program.functions.get(op.func)
                    if callee is None:
                        _fail(
                            f"{fn.name}/{blk.label}: call to undefined function "
                            f"{op.func!r}"
                        )
                    if len(op.inputs) != len(callee.params):
                        _fail(
                            f"{fn.name}/{blk.label}: call to {op.func!r} passes "
                            f"{len(op.inputs)} arguments; it takes {len(callee.params)}"
                        )
                    if len(op.outputs) != len(callee.outputs):
                        _fail(
                            f"{fn.name}/{blk.label}: call to {op.func!r} binds "
                            f"{len(op.outputs)} results; it returns {len(callee.outputs)}"
                        )


def validate_stack_program(program: StackProgram) -> None:
    """Check a stack-dialect program: integer targets in range, no CallOps.

    The checks live in :mod:`repro.analysis.stackcheck.structural` — one
    shared implementation behind this raising entry point and the deeper
    abstract-interpretation verifier (``repro.analysis.stackcheck.verify``).
    This fixed the seed implementation's gaps: duplicate block labels and
    ``PushJump`` targets naming the exit index went undetected, and a block
    with a missing terminator raised before its remaining checks could be
    reported consistently.
    """
    # Imported lazily: repro.analysis pulls in its whole analysis suite
    # (networkx included), which repro.ir must not require at import time.
    from repro.analysis.stackcheck.structural import structural_diagnostics

    diags = structural_diagnostics(program)
    if diags:
        first = diags[0]
        if first.block is not None:
            label = program.blocks[first.block].label
            _fail(f"block {first.block} ({label}): {first.message}")
        _fail(first.message)
